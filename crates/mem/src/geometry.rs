//! Cache geometry: sizes, line widths, and the address-splitting arithmetic
//! that turns a byte address into `(tag, set index, offset)`.

use crate::{Addr, LineAddr, SetIndex, Tag};

/// The shape of a cache: total capacity, line size, and associativity.
///
/// `CacheGeometry` owns all address arithmetic so the rest of the workspace
/// never manipulates raw bit offsets. For the paper's L1 data cache
/// (32 KB, direct-mapped, 32-byte lines) the split is:
///
/// ```text
///  63 ........ 15 | 14 ...... 5 | 4 ... 0
///       tag       |  set index  | offset
/// ```
///
/// # Examples
///
/// ```
/// use tcp_mem::{Addr, CacheGeometry};
///
/// let l1 = CacheGeometry::new(32 * 1024, 32, 1);
/// assert_eq!(l1.num_sets(), 1024);
/// assert_eq!(l1.index_bits(), 10);
/// assert_eq!(l1.offset_bits(), 5);
///
/// let (tag, set) = l1.split(Addr::new(0x8000));   // 32 KB: wraps to set 0
/// assert_eq!(set.raw(), 0);
/// assert_eq!(tag.raw(), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    line_bytes: u64,
    associativity: u32,
    num_sets: u32,
    offset_bits: u32,
    index_bits: u32,
}

impl CacheGeometry {
    /// Creates a geometry from total size, line size, and associativity.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero, if sizes are not powers of two, or
    /// if the parameters do not yield a power-of-two number of sets.
    pub fn new(size_bytes: u64, line_bytes: u64, associativity: u32) -> Self {
        assert!(
            size_bytes > 0 && line_bytes > 0 && associativity > 0,
            "geometry parameters must be nonzero"
        );
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = size_bytes / line_bytes;
        assert!(
            lines >= u64::from(associativity) && lines.is_multiple_of(u64::from(associativity)),
            "size/line/associativity are inconsistent"
        );
        let num_sets = lines / u64::from(associativity);
        assert!(
            num_sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        CacheGeometry {
            size_bytes,
            line_bytes,
            associativity,
            num_sets: num_sets as u32,
            offset_bits: line_bytes.trailing_zeros(),
            index_bits: num_sets.trailing_zeros(),
        }
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Cache line size in bytes.
    pub const fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of ways per set.
    pub const fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Number of sets.
    pub const fn num_sets(&self) -> u32 {
        self.num_sets
    }

    /// Number of low address bits selecting the byte within a line.
    pub const fn offset_bits(&self) -> u32 {
        self.offset_bits
    }

    /// Number of address bits selecting the set.
    pub const fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Splits a byte address into `(tag, set index)`.
    pub fn split(&self, addr: Addr) -> (Tag, SetIndex) {
        let line = addr.raw() >> self.offset_bits;
        let set = (line & u64::from(self.num_sets - 1)) as u32;
        (Tag::new(line >> self.index_bits), SetIndex::new(set))
    }

    /// Returns the line address (line number) containing `addr`.
    pub fn line_addr(&self, addr: Addr) -> LineAddr {
        LineAddr::from_line_number(addr.raw() >> self.offset_bits)
    }

    /// Splits a line address into `(tag, set index)`.
    pub fn split_line(&self, line: LineAddr) -> (Tag, SetIndex) {
        let n = line.line_number();
        let set = (n & u64::from(self.num_sets - 1)) as u32;
        (Tag::new(n >> self.index_bits), SetIndex::new(set))
    }

    /// Reconstructs the line address from a `(tag, set index)` pair.
    ///
    /// This is exactly the operation the TCP prefetcher performs after
    /// predicting a next tag: combine it with the miss index to form the
    /// full prefetch line address.
    pub fn compose(&self, tag: Tag, set: SetIndex) -> LineAddr {
        debug_assert!(set.raw() < self.num_sets, "set index out of range");
        LineAddr::from_line_number((tag.raw() << self.index_bits) | u64::from(set.raw()))
    }

    /// Returns the byte address of the first byte of a line.
    pub fn first_byte(&self, line: LineAddr) -> Addr {
        Addr::new(line.line_number() << self.offset_bits)
    }

    /// Converts a line address from this geometry into the line address of
    /// a cache with a different line size (e.g. 32 B L1 lines into 64 B L2
    /// lines).
    pub fn rescale_line(&self, line: LineAddr, other: &CacheGeometry) -> LineAddr {
        other.line_addr(self.first_byte(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> CacheGeometry {
        CacheGeometry::new(32 * 1024, 32, 1)
    }

    fn l2() -> CacheGeometry {
        CacheGeometry::new(1024 * 1024, 64, 4)
    }

    #[test]
    fn paper_l1_shape() {
        let g = l1();
        assert_eq!(g.num_sets(), 1024);
        assert_eq!(g.offset_bits(), 5);
        assert_eq!(g.index_bits(), 10);
        assert_eq!(g.associativity(), 1);
    }

    #[test]
    fn paper_l2_shape() {
        let g = l2();
        assert_eq!(g.num_sets(), 4096);
        assert_eq!(g.offset_bits(), 6);
        assert_eq!(g.index_bits(), 12);
        assert_eq!(g.line_bytes(), 64);
    }

    #[test]
    fn split_compose_roundtrip() {
        let g = l1();
        for raw in [0u64, 31, 32, 0x7FFF, 0x8000, 0x1234_5678, 0x7FFF_FFFF] {
            let a = Addr::new(raw);
            let (tag, set) = g.split(a);
            let line = g.compose(tag, set);
            assert_eq!(line, g.line_addr(a), "raw={raw:#x}");
            assert_eq!(g.split_line(line), (tag, set));
        }
    }

    #[test]
    fn same_line_same_split() {
        let g = l1();
        let a = Addr::new(0x1000);
        let b = Addr::new(0x101F);
        assert_eq!(g.split(a), g.split(b));
        assert_eq!(g.line_addr(a), g.line_addr(b));
    }

    #[test]
    fn adjacent_lines_differ_in_set_not_tag() {
        let g = l1();
        let (t0, s0) = g.split(Addr::new(0x1000));
        let (t1, s1) = g.split(Addr::new(0x1020));
        assert_eq!(t0, t1);
        assert_eq!(s1.raw(), s0.raw() + 1);
    }

    #[test]
    fn cache_size_apart_same_set_next_tag() {
        let g = l1();
        let (t0, s0) = g.split(Addr::new(0x4000));
        let (t1, s1) = g.split(Addr::new(0x4000 + 32 * 1024));
        assert_eq!(s0, s1);
        assert_eq!(t1.raw(), t0.raw() + 1);
    }

    #[test]
    fn rescale_line_l1_to_l2() {
        let g1 = l1();
        let g2 = l2();
        // Two adjacent 32 B L1 lines share one 64 B L2 line.
        let a = g1.line_addr(Addr::new(0x1000));
        let b = g1.line_addr(Addr::new(0x1020));
        assert_ne!(a, b);
        assert_eq!(g1.rescale_line(a, &g2), g1.rescale_line(b, &g2));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_size() {
        let _ = CacheGeometry::new(3000, 32, 1);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn rejects_assoc_larger_than_lines() {
        let _ = CacheGeometry::new(64, 64, 2);
    }
}
