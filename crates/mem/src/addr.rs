//! Newtypes for byte addresses, line addresses, cache tags, and set indices.

use std::fmt;

/// A byte address in the simulated physical address space.
///
/// The reproduction confines all generated addresses below 2^31 so that L1
/// tags (address bits above bit 15 for the paper's 32 KB direct-mapped
/// cache) fit in 16 bits, matching the 2-byte tag fields the paper's 8 KB
/// pattern history table implies.
///
/// # Examples
///
/// ```
/// use tcp_mem::Addr;
/// let a = Addr::new(0x1234);
/// assert_eq!(a.raw(), 0x1234);
/// assert_eq!(a.line_start(32).raw(), 0x1220);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from its raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first byte of the cache line containing this address.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn line_start(self, line_bytes: u64) -> Addr {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Addr(self.0 & !(line_bytes - 1))
    }

    /// Returns the address offset by `delta` bytes (wrapping).
    pub const fn offset(self, delta: i64) -> Addr {
        Addr(self.0.wrapping_add(delta as u64))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line-aligned address, identifying one cache line in memory.
///
/// A `LineAddr` is produced by [`crate::CacheGeometry::line_addr`] and is
/// the unit tracked by caches, MSHRs, and prefetchers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from the line number (byte address divided by
    /// the line size).
    pub const fn from_line_number(n: u64) -> Self {
        LineAddr(n)
    }

    /// Returns the line number.
    pub const fn line_number(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of the line, given the
    /// line size used when the line address was formed.
    pub const fn first_byte_with(self, line_bytes: u64) -> Addr {
        Addr(self.0 * line_bytes)
    }

    /// Returns the next sequential line.
    pub const fn next(self) -> LineAddr {
        LineAddr(self.0 + 1)
    }

    /// Returns the line offset by `delta` lines (wrapping).
    pub const fn offset(self, delta: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add(delta as u64))
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A cache tag: the address bits above the set-index bits.
///
/// Tags are the central object of the paper: the Tag Correlating Prefetcher
/// records and predicts per-set *tag* sequences rather than full addresses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag(u64);

impl Tag {
    /// Creates a tag from its raw value.
    pub const fn new(raw: u64) -> Self {
        Tag(raw)
    }

    /// Returns the raw tag value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Truncates the tag to its low `bits` bits, modelling a narrow
    /// hardware tag field (e.g. the 16-bit fields of an 8 KB PHT).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 64.
    pub fn truncate(self, bits: u32) -> Tag {
        assert!((1..=64).contains(&bits), "tag width must be in 1..=64");
        if bits == 64 {
            self
        } else {
            Tag(self.0 & ((1u64 << bits) - 1))
        }
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tag({:#x})", self.0)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{:#x}", self.0)
    }
}

/// A cache set index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SetIndex(u32);

impl SetIndex {
    /// Creates a set index from its raw value.
    pub const fn new(raw: u32) -> Self {
        SetIndex(raw)
    }

    /// Returns the raw set index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, for table addressing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SetIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SetIndex({})", self.0)
    }
}

impl fmt::Display for SetIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_start_masks_low_bits() {
        assert_eq!(Addr::new(0x1234).line_start(32), Addr::new(0x1220));
        assert_eq!(Addr::new(0x1220).line_start(32), Addr::new(0x1220));
        assert_eq!(Addr::new(0x123F).line_start(64), Addr::new(0x1200));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn addr_line_start_rejects_non_pow2() {
        let _ = Addr::new(0).line_start(48);
    }

    #[test]
    fn addr_offset_wraps() {
        assert_eq!(Addr::new(10).offset(-4), Addr::new(6));
        assert_eq!(Addr::new(0).offset(-1).raw(), u64::MAX);
    }

    #[test]
    fn line_addr_navigation() {
        let l = LineAddr::from_line_number(100);
        assert_eq!(l.next().line_number(), 101);
        assert_eq!(l.offset(-2).line_number(), 98);
        assert_eq!(l.first_byte_with(32), Addr::new(3200));
    }

    #[test]
    fn tag_truncate() {
        let t = Tag::new(0x1_FFFF);
        assert_eq!(t.truncate(16).raw(), 0xFFFF);
        assert_eq!(t.truncate(64), t);
        assert_eq!(Tag::new(0xAB).truncate(4).raw(), 0xB);
    }

    #[test]
    #[should_panic(expected = "tag width")]
    fn tag_truncate_rejects_zero_width() {
        let _ = Tag::new(1).truncate(0);
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert!(!format!("{}", Addr::new(0)).is_empty());
        assert!(!format!("{}", LineAddr::default()).is_empty());
        assert!(!format!("{}", Tag::default()).is_empty());
        assert!(!format!("{}", SetIndex::default()).is_empty());
        assert!(!format!("{:?}", Addr::new(0)).is_empty());
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Addr::new(1) < Addr::new(2));
        assert!(Tag::new(3) > Tag::new(2));
        assert!(SetIndex::new(0) < SetIndex::new(1));
    }
}
