//! Memory access records: the interface between workload generators and
//! the cache/CPU simulators.

use crate::Addr;
use std::fmt;

/// Whether a memory access reads or writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (read). Loads produce values that later instructions may
    /// depend on, so load latency is the performance-critical path.
    Load,
    /// A store (write). Stores retire through a write buffer and rarely
    /// stall the core, but they still exercise the cache hierarchy.
    Store,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Store`].
    pub const fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => f.write_str("load"),
            AccessKind::Store => f.write_str("store"),
        }
    }
}

/// One memory reference: the program counter of the instruction, the data
/// address it touches, and whether it is a load or store.
///
/// The PC matters because the DBCP baseline (Lai et al., ISCA 2001)
/// correlates on PC traces; TCP deliberately does *not* need it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Program counter of the memory instruction.
    pub pc: Addr,
    /// Data byte address referenced.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemAccess {
    /// Convenience constructor for a load.
    pub const fn load(pc: Addr, addr: Addr) -> Self {
        MemAccess {
            pc,
            addr,
            kind: AccessKind::Load,
        }
    }

    /// Convenience constructor for a store.
    pub const fn store(pc: Addr, addr: Addr) -> Self {
        MemAccess {
            pc,
            addr,
            kind: AccessKind::Store,
        }
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pc={} addr={}", self.kind, self.pc, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let l = MemAccess::load(Addr::new(4), Addr::new(0x100));
        let s = MemAccess::store(Addr::new(8), Addr::new(0x200));
        assert_eq!(l.kind, AccessKind::Load);
        assert_eq!(s.kind, AccessKind::Store);
        assert!(!l.kind.is_store());
        assert!(s.kind.is_store());
    }

    #[test]
    fn display_mentions_kind() {
        let l = MemAccess::load(Addr::new(4), Addr::new(0x100));
        assert!(format!("{l}").contains("load"));
        assert!(format!("{}", AccessKind::Store).contains("store"));
    }
}
