//! Address arithmetic and trace substrate for the TCP reproduction.
//!
//! This crate provides the vocabulary types shared by every other crate in
//! the workspace: byte [`Addr`]esses, cache-[`LineAddr`]esses, cache
//! [`Tag`]s and [`SetIndex`]es, the [`CacheGeometry`] that converts between
//! them, and the [`MemAccess`] records that workload generators emit and
//! the simulator consumes.
//!
//! The paper ("TCP: Tag Correlating Prefetchers", HPCA 2003) works with a
//! 32 KB direct-mapped L1 data cache with 32-byte lines: the *tag* of an
//! address is everything above the 15 low bits (5 offset + 10 index). All
//! of that arithmetic lives in [`CacheGeometry`].
//!
//! # Examples
//!
//! ```
//! use tcp_mem::{Addr, CacheGeometry};
//!
//! // The paper's L1 data cache: 32 KB, direct-mapped, 32 B lines.
//! let l1 = CacheGeometry::new(32 * 1024, 32, 1);
//! assert_eq!(l1.num_sets(), 1024);
//!
//! let addr = Addr::new(0x0040_2A80);
//! let (tag, set) = l1.split(addr);
//! assert_eq!(l1.first_byte(l1.compose(tag, set)), addr.line_start(32));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod addr;
mod geometry;
mod rng;

pub use access::{AccessKind, MemAccess};
pub use addr::{Addr, LineAddr, SetIndex, Tag};
pub use geometry::CacheGeometry;
pub use rng::SplitMix64;
