//! A tiny deterministic pseudo-random generator for components that need
//! reproducible "randomness" without pulling the `rand` crate into every
//! dependent (e.g. the random replacement policy in `tcp-cache`).

/// SplitMix64: a fast, well-distributed 64-bit PRNG with a one-word state.
///
/// Deterministic across platforms and runs, which the simulator relies on:
/// every experiment in the reproduction must be exactly repeatable.
///
/// # Examples
///
/// ```
/// use tcp_mem::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift range reduction; bias is negligible for the
        // simulator's bounds (all far below 2^48).
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_below(den) < num
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for bound in [1u64, 2, 3, 10, 1024, 1_000_000] {
            for _ in 0..50 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_range_roughly_uniformly() {
        let mut r = SplitMix64::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.next_below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1300, "bucket count {c} far from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0, 10));
        assert!(r.chance(10, 10));
    }
}
