//! Baseline prefetchers the paper compares TCP against (Sections 5 & 7).
//!
//! * [`Dbcp`] — the Dead-Block Correlating Prefetcher of Lai, Fide &
//!   Falsafi (ISCA 2001), the paper's headline comparator at 2 MB
//!   (Figure 11). DBCP correlates the *PC trace* a cache block
//!   accumulates between fill and death with the address that next
//!   enters the block's frame; when a live block's trace matches a
//!   learned death signature, the block is predicted dead and the
//!   correlated successor is prefetched.
//! * [`StridePrefetcher`] — a PC-indexed reference-prediction table in
//!   the style of Baer & Chen (Supercomputing '91).
//! * [`StreamBufferPrefetcher`] — sequential stream buffers after Jouppi
//!   (ISCA '90), approximated as sequential prefetch into the L2.
//! * [`MarkovPrefetcher`] — the address-correlating Markov prefetcher of
//!   Joseph & Grunwald (ISCA '97) with multiple targets per entry.
//! * [`NextLinePrefetcher`] — the trivial one-line-ahead baseline.
//!
//! All engines implement [`tcp_cache::Prefetcher`], observe the same L1
//! miss stream as TCP, and prefetch into the L2, so Figure 11-style
//! comparisons are apples-to-apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dbcp;
mod markov;
mod nextline;
mod stream;
mod stride;

pub use dbcp::{Dbcp, DbcpConfig};
pub use markov::{MarkovConfig, MarkovPrefetcher};
pub use nextline::NextLinePrefetcher;
pub use stream::{StreamBufferConfig, StreamBufferPrefetcher};
pub use stride::{StrideConfig, StridePrefetcher};
