//! DBCP: the Dead-Block Correlating Prefetcher of Lai, Fide & Falsafi
//! (ISCA 2001) — the paper's main comparator (Figure 11, 2 MB table).
//!
//! DBCP observes, per L1 frame, the *trace* of instruction PCs that touch
//! the resident block between fill and eviction. The key insight of Lai
//! et al. is that a block's death is signalled by its trace: when the
//! trace of a live block equals the signature it had at death in a
//! previous generation, the block can be declared dead immediately, and
//! the address that followed it into the frame last time can be
//! prefetched. The correlation table is indexed by a hash of
//! `(block address, PC-trace signature)` — note it needs both *addresses*
//! and *PCs*, the two requirements TCP eliminates.
//!
//! As in the paper's evaluation, no critical-miss filter is applied.

use tcp_cache::{L1MissInfo, PrefetchRequest, Prefetcher};
use tcp_mem::{CacheGeometry, LineAddr, MemAccess};

/// Configuration of DBCP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DbcpConfig {
    /// Correlation-table budget in bytes (2 MB in Figure 11).
    pub table_bytes: usize,
    /// Geometry of the observed L1 (frame tracking assumes the paper's
    /// direct-mapped L1: one frame per set).
    pub l1: CacheGeometry,
    /// Truncated-addition width for the PC trace signature.
    pub signature_bits: u32,
}

impl DbcpConfig {
    /// The paper's 2 MB configuration.
    pub fn dbcp_2m() -> Self {
        DbcpConfig {
            table_bytes: 2 * 1024 * 1024,
            l1: CacheGeometry::new(32 * 1024, 32, 1),
            signature_bits: 16,
        }
    }
}

impl Default for DbcpConfig {
    fn default() -> Self {
        DbcpConfig::dbcp_2m()
    }
}

#[derive(Clone, Copy, Debug)]
struct DbcpEntry {
    key: u32, // truncated verification tag of (block, signature)
    next: LineAddr,
    // Lai et al. gate predictions with saturating counters: an entry only
    // predicts once the same transition has been observed twice.
    confirmed: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct FrameState {
    line: Option<LineAddr>,
    sig: u64,
}

const ENTRY_BYTES: usize = 8;

/// The dead-block correlating prefetcher.
///
/// # Examples
///
/// ```
/// use tcp_baselines::{Dbcp, DbcpConfig};
/// use tcp_cache::Prefetcher;
///
/// let p = Dbcp::new(DbcpConfig::dbcp_2m());
/// assert_eq!(p.name(), "DBCP-2M");
/// assert_eq!(p.storage_bytes(), 2 * 1024 * 1024);
/// ```
#[derive(Clone, Debug)]
pub struct Dbcp {
    cfg: DbcpConfig,
    name: String,
    table: Vec<Option<DbcpEntry>>,
    frames: Vec<FrameState>,
    trains: u64,
    predictions: u64,
}

impl Dbcp {
    /// Creates an empty DBCP.
    ///
    /// # Panics
    ///
    /// Panics if the table budget is smaller than one entry.
    pub fn new(cfg: DbcpConfig) -> Self {
        let entries = (cfg.table_bytes / ENTRY_BYTES).next_power_of_two() / 2;
        let entries = entries.max(1) * 2; // round to the nearest power of two ≥ budget/8
        let entries = if entries * ENTRY_BYTES > cfg.table_bytes {
            entries / 2
        } else {
            entries
        };
        assert!(entries >= 1, "DBCP table budget too small");
        let name = if cfg.table_bytes >= 1024 * 1024 {
            format!("DBCP-{}M", cfg.table_bytes / (1024 * 1024))
        } else {
            format!("DBCP-{}K", cfg.table_bytes / 1024)
        };
        Dbcp {
            cfg,
            name,
            table: vec![None; entries],
            frames: vec![FrameState::default(); cfg.l1.num_sets() as usize],
            trains: 0,
            predictions: 0,
        }
    }

    /// `(death transitions learned, dead-block predictions made)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.trains, self.predictions)
    }

    fn key_hash(&self, line: LineAddr, sig: u64) -> (usize, u32) {
        let mixed = (line.line_number() ^ sig.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        let idx = (mixed as usize) & (self.table.len() - 1);
        let key = (mixed >> 32) as u32;
        (idx, key)
    }

    fn frame_of(&self, line: LineAddr) -> usize {
        self.cfg.l1.split_line(line).1.as_usize()
    }

    fn mask(&self, sig: u64) -> u64 {
        if self.cfg.signature_bits >= 64 {
            sig
        } else {
            sig & ((1 << self.cfg.signature_bits) - 1)
        }
    }

    /// If the block's trace matches a learned death signature, the block
    /// is predicted dead and its historical successor is prefetched.
    fn probe(&mut self, line: LineAddr, sig: u64, out: &mut Vec<PrefetchRequest>) {
        let (idx, key) = self.key_hash(line, sig);
        if let Some(e) = self.table[idx] {
            if e.key == key && e.confirmed && e.next != line {
                self.predictions += 1;
                out.push(PrefetchRequest::to_l2(e.next));
            }
        }
    }
}

impl Prefetcher for Dbcp {
    fn name(&self) -> &str {
        &self.name
    }

    fn storage_bytes(&self) -> usize {
        self.table.len() * ENTRY_BYTES
    }

    fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>) {
        // A miss to this frame IS the death of its resident block: learn
        // the (dying block, death signature) → incoming block transition,
        // then start the incoming block's trace with the missing PC.
        let f = self.frame_of(info.line);
        let FrameState {
            line: old_line,
            sig,
        } = self.frames[f];
        if let Some(old) = old_line {
            if old != info.line {
                self.trains += 1;
                let (idx, key) = self.key_hash(old, sig);
                let confirmed = matches!(
                    self.table[idx],
                    Some(e) if e.key == key && e.next == info.line
                );
                self.table[idx] = Some(DbcpEntry {
                    key,
                    next: info.line,
                    confirmed,
                });
            }
        }
        let sig = self.mask(info.access.pc.raw());
        self.frames[f] = FrameState {
            line: Some(info.line),
            sig,
        };
        self.probe(info.line, sig, out);
    }

    fn on_hit(
        &mut self,
        access: &MemAccess,
        line: LineAddr,
        _cycle: u64,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let f = self.frame_of(line);
        if self.frames[f].line != Some(line) {
            // The hierarchy's view and ours diverged (e.g. a prefetch
            // promotion we did not cause); resynchronise.
            self.frames[f] = FrameState {
                line: Some(line),
                sig: 0,
            };
        }
        let sig = self.mask(self.frames[f].sig.wrapping_add(access.pc.raw()));
        self.frames[f].sig = sig;
        self.probe(line, sig, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_mem::Addr;

    fn geometry() -> CacheGeometry {
        CacheGeometry::new(32 * 1024, 32, 1)
    }

    fn line(tag: u64, set: u32) -> LineAddr {
        geometry().compose(tcp_mem::Tag::new(tag), tcp_mem::SetIndex::new(set))
    }

    fn miss_info(l: LineAddr, pc: u64) -> L1MissInfo {
        let g = geometry();
        let a = g.first_byte(l);
        let (tag, set) = g.split_line(l);
        L1MissInfo {
            access: MemAccess::load(Addr::new(pc), a),
            line: l,
            tag,
            set,
            cycle: 0,
        }
    }

    /// Simulate one generation: miss on `l` (killing the frame's previous
    /// block), then `hits` further touches from `pc`.
    fn generation(p: &mut Dbcp, l: LineAddr, pc: u64, hits: usize, out: &mut Vec<PrefetchRequest>) {
        p.on_miss(&miss_info(l, pc), out);
        let a = geometry().first_byte(l);
        for _ in 0..hits {
            p.on_hit(&MemAccess::load(Addr::new(pc), a), l, 0, out);
        }
    }

    #[test]
    fn learns_death_transition_and_predicts_on_signature_match() {
        let mut p = Dbcp::new(DbcpConfig::dbcp_2m());
        let mut out = Vec::new();
        let a = line(1, 5);
        let b = line(2, 5);
        // Generations 1 and 2: block a lives (3 hits from pc 0x400) and
        // dies to b, twice — the second death confirms the transition.
        for _ in 0..2 {
            generation(&mut p, a, 0x400, 3, &mut out);
            p.on_miss(&miss_info(b, 0x500), &mut out); // a dies; (a, sig) → b
        }
        out.clear();
        // Generation 2: block a returns with the same access pattern.
        p.on_miss(&miss_info(a, 0x400), &mut out);
        let addr = geometry().first_byte(a);
        for i in 0..3 {
            out.clear();
            p.on_hit(
                &MemAccess::load(Addr::new(0x400), addr),
                a,
                100 + i,
                &mut out,
            );
        }
        // Generation 3: on the 3rd touch the signature matches the
        // confirmed death signature → prefetch b.
        assert_eq!(out.len(), 1, "completed signature must predict");
        assert_eq!(out[0].line, b);
        let (trains, preds) = p.counters();
        assert!(trains >= 1 && preds >= 1);
    }

    #[test]
    fn different_pc_trace_does_not_predict() {
        let mut p = Dbcp::new(DbcpConfig::dbcp_2m());
        let mut out = Vec::new();
        let a = line(1, 5);
        generation(&mut p, a, 0x400, 3, &mut out);
        p.on_miss(&miss_info(line(2, 5), 0x500), &mut out); // a dies → trains
        out.clear();
        out.clear();
        // Generation 2 with a different PC: signature differs, no match.
        generation(&mut p, a, 0x999, 3, &mut out);
        assert!(out.is_empty(), "different trace must not fire");
    }

    #[test]
    fn no_training_without_a_death() {
        let mut p = Dbcp::new(DbcpConfig::dbcp_2m());
        let mut out = Vec::new();
        generation(&mut p, line(1, 0), 0x400, 5, &mut out);
        assert_eq!(p.counters().0, 0, "first fill of a frame has no victim");
    }

    #[test]
    fn frames_are_independent() {
        let mut p = Dbcp::new(DbcpConfig::dbcp_2m());
        let mut out = Vec::new();
        // Death in set 5 must not make set 6 predict.
        generation(&mut p, line(1, 5), 0x400, 2, &mut out);
        p.on_miss(&miss_info(line(2, 5), 0x500), &mut out);
        out.clear();
        generation(&mut p, line(1, 6), 0x400, 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn storage_matches_budget() {
        let p = Dbcp::new(DbcpConfig {
            table_bytes: 64 * 1024,
            ..DbcpConfig::dbcp_2m()
        });
        assert_eq!(p.storage_bytes(), 64 * 1024);
        assert_eq!(p.name(), "DBCP-64K");
    }

    #[test]
    fn small_table_loses_old_correlations() {
        // A tiny table: many distinct (block, sig) pairs overwrite each
        // other — the capacity effect that hurts address correlation.
        let mut p = Dbcp::new(DbcpConfig {
            table_bytes: 64,
            ..DbcpConfig::dbcp_2m()
        });
        let mut out = Vec::new();
        for t in 0..64u64 {
            generation(&mut p, line(t, 3), 0x400, 2, &mut out);
        }
        assert!(p.counters().0 > 0);
        // Re-run the first block's generation: its entry has almost
        // certainly been clobbered by the 63 later deaths.
        out.clear();
        generation(&mut p, line(0, 3), 0x400, 2, &mut out);
        let correct = out.iter().filter(|r| r.line == line(1, 3)).count();
        assert!(
            correct == 0 || out.len() <= 1,
            "tiny table should have forgotten"
        );
    }
}
