//! The simplest possible prefetcher: always fetch the next line.

use tcp_cache::{L1MissInfo, PrefetchRequest, Prefetcher};

/// One-line-ahead sequential prefetcher.
///
/// Zero storage; useful as a floor for comparisons and as a sanity check
/// that the prefetch plumbing works.
///
/// # Examples
///
/// ```
/// use tcp_baselines::NextLinePrefetcher;
/// use tcp_cache::Prefetcher;
///
/// let p = NextLinePrefetcher::new(1);
/// assert_eq!(p.storage_bytes(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NextLinePrefetcher {
    degree: usize,
}

impl NextLinePrefetcher {
    /// Creates a next-line prefetcher fetching `degree` lines ahead.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "degree must be nonzero");
        NextLinePrefetcher { degree }
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn name(&self) -> &str {
        "next-line"
    }

    fn storage_bytes(&self) -> usize {
        0
    }

    fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>) {
        for d in 1..=self.degree {
            out.push(PrefetchRequest::to_l2(info.line.offset(d as i64)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_mem::{Addr, LineAddr, MemAccess, SetIndex, Tag};

    #[test]
    fn emits_degree_sequential_lines() {
        let mut p = NextLinePrefetcher::new(3);
        let mut out = Vec::new();
        let info = L1MissInfo {
            access: MemAccess::load(Addr::new(0), Addr::new(0x1000)),
            line: LineAddr::from_line_number(0x80),
            tag: Tag::new(0),
            set: SetIndex::new(0x80),
            cycle: 0,
        };
        p.on_miss(&info, &mut out);
        let lines: Vec<u64> = out.iter().map(|r| r.line.line_number()).collect();
        assert_eq!(lines, vec![0x81, 0x82, 0x83]);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn zero_degree_rejected() {
        let _ = NextLinePrefetcher::new(0);
    }
}
