//! The Markov prefetcher of Joseph & Grunwald (ISCA 1997).
//!
//! The global miss stream is treated as a first-order Markov chain over
//! line addresses: a correlation table maps each miss address to the
//! addresses that followed it in the past (several targets, LRU-ordered).
//! On a miss, all remembered successors are prefetched. Address-level
//! correlation is the approach whose table-size appetite (megabytes —
//! Section 1 cites 1–2 MB) motivates TCP's tag-level alternative.

use std::collections::BTreeMap;

use tcp_cache::{L1MissInfo, PrefetchRequest, Prefetcher};
use tcp_mem::LineAddr;

/// Configuration of the Markov prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MarkovConfig {
    /// Total table budget in bytes.
    pub table_bytes: usize,
    /// Successor slots per entry (Joseph & Grunwald use up to 4).
    pub targets_per_entry: usize,
}

impl Default for MarkovConfig {
    fn default() -> Self {
        MarkovConfig {
            table_bytes: 1024 * 1024,
            targets_per_entry: 2,
        }
    }
}

#[derive(Clone, Debug)]
struct MarkovEntry {
    // Most recent successor first.
    targets: Vec<LineAddr>,
    last_use: u64,
}

/// Address-correlating Markov prefetcher.
///
/// # Examples
///
/// ```
/// use tcp_baselines::{MarkovConfig, MarkovPrefetcher};
/// use tcp_cache::Prefetcher;
///
/// let p = MarkovPrefetcher::new(MarkovConfig::default());
/// assert_eq!(p.name(), "markov-1M");
/// ```
#[derive(Clone, Debug)]
pub struct MarkovPrefetcher {
    cfg: MarkovConfig,
    name: String,
    capacity: usize,
    table: BTreeMap<LineAddr, MarkovEntry>,
    prev_miss: Option<LineAddr>,
    clock: u64,
}

impl MarkovPrefetcher {
    /// Creates an empty Markov table.
    ///
    /// # Panics
    ///
    /// Panics if the byte budget is too small for one entry or
    /// `targets_per_entry` is zero.
    pub fn new(cfg: MarkovConfig) -> Self {
        assert!(
            cfg.targets_per_entry > 0,
            "need at least one target per entry"
        );
        // Entry cost: 4-byte key + 4 bytes per target.
        let entry_bytes = 4 + 4 * cfg.targets_per_entry;
        let capacity = cfg.table_bytes / entry_bytes;
        assert!(capacity > 0, "table budget too small for a single entry");
        let name = if cfg.table_bytes >= 1024 * 1024 {
            format!("markov-{}M", cfg.table_bytes / (1024 * 1024))
        } else {
            format!("markov-{}K", cfg.table_bytes / 1024)
        };
        MarkovPrefetcher {
            cfg,
            name,
            capacity,
            table: BTreeMap::new(),
            prev_miss: None,
            clock: 0,
        }
    }

    /// Number of entries the byte budget allows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn evict_if_full(&mut self) {
        if self.table.len() < self.capacity {
            return;
        }
        // Approximate LRU: evict the least recently used entry.
        if let Some(&victim) = self
            .table
            .iter()
            .min_by_key(|(_, e)| e.last_use)
            .map(|(k, _)| k)
        {
            self.table.remove(&victim);
        }
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn storage_bytes(&self) -> usize {
        self.cfg.table_bytes
    }

    fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>) {
        self.clock += 1;
        let clock = self.clock;
        // Train: previous miss is followed by this one.
        if let Some(prev) = self.prev_miss {
            if prev != info.line {
                let targets_per_entry = self.cfg.targets_per_entry;
                if !self.table.contains_key(&prev) {
                    self.evict_if_full();
                }
                let e = self.table.entry(prev).or_insert_with(|| MarkovEntry {
                    targets: Vec::new(),
                    last_use: clock,
                });
                e.last_use = clock;
                if let Some(pos) = e.targets.iter().position(|&t| t == info.line) {
                    e.targets.remove(pos);
                } else if e.targets.len() == targets_per_entry {
                    e.targets.pop();
                }
                e.targets.insert(0, info.line);
            }
        }
        self.prev_miss = Some(info.line);

        // Predict: prefetch every remembered successor of this miss.
        if let Some(e) = self.table.get_mut(&info.line) {
            e.last_use = clock;
            for &t in &e.targets {
                out.push(PrefetchRequest::to_l2(t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_mem::{Addr, CacheGeometry, MemAccess};

    fn miss(line: u64) -> L1MissInfo {
        let g = CacheGeometry::new(32 * 1024, 32, 1);
        let l = LineAddr::from_line_number(line);
        let a = g.first_byte(l);
        let (tag, set) = g.split(a);
        L1MissInfo {
            access: MemAccess::load(Addr::new(0x400), a),
            line: l,
            tag,
            set,
            cycle: 0,
        }
    }

    fn drive(p: &mut MarkovPrefetcher, lines: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        for &l in lines {
            out.clear();
            p.on_miss(&miss(l), &mut out);
        }
        out.iter().map(|r| r.line.line_number()).collect()
    }

    #[test]
    fn learns_pairwise_transitions() {
        let mut p = MarkovPrefetcher::new(MarkovConfig::default());
        let last = drive(&mut p, &[1, 2, 3, 1, 2, 3, 1]);
        // After training 1→2, the final miss on 1 predicts 2.
        assert_eq!(last, vec![2]);
    }

    #[test]
    fn remembers_multiple_targets_most_recent_first() {
        let mut p = MarkovPrefetcher::new(MarkovConfig::default());
        // 1 is followed by 2, later by 9.
        let last = drive(&mut p, &[1, 2, 5, 1, 9, 5, 1]);
        assert_eq!(last, vec![9, 2]);
    }

    #[test]
    fn capacity_is_budget_bound() {
        let p = MarkovPrefetcher::new(MarkovConfig {
            table_bytes: 1200,
            targets_per_entry: 2,
        });
        assert_eq!(p.capacity(), 100);
    }

    #[test]
    fn eviction_keeps_table_within_capacity() {
        let mut p = MarkovPrefetcher::new(MarkovConfig {
            table_bytes: 120,
            targets_per_entry: 2,
        });
        let cap = p.capacity();
        let lines: Vec<u64> = (0..200).collect();
        drive(&mut p, &lines);
        assert!(p.table.len() <= cap);
    }

    #[test]
    fn cold_stream_predicts_nothing() {
        let mut p = MarkovPrefetcher::new(MarkovConfig::default());
        let last = drive(&mut p, &[10, 20, 30, 40]);
        assert!(last.is_empty());
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn tiny_budget_rejected() {
        let _ = MarkovPrefetcher::new(MarkovConfig {
            table_bytes: 4,
            targets_per_entry: 2,
        });
    }
}
