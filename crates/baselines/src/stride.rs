//! A PC-indexed stride prefetcher (reference prediction table) after
//! Baer & Chen.
//!
//! Each table entry tracks, per load PC, the last miss address, the last
//! observed stride, and a two-bit confidence state. Once the same stride
//! repeats, the entry enters steady state and subsequent misses prefetch
//! `addr + stride × distance`. Correlating workloads (pointer chases,
//! non-unit-repeating patterns) defeat it — exactly the gap TCP fills.

use tcp_cache::{L1MissInfo, PrefetchRequest, Prefetcher};
use tcp_mem::Addr;

/// Configuration of the stride prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrideConfig {
    /// Number of reference-prediction-table entries (power of two).
    pub entries: u32,
    /// Lines of lookahead once in steady state.
    pub degree: usize,
    /// L1 line size in bytes (to convert addresses to lines).
    pub line_bytes: u64,
}

impl Default for StrideConfig {
    fn default() -> Self {
        StrideConfig {
            entries: 512,
            degree: 2,
            line_bytes: 32,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct RptEntry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    // 0 = initial, 1 = transient, 2+ = steady.
    confidence: u8,
    valid: bool,
}

/// PC-indexed stride prefetcher.
///
/// # Examples
///
/// ```
/// use tcp_baselines::{StrideConfig, StridePrefetcher};
/// use tcp_cache::Prefetcher;
///
/// let p = StridePrefetcher::new(StrideConfig::default());
/// assert_eq!(p.name(), "stride");
/// ```
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    cfg: StrideConfig,
    table: Vec<RptEntry>,
}

impl StridePrefetcher {
    /// Creates an empty reference prediction table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two or `degree` is 0.
    pub fn new(cfg: StrideConfig) -> Self {
        assert!(
            cfg.entries > 0 && cfg.entries.is_power_of_two(),
            "entries must be a nonzero power of two"
        );
        assert!(cfg.degree > 0, "degree must be nonzero");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        StridePrefetcher {
            cfg,
            table: vec![RptEntry::default(); cfg.entries as usize],
        }
    }

    fn slot(&self, pc: Addr) -> usize {
        // PCs step by 4; drop the low bits before masking.
        ((pc.raw() >> 2) & u64::from(self.cfg.entries - 1)) as usize
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &str {
        "stride"
    }

    fn storage_bytes(&self) -> usize {
        // pc tag (4) + last address (4) + stride (2) + state: ~10 bytes.
        self.cfg.entries as usize * 10
    }

    fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>) {
        let idx = self.slot(info.access.pc);
        let addr = info.access.addr.raw();
        let pc = info.access.pc.raw();
        let e = &mut self.table[idx];

        if !e.valid || e.pc != pc {
            *e = RptEntry {
                pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return;
        }
        let new_stride = addr as i64 - e.last_addr as i64;
        if new_stride == e.stride && new_stride != 0 {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.confidence = if e.confidence > 0 {
                e.confidence - 1
            } else {
                0
            };
            if e.confidence == 0 {
                e.stride = new_stride;
            }
        }
        e.last_addr = addr;
        if e.confidence >= 2 && e.stride != 0 {
            let line_shift = self.cfg.line_bytes.trailing_zeros();
            let miss_line = info.line.line_number();
            for d in 1..=self.cfg.degree {
                let target = addr.wrapping_add((e.stride * d as i64) as u64);
                let line = tcp_mem::LineAddr::from_line_number(target >> line_shift);
                if line.line_number() != miss_line {
                    out.push(PrefetchRequest::to_l2(line));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_mem::{CacheGeometry, MemAccess};

    fn miss(pc: u64, addr: u64, cycle: u64) -> L1MissInfo {
        let g = CacheGeometry::new(32 * 1024, 32, 1);
        let a = Addr::new(addr);
        let (tag, set) = g.split(a);
        L1MissInfo {
            access: MemAccess::load(Addr::new(pc), a),
            line: g.line_addr(a),
            tag,
            set,
            cycle,
        }
    }

    #[test]
    fn constant_stride_reaches_steady_state() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let mut out = Vec::new();
        for i in 0..6u64 {
            out.clear();
            p.on_miss(&miss(0x400, 0x10000 + i * 256, i), &mut out);
        }
        assert!(!out.is_empty(), "steady stride must prefetch");
        // Last miss at 0x10000 + 5*256; prefetches at +256 and +512.
        let lines: Vec<u64> = out.iter().map(|r| r.line.line_number()).collect();
        assert_eq!(
            lines,
            vec![(0x10000 + 6 * 256) >> 5, (0x10000 + 7 * 256) >> 5]
        );
    }

    #[test]
    fn random_addresses_stay_quiet() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let mut out = Vec::new();
        let addrs = [0x1000u64, 0x84000, 0x2340, 0x99880, 0x12000, 0x7740];
        for (i, &a) in addrs.iter().enumerate() {
            p.on_miss(&miss(0x400, a, i as u64), &mut out);
        }
        assert!(out.is_empty(), "no repeating stride, no prefetches");
    }

    #[test]
    fn pc_change_resets_entry() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let mut out = Vec::new();
        for i in 0..5u64 {
            p.on_miss(&miss(0x400, 0x10000 + i * 128, i), &mut out);
        }
        out.clear();
        // A different PC aliasing to the same slot (entries * 4 apart).
        let alias_pc = 0x400 + u64::from(StrideConfig::default().entries) * 4;
        p.on_miss(&miss(alias_pc, 0x50000, 10), &mut out);
        assert!(out.is_empty());
        // Original PC must retrain from scratch.
        p.on_miss(&miss(0x400, 0x10000, 11), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let mut out = Vec::new();
        for i in 0..8u64 {
            p.on_miss(&miss(0x400, 0x30000, i), &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_entries_rejected() {
        let _ = StridePrefetcher::new(StrideConfig {
            entries: 300,
            ..StrideConfig::default()
        });
    }
}
