//! Sequential stream buffers after Jouppi (ISCA 1990).
//!
//! Jouppi's stream buffers sit beside the cache and hold prefetched
//! sequential lines; a miss that matches a buffer head is serviced from
//! the buffer. Our hierarchy keeps prefetched data in the L2 instead, so
//! the approximation here is: each buffer tracks an expected next line;
//! a miss matching a buffer advances it and tops up its lookahead with
//! L2 prefetches; a miss matching nothing (re)allocates the LRU buffer.
//! This preserves the behaviour that matters for the comparison — what
//! gets prefetched and when — while the storage cost stays Jouppi-sized.

use tcp_cache::{L1MissInfo, PrefetchRequest, Prefetcher};
use tcp_mem::LineAddr;

/// Configuration of the stream-buffer prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamBufferConfig {
    /// Number of concurrent stream buffers.
    pub buffers: usize,
    /// Lines of lookahead per buffer (buffer depth).
    pub depth: usize,
    /// L1 line size in bytes (storage accounting).
    pub line_bytes: usize,
}

impl Default for StreamBufferConfig {
    fn default() -> Self {
        StreamBufferConfig {
            buffers: 4,
            depth: 4,
            line_bytes: 32,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Stream {
    next_expected: u64, // line number the stream predicts next
    prefetched_to: u64, // exclusive upper bound of issued prefetches
    last_use: u64,
    valid: bool,
}

/// Multi-way sequential stream-buffer prefetcher.
///
/// # Examples
///
/// ```
/// use tcp_baselines::{StreamBufferConfig, StreamBufferPrefetcher};
/// use tcp_cache::Prefetcher;
///
/// let p = StreamBufferPrefetcher::new(StreamBufferConfig::default());
/// assert_eq!(p.name(), "stream");
/// ```
#[derive(Clone, Debug)]
pub struct StreamBufferPrefetcher {
    cfg: StreamBufferConfig,
    streams: Vec<Stream>,
    clock: u64,
    allocations: u64,
    stream_hits: u64,
}

impl StreamBufferPrefetcher {
    /// Creates the prefetcher with all buffers free.
    ///
    /// # Panics
    ///
    /// Panics if `buffers` or `depth` is zero.
    pub fn new(cfg: StreamBufferConfig) -> Self {
        assert!(cfg.buffers > 0, "need at least one stream buffer");
        assert!(cfg.depth > 0, "buffer depth must be nonzero");
        StreamBufferPrefetcher {
            cfg,
            streams: vec![Stream::default(); cfg.buffers],
            clock: 0,
            allocations: 0,
            stream_hits: 0,
        }
    }

    /// `(buffer allocations, misses matching an active stream)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.allocations, self.stream_hits)
    }
}

impl Prefetcher for StreamBufferPrefetcher {
    fn name(&self) -> &str {
        "stream"
    }

    fn storage_bytes(&self) -> usize {
        // Each buffer holds `depth` lines of data plus address registers.
        self.cfg.buffers * (self.cfg.depth * self.cfg.line_bytes + 8)
    }

    fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>) {
        self.clock += 1;
        let miss = info.line.line_number();

        // Does the miss continue an active stream?
        if let Some(s) = self
            .streams
            .iter_mut()
            .filter(|s| s.valid)
            .find(|s| s.next_expected == miss)
        {
            self.stream_hits += 1;
            s.last_use = self.clock;
            s.next_expected = miss + 1;
            let target = miss + 1 + self.cfg.depth as u64;
            let from = s.prefetched_to.max(miss + 1);
            for line in from..target {
                out.push(PrefetchRequest::to_l2(LineAddr::from_line_number(line)));
            }
            s.prefetched_to = target.max(s.prefetched_to);
            return;
        }

        // Allocate (or steal) the LRU buffer and prime its lookahead.
        self.allocations += 1;
        let clock = self.clock;
        let depth = self.cfg.depth as u64;
        let Some(s) = self
            .streams
            .iter_mut()
            .min_by_key(|s| if s.valid { s.last_use } else { 0 })
        else {
            // Zero buffers configured: nothing to allocate into.
            return;
        };
        s.valid = true;
        s.last_use = clock;
        s.next_expected = miss + 1;
        s.prefetched_to = miss + 1 + depth;
        for line in miss + 1..miss + 1 + depth {
            out.push(PrefetchRequest::to_l2(LineAddr::from_line_number(line)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_mem::{Addr, CacheGeometry, MemAccess};

    fn miss(line: u64) -> L1MissInfo {
        let g = CacheGeometry::new(32 * 1024, 32, 1);
        let l = LineAddr::from_line_number(line);
        let a = g.first_byte(l);
        let (tag, set) = g.split(a);
        L1MissInfo {
            access: MemAccess::load(Addr::new(0x400), a),
            line: l,
            tag,
            set,
            cycle: 0,
        }
    }

    #[test]
    fn allocation_primes_lookahead() {
        let mut p = StreamBufferPrefetcher::new(StreamBufferConfig::default());
        let mut out = Vec::new();
        p.on_miss(&miss(100), &mut out);
        let lines: Vec<u64> = out.iter().map(|r| r.line.line_number()).collect();
        assert_eq!(lines, vec![101, 102, 103, 104]);
    }

    #[test]
    fn sequential_misses_ride_one_stream() {
        let mut p = StreamBufferPrefetcher::new(StreamBufferConfig::default());
        let mut out = Vec::new();
        for l in 100..120 {
            p.on_miss(&miss(l), &mut out);
        }
        let (allocs, hits) = p.counters();
        assert_eq!(allocs, 1, "one stream should capture a pure sequence");
        assert_eq!(hits, 19);
    }

    #[test]
    fn interleaved_sequences_use_separate_buffers() {
        let mut p = StreamBufferPrefetcher::new(StreamBufferConfig::default());
        let mut out = Vec::new();
        for i in 0..10 {
            p.on_miss(&miss(1000 + i), &mut out);
            p.on_miss(&miss(9000 + i), &mut out);
        }
        let (allocs, hits) = p.counters();
        assert_eq!(allocs, 2, "two interleaved streams, two buffers");
        assert_eq!(hits, 18);
    }

    #[test]
    fn random_misses_thrash_buffers() {
        let mut p = StreamBufferPrefetcher::new(StreamBufferConfig::default());
        let mut out = Vec::new();
        for &l in &[5u64, 900, 33, 12000, 7, 4400, 61, 880] {
            p.on_miss(&miss(l), &mut out);
        }
        let (allocs, hits) = p.counters();
        assert_eq!(allocs, 8);
        assert_eq!(hits, 0);
    }

    #[test]
    fn steady_stream_tops_up_not_reissues() {
        let mut p = StreamBufferPrefetcher::new(StreamBufferConfig::default());
        let mut out = Vec::new();
        p.on_miss(&miss(100), &mut out);
        out.clear();
        p.on_miss(&miss(101), &mut out);
        // Only the newly uncovered line (105) is prefetched.
        let lines: Vec<u64> = out.iter().map(|r| r.line.line_number()).collect();
        assert_eq!(lines, vec![105]);
    }
}
