//! Ablation benches for the design choices DESIGN.md calls out: THT
//! history depth, prefetch degree, PHT indexing policy, and per-engine
//! miss-processing throughput (the "can this run at L2-controller speed"
//! question the paper's hardware budget implies).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tcp_baselines::{Dbcp, DbcpConfig, MarkovConfig, MarkovPrefetcher, StrideConfig, StridePrefetcher};
use tcp_bench::synthetic_miss_stream;
use tcp_cache::{PrefetchRequest, Prefetcher};
use tcp_core::{Tcp, TcpConfig};

const STREAM: usize = 50_000;

fn drive(engine: &mut dyn Prefetcher, stream: &[tcp_cache::L1MissInfo]) -> usize {
    let mut out: Vec<PrefetchRequest> = Vec::new();
    let mut total = 0;
    for info in stream {
        out.clear();
        engine.on_miss(info, &mut out);
        total += out.len();
    }
    total
}

fn bench_engine_throughput(c: &mut Criterion) {
    let stream = synthetic_miss_stream(STREAM);
    let mut g = c.benchmark_group("engine_throughput");
    g.throughput(Throughput::Elements(STREAM as u64));

    g.bench_function("tcp_8k", |b| {
        b.iter(|| {
            let mut e = Tcp::new(TcpConfig::tcp_8k());
            black_box(drive(&mut e, &stream))
        });
    });
    g.bench_function("tcp_8m", |b| {
        b.iter(|| {
            let mut e = Tcp::new(TcpConfig::tcp_8m());
            black_box(drive(&mut e, &stream))
        });
    });
    g.bench_function("dbcp_2m", |b| {
        b.iter(|| {
            let mut e = Dbcp::new(DbcpConfig::dbcp_2m());
            black_box(drive(&mut e, &stream))
        });
    });
    g.bench_function("stride", |b| {
        b.iter(|| {
            let mut e = StridePrefetcher::new(StrideConfig::default());
            black_box(drive(&mut e, &stream))
        });
    });
    g.bench_function("markov_1m", |b| {
        b.iter(|| {
            let mut e = MarkovPrefetcher::new(MarkovConfig::default());
            black_box(drive(&mut e, &stream))
        });
    });
    g.finish();
}

fn bench_tcp_design_points(c: &mut Criterion) {
    let stream = synthetic_miss_stream(STREAM);
    let mut g = c.benchmark_group("tcp_design_points");
    g.throughput(Throughput::Elements(STREAM as u64));

    for k in [1usize, 2, 3, 4] {
        g.bench_with_input(BenchmarkId::new("history_len", k), &k, |b, &k| {
            b.iter(|| {
                let mut e = Tcp::new(TcpConfig { history_len: k, ..TcpConfig::tcp_8k() });
                black_box(drive(&mut e, &stream))
            });
        });
    }
    for degree in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("degree", degree), &degree, |b, &degree| {
            b.iter(|| {
                let mut e = Tcp::new(TcpConfig { degree, ..TcpConfig::tcp_8k() });
                black_box(drive(&mut e, &stream))
            });
        });
    }
    for bits in [0u32, 2, 10] {
        g.bench_with_input(BenchmarkId::new("miss_index_bits", bits), &bits, |b, &bits| {
            b.iter(|| {
                let mut e = Tcp::new(TcpConfig::with_pht_bytes(8 * 1024 * 1024, bits));
                black_box(drive(&mut e, &stream))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine_throughput, bench_tcp_design_points);
criterion_main!(benches);
