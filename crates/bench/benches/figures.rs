//! One bench per paper table/figure: measures the cost of regenerating
//! each artefact at a reduced scale and, as a side effect, asserts the
//! pipeline still produces data for every figure. Full-scale regeneration
//! lives in the `tcp-experiments` binaries (`cargo run -p tcp-experiments
//! --bin fig11`, etc.).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tcp_experiments::{characterize, fig01, fig09, fig11, fig12, fig13, fig14, table1};
use tcp_mem::{SetIndex, Tag};
use tcp_sim::SystemConfig;
use tcp_workloads::{suite, Benchmark};

const OPS: u64 = 60_000;

fn subset() -> Vec<Benchmark> {
    suite().into_iter().filter(|b| ["fma3d", "art", "ammp"].contains(&b.name)).collect()
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/render", |b| {
        let cfg = SystemConfig::table1();
        b.iter(|| black_box(table1::render(&cfg).render().len()));
    });
}

fn bench_fig01(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01");
    g.sample_size(10);
    g.bench_function("ideal_l2_subset", |b| {
        let benches = subset();
        b.iter(|| black_box(fig01::run(&benches, OPS).len()));
    });
    g.finish();
}

fn bench_characterisation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig02_to_07_and_15");
    g.sample_size(10);
    g.bench_function("characterize_subset", |b| {
        let benches = subset();
        b.iter(|| {
            let profiles = characterize::characterize_suite(&benches, OPS);
            black_box(profiles.iter().map(|p| p.unique_sequences).sum::<u64>())
        });
    });
    g.finish();
}

fn bench_fig09(c: &mut Criterion) {
    c.bench_function("fig09/index_walkthrough", |b| {
        let cfg = tcp_core::PhtConfig::pht_8k();
        let seq = [Tag::new(0xF3), Tag::new(0xA41)];
        b.iter(|| black_box(fig09::walkthrough(&cfg, &seq, SetIndex::new(0x2A7)).len()));
    });
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("tcp_vs_dbcp_subset", |b| {
        let benches = subset();
        b.iter(|| {
            let fig = fig11::run(&benches, OPS);
            black_box(fig.rows.len())
        });
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("l2_breakdown_subset", |b| {
        let benches = subset();
        b.iter(|| black_box(fig12::run(&benches, OPS).tcp_8k.len()));
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("pht_sweep_one_point", |b| {
        // One size point rather than the whole 18-configuration sweep.
        let benches = subset();
        b.iter(|| {
            let fig = fig13::run(&benches, OPS / 2);
            black_box(fig.sizes.len() + fig.index_bits.len())
        });
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("hybrid_subset", |b| {
        let benches = subset();
        b.iter(|| black_box(fig14::run(&benches, OPS).len()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig01,
    bench_characterisation,
    bench_fig09,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14
);
criterion_main!(benches);
