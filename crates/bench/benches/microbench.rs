//! Microbenchmarks of the hardware-model primitives.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tcp_analysis::miss_stream;
use tcp_cache::{Bus, Cache, HierarchyConfig, MemoryHierarchy, NullPrefetcher, Replacement};
use tcp_core::{truncated_sum, PatternHistoryTable, PhtConfig, TagHistoryTable};
use tcp_mem::{Addr, CacheGeometry, MemAccess, SetIndex, Tag};
use tcp_workloads::suite;

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");

    g.bench_function("truncated_sum/k2", |b| {
        let seq = [Tag::new(0x1234), Tag::new(0x5678)];
        b.iter(|| truncated_sum(black_box(&seq), 8));
    });

    g.bench_function("tht/push_and_read", |b| {
        let mut tht = TagHistoryTable::new(1024, 2);
        let mut i = 0u64;
        b.iter(|| {
            let set = SetIndex::new((i % 1024) as u32);
            tht.push(set, Tag::new(i % 97));
            i += 1;
            black_box(tht.sequence(set).is_some())
        });
    });

    g.bench_function("pht_8k/train_lookup", |b| {
        let mut pht = PatternHistoryTable::new(PhtConfig::pht_8k());
        let mut i = 0u64;
        b.iter(|| {
            let seq = [Tag::new(i % 61), Tag::new((i + 1) % 61)];
            let set = SetIndex::new((i % 1024) as u32);
            pht.train(&seq, Tag::new((i + 2) % 61), set);
            i += 1;
            black_box(pht.lookup(&seq, set))
        });
    });

    g.bench_function("pht_8m/train_lookup", |b| {
        let mut pht = PatternHistoryTable::new(PhtConfig::pht_8m());
        let mut i = 0u64;
        b.iter(|| {
            let seq = [Tag::new(i % 61), Tag::new((i + 1) % 61)];
            let set = SetIndex::new((i % 1024) as u32);
            pht.train(&seq, Tag::new((i + 2) % 61), set);
            i += 1;
            black_box(pht.lookup(&seq, set))
        });
    });

    g.bench_function("cache/l1_access_mixed", |b| {
        let geom = CacheGeometry::new(32 * 1024, 32, 1);
        let mut cache = Cache::new(geom, Replacement::Lru);
        let mut i = 0u64;
        b.iter(|| {
            let line = geom.line_addr(Addr::new((i * 40) % (1 << 22)));
            if let tcp_cache::AccessOutcome::Miss = cache.access(line, false, i) {
                cache.fill(line, i, false);
            }
            i += 1;
        });
    });

    g.bench_function("bus/schedule", |b| {
        let mut bus = Bus::new(4);
        let mut t = 0u64;
        b.iter(|| {
            let (_, done) = bus.schedule(t);
            t = done.saturating_sub(2);
            black_box(done)
        });
    });

    g.finish();
}

fn bench_pipelines(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipelines");
    g.sample_size(10);

    const N: u64 = 200_000;
    g.throughput(Throughput::Elements(N));

    g.bench_function("workload_generation/swim", |b| {
        let bench = suite().into_iter().find(|x| x.name == "swim").unwrap();
        b.iter(|| bench.generator(N).count());
    });

    g.bench_function("miss_stream_extraction/gzip", |b| {
        let bench = suite().into_iter().find(|x| x.name == "gzip").unwrap();
        let l1 = CacheGeometry::new(32 * 1024, 32, 1);
        b.iter(|| miss_stream(l1, bench.generator(N).filter_map(|op| op.mem_access())).count());
    });

    g.bench_function("hierarchy/demand_stream", |b| {
        b.iter(|| {
            let mut h = MemoryHierarchy::new(HierarchyConfig::default(), Box::new(NullPrefetcher));
            let mut t = 0;
            for i in 0..N {
                let r = h.access(MemAccess::load(Addr::new(0x400), Addr::new((i * 48) % (1 << 24))), t);
                t = r.completes_at.min(t + 4);
            }
            black_box(h.finalize().l1_misses)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_primitives, bench_pipelines);
criterion_main!(benches);
