//! Criterion benchmark support for the TCP reproduction.
//!
//! The real content lives in `benches/`:
//!
//! * `microbench` — throughput of the hardware-model primitives (THT,
//!   PHT, caches, buses, workload generation, miss-stream extraction);
//! * `figures` — end-to-end regeneration cost of each paper figure at a
//!   reduced scale (the full-scale runs live in `tcp-experiments`);
//! * `ablations` — per-engine miss-processing throughput and TCP design
//!   points (history length, degree, indexing policy).
//!
//! This library only exposes small helpers shared by those benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tcp_cache::L1MissInfo;
use tcp_mem::{Addr, CacheGeometry, MemAccess, SplitMix64};

/// Builds a deterministic synthetic miss stream of `n` records with a
/// mixture of repeating per-set cycles (prefetchable) and noise, used to
/// exercise prefetch engines without running the full simulator.
pub fn synthetic_miss_stream(n: usize) -> Vec<L1MissInfo> {
    let g = CacheGeometry::new(32 * 1024, 32, 1);
    let mut rng = SplitMix64::new(0xBEEF);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let set = (i % 1024) as u32;
        let tag = if rng.chance(3, 4) {
            // Repeating 3-tag cycle per set.
            100 + ((i / 1024) % 3) as u64
        } else {
            rng.next_below(512)
        };
        let line = g.compose(tcp_mem::Tag::new(tag), tcp_mem::SetIndex::new(set));
        out.push(L1MissInfo {
            access: MemAccess::load(Addr::new(0x400), g.first_byte(line)),
            line,
            tag: tcp_mem::Tag::new(tag),
            set: tcp_mem::SetIndex::new(set),
            cycle: i as u64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_has_requested_length_and_is_deterministic() {
        let a = synthetic_miss_stream(1000);
        let b = synthetic_miss_stream(1000);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
    }
}
