//! Fault-injection inputs for exercising the resilient runner.
//!
//! Everything here is a deliberately degenerate input — a benchmark that
//! panics mid-run, a machine that wedges, trace bytes with a lying
//! header — built so tests (and the `fault_injection` example) can prove
//! that the suite runners isolate failures instead of aborting, that the
//! [`crate::Watchdog`] catches runs with no forward progress, and that
//! [`tcp_analysis::read_trace`] rejects corruption with typed errors
//! rather than huge allocations or garbage records.
//!
//! None of these inputs are used by the experiment harness; they exist
//! purely to attack the simulator from the outside.

use crate::{RunResult, SystemConfig};
use tcp_analysis::{write_trace, MissRecord};
use tcp_mem::{Addr, CacheGeometry};
use tcp_workloads::{Benchmark, KernelSpec, WorkloadSpec};

/// A benchmark whose workload generator panics on its first micro-op.
///
/// The spec has an empty phase list, so the generator's weighted phase
/// pick divides by a zero total weight and panics deep inside
/// `tcp-workloads` — a stand-in for any internal invariant violation. The
/// suite runners must record this as [`crate::RunOutcome::Failed`]
/// without disturbing the benchmarks around it.
pub fn panicking_benchmark() -> Benchmark {
    // Built as a literal: `WorkloadSpec::new` rejects an empty phase list
    // up front, and the whole point here is a spec that passes
    // construction but detonates during generation.
    let spec = WorkloadSpec {
        phases: Vec::new(),
        compute_per_mem: 2.0,
        store_pct: 10,
        burst: 2048,
        fp_pct: 30,
        seed: 0,
    };
    Benchmark {
        name: "fault-panic",
        description: "Deliberately broken workload: zero total phase weight panics the \
                      generator on its first op.",
        spec,
    }
}

/// A machine configuration that passes [`SystemConfig::validate`] but
/// makes no meaningful forward progress: a 25-million-cycle memory with a
/// single MSHR serialises every miss, so cycles-per-committed-op exceeds
/// any sane watchdog cap within the first checkpoint interval.
pub fn wedged_config() -> SystemConfig {
    let mut cfg = SystemConfig::table1();
    cfg.hierarchy.memory_latency = 25_000_000;
    cfg.hierarchy.l1_mshrs = 1;
    cfg
}

/// Adversarial-but-valid benchmarks: miss streams built to be as hostile
/// to a correlating prefetcher (and to the hierarchy's corner cases) as
/// the kernel vocabulary allows. All of them must *complete* under the
/// default watchdog on the Table 1 machine — they stress, not wedge.
pub fn adversarial_suite() -> Vec<Benchmark> {
    const MB: u64 = 1024 * 1024;
    let bench = |name, description, spec| Benchmark {
        name,
        description,
        spec,
    };
    vec![
        bench(
            "fault-random-flood",
            "Uniformly random loads over 64 MB: every access a fresh line, zero \
             correlation for any predictor to latch onto.",
            WorkloadSpec::new(
                vec![(
                    KernelSpec::RandomAccess {
                        base: 0x0400_0000,
                        len: 64 * MB,
                    },
                    1,
                )],
                0xDEAD_BEEF,
            )
            .with_compute_per_mem(0.5),
        ),
        bench(
            "fault-conflict-storm",
            "Thousands of tags rotating through a single cache set: worst-case \
             conflict pressure on a direct-mapped L1.",
            WorkloadSpec::new(
                vec![(
                    KernelSpec::ConflictLoop {
                        base: 0x0800_0000,
                        tags_in_rotation: 4_096,
                        sets_spanned: 1,
                    },
                    1,
                )],
                0xBAD_CAFE,
            )
            .with_compute_per_mem(0.5),
        ),
        bench(
            "fault-noisy-chase",
            "A dependent pointer chase whose every other step detours randomly: \
             serialised misses with maximal sequence noise.",
            WorkloadSpec::new(
                vec![(
                    KernelSpec::PointerChase {
                        base: 0x0C00_0000,
                        nodes: 1 << 16,
                        node_bytes: 64,
                        shuffle_seed: 7,
                        noise_pct: 50,
                    },
                    1,
                )],
                0xFEED_FACE,
            )
            .with_compute_per_mem(0.5),
        ),
    ]
}

/// A synthetic baseline result with zero IPC, for driving the
/// [`crate::try_ipc_improvement`] error path without simulating anything.
pub fn zero_ipc_baseline(benchmark: &str) -> RunResult {
    RunResult {
        benchmark: benchmark.to_owned(),
        prefetcher: "none".to_owned(),
        prefetcher_bytes: 0,
        ipc: 0.0,
        cycles: 0,
        ops: 0,
        stats: Default::default(),
    }
}

/// A well-formed serialized miss trace with `n` records, as a starting
/// point for [`corrupt_trace`].
pub fn healthy_trace_bytes(n: usize) -> Vec<u8> {
    let geom = CacheGeometry::new(32 * 1024, 32, 1);
    let records: Vec<MissRecord> = (0..n as u64)
        .map(|i| {
            let addr = Addr::new(0x0400_0000 + i * 64);
            let (tag, set) = geom.split(addr);
            MissRecord {
                addr,
                line: geom.line_addr(addr),
                tag,
                set,
                pc: Addr::new(0x400 + i * 4),
            }
        })
        .collect();
    let mut buf = Vec::new();
    // tcp-lint: allow(panic-in-library) — io::Write for Vec<u8> is infallible
    write_trace(&mut buf, &records).expect("writing to a Vec cannot fail");
    buf
}

/// The trace corruptions [`corrupt_trace`] can inject, mirroring the
/// [`tcp_analysis::TraceError`] variants they should provoke.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFault {
    /// Overwrite the 4-byte magic — must yield `TraceError::BadMagic`.
    BadMagic,
    /// Bump the format version byte — must yield
    /// `TraceError::UnsupportedVersion`.
    BadVersion,
    /// Cut the byte stream mid-record — must yield
    /// `TraceError::Truncated`.
    TruncatePayload,
    /// Rewrite the header's record count to `u64::MAX` while leaving the
    /// payload alone: a lying header that must fail fast as
    /// `TraceError::Truncated` without a giant up-front allocation.
    LyingCount,
}

/// Applies `fault` in place to serialized trace bytes (layout: 4-byte
/// magic, 1-byte version, 8-byte little-endian count, 16-byte records).
///
/// # Panics
///
/// Panics if `bytes` is shorter than a trace header (13 bytes) — corrupt
/// a [`healthy_trace_bytes`] buffer, not arbitrary data.
pub fn corrupt_trace(bytes: &mut Vec<u8>, fault: TraceFault) {
    assert!(
        bytes.len() >= 13,
        "need at least a full trace header to corrupt"
    );
    match fault {
        TraceFault::BadMagic => bytes[0..4].copy_from_slice(b"XXXX"),
        TraceFault::BadVersion => bytes[4] = 0xFF,
        TraceFault::TruncatePayload => {
            let cut = 13 + 8; // half of the first record
            bytes.truncate(cut.min(bytes.len().saturating_sub(1)));
        }
        TraceFault::LyingCount => bytes[5..13].copy_from_slice(&u64::MAX.to_le_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_analysis::{read_trace, TraceError};

    #[test]
    fn healthy_bytes_round_trip() {
        let geom = CacheGeometry::new(32 * 1024, 32, 1);
        let buf = healthy_trace_bytes(10);
        let back = read_trace(buf.as_slice(), geom).unwrap();
        assert_eq!(back.len(), 10);
    }

    #[test]
    fn each_fault_provokes_its_error() {
        let geom = CacheGeometry::new(32 * 1024, 32, 1);
        for fault in [
            TraceFault::BadMagic,
            TraceFault::BadVersion,
            TraceFault::TruncatePayload,
            TraceFault::LyingCount,
        ] {
            let mut buf = healthy_trace_bytes(10);
            corrupt_trace(&mut buf, fault);
            let err = read_trace(buf.as_slice(), geom).unwrap_err();
            let matches = match fault {
                TraceFault::BadMagic => matches!(err, TraceError::BadMagic { .. }),
                TraceFault::BadVersion => matches!(err, TraceError::UnsupportedVersion { .. }),
                TraceFault::TruncatePayload | TraceFault::LyingCount => {
                    matches!(err, TraceError::Truncated { .. })
                }
            };
            assert!(matches, "{fault:?} gave {err}");
        }
    }

    #[test]
    fn lying_count_is_declared_max() {
        let geom = CacheGeometry::new(32 * 1024, 32, 1);
        let mut buf = healthy_trace_bytes(4);
        corrupt_trace(&mut buf, TraceFault::LyingCount);
        match read_trace(buf.as_slice(), geom).unwrap_err() {
            TraceError::Truncated { declared, read } => {
                assert_eq!(declared, u64::MAX);
                assert_eq!(read, 4);
            }
            other => panic!("expected Truncated, got {other}"),
        }
    }

    #[test]
    fn wedged_config_is_valid_yet_hostile() {
        let cfg = wedged_config();
        assert_eq!(cfg.validate(), Ok(()));
        assert_eq!(cfg.hierarchy.l1_mshrs, 1);
    }

    #[test]
    fn zero_ipc_baseline_is_degenerate() {
        assert_eq!(zero_ipc_baseline("gzip").ipc, 0.0);
    }
}
