//! Fault-injection inputs for exercising the resilient runner.
//!
//! Everything here is a deliberately degenerate input — a benchmark that
//! panics mid-run, a machine that wedges, trace bytes with a lying
//! header — built so tests (and the `fault_injection` example) can prove
//! that the suite runners isolate failures instead of aborting, that the
//! [`crate::Watchdog`] catches runs with no forward progress, and that
//! [`tcp_analysis::read_trace`] rejects corruption with typed errors
//! rather than huge allocations or garbage records.
//!
//! None of these inputs are used by the experiment harness; they exist
//! purely to attack the simulator from the outside.

use crate::{RunResult, SystemConfig};
use tcp_analysis::{write_trace, MissRecord};
use tcp_mem::{Addr, CacheGeometry};
use tcp_workloads::{Benchmark, KernelSpec, WorkloadSpec};

/// A benchmark whose workload generator panics on its first micro-op.
///
/// The spec has an empty phase list, so the generator's weighted phase
/// pick divides by a zero total weight and panics deep inside
/// `tcp-workloads` — a stand-in for any internal invariant violation. The
/// suite runners must record this as [`crate::RunOutcome::Failed`]
/// without disturbing the benchmarks around it.
pub fn panicking_benchmark() -> Benchmark {
    // Built as a literal: `WorkloadSpec::new` rejects an empty phase list
    // up front, and the whole point here is a spec that passes
    // construction but detonates during generation.
    let spec = WorkloadSpec {
        phases: Vec::new(),
        compute_per_mem: 2.0,
        store_pct: 10,
        burst: 2048,
        fp_pct: 30,
        seed: 0,
    };
    Benchmark {
        name: "fault-panic",
        description: "Deliberately broken workload: zero total phase weight panics the \
                      generator on its first op.",
        spec,
    }
}

/// A machine configuration that passes [`SystemConfig::validate`] but
/// makes no meaningful forward progress: a 25-million-cycle memory with a
/// single MSHR serialises every miss, so cycles-per-committed-op exceeds
/// any sane watchdog cap within the first checkpoint interval.
pub fn wedged_config() -> SystemConfig {
    let mut cfg = SystemConfig::table1();
    cfg.hierarchy.memory_latency = 25_000_000;
    cfg.hierarchy.l1_mshrs = 1;
    cfg
}

/// Adversarial-but-valid benchmarks: miss streams built to be as hostile
/// to a correlating prefetcher (and to the hierarchy's corner cases) as
/// the kernel vocabulary allows. All of them must *complete* under the
/// default watchdog on the Table 1 machine — they stress, not wedge.
pub fn adversarial_suite() -> Vec<Benchmark> {
    const MB: u64 = 1024 * 1024;
    let bench = |name, description, spec| Benchmark {
        name,
        description,
        spec,
    };
    vec![
        bench(
            "fault-random-flood",
            "Uniformly random loads over 64 MB: every access a fresh line, zero \
             correlation for any predictor to latch onto.",
            WorkloadSpec::new(
                vec![(
                    KernelSpec::RandomAccess {
                        base: 0x0400_0000,
                        len: 64 * MB,
                    },
                    1,
                )],
                0xDEAD_BEEF,
            )
            .with_compute_per_mem(0.5),
        ),
        bench(
            "fault-conflict-storm",
            "Thousands of tags rotating through a single cache set: worst-case \
             conflict pressure on a direct-mapped L1.",
            WorkloadSpec::new(
                vec![(
                    KernelSpec::ConflictLoop {
                        base: 0x0800_0000,
                        tags_in_rotation: 4_096,
                        sets_spanned: 1,
                    },
                    1,
                )],
                0xBAD_CAFE,
            )
            .with_compute_per_mem(0.5),
        ),
        bench(
            "fault-noisy-chase",
            "A dependent pointer chase whose every other step detours randomly: \
             serialised misses with maximal sequence noise.",
            WorkloadSpec::new(
                vec![(
                    KernelSpec::PointerChase {
                        base: 0x0C00_0000,
                        nodes: 1 << 16,
                        node_bytes: 64,
                        shuffle_seed: 7,
                        noise_pct: 50,
                    },
                    1,
                )],
                0xFEED_FACE,
            )
            .with_compute_per_mem(0.5),
        ),
    ]
}

/// A synthetic baseline result with zero IPC, for driving the
/// [`crate::try_ipc_improvement`] error path without simulating anything.
pub fn zero_ipc_baseline(benchmark: &str) -> RunResult {
    RunResult {
        benchmark: benchmark.to_owned(),
        prefetcher: "none".to_owned(),
        prefetcher_bytes: 0,
        ipc: 0.0,
        cycles: 0,
        ops: 0,
        stats: Default::default(),
    }
}

/// A well-formed serialized miss trace with `n` records, as a starting
/// point for [`corrupt_trace`].
pub fn healthy_trace_bytes(n: usize) -> Vec<u8> {
    let geom = CacheGeometry::new(32 * 1024, 32, 1);
    let records: Vec<MissRecord> = (0..n as u64)
        .map(|i| {
            let addr = Addr::new(0x0400_0000 + i * 64);
            let (tag, set) = geom.split(addr);
            MissRecord {
                addr,
                line: geom.line_addr(addr),
                tag,
                set,
                pc: Addr::new(0x400 + i * 4),
            }
        })
        .collect();
    let mut buf = Vec::new();
    // tcp-lint: allow(panic-in-library) — io::Write for Vec<u8> is infallible
    write_trace(&mut buf, &records).expect("writing to a Vec cannot fail");
    buf
}

/// The trace corruptions [`corrupt_trace`] can inject, mirroring the
/// [`tcp_analysis::TraceError`] variants they should provoke.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFault {
    /// Overwrite the 4-byte magic — must yield `TraceError::BadMagic`.
    BadMagic,
    /// Bump the format version byte — must yield
    /// `TraceError::UnsupportedVersion`.
    BadVersion,
    /// Cut the byte stream mid-record — must yield
    /// `TraceError::TruncatedMidRecord`, with the whole-record prefix
    /// still decodable.
    TruncatePayload,
    /// Cut the byte stream exactly on a record boundary — must yield the
    /// plain `TraceError::Truncated`, distinct from the mid-record cut.
    TruncateAtBoundary,
    /// Rewrite the header's record count to `u64::MAX` while leaving the
    /// payload alone: a lying header that must fail fast as
    /// `TraceError::Truncated` without a giant up-front allocation.
    LyingCount,
    /// XOR one bit of a tag-significant byte in the second record's
    /// address. Format v1 carries no per-record checksum, so the bytes
    /// still decode — into a *different* tag. This is the silent fault:
    /// detection is the consumer's job (per-tenant isolation in
    /// [`crate::stream::TenantMux`] keeps it from spreading).
    FlipTagByte,
}

/// All [`TraceFault`] variants, for exhaustive injection loops.
pub const TRACE_FAULTS: [TraceFault; 6] = [
    TraceFault::BadMagic,
    TraceFault::BadVersion,
    TraceFault::TruncatePayload,
    TraceFault::TruncateAtBoundary,
    TraceFault::LyingCount,
    TraceFault::FlipTagByte,
];

/// Applies `fault` in place to serialized trace bytes (layout: 4-byte
/// magic, 1-byte version, 8-byte little-endian count, 16-byte records).
///
/// # Panics
///
/// Panics if `bytes` is too short for the fault — a header (13 bytes)
/// for most, two whole records for the boundary cut and the tag flip —
/// so corrupt a [`healthy_trace_bytes`] buffer, not arbitrary data.
pub fn corrupt_trace(bytes: &mut Vec<u8>, fault: TraceFault) {
    assert!(
        bytes.len() >= 13,
        "need at least a full trace header to corrupt"
    );
    match fault {
        TraceFault::BadMagic => bytes[0..4].copy_from_slice(b"XXXX"),
        TraceFault::BadVersion => bytes[4] = 0xFF,
        TraceFault::TruncatePayload => {
            let cut = 13 + 8; // half of the first record
            bytes.truncate(cut.min(bytes.len().saturating_sub(1)));
        }
        TraceFault::TruncateAtBoundary => {
            assert!(
                bytes.len() >= 13 + 32,
                "boundary cut needs at least two records"
            );
            // Drop exactly the final record: the cut lands on a record
            // boundary, so no torn bytes remain in the stream.
            bytes.truncate(bytes.len() - 16);
        }
        TraceFault::LyingCount => bytes[5..13].copy_from_slice(&u64::MAX.to_le_bytes()),
        TraceFault::FlipTagByte => {
            assert!(bytes.len() >= 13 + 32, "tag flip targets the second record");
            // Second record's addr field starts at 13 + 16 + 8; byte 2 of
            // the little-endian addr holds bits 16–23, well above the
            // 15-bit set+offset split of the 32 KB / 32 B geometry — a
            // guaranteed tag bit.
            bytes[13 + 16 + 8 + 2] ^= 0x10;
        }
    }
}

/// The memo-store corruptions [`corrupt_store`] can inject, mirroring the
/// quarantine reasons the experiment harness's persistent sweep store must
/// report when it reloads a damaged `store.jsonl`.
///
/// The injector works on raw bytes and only assumes the store's two
/// load-bearing substrings (`"payload"` and `"store_version"`), so it
/// stays decoupled from the store's exact schema: the store crate can add
/// payload fields without touching the fault vocabulary here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreFault {
    /// Cut the file mid-way through its final record, as a crash during a
    /// non-atomic write would — must quarantine as a parse failure.
    TruncatedTail,
    /// Flip the low bit of a digit inside the final record's payload
    /// (a digit XOR 1 is still a digit, so the line stays well-formed
    /// JSON) — must quarantine as a checksum mismatch.
    BitFlip,
    /// Rewrite the final record's `store_version` to a different number —
    /// must quarantine as a version mismatch.
    StaleVersion,
    /// Leave the store intact but plant an orphaned `store.jsonl.tmp`
    /// holding a half-written copy, the debris of a crash between write
    /// and rename — must quarantine the orphan as a torn rename.
    TornRename,
    /// Append a byte-identical copy of the final record — the duplicate
    /// must be quarantined while the first occurrence survives.
    DuplicateKey,
}

/// All [`StoreFault`] variants, for exhaustive injection loops.
pub const STORE_FAULTS: [StoreFault; 5] = [
    StoreFault::TruncatedTail,
    StoreFault::BitFlip,
    StoreFault::StaleVersion,
    StoreFault::TornRename,
    StoreFault::DuplicateKey,
];

/// A store corrupted by [`corrupt_store`]: the bytes to write back as
/// `store.jsonl`, plus — for [`StoreFault::TornRename`] only — bytes to
/// plant as an orphaned `store.jsonl.tmp` beside it.
#[derive(Clone, Debug)]
pub struct CorruptedStore {
    /// Replacement contents for the store file itself.
    pub store: Vec<u8>,
    /// Contents for an orphaned temp file, when the fault plants one.
    pub orphan_tmp: Option<Vec<u8>>,
}

/// Applies `fault` to the serialized bytes of a healthy JSON-lines memo
/// store and returns the corrupted artefacts to write back to disk.
///
/// # Panics
///
/// Panics if `bytes` does not look like a non-empty record store (no
/// final line, or — for the faults that need them — no `"payload"` /
/// `"store_version"` substring in it). Corrupt a real store file, not
/// arbitrary data.
pub fn corrupt_store(bytes: &[u8], fault: StoreFault) -> CorruptedStore {
    let trimmed_len = bytes
        .iter()
        .rposition(|&b| b != b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    assert!(trimmed_len > 0, "cannot corrupt an empty store");
    let line_start = bytes[..trimmed_len]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    let last_line = &bytes[line_start..trimmed_len];
    let plain = |store: Vec<u8>| CorruptedStore {
        store,
        orphan_tmp: None,
    };
    match fault {
        StoreFault::TruncatedTail => {
            // Keep at least one byte of the final record so the damage is
            // a torn line, not a clean shorter store.
            let cut = line_start + 1 + (trimmed_len - line_start - 1) / 2;
            plain(bytes[..cut].to_vec())
        }
        StoreFault::BitFlip => {
            // tcp-lint: allow(panic-in-library) — documented panic: the injector demands a real store record
            let in_line = find(last_line, b"\"payload\"").expect("record has a payload field");
            let digit_at = last_line[in_line..]
                .iter()
                .position(u8::is_ascii_digit)
                // tcp-lint: allow(panic-in-library) — documented panic: the injector demands a real store record
                .expect("payload contains a digit");
            let mut out = bytes.to_vec();
            let flip_at = line_start + in_line + digit_at;
            debug_assert!(flip_at < out.len(), "offsets land inside the final line");
            out[flip_at] ^= 0x01;
            plain(out)
        }
        StoreFault::StaleVersion => {
            let marker = b"\"store_version\":";
            // tcp-lint: allow(panic-in-library) — documented panic: the injector demands a real store record
            let in_line = find(last_line, marker).expect("record has a store_version field");
            let digit_at = in_line + marker.len();
            assert!(
                last_line[digit_at].is_ascii_digit(),
                "store_version must be a bare number"
            );
            let mut out = bytes.to_vec();
            let version_at = line_start + digit_at;
            debug_assert!(version_at < out.len(), "offset lands inside the final line");
            let d = &mut out[version_at];
            *d = if *d == b'9' { b'8' } else { b'9' };
            plain(out)
        }
        StoreFault::TornRename => CorruptedStore {
            store: bytes.to_vec(),
            orphan_tmp: Some(bytes[..trimmed_len / 2].to_vec()),
        },
        StoreFault::DuplicateKey => {
            let mut out = bytes.to_vec();
            if !out.ends_with(b"\n") {
                out.push(b'\n');
            }
            out.extend_from_slice(last_line);
            out.push(b'\n');
            plain(out)
        }
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_analysis::{read_trace, TraceError};

    #[test]
    fn healthy_bytes_round_trip() {
        let geom = CacheGeometry::new(32 * 1024, 32, 1);
        let buf = healthy_trace_bytes(10);
        let back = read_trace(buf.as_slice(), geom).unwrap();
        assert_eq!(back.len(), 10);
    }

    #[test]
    fn each_fault_provokes_its_error() {
        let geom = CacheGeometry::new(32 * 1024, 32, 1);
        for fault in TRACE_FAULTS {
            let mut buf = healthy_trace_bytes(10);
            corrupt_trace(&mut buf, fault);
            let outcome = read_trace(buf.as_slice(), geom);
            let matches = match fault {
                TraceFault::BadMagic => {
                    matches!(outcome, Err(TraceError::BadMagic { .. }))
                }
                TraceFault::BadVersion => {
                    matches!(outcome, Err(TraceError::UnsupportedVersion { .. }))
                }
                TraceFault::TruncatePayload => {
                    matches!(outcome, Err(TraceError::TruncatedMidRecord { .. }))
                }
                TraceFault::TruncateAtBoundary | TraceFault::LyingCount => {
                    matches!(outcome, Err(TraceError::Truncated { .. }))
                }
                // The silent fault: no checksum in format v1, so the
                // flipped byte decodes cleanly into a different tag.
                TraceFault::FlipTagByte => match &outcome {
                    Ok(records) => {
                        let healthy = read_trace(healthy_trace_bytes(10).as_slice(), geom).unwrap();
                        records.len() == healthy.len()
                            && records[1].tag != healthy[1].tag
                            && records[0] == healthy[0]
                            && records[2..] == healthy[2..]
                    }
                    Err(_) => false,
                },
            };
            assert!(matches, "{fault:?} gave {outcome:?}");
        }
    }

    #[test]
    fn boundary_and_mid_record_cuts_are_distinguished() {
        let geom = CacheGeometry::new(32 * 1024, 32, 1);
        let mut boundary = healthy_trace_bytes(10);
        corrupt_trace(&mut boundary, TraceFault::TruncateAtBoundary);
        match read_trace(boundary.as_slice(), geom).unwrap_err() {
            TraceError::Truncated { declared, read } => {
                assert_eq!(declared, 10);
                assert_eq!(read, 9, "every surviving record is whole");
            }
            other => panic!("expected Truncated, got {other}"),
        }
        let mut torn = healthy_trace_bytes(10);
        corrupt_trace(&mut torn, TraceFault::TruncatePayload);
        match read_trace(torn.as_slice(), geom).unwrap_err() {
            TraceError::TruncatedMidRecord {
                declared,
                read,
                partial_bytes,
            } => {
                assert_eq!(declared, 10);
                assert_eq!(read, 0);
                assert_eq!(partial_bytes, 8);
            }
            other => panic!("expected TruncatedMidRecord, got {other}"),
        }
    }

    #[test]
    fn lying_count_is_declared_max() {
        let geom = CacheGeometry::new(32 * 1024, 32, 1);
        let mut buf = healthy_trace_bytes(4);
        corrupt_trace(&mut buf, TraceFault::LyingCount);
        match read_trace(buf.as_slice(), geom).unwrap_err() {
            TraceError::Truncated { declared, read } => {
                assert_eq!(declared, u64::MAX);
                assert_eq!(read, 4);
            }
            other => panic!("expected Truncated, got {other}"),
        }
    }

    #[test]
    fn wedged_config_is_valid_yet_hostile() {
        let cfg = wedged_config();
        assert_eq!(cfg.validate(), Ok(()));
        assert_eq!(cfg.hierarchy.l1_mshrs, 1);
    }

    #[test]
    fn zero_ipc_baseline_is_degenerate() {
        assert_eq!(zero_ipc_baseline("gzip").ipc, 0.0);
    }

    /// Two synthetic records shaped like the experiment store's format —
    /// enough structure for every [`StoreFault`] without depending on the
    /// store crate (the dependency points the other way).
    fn synthetic_store() -> Vec<u8> {
        let mut out = Vec::new();
        for (checksum, key) in [("41", "job-a"), ("97", "job-b")] {
            out.extend_from_slice(
                format!(
                    "{{\"checksum\":\"{checksum}\",\"payload\":{{\"cycles\":\"1024\",\
                     \"key\":\"{key}\"}},\"store_version\":1}}\n"
                )
                .as_bytes(),
            );
        }
        out
    }

    #[test]
    fn truncated_tail_cuts_mid_record() {
        let healthy = synthetic_store();
        let hurt = corrupt_store(&healthy, StoreFault::TruncatedTail);
        assert!(hurt.orphan_tmp.is_none());
        assert!(hurt.store.len() < healthy.len());
        // The first record survives whole; the second is torn, not gone.
        let first_len = healthy.iter().position(|&b| b == b'\n').unwrap() + 1;
        assert_eq!(&hurt.store[..first_len], &healthy[..first_len]);
        assert!(hurt.store.len() > first_len);
        assert!(!hurt.store.ends_with(b"}\n"));
    }

    #[test]
    fn bit_flip_stays_inside_the_payload_digits() {
        let healthy = synthetic_store();
        let hurt = corrupt_store(&healthy, StoreFault::BitFlip);
        assert_eq!(hurt.store.len(), healthy.len());
        let diffs: Vec<usize> = healthy
            .iter()
            .zip(&hurt.store)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs.len(), 1, "exactly one byte flipped");
        assert!(healthy[diffs[0]].is_ascii_digit());
        assert!(hurt.store[diffs[0]].is_ascii_digit());
        // The flip lands after the last record's payload marker, so the
        // envelope (checksum field, version) is untouched.
        let line_start = healthy[..healthy.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .unwrap()
            + 1;
        let payload_at = find(&healthy[line_start..], b"\"payload\"").unwrap();
        assert!(diffs[0] >= line_start + payload_at);
    }

    #[test]
    fn stale_version_rewrites_only_the_version_digit() {
        let healthy = synthetic_store();
        let hurt = corrupt_store(&healthy, StoreFault::StaleVersion);
        let tail = b"\"store_version\":9}\n";
        assert!(hurt.store.ends_with(tail), "version digit rewritten");
        assert_eq!(hurt.store.len(), healthy.len());
    }

    #[test]
    fn torn_rename_plants_a_half_written_orphan() {
        let healthy = synthetic_store();
        let hurt = corrupt_store(&healthy, StoreFault::TornRename);
        assert_eq!(hurt.store, healthy, "store itself is untouched");
        let orphan = hurt.orphan_tmp.expect("orphan tmp planted");
        assert!(!orphan.is_empty() && orphan.len() < healthy.len());
        assert_eq!(&orphan[..], &healthy[..orphan.len()]);
        assert!(!orphan.ends_with(b"}\n"), "orphan is half-written");
    }

    #[test]
    fn duplicate_key_appends_a_byte_identical_record() {
        let healthy = synthetic_store();
        let hurt = corrupt_store(&healthy, StoreFault::DuplicateKey);
        assert!(hurt.orphan_tmp.is_none());
        let lines: Vec<&[u8]> = hurt
            .store
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], lines[2], "last record duplicated verbatim");
        assert_ne!(lines[0], lines[1]);
    }

    #[test]
    fn store_faults_lists_every_variant_once() {
        for (i, a) in STORE_FAULTS.iter().enumerate() {
            for b in STORE_FAULTS.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
