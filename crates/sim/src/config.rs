//! The simulated machine configuration (Table 1 of the paper).

use tcp_cache::HierarchyConfig;
use tcp_cpu::CoreConfig;

/// Complete machine description: core plus memory hierarchy.
///
/// [`SystemConfig::table1`] reproduces the paper's machine:
///
/// | Parameter | Value |
/// |---|---|
/// | Clock | 2 GHz |
/// | Instruction window | 128-RUU, 128-LSQ |
/// | Issue width | 8 |
/// | FUs | 8 IntALU, 3 IntMult, 6 FPALU, 2 FPMult, 4 Ld/St |
/// | L1 D-cache | 32 KB, direct-mapped, 32 B lines, 64 MSHRs |
/// | L1/L2 bus | 32 B wide, 2 GHz |
/// | L2 | 1 MB, 4-way LRU, 64 B lines, 12-cycle latency |
/// | Memory | 70 cycles |
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Out-of-order core parameters.
    pub core: CoreConfig,
    /// Cache hierarchy, bus, and memory parameters.
    pub hierarchy: HierarchyConfig,
    /// Core clock in GHz (reporting only; all latencies are in cycles).
    pub clock_ghz: f64,
}

impl SystemConfig {
    /// The paper's simulated processor (Table 1).
    pub fn table1() -> Self {
        SystemConfig { core: CoreConfig::default(), hierarchy: HierarchyConfig::default(), clock_ghz: 2.0 }
    }

    /// Table 1 with an ideal L2 (every L2 access hits): the limit study
    /// of Figure 1.
    pub fn table1_ideal_l2() -> Self {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.ideal_l2 = true;
        cfg
    }

    /// Table 1 plus the dedicated prefetch bus the hybrid study adds
    /// (Section 5.2.2).
    pub fn table1_with_prefetch_bus() -> Self {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.separate_prefetch_bus = true;
        cfg
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = SystemConfig::table1();
        assert_eq!(c.core.window, 128);
        assert_eq!(c.core.issue_width, 8);
        assert_eq!(c.core.fu_counts, [8, 3, 6, 2, 4]);
        assert_eq!(c.hierarchy.l1d.size_bytes(), 32 * 1024);
        assert_eq!(c.hierarchy.l1d.associativity(), 1);
        assert_eq!(c.hierarchy.l1d.line_bytes(), 32);
        assert_eq!(c.hierarchy.l1_mshrs, 64);
        assert_eq!(c.hierarchy.l2.size_bytes(), 1024 * 1024);
        assert_eq!(c.hierarchy.l2.associativity(), 4);
        assert_eq!(c.hierarchy.l2.line_bytes(), 64);
        assert_eq!(c.hierarchy.l2_latency, 12);
        assert_eq!(c.hierarchy.memory_latency, 70);
        assert!(!c.hierarchy.ideal_l2);
        assert_eq!(c.clock_ghz, 2.0);
    }

    #[test]
    fn variants_flip_expected_flags() {
        assert!(SystemConfig::table1_ideal_l2().hierarchy.ideal_l2);
        assert!(SystemConfig::table1_with_prefetch_bus().hierarchy.separate_prefetch_bus);
    }
}
