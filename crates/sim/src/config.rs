//! The simulated machine configuration (Table 1 of the paper).

use tcp_cache::{ConfigError, HierarchyConfig};
use tcp_cpu::CoreConfig;

/// Complete machine description: core plus memory hierarchy.
///
/// [`SystemConfig::table1`] reproduces the paper's machine:
///
/// | Parameter | Value |
/// |---|---|
/// | Clock | 2 GHz |
/// | Instruction window | 128-RUU, 128-LSQ |
/// | Issue width | 8 |
/// | FUs | 8 IntALU, 3 IntMult, 6 FPALU, 2 FPMult, 4 Ld/St |
/// | L1 D-cache | 32 KB, direct-mapped, 32 B lines, 64 MSHRs |
/// | L1/L2 bus | 32 B wide, 2 GHz |
/// | L2 | 1 MB, 4-way LRU, 64 B lines, 12-cycle latency |
/// | Memory | 70 cycles |
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemConfig {
    /// Out-of-order core parameters.
    pub core: CoreConfig,
    /// Cache hierarchy, bus, and memory parameters.
    pub hierarchy: HierarchyConfig,
    /// Core clock in GHz (reporting only; all latencies are in cycles).
    pub clock_ghz: f64,
}

impl SystemConfig {
    /// The paper's simulated processor (Table 1).
    pub fn table1() -> Self {
        SystemConfig {
            core: CoreConfig::default(),
            hierarchy: HierarchyConfig::default(),
            clock_ghz: 2.0,
        }
    }

    /// Table 1 with an ideal L2 (every L2 access hits): the limit study
    /// of Figure 1.
    pub fn table1_ideal_l2() -> Self {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.ideal_l2 = true;
        cfg
    }

    /// Table 1 plus the dedicated prefetch bus the hybrid study adds
    /// (Section 5.2.2).
    pub fn table1_with_prefetch_bus() -> Self {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.separate_prefetch_bus = true;
        cfg
    }

    /// Checks that this machine can be simulated: the core and hierarchy
    /// validate themselves ([`CoreConfig::validate`],
    /// [`HierarchyConfig::validate`] — power-of-two geometries, L1 line ≤
    /// L2 line, nonzero latencies/MSHRs/widths) and the reporting clock
    /// must be a positive finite number.
    ///
    /// [`crate::try_run_benchmark`] calls this before building the
    /// machine, so an impossible configuration surfaces as a typed
    /// [`ConfigError`] instead of a panic or a wedged run deep inside the
    /// timing model.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found, core first, then
    /// hierarchy, then system-level fields.
    ///
    /// # Examples
    ///
    /// ```
    /// use tcp_sim::SystemConfig;
    ///
    /// assert!(SystemConfig::table1().validate().is_ok());
    /// let mut broken = SystemConfig::table1();
    /// broken.hierarchy.l1_mshrs = 0;
    /// assert!(broken.validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.core.validate()?;
        self.hierarchy.validate()?;
        if !(self.clock_ghz > 0.0 && self.clock_ghz.is_finite()) {
            return Err(ConfigError::NotPositiveFinite { field: "clock_ghz" });
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = SystemConfig::table1();
        assert_eq!(c.core.window, 128);
        assert_eq!(c.core.issue_width, 8);
        assert_eq!(c.core.fu_counts, [8, 3, 6, 2, 4]);
        assert_eq!(c.hierarchy.l1d.size_bytes(), 32 * 1024);
        assert_eq!(c.hierarchy.l1d.associativity(), 1);
        assert_eq!(c.hierarchy.l1d.line_bytes(), 32);
        assert_eq!(c.hierarchy.l1_mshrs, 64);
        assert_eq!(c.hierarchy.l2.size_bytes(), 1024 * 1024);
        assert_eq!(c.hierarchy.l2.associativity(), 4);
        assert_eq!(c.hierarchy.l2.line_bytes(), 64);
        assert_eq!(c.hierarchy.l2_latency, 12);
        assert_eq!(c.hierarchy.memory_latency, 70);
        assert!(!c.hierarchy.ideal_l2);
        assert_eq!(c.clock_ghz, 2.0);
    }

    #[test]
    fn variants_flip_expected_flags() {
        assert!(SystemConfig::table1_ideal_l2().hierarchy.ideal_l2);
        assert!(
            SystemConfig::table1_with_prefetch_bus()
                .hierarchy
                .separate_prefetch_bus
        );
    }

    #[test]
    fn all_shipped_configs_validate() {
        for cfg in [
            SystemConfig::table1(),
            SystemConfig::table1_ideal_l2(),
            SystemConfig::table1_with_prefetch_bus(),
        ] {
            assert_eq!(cfg.validate(), Ok(()));
        }
    }

    #[test]
    fn validate_catches_each_layer() {
        let mut core_bad = SystemConfig::table1();
        core_bad.core.window = 0;
        assert_eq!(
            core_bad.validate(),
            Err(ConfigError::ZeroField { field: "window" })
        );

        let mut hier_bad = SystemConfig::table1();
        hier_bad.hierarchy.memory_latency = 0;
        assert_eq!(
            hier_bad.validate(),
            Err(ConfigError::ZeroField {
                field: "memory_latency"
            })
        );

        let mut clock_bad = SystemConfig::table1();
        clock_bad.clock_ghz = f64::NAN;
        assert_eq!(
            clock_bad.validate(),
            Err(ConfigError::NotPositiveFinite { field: "clock_ghz" })
        );
        clock_bad.clock_ghz = 0.0;
        assert!(clock_bad.validate().is_err());
    }
}
