//! Run driver: one benchmark × one prefetcher → timing and traffic
//! results; suite driver for all 26 benchmarks.

use crate::SystemConfig;
use tcp_cache::{HierarchyStats, MemoryHierarchy, Prefetcher};
use tcp_cpu::OooCore;
use tcp_workloads::Benchmark;

/// The outcome of simulating one benchmark with one prefetcher.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Prefetcher table storage in bytes.
    pub prefetcher_bytes: usize,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Total cycles.
    pub cycles: u64,
    /// Micro-ops committed.
    pub ops: u64,
    /// Hierarchy counters (finalized).
    pub stats: HierarchyStats,
}

/// Simulates `bench` for `n_ops` micro-ops on the machine `cfg` with the
/// given prefetch engine.
///
/// # Examples
///
/// See the crate-level example.
pub fn run_benchmark(
    bench: &Benchmark,
    n_ops: u64,
    cfg: &SystemConfig,
    prefetcher: Box<dyn Prefetcher>,
) -> RunResult {
    run_benchmark_warm(bench, n_ops / 2, n_ops, cfg, prefetcher)
}

/// Like [`run_benchmark`] with an explicit warm-up: the first
/// `warmup_ops` micro-ops prime caches and predictor tables unmeasured,
/// then `n_ops` are measured — the paper's skip-then-measure methodology.
pub fn run_benchmark_warm(
    bench: &Benchmark,
    warmup_ops: u64,
    n_ops: u64,
    cfg: &SystemConfig,
    prefetcher: Box<dyn Prefetcher>,
) -> RunResult {
    let name = prefetcher.name().to_owned();
    let bytes = prefetcher.storage_bytes();
    let mut hierarchy = MemoryHierarchy::new(cfg.hierarchy.clone(), prefetcher);
    let mut core = OooCore::new(cfg.core.clone());
    let run = core.run_with_warmup(bench.generator(warmup_ops + n_ops), warmup_ops, &mut hierarchy);
    let stats = hierarchy.finalize();
    RunResult {
        benchmark: bench.name.to_owned(),
        prefetcher: name,
        prefetcher_bytes: bytes,
        ipc: run.ipc(),
        cycles: run.cycles,
        ops: run.ops,
        stats,
    }
}

/// IPC improvement of `new` over `base`, in percent (the y-axis of
/// Figures 1, 11, and 14).
pub fn ipc_improvement(base: &RunResult, new: &RunResult) -> f64 {
    assert!(base.ipc > 0.0, "baseline IPC must be positive");
    (new.ipc / base.ipc - 1.0) * 100.0
}

/// Results for a whole suite under one prefetcher configuration.
#[derive(Clone, Debug, Default)]
pub struct SuiteResult {
    /// Per-benchmark results, in suite order.
    pub runs: Vec<RunResult>,
}

impl SuiteResult {
    /// Geometric mean IPC over the suite.
    pub fn geomean_ipc(&self) -> f64 {
        let v: Vec<f64> = self.runs.iter().map(|r| r.ipc).collect();
        tcp_analysis_geomean(&v)
    }

    /// Finds the result for a benchmark by name.
    pub fn get(&self, benchmark: &str) -> Option<&RunResult> {
        self.runs.iter().find(|r| r.benchmark == benchmark)
    }

    /// Geometric-mean IPC improvement over `base`, in percent.
    pub fn geomean_improvement(&self, base: &SuiteResult) -> f64 {
        (self.geomean_ipc() / base.geomean_ipc() - 1.0) * 100.0
    }
}

// Small local geomean to avoid a dependency cycle with tcp-analysis.
fn tcp_analysis_geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Runs every benchmark in `benchmarks` for `n_ops` micro-ops, building a
/// fresh prefetcher per benchmark from `factory`.
pub fn run_suite<F>(benchmarks: &[Benchmark], n_ops: u64, cfg: &SystemConfig, factory: F) -> SuiteResult
where
    F: Fn() -> Box<dyn Prefetcher>,
{
    let runs = benchmarks.iter().map(|b| run_benchmark(b, n_ops, cfg, factory())).collect();
    SuiteResult { runs }
}

/// Applies `f` to every benchmark on worker threads, preserving order.
/// The building block behind [`run_suite_parallel`] and the experiment
/// harness's per-figure fan-out: each benchmark's simulations are
/// independent and deterministic, so parallelism changes only wall-clock
/// time.
pub fn map_benchmarks_parallel<T, F>(benchmarks: &[Benchmark], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Benchmark) -> T + Sync,
{
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = benchmarks.iter().map(|_| None).collect();
    let slot_cells: Vec<std::sync::Mutex<&mut Option<T>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(benchmarks.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= benchmarks.len() {
                    break;
                }
                let result = f(&benchmarks[i]);
                **slot_cells[i].lock().expect("slot lock") = Some(result);
            });
        }
    });
    drop(slot_cells);
    slots.into_iter().map(|r| r.expect("every benchmark processed")).collect()
}

/// Like [`run_suite`] but simulating benchmarks on worker threads.
/// Results are identical to the sequential runner (each benchmark's
/// simulation is self-contained and deterministic); only wall-clock time
/// changes. The prefetcher factory must be callable from any thread and
/// produce thread-transferable engines — every engine in this workspace
/// qualifies.
pub fn run_suite_parallel<F>(
    benchmarks: &[Benchmark],
    n_ops: u64,
    cfg: &SystemConfig,
    factory: F,
) -> SuiteResult
where
    F: Fn() -> Box<dyn Prefetcher + Send> + Sync,
{
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<RunResult>> = benchmarks.iter().map(|_| None).collect();
    let slot_cells: Vec<std::sync::Mutex<&mut Option<RunResult>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(benchmarks.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= benchmarks.len() {
                    break;
                }
                let result = run_benchmark(&benchmarks[i], n_ops, cfg, factory());
                **slot_cells[i].lock().expect("slot lock") = Some(result);
            });
        }
    });
    drop(slot_cells);
    SuiteResult { runs: slots.into_iter().map(|r| r.expect("every benchmark ran")).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_cache::NullPrefetcher;
    use tcp_core::{Tcp, TcpConfig};
    use tcp_workloads::suite;

    const TEST_OPS: u64 = 60_000;

    #[test]
    fn run_produces_sane_numbers() {
        let b = suite().into_iter().find(|b| b.name == "gzip").unwrap();
        let r = run_benchmark(&b, TEST_OPS, &SystemConfig::table1(), Box::new(NullPrefetcher));
        assert_eq!(r.ops, TEST_OPS);
        assert!(r.ipc > 0.05 && r.ipc < 8.0, "ipc {}", r.ipc);
        assert_eq!(r.stats.accesses(), r.stats.loads + r.stats.stores);
        assert!(r.stats.l1_misses > 0);
    }

    #[test]
    fn deterministic_runs() {
        let b = suite().into_iter().find(|b| b.name == "crafty").unwrap();
        let r1 = run_benchmark(&b, TEST_OPS, &SystemConfig::table1(), Box::new(NullPrefetcher));
        let r2 = run_benchmark(&b, TEST_OPS, &SystemConfig::table1(), Box::new(NullPrefetcher));
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn ideal_l2_beats_real_l2_on_memory_bound_benchmark() {
        let b = suite().into_iter().find(|b| b.name == "art").unwrap();
        let real = run_benchmark(&b, TEST_OPS, &SystemConfig::table1(), Box::new(NullPrefetcher));
        let ideal = run_benchmark(&b, TEST_OPS, &SystemConfig::table1_ideal_l2(), Box::new(NullPrefetcher));
        assert!(
            ideal.ipc > 1.5 * real.ipc,
            "art must be strongly memory bound: ideal {} vs real {}",
            ideal.ipc,
            real.ipc
        );
    }

    #[test]
    fn tcp_helps_a_correlated_benchmark() {
        let b = suite().into_iter().find(|b| b.name == "ammp").unwrap();
        let base = run_benchmark(&b, 200_000, &SystemConfig::table1(), Box::new(NullPrefetcher));
        let tcp = run_benchmark(
            &b,
            200_000,
            &SystemConfig::table1(),
            Box::new(Tcp::new(TcpConfig::tcp_8m())),
        );
        assert!(
            ipc_improvement(&base, &tcp) > 10.0,
            "TCP-8M should clearly help ammp: base {} tcp {}",
            base.ipc,
            tcp.ipc
        );
    }

    #[test]
    fn suite_runner_covers_all_benchmarks() {
        let benches: Vec<_> = suite().into_iter().take(3).collect();
        let s = run_suite(&benches, 20_000, &SystemConfig::table1(), || Box::new(NullPrefetcher));
        assert_eq!(s.runs.len(), 3);
        assert!(s.geomean_ipc() > 0.0);
        assert!(s.get("fma3d").is_some());
        assert!(s.get("nonexistent").is_none());
    }

    #[test]
    fn parallel_suite_matches_sequential() {
        let benches: Vec<_> = suite().into_iter().take(5).collect();
        let cfg = SystemConfig::table1();
        let seq = run_suite(&benches, 25_000, &cfg, || Box::new(Tcp::new(TcpConfig::tcp_8k())));
        let par =
            run_suite_parallel(&benches, 25_000, &cfg, || Box::new(Tcp::new(TcpConfig::tcp_8k())));
        assert_eq!(seq.runs.len(), par.runs.len());
        for (a, b) in seq.runs.iter().zip(&par.runs) {
            assert_eq!(a.benchmark, b.benchmark, "order preserved");
            assert_eq!(a.cycles, b.cycles, "{}", a.benchmark);
            assert_eq!(a.stats, b.stats, "{}", a.benchmark);
        }
    }

    #[test]
    #[should_panic(expected = "baseline IPC")]
    fn improvement_rejects_zero_base() {
        let b = suite().into_iter().next().unwrap();
        let mut r = run_benchmark(&b, 5_000, &SystemConfig::table1(), Box::new(NullPrefetcher));
        let good = r.clone();
        r.ipc = 0.0;
        let _ = ipc_improvement(&r, &good);
    }
}
