//! Run driver: one benchmark × one prefetcher → timing and traffic
//! results; suite driver for all 26 benchmarks.
//!
//! Two tiers of API live here:
//!
//! * the classic panicking runners ([`run_benchmark`],
//!   [`run_benchmark_warm`], [`ipc_improvement`]) used by the experiment
//!   harness where inputs are known-good; and
//! * the fault-tolerant tier ([`try_run_benchmark`],
//!   [`try_run_benchmark_warm`], [`try_ipc_improvement`]) that validates
//!   the machine first, supervises forward progress with a [`Watchdog`],
//!   and returns typed [`SimError`]s instead of panicking.
//!
//! The suite runners ([`run_suite`], [`run_suite_parallel`]) sit on the
//! fault-tolerant tier: every benchmark executes inside a panic boundary
//! and its result is recorded as a [`RunOutcome`], so one degenerate
//! workload produces a structured `Failed` entry instead of aborting the
//! other 25 benchmarks.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::error::{RunError, SimError};
use crate::SystemConfig;
use tcp_cache::{HierarchyStats, MemoryHierarchy, Prefetcher};
use tcp_cpu::{OooCore, SteppedCore};
use tcp_workloads::Benchmark;

/// The outcome of simulating one benchmark with one prefetcher.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Prefetcher table storage in bytes.
    pub prefetcher_bytes: usize,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Total cycles.
    pub cycles: u64,
    /// Micro-ops committed.
    pub ops: u64,
    /// Hierarchy counters (finalized).
    pub stats: HierarchyStats,
}

/// Forward-progress supervision for a run.
///
/// A healthy Table 1 machine commits an op every couple of cycles; even a
/// pathological all-miss stream with full MSHR stalls stays well under a
/// few hundred cycles per committed op. A run whose cycles-per-op ratio
/// blows past [`Watchdog::max_cycles_per_op`] is wedged — a degenerate
/// configuration or adversarial workload has effectively stopped the
/// machine — and is aborted with [`RunError::Wedged`] instead of spinning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Watchdog {
    /// Abort when `cycles > max_cycles_per_op × committed ops` at a
    /// checkpoint.
    pub max_cycles_per_op: u64,
    /// Ops between checkpoints. Smaller intervals catch wedges sooner and
    /// cost a little more bookkeeping.
    pub check_interval_ops: u64,
}

impl Default for Watchdog {
    /// 10 000 cycles per committed op, checked every 8 192 ops: two
    /// orders of magnitude above any physically meaningful machine, so
    /// real configurations never trip it.
    fn default() -> Self {
        Watchdog {
            max_cycles_per_op: 10_000,
            check_interval_ops: 8_192,
        }
    }
}

impl Watchdog {
    /// A watchdog with the given cycles-per-op cap and the default
    /// checkpoint interval.
    pub fn with_max_cycles_per_op(max_cycles_per_op: u64) -> Self {
        Watchdog {
            max_cycles_per_op,
            ..Watchdog::default()
        }
    }
}

/// Simulates `bench` for `n_ops` micro-ops on the machine `cfg` with the
/// given prefetch engine.
///
/// This is the classic panicking form; [`try_run_benchmark`] is the
/// checked equivalent.
///
/// # Examples
///
/// See the crate-level example.
pub fn run_benchmark(
    bench: &Benchmark,
    n_ops: u64,
    cfg: &SystemConfig,
    prefetcher: Box<dyn Prefetcher>,
) -> RunResult {
    run_benchmark_warm(bench, n_ops / 2, n_ops, cfg, prefetcher)
}

/// Like [`run_benchmark`] with an explicit warm-up: the first
/// `warmup_ops` micro-ops prime caches and predictor tables unmeasured,
/// then `n_ops` are measured — the paper's skip-then-measure methodology.
pub fn run_benchmark_warm(
    bench: &Benchmark,
    warmup_ops: u64,
    n_ops: u64,
    cfg: &SystemConfig,
    prefetcher: Box<dyn Prefetcher>,
) -> RunResult {
    let name = prefetcher.name().to_owned();
    let bytes = prefetcher.storage_bytes();
    let mut hierarchy = MemoryHierarchy::new(cfg.hierarchy, prefetcher);
    let mut core = OooCore::new(cfg.core);
    let run = core.run_with_warmup(
        bench.generator(warmup_ops + n_ops),
        warmup_ops,
        &mut hierarchy,
    );
    let stats = hierarchy.finalize();
    RunResult {
        benchmark: bench.name.to_owned(),
        prefetcher: name,
        prefetcher_bytes: bytes,
        ipc: run.ipc(),
        cycles: run.cycles,
        ops: run.ops,
        stats,
    }
}

/// Checked run: validates `cfg`, then simulates `bench` for `n_ops`
/// micro-ops under the default [`Watchdog`] (with the usual half-length
/// warm-up), returning typed errors instead of panicking or spinning.
///
/// # Errors
///
/// [`SimError::Config`] when the machine cannot exist and
/// [`SimError::Run`] ([`RunError::Wedged`]) when the watchdog aborts a
/// run that stopped making forward progress.
///
/// # Examples
///
/// ```
/// use tcp_sim::{try_run_benchmark, SystemConfig};
/// use tcp_cache::NullPrefetcher;
/// use tcp_workloads::suite;
///
/// let bench = &suite()[0];
/// let ok = try_run_benchmark(bench, 10_000, &SystemConfig::table1(), Box::new(NullPrefetcher));
/// assert!(ok.is_ok());
///
/// let mut broken = SystemConfig::table1();
/// broken.hierarchy.l1_mshrs = 0;
/// let err = try_run_benchmark(bench, 10_000, &broken, Box::new(NullPrefetcher));
/// assert!(err.is_err());
/// ```
pub fn try_run_benchmark(
    bench: &Benchmark,
    n_ops: u64,
    cfg: &SystemConfig,
    prefetcher: Box<dyn Prefetcher>,
) -> Result<RunResult, SimError> {
    try_run_benchmark_warm(
        bench,
        n_ops / 2,
        n_ops,
        cfg,
        prefetcher,
        &Watchdog::default(),
    )
}

/// Checked run with explicit warm-up and watchdog. Produces results
/// identical to [`run_benchmark_warm`] for healthy runs (both drive the
/// same scheduling state op by op).
///
/// # Errors
///
/// See [`try_run_benchmark`].
pub fn try_run_benchmark_warm(
    bench: &Benchmark,
    warmup_ops: u64,
    n_ops: u64,
    cfg: &SystemConfig,
    prefetcher: Box<dyn Prefetcher>,
    watchdog: &Watchdog,
) -> Result<RunResult, SimError> {
    cfg.validate()?;
    let name = prefetcher.name().to_owned();
    let bytes = prefetcher.storage_bytes();
    let mut hierarchy = MemoryHierarchy::new(cfg.hierarchy, prefetcher);
    let mut core = SteppedCore::new(cfg.core);
    let gen = bench.generator(warmup_ops + n_ops);
    let interval = watchdog.check_interval_ops.max(1);
    let mut i: u64 = 0;
    for op in gen {
        if i == warmup_ops && warmup_ops > 0 {
            core.begin_measurement();
            hierarchy.reset_stats();
        }
        core.step(op, &mut hierarchy);
        i += 1;
        if i.is_multiple_of(interval) {
            let (ops, cycles) = (core.measured_ops(), core.cycles());
            if cycles > watchdog.max_cycles_per_op.saturating_mul(ops.max(1)) {
                return Err(RunError::Wedged {
                    benchmark: bench.name.to_owned(),
                    ops,
                    cycles,
                    max_cycles_per_op: watchdog.max_cycles_per_op,
                }
                .into());
            }
        }
    }
    let mut run = core.snapshot();
    // Mirror the batch runner's accounting for the degenerate all-warmup
    // case (measurement boundary never crossed): zero measured ops, not
    // the whole warmup.
    run.ops = i.saturating_sub(warmup_ops.min(i));
    let stats = hierarchy.finalize();
    Ok(RunResult {
        benchmark: bench.name.to_owned(),
        prefetcher: name,
        prefetcher_bytes: bytes,
        ipc: run.ipc(),
        cycles: run.cycles,
        ops: run.ops,
        stats,
    })
}

/// IPC improvement of `new` over `base`, in percent (the y-axis of
/// Figures 1, 11, and 14).
///
/// # Errors
///
/// [`RunError::ZeroBaselineIpc`] (as [`SimError::Run`]) when `base.ipc`
/// is not positive — the ratio would be meaningless.
///
/// # Examples
///
/// ```
/// # use tcp_sim::{try_ipc_improvement, RunResult};
/// # use tcp_cache::HierarchyStats;
/// # fn result(ipc: f64) -> RunResult {
/// #     RunResult { benchmark: "b".into(), prefetcher: "p".into(), prefetcher_bytes: 0,
/// #                 ipc, cycles: 1, ops: 1, stats: HierarchyStats::default() }
/// # }
/// assert!((try_ipc_improvement(&result(1.0), &result(1.2)).unwrap() - 20.0).abs() < 1e-9);
/// assert!(try_ipc_improvement(&result(0.0), &result(1.2)).is_err());
/// ```
pub fn try_ipc_improvement(base: &RunResult, new: &RunResult) -> Result<f64, SimError> {
    if base.ipc > 0.0 {
        Ok((new.ipc / base.ipc - 1.0) * 100.0)
    } else {
        Err(RunError::ZeroBaselineIpc {
            benchmark: base.benchmark.clone(),
        }
        .into())
    }
}

/// Panicking form of [`try_ipc_improvement`], for harness code with
/// known-good baselines.
///
/// # Panics
///
/// Panics if `base.ipc` is not positive.
pub fn ipc_improvement(base: &RunResult, new: &RunResult) -> f64 {
    // tcp-lint: allow(panic-in-library) — documented panicking wrapper; fallible form is try_ipc_improvement
    try_ipc_improvement(base, new).unwrap_or_else(|e| panic!("baseline IPC must be positive: {e}"))
}

/// The recorded fate of one benchmark inside a suite run.
#[derive(Debug)]
pub enum RunOutcome {
    /// The benchmark simulated to completion.
    Ok(RunResult),
    /// The benchmark failed; the rest of the suite was unaffected.
    Failed {
        /// Benchmark that failed.
        benchmark: String,
        /// Why it failed (panic, wedge, or invalid configuration).
        reason: SimError,
    },
}

impl RunOutcome {
    /// The successful result, if any.
    pub fn ok(&self) -> Option<&RunResult> {
        match self {
            RunOutcome::Ok(r) => Some(r),
            RunOutcome::Failed { .. } => None,
        }
    }

    /// The benchmark name, for either outcome.
    pub fn benchmark(&self) -> &str {
        match self {
            RunOutcome::Ok(r) => &r.benchmark,
            RunOutcome::Failed { benchmark, .. } => benchmark,
        }
    }
}

/// Results for a whole suite under one prefetcher configuration.
///
/// Holds one [`RunOutcome`] per requested benchmark, in suite order: a
/// suite run completes (and aggregates over its healthy members) even
/// when individual benchmarks fail.
#[derive(Debug, Default)]
pub struct SuiteResult {
    /// Per-benchmark outcomes, in suite order.
    pub outcomes: Vec<RunOutcome>,
}

impl SuiteResult {
    /// Successful per-benchmark results, in suite order.
    pub fn runs(&self) -> impl Iterator<Item = &RunResult> {
        self.outcomes.iter().filter_map(RunOutcome::ok)
    }

    /// Failed benchmarks with their errors, in suite order.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &SimError)> {
        self.outcomes.iter().filter_map(|o| match o {
            RunOutcome::Failed { benchmark, reason } => Some((benchmark.as_str(), reason)),
            RunOutcome::Ok(_) => None,
        })
    }

    /// Number of benchmarks that completed.
    pub fn ok_count(&self) -> usize {
        self.runs().count()
    }

    /// Number of benchmarks that failed.
    pub fn failed_count(&self) -> usize {
        self.outcomes.len() - self.ok_count()
    }

    /// Geometric mean IPC over the suite's successful runs, or `None`
    /// when it is undefined: no successful runs, or a run with
    /// non-positive (or non-finite) IPC.
    pub fn geomean_ipc(&self) -> Option<f64> {
        let ipcs: Vec<f64> = self.runs().map(|r| r.ipc).collect();
        if ipcs.is_empty() || ipcs.iter().any(|&v| !(v > 0.0 && v.is_finite())) {
            return None;
        }
        let log_sum: f64 = ipcs.iter().map(|v| v.ln()).sum();
        Some((log_sum / ipcs.len() as f64).exp())
    }

    /// Finds the result for a benchmark by name.
    pub fn get(&self, benchmark: &str) -> Option<&RunResult> {
        self.runs().find(|r| r.benchmark == benchmark)
    }

    /// Geometric-mean IPC improvement over `base`, in percent, or `None`
    /// when either suite's geomean is undefined (empty suite, zero or
    /// non-finite IPC anywhere).
    pub fn geomean_improvement(&self, base: &SuiteResult) -> Option<f64> {
        match (self.geomean_ipc(), base.geomean_ipc()) {
            (Some(new), Some(base)) => Some((new / base - 1.0) * 100.0),
            _ => None,
        }
    }
}

/// Renders a panic payload as text for [`RunError::Panicked`].
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one benchmark inside a panic boundary with validation and the
/// default watchdog, converting every failure mode into a [`RunOutcome`].
fn protected_run(
    bench: &Benchmark,
    n_ops: u64,
    cfg: &SystemConfig,
    factory: impl FnOnce() -> Box<dyn Prefetcher>,
) -> RunOutcome {
    // AssertUnwindSafe: on panic the per-run core, hierarchy, and
    // prefetcher are discarded wholesale, so no witness of broken
    // invariants survives the boundary.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        try_run_benchmark_warm(
            bench,
            n_ops / 2,
            n_ops,
            cfg,
            factory(),
            &Watchdog::default(),
        )
    }));
    match caught {
        Ok(Ok(result)) => RunOutcome::Ok(result),
        Ok(Err(reason)) => RunOutcome::Failed {
            benchmark: bench.name.to_owned(),
            reason,
        },
        Err(payload) => RunOutcome::Failed {
            benchmark: bench.name.to_owned(),
            reason: RunError::Panicked {
                benchmark: bench.name.to_owned(),
                reason: panic_reason(payload),
            }
            .into(),
        },
    }
}

/// Runs every benchmark in `benchmarks` for `n_ops` micro-ops, building a
/// fresh prefetcher per benchmark from `factory`. Each benchmark runs
/// inside a panic boundary: a failing benchmark yields a
/// [`RunOutcome::Failed`] entry while the others complete normally.
pub fn run_suite<F>(
    benchmarks: &[Benchmark],
    n_ops: u64,
    cfg: &SystemConfig,
    factory: F,
) -> SuiteResult
where
    F: Fn() -> Box<dyn Prefetcher>,
{
    let outcomes = benchmarks
        .iter()
        .map(|b| protected_run(b, n_ops, cfg, &factory))
        .collect();
    SuiteResult { outcomes }
}

/// Applies `f` to every benchmark on worker threads, preserving order.
/// The building block behind [`run_suite_parallel`] and the experiment
/// harness's per-figure fan-out: each benchmark's simulations are
/// independent and deterministic, so parallelism changes only wall-clock
/// time.
///
/// A panic inside `f` does not abort the other benchmarks: every
/// remaining benchmark still runs, and the first panic (in suite order)
/// is re-raised once all workers have finished. Callers who need panics
/// recorded rather than propagated should catch them inside `f` — see
/// [`run_suite_parallel`], which maps benchmarks to [`RunOutcome`]s.
pub fn map_benchmarks_parallel<T, F>(benchmarks: &[Benchmark], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Benchmark) -> T + Sync,
{
    map_benchmarks_parallel_with_threads(benchmarks, crate::sweep::default_threads(), f)
}

/// [`map_benchmarks_parallel`] with an explicit worker-thread count
/// instead of the machine's available parallelism. Results are
/// independent of `threads` — the determinism tests sweep 1, 2, and 8
/// workers and require identical outcomes.
///
/// Scheduling rides on the work-stealing pool of
/// [`crate::sweep::run_jobs_stealing`]: each worker owns a contiguous
/// block of suite indices and steals from other blocks' tails when its
/// own drains, so one pathologically slow benchmark does not leave the
/// remaining workers idle behind a shared-counter tail.
///
/// # Panics
///
/// Panics if `threads` is zero, or re-raises the first (in suite order)
/// panic from `f` after every benchmark has been processed.
pub fn map_benchmarks_parallel_with_threads<T, F>(
    benchmarks: &[Benchmark],
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&Benchmark) -> T + Sync,
{
    crate::sweep::run_jobs_stealing(benchmarks.len(), threads, |i| f(&benchmarks[i]))
}

/// Like [`run_suite`] but simulating benchmarks on worker threads.
/// Results are identical to the sequential runner (each benchmark's
/// simulation is self-contained and deterministic); only wall-clock time
/// changes. The prefetcher factory must be callable from any thread and
/// produce thread-transferable engines — every engine in this workspace
/// qualifies.
///
/// Fault tolerance: each benchmark runs inside a panic boundary with
/// config validation and the default [`Watchdog`]. A benchmark that
/// panics, wedges, or cannot be configured becomes a
/// [`RunOutcome::Failed`] entry; the suite itself always returns.
pub fn run_suite_parallel<F>(
    benchmarks: &[Benchmark],
    n_ops: u64,
    cfg: &SystemConfig,
    factory: F,
) -> SuiteResult
where
    F: Fn() -> Box<dyn Prefetcher + Send> + Sync,
{
    let outcomes = map_benchmarks_parallel(benchmarks, |b| {
        protected_run(b, n_ops, cfg, || factory() as Box<dyn Prefetcher>)
    });
    SuiteResult { outcomes }
}

/// [`run_suite_parallel`] with an explicit worker-thread count. Outcomes
/// are identical for any `threads >= 1`: each benchmark's simulation is
/// self-contained and deterministic, and results land in suite order
/// regardless of which worker ran them.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn run_suite_parallel_with_threads<F>(
    benchmarks: &[Benchmark],
    threads: usize,
    n_ops: u64,
    cfg: &SystemConfig,
    factory: F,
) -> SuiteResult
where
    F: Fn() -> Box<dyn Prefetcher + Send> + Sync,
{
    let outcomes = map_benchmarks_parallel_with_threads(benchmarks, threads, |b| {
        protected_run(b, n_ops, cfg, || factory() as Box<dyn Prefetcher>)
    });
    SuiteResult { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_cache::NullPrefetcher;
    use tcp_core::{Tcp, TcpConfig};
    use tcp_workloads::suite;

    const TEST_OPS: u64 = 60_000;

    #[test]
    fn run_produces_sane_numbers() {
        let b = suite().into_iter().find(|b| b.name == "gzip").unwrap();
        let r = run_benchmark(
            &b,
            TEST_OPS,
            &SystemConfig::table1(),
            Box::new(NullPrefetcher),
        );
        assert_eq!(r.ops, TEST_OPS);
        assert!(r.ipc > 0.05 && r.ipc < 8.0, "ipc {}", r.ipc);
        assert_eq!(r.stats.accesses(), r.stats.loads + r.stats.stores);
        assert!(r.stats.l1_misses > 0);
    }

    #[test]
    fn deterministic_runs() {
        let b = suite().into_iter().find(|b| b.name == "crafty").unwrap();
        let r1 = run_benchmark(
            &b,
            TEST_OPS,
            &SystemConfig::table1(),
            Box::new(NullPrefetcher),
        );
        let r2 = run_benchmark(
            &b,
            TEST_OPS,
            &SystemConfig::table1(),
            Box::new(NullPrefetcher),
        );
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn checked_runner_matches_batch_runner_exactly() {
        let b = suite().into_iter().find(|b| b.name == "gzip").unwrap();
        let cfg = SystemConfig::table1();
        let batch = run_benchmark(&b, TEST_OPS, &cfg, Box::new(NullPrefetcher));
        let checked = try_run_benchmark(&b, TEST_OPS, &cfg, Box::new(NullPrefetcher)).unwrap();
        assert_eq!(batch.cycles, checked.cycles);
        assert_eq!(batch.ops, checked.ops);
        assert_eq!(batch.stats, checked.stats);
        assert_eq!(batch.ipc, checked.ipc);
    }

    #[test]
    fn checked_runner_matches_batch_runner_with_explicit_warmup() {
        let b = suite().into_iter().find(|b| b.name == "art").unwrap();
        let cfg = SystemConfig::table1();
        // Includes the degenerate all-warmup window (n_ops = 0), where
        // both runners must report zero measured ops.
        for (warmup, n_ops) in [(0u64, 30_000u64), (10_000, 30_000), (10_000, 0)] {
            let batch = run_benchmark_warm(&b, warmup, n_ops, &cfg, Box::new(NullPrefetcher));
            let checked = try_run_benchmark_warm(
                &b,
                warmup,
                n_ops,
                &cfg,
                Box::new(NullPrefetcher),
                &Watchdog::default(),
            )
            .unwrap();
            assert_eq!(
                batch.cycles, checked.cycles,
                "warmup {warmup} n_ops {n_ops}"
            );
            assert_eq!(batch.ops, checked.ops, "warmup {warmup} n_ops {n_ops}");
            assert_eq!(batch.ipc, checked.ipc, "warmup {warmup} n_ops {n_ops}");
            assert_eq!(batch.stats, checked.stats, "warmup {warmup} n_ops {n_ops}");
        }
    }

    #[test]
    fn checked_runner_rejects_invalid_config() {
        let b = suite().into_iter().next().unwrap();
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.l1_mshrs = 0;
        let err = try_run_benchmark(&b, 5_000, &cfg, Box::new(NullPrefetcher)).unwrap_err();
        assert!(matches!(err, SimError::Config(_)), "{err}");
    }

    #[test]
    fn watchdog_aborts_a_wedged_run() {
        // A valid machine that makes no real progress: 25M-cycle memory
        // behind a single MSHR serialises every miss, so the ratio blows
        // past the default 10 000 cycles/op by the first checkpoint.
        let b = suite().into_iter().find(|b| b.name == "gzip").unwrap();
        let err = try_run_benchmark_warm(
            &b,
            0,
            50_000,
            &crate::faults::wedged_config(),
            Box::new(NullPrefetcher),
            &Watchdog::default(),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                SimError::Run(RunError::Wedged {
                    max_cycles_per_op: 10_000,
                    ..
                })
            ),
            "{err}"
        );
    }

    #[test]
    fn ideal_l2_beats_real_l2_on_memory_bound_benchmark() {
        let b = suite().into_iter().find(|b| b.name == "art").unwrap();
        let real = run_benchmark(
            &b,
            TEST_OPS,
            &SystemConfig::table1(),
            Box::new(NullPrefetcher),
        );
        let ideal = run_benchmark(
            &b,
            TEST_OPS,
            &SystemConfig::table1_ideal_l2(),
            Box::new(NullPrefetcher),
        );
        assert!(
            ideal.ipc > 1.5 * real.ipc,
            "art must be strongly memory bound: ideal {} vs real {}",
            ideal.ipc,
            real.ipc
        );
    }

    #[test]
    fn tcp_helps_a_correlated_benchmark() {
        let b = suite().into_iter().find(|b| b.name == "ammp").unwrap();
        let base = run_benchmark(
            &b,
            200_000,
            &SystemConfig::table1(),
            Box::new(NullPrefetcher),
        );
        let tcp = run_benchmark(
            &b,
            200_000,
            &SystemConfig::table1(),
            Box::new(Tcp::new(TcpConfig::tcp_8m())),
        );
        assert!(
            ipc_improvement(&base, &tcp) > 10.0,
            "TCP-8M should clearly help ammp: base {} tcp {}",
            base.ipc,
            tcp.ipc
        );
    }

    #[test]
    fn suite_runner_covers_all_benchmarks() {
        let benches: Vec<_> = suite().into_iter().take(3).collect();
        let s = run_suite(&benches, 20_000, &SystemConfig::table1(), || {
            Box::new(NullPrefetcher)
        });
        assert_eq!(s.outcomes.len(), 3);
        assert_eq!(s.ok_count(), 3);
        assert_eq!(s.failed_count(), 0);
        assert!(s.geomean_ipc().unwrap() > 0.0);
        assert!(s.get("fma3d").is_some());
        assert!(s.get("nonexistent").is_none());
    }

    #[test]
    fn parallel_suite_matches_sequential() {
        let benches: Vec<_> = suite().into_iter().take(5).collect();
        let cfg = SystemConfig::table1();
        let seq = run_suite(&benches, 25_000, &cfg, || {
            Box::new(Tcp::new(TcpConfig::tcp_8k()))
        });
        let par = run_suite_parallel(&benches, 25_000, &cfg, || {
            Box::new(Tcp::new(TcpConfig::tcp_8k()))
        });
        assert_eq!(seq.outcomes.len(), par.outcomes.len());
        assert_eq!(par.failed_count(), 0);
        for (a, b) in seq.runs().zip(par.runs()) {
            assert_eq!(a.benchmark, b.benchmark, "order preserved");
            assert_eq!(a.cycles, b.cycles, "{}", a.benchmark);
            assert_eq!(a.stats, b.stats, "{}", a.benchmark);
        }
    }

    #[test]
    fn parallel_suite_is_deterministic_across_thread_counts() {
        let benches: Vec<_> = suite().into_iter().take(6).collect();
        let cfg = SystemConfig::table1();
        let run = |threads| {
            run_suite_parallel_with_threads(&benches, threads, 20_000, &cfg, || {
                Box::new(Tcp::new(TcpConfig::tcp_8k()))
            })
        };
        let reference = run(1);
        assert_eq!(reference.failed_count(), 0);
        for threads in [2, 8] {
            let s = run(threads);
            assert_eq!(
                s.outcomes.len(),
                reference.outcomes.len(),
                "{threads} threads"
            );
            for (a, b) in reference.runs().zip(s.runs()) {
                assert_eq!(
                    a.benchmark, b.benchmark,
                    "{threads} threads: order preserved"
                );
                assert_eq!(a.cycles, b.cycles, "{threads} threads: {}", a.benchmark);
                assert_eq!(a.ipc, b.ipc, "{threads} threads: {}", a.benchmark);
                assert_eq!(a.stats, b.stats, "{threads} threads: {}", a.benchmark);
            }
        }
    }

    #[test]
    fn parallel_suite_isolates_a_panicking_benchmark_at_any_thread_count() {
        // A detonating benchmark sandwiched between healthy ones: every
        // thread count must record exactly one Failed entry in suite
        // order and identical results for the survivors.
        let mut benches: Vec<_> = suite().into_iter().take(4).collect();
        benches.insert(2, crate::faults::panicking_benchmark());
        let cfg = SystemConfig::table1();
        let run = |threads| {
            run_suite_parallel_with_threads(&benches, threads, 15_000, &cfg, || {
                Box::new(NullPrefetcher)
            })
        };
        let reference = run(1);
        assert_eq!(reference.ok_count(), 4);
        assert_eq!(reference.failed_count(), 1);
        assert!(matches!(&reference.outcomes[2], RunOutcome::Failed { .. }));
        for threads in [2, 8] {
            let s = run(threads);
            assert_eq!(s.ok_count(), 4, "{threads} threads");
            assert!(
                matches!(
                    &s.outcomes[2],
                    RunOutcome::Failed {
                        reason: SimError::Run(RunError::Panicked { .. }),
                        ..
                    }
                ),
                "{threads} threads: failure stays at its suite position"
            );
            for (a, b) in reference.runs().zip(s.runs()) {
                assert_eq!(a.benchmark, b.benchmark, "{threads} threads");
                assert_eq!(a.cycles, b.cycles, "{threads} threads: {}", a.benchmark);
                assert_eq!(a.stats, b.stats, "{threads} threads: {}", a.benchmark);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_worker_threads_is_rejected() {
        let benches: Vec<_> = suite().into_iter().take(1).collect();
        let _ =
            run_suite_parallel_with_threads(&benches, 0, 1_000, &SystemConfig::table1(), || {
                Box::new(NullPrefetcher)
            });
    }

    #[test]
    fn empty_suite_has_no_geomean() {
        let s = SuiteResult::default();
        assert_eq!(s.geomean_ipc(), None);
        assert_eq!(s.geomean_improvement(&SuiteResult::default()), None);
    }

    #[test]
    fn zero_ipc_run_makes_geomean_undefined_not_nan() {
        let b = suite().into_iter().next().unwrap();
        let mut s = run_suite(&[b], 10_000, &SystemConfig::table1(), || {
            Box::new(NullPrefetcher)
        });
        let healthy = s.geomean_ipc().unwrap();
        assert!(healthy > 0.0);
        if let RunOutcome::Ok(r) = &mut s.outcomes[0] {
            r.ipc = 0.0;
        }
        assert_eq!(s.geomean_ipc(), None);
    }

    #[test]
    fn geomean_improvement_of_healthy_suites_is_finite() {
        let benches: Vec<_> = suite().into_iter().take(2).collect();
        let cfg = SystemConfig::table1();
        let base = run_suite(&benches, 20_000, &cfg, || Box::new(NullPrefetcher));
        let tcp = run_suite(&benches, 20_000, &cfg, || {
            Box::new(Tcp::new(TcpConfig::tcp_8k()))
        });
        let imp = tcp.geomean_improvement(&base).unwrap();
        assert!(imp.is_finite());
    }

    #[test]
    fn try_improvement_rejects_zero_base_without_panicking() {
        let b = suite().into_iter().next().unwrap();
        let mut r = run_benchmark(&b, 5_000, &SystemConfig::table1(), Box::new(NullPrefetcher));
        let good = r.clone();
        r.ipc = 0.0;
        let err = try_ipc_improvement(&r, &good).unwrap_err();
        assert!(
            matches!(err, SimError::Run(RunError::ZeroBaselineIpc { .. })),
            "{err}"
        );
    }

    #[test]
    #[should_panic(expected = "baseline IPC")]
    fn improvement_rejects_zero_base() {
        let b = suite().into_iter().next().unwrap();
        let mut r = run_benchmark(&b, 5_000, &SystemConfig::table1(), Box::new(NullPrefetcher));
        let good = r.clone();
        r.ipc = 0.0;
        let _ = ipc_improvement(&r, &good);
    }
}
