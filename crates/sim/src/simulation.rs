//! Chunked, inspectable simulation: run a benchmark in steps, reading
//! statistics between chunks.

use crate::SystemConfig;
use tcp_cache::{HierarchyStats, MemoryHierarchy, Prefetcher};
use tcp_cpu::{CoreRun, SteppedCore};
use tcp_workloads::{Benchmark, WorkloadGen};

/// Progress after one [`Simulation::step`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepProgress {
    /// Micro-ops executed so far (total).
    pub ops: u64,
    /// Cycles elapsed so far.
    pub cycles: u64,
    /// The op stream is exhausted.
    pub done: bool,
}

/// A paused-and-resumable simulation of one benchmark on one machine.
///
/// Where [`crate::run_benchmark`] runs to completion, `Simulation` lets a
/// tool advance in chunks and watch statistics evolve — e.g. to find when
/// a prefetcher's coverage ramps up, or to animate warm-up behaviour.
///
/// # Examples
///
/// ```
/// use tcp_sim::{Simulation, SystemConfig};
/// use tcp_cache::NullPrefetcher;
/// use tcp_workloads::suite;
///
/// let bench = suite().into_iter().next().unwrap();
/// let mut sim = Simulation::new(&bench, 10_000, &SystemConfig::table1(), Box::new(NullPrefetcher));
/// let p1 = sim.step(4_000);
/// assert_eq!(p1.ops, 4_000);
/// assert!(!p1.done);
/// let p2 = sim.step(100_000); // clamped at the stream end
/// assert!(p2.done);
/// assert_eq!(p2.ops, 10_000);
/// ```
pub struct Simulation {
    core: SteppedCore,
    hierarchy: MemoryHierarchy,
    gen: WorkloadGen,
    total_ops: u64,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("ops_executed", &self.core.ops_executed())
            .field("total_ops", &self.total_ops)
            .finish()
    }
}

impl Simulation {
    /// Prepares a simulation of `bench` for `n_ops` micro-ops.
    pub fn new(
        bench: &Benchmark,
        n_ops: u64,
        cfg: &SystemConfig,
        prefetcher: Box<dyn Prefetcher>,
    ) -> Self {
        Simulation {
            core: SteppedCore::new(cfg.core),
            hierarchy: MemoryHierarchy::new(cfg.hierarchy, prefetcher),
            gen: bench.generator(n_ops),
            total_ops: n_ops,
        }
    }

    /// Advances by up to `chunk` micro-ops.
    pub fn step(&mut self, chunk: u64) -> StepProgress {
        let mut advanced = 0;
        while advanced < chunk {
            let Some(op) = self.gen.next() else { break };
            self.core.step(op, &mut self.hierarchy);
            advanced += 1;
        }
        StepProgress {
            ops: self.core.ops_executed(),
            cycles: self.core.cycles(),
            done: self.core.ops_executed() >= self.total_ops,
        }
    }

    /// IPC over everything executed so far.
    pub fn ipc(&self) -> f64 {
        self.core.ipc()
    }

    /// Live hierarchy statistics (not finalized; "prefetched extra" for
    /// still-resident lines is only accounted at [`Simulation::finish`]).
    pub fn stats(&self) -> &HierarchyStats {
        self.hierarchy.stats()
    }

    /// Core-side progress snapshot.
    pub fn core_run(&self) -> CoreRun {
        self.core.snapshot()
    }

    /// Finishes the run: drains in-flight fills and returns the finalized
    /// hierarchy statistics alongside the core snapshot.
    pub fn finish(mut self) -> (CoreRun, HierarchyStats) {
        let stats = self.hierarchy.finalize();
        (self.core.snapshot(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_cache::NullPrefetcher;
    use tcp_core::{Tcp, TcpConfig};
    use tcp_workloads::suite;

    #[test]
    fn chunked_run_matches_batch_run() {
        let bench = suite().into_iter().find(|b| b.name == "art").unwrap();
        let cfg = SystemConfig::table1();
        let n = 60_000;

        let mut sim = Simulation::new(&bench, n, &cfg, Box::new(Tcp::new(TcpConfig::tcp_8k())));
        let mut done = false;
        while !done {
            done = sim.step(7_000).done;
        }
        let (run, stats) = sim.finish();

        // The batch runner with zero warm-up over the same stream.
        let batch =
            crate::run_benchmark_warm(&bench, 0, n, &cfg, Box::new(Tcp::new(TcpConfig::tcp_8k())));
        assert_eq!(run.ops, batch.ops);
        assert_eq!(run.cycles, batch.cycles);
        assert_eq!(stats, batch.stats);
    }

    #[test]
    fn progress_is_monotonic_and_clamped() {
        let bench = suite().into_iter().next().unwrap();
        let mut sim = Simulation::new(
            &bench,
            5_000,
            &SystemConfig::table1(),
            Box::new(NullPrefetcher),
        );
        let p1 = sim.step(2_000);
        let p2 = sim.step(2_000);
        let p3 = sim.step(9_999);
        assert!(p1.ops < p2.ops && p2.ops < p3.ops);
        assert!(p1.cycles <= p2.cycles && p2.cycles <= p3.cycles);
        assert!(p3.done);
        assert_eq!(p3.ops, 5_000);
        assert!(sim.ipc() > 0.0);
    }

    #[test]
    fn mid_run_stats_are_visible() {
        let bench = suite().into_iter().find(|b| b.name == "gzip").unwrap();
        let mut sim = Simulation::new(
            &bench,
            30_000,
            &SystemConfig::table1(),
            Box::new(NullPrefetcher),
        );
        sim.step(30_000);
        assert!(sim.stats().l1_misses > 0);
        assert!(sim.core_run().loads > 0);
    }

    #[test]
    fn unused_simulation_reports_zero() {
        let bench = suite().into_iter().next().unwrap();
        let sim = Simulation::new(
            &bench,
            100,
            &SystemConfig::table1(),
            Box::new(NullPrefetcher),
        );
        assert_eq!(sim.ipc(), 0.0);
    }
}
