//! Streaming simulation: bounded-memory trace replay and multi-tenant
//! interleaving.
//!
//! The materialized path decodes a whole trace into `Vec<MissRecord>`
//! and only then simulates — peak memory O(trace). The streaming path
//! couples [`tcp_analysis::TraceReader`]'s chunked decode to the
//! core/hierarchy drivers through a [`BoundedRing`], so peak ingestion
//! memory is O(chunk × ring depth) no matter how long the trace is:
//!
//! * [`replay_records`] — the materialized reference: replay decoded
//!   records through a Table 1 core + hierarchy;
//! * [`replay_stream`] — the streaming equivalent, decoding through a
//!   bounded ring; **bit-identical** results to [`replay_records`] over
//!   the same records (the `stream_engine` acceptance suite pins this);
//! * [`TenantMux`] — interleaves K independent tenant streams through
//!   one engine in deterministic round-robin quanta, with per-tenant
//!   statistics, incremental [`TenantSnapshot`]s, and per-tenant fault
//!   isolation (one corrupt trace surfaces as that tenant's
//!   [`TraceError`] without poisoning its siblings);
//! * [`SyntheticTrace`] — an O(1)-memory `Read` source generating a
//!   well-formed trace of any length, for acceptance tests that must
//!   stream traces much larger than the ring.
//!
//! Replay semantics: each [`MissRecord`] becomes one load micro-op
//! (`pc`, `addr`) fed to a [`SteppedCore`] — the persisted miss stream
//! re-executed as a memory-bound instruction stream. Everything here is
//! single-threaded and pull-model, so results are deterministic and the
//! interleaving never changes a tenant's own cycle outputs.

use std::io::{self, Read};

use crate::error::{SimError, TraceError};
use crate::{RunResult, SystemConfig};
use tcp_analysis::{write_trace, MissRecord, TraceReader, STREAM_CHUNK};
use tcp_cache::{HierarchyStats, MemoryHierarchy, Prefetcher};
use tcp_cpu::{MicroOp, SteppedCore};

/// Default ring depth, in chunks of [`STREAM_CHUNK`] records.
pub const DEFAULT_RING_CHUNKS: usize = 4;

/// Tuning for the streaming replay paths.
#[derive(Clone, Copy, Debug)]
pub struct StreamOpts {
    /// Ring capacity in chunks: the ring holds up to
    /// `ring_chunks × STREAM_CHUNK` records. At least 1.
    pub ring_chunks: usize,
    /// Records a tenant replays per round-robin turn. At least 1.
    pub quantum: usize,
    /// Emit a [`TenantSnapshot`] each time a tenant's cycle count
    /// crosses another multiple of this many cycles (0 disables
    /// snapshots).
    pub snapshot_cycles: u64,
}

impl Default for StreamOpts {
    fn default() -> Self {
        StreamOpts {
            ring_chunks: DEFAULT_RING_CHUNKS,
            quantum: 256,
            snapshot_cycles: 0,
        }
    }
}

impl StreamOpts {
    fn validated(self) -> Self {
        assert!(self.ring_chunks >= 1, "ring must hold at least one chunk");
        assert!(self.quantum >= 1, "quantum must be at least one record");
        self
    }

    /// Ring capacity in records: `ring_chunks × STREAM_CHUNK`.
    pub fn ring_capacity(&self) -> usize {
        self.ring_chunks * STREAM_CHUNK
    }
}

/// A fixed-capacity single-threaded ring of miss records: the bounded
/// hand-off between chunked decode and the replay engine. Tracks its
/// high-water mark so tests can assert the memory bound held.
#[derive(Debug)]
pub struct BoundedRing {
    /// Slot storage; grows on first use up to `cap`, then slots are
    /// reused in place — no per-record allocation in steady state.
    buf: Vec<MissRecord>,
    cap: usize,
    head: usize,
    len: usize,
    high_water: usize,
}

impl BoundedRing {
    /// An empty ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity ring cannot make progress");
        BoundedRing {
            buf: Vec::new(),
            cap: capacity,
            head: 0,
            len: 0,
            high_water: 0,
        }
    }

    /// Records currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum records the ring can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.cap - self.len
    }

    /// Most records ever queued at once — the observed peak of the
    /// memory bound.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Queues one record.
    ///
    /// # Panics
    ///
    /// Panics if the ring is full; callers gate refills on
    /// [`BoundedRing::free`].
    pub fn push(&mut self, rec: MissRecord) {
        assert!(self.len < self.cap, "ring overflow");
        let slot = (self.head + self.len) % self.cap;
        // Slots are written in strictly increasing order until the first
        // wrap (pops advance `head` but never shrink `buf`), so a slot
        // equal to the current length is always the next fresh one.
        if slot == self.buf.len() {
            self.buf.push(rec);
        } else {
            self.buf[slot] = rec;
        }
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
    }

    /// Dequeues the oldest record, if any.
    pub fn pop(&mut self) -> Option<MissRecord> {
        if self.len == 0 {
            return None;
        }
        let rec = self.buf[self.head];
        self.head = (self.head + 1) % self.cap;
        self.len -= 1;
        Some(rec)
    }
}

/// One tenant's replay machinery: a stepped core over its own hierarchy.
struct ReplayEngine {
    core: SteppedCore,
    hierarchy: MemoryHierarchy,
}

impl ReplayEngine {
    fn new(cfg: &SystemConfig, prefetcher: Box<dyn Prefetcher>) -> Self {
        ReplayEngine {
            core: SteppedCore::new(cfg.core),
            hierarchy: MemoryHierarchy::new(cfg.hierarchy, prefetcher),
        }
    }

    #[inline]
    fn feed(&mut self, rec: MissRecord) {
        self.core
            .step(MicroOp::load(rec.pc, rec.addr), &mut self.hierarchy);
    }
}

/// Timing and traffic results of replaying a miss trace.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayResult {
    /// Records replayed (one load micro-op each).
    pub records: u64,
    /// Cycles the replay took.
    pub cycles: u64,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Hierarchy counters (finalized).
    pub stats: HierarchyStats,
}

fn finish_engine(mut engine: ReplayEngine, records: u64) -> ReplayResult {
    let run = engine.core.snapshot();
    ReplayResult {
        records,
        cycles: run.cycles,
        ipc: engine.core.ipc(),
        stats: engine.hierarchy.finalize(),
    }
}

/// Replays already-materialized records through a core + hierarchy: the
/// reference the streaming path must match bit for bit.
///
/// # Panics
///
/// Panics if `cfg` violates the core/hierarchy construction constraints
/// (the classic panicking tier, like [`crate::run_benchmark`]).
pub fn replay_records(
    records: &[MissRecord],
    cfg: &SystemConfig,
    prefetcher: Box<dyn Prefetcher>,
) -> ReplayResult {
    let mut engine = ReplayEngine::new(cfg, prefetcher);
    for rec in records {
        engine.feed(*rec);
    }
    finish_engine(engine, records.len() as u64)
}

/// A [`ReplayResult`] plus the streaming pipeline's observed memory
/// telemetry, so callers (and the CI acceptance step) can assert the
/// bound held.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamReplay {
    /// The replay outcome — bit-identical to [`replay_records`] over the
    /// same records.
    pub result: ReplayResult,
    /// Most records ever queued in the ring at once.
    pub ring_high_water: usize,
    /// Ring capacity in records (`ring_chunks × STREAM_CHUNK`).
    pub ring_capacity: usize,
}

/// Replays a serialized trace *while decoding it*, through a bounded
/// ring: peak ingestion memory is `ring_capacity` records regardless of
/// trace length. Tag/set/line fields are re-derived under the L1D
/// geometry of `cfg`.
///
/// # Errors
///
/// [`SimError::Config`] for an invalid machine, [`SimError::Trace`] for
/// a header or payload corruption (the strict single-stream path fails
/// whole; [`TenantMux`] is the graceful multi-stream one).
pub fn replay_stream<R: Read>(
    source: R,
    cfg: &SystemConfig,
    prefetcher: Box<dyn Prefetcher>,
    opts: StreamOpts,
) -> Result<StreamReplay, SimError> {
    let opts = opts.validated();
    cfg.validate().map_err(SimError::Config)?;
    let mut reader = TraceReader::new(source, cfg.hierarchy.l1d)?;
    let mut ring = BoundedRing::new(opts.ring_capacity());
    let mut engine = ReplayEngine::new(cfg, prefetcher);
    let mut records = 0u64;
    let mut exhausted = false;
    loop {
        // Refill: pull whole chunks while a chunk's worth of room is
        // free. The ring never exceeds its capacity; this loop is the
        // entire ingestion memory of the pipeline.
        while !exhausted && ring.free() >= STREAM_CHUNK {
            match reader.next_chunk()? {
                Some(chunk) => {
                    for rec in chunk.records() {
                        ring.push(rec);
                    }
                }
                None => exhausted = true,
            }
        }
        if ring.is_empty() {
            break;
        }
        while let Some(rec) = ring.pop() {
            engine.feed(rec);
            records += 1;
        }
    }
    Ok(StreamReplay {
        result: finish_engine(engine, records),
        ring_high_water: ring.high_water(),
        ring_capacity: ring.capacity(),
    })
}

/// A point-in-time progress report for one tenant, emitted whenever its
/// cycle count crosses a [`StreamOpts::snapshot_cycles`] boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Index of the tenant in submission order.
    pub tenant: usize,
    /// Tenant name.
    pub name: String,
    /// Records replayed so far.
    pub records: u64,
    /// Cycles elapsed so far.
    pub cycles: u64,
    /// L1 misses observed so far.
    pub l1_misses: u64,
}

/// Final outcome for one tenant of a [`TenantMux`] run.
///
/// Not `Clone`: [`TraceError`] can wrap an `io::Error`.
#[derive(Debug)]
pub struct TenantResult {
    /// Tenant name (used as the benchmark name in
    /// [`TenantResult::to_run_result`]).
    pub name: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Prefetcher table storage in bytes.
    pub prefetcher_bytes: usize,
    /// Whole records replayed (the prefix before any corruption).
    pub records: u64,
    /// Cycles the tenant's replay took.
    pub cycles: u64,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Hierarchy counters (finalized).
    pub stats: HierarchyStats,
    /// The corruption that ended this tenant's stream early, if any.
    /// Siblings are unaffected — their results are bit-identical to
    /// solo runs.
    pub error: Option<TraceError>,
    /// Most records this tenant's ring ever held at once.
    pub ring_high_water: usize,
    /// This tenant's ring capacity in records.
    pub ring_capacity: usize,
}

impl TenantResult {
    /// Converts into the [`RunResult`] shape the sweep engine and
    /// `tcp-serve` already speak, with the tenant name as the benchmark.
    pub fn to_run_result(&self) -> RunResult {
        RunResult {
            benchmark: self.name.clone(),
            prefetcher: self.prefetcher.clone(),
            prefetcher_bytes: self.prefetcher_bytes,
            ipc: self.ipc,
            cycles: self.cycles,
            ops: self.records,
            stats: self.stats,
        }
    }
}

/// One tenant lane: its reader (until exhausted or errored), bounded
/// ring, and private replay engine.
struct Lane<R> {
    name: String,
    prefetcher: String,
    prefetcher_bytes: usize,
    reader: Option<TraceReader<R>>,
    ring: BoundedRing,
    engine: ReplayEngine,
    records: u64,
    error: Option<TraceError>,
    next_snapshot: u64,
    done: bool,
}

/// Interleaves K independent tenant trace streams through one run:
/// deterministic round-robin quanta over per-tenant bounded rings, with
/// per-tenant statistics and fault isolation.
///
/// Each tenant owns its core and hierarchy, so the interleaving is an
/// engine-level multiplex — one driver loop, K machines — and a
/// tenant's cycle outputs are bit-identical to a solo [`replay_stream`]
/// of the same trace. A corrupt tenant retires early with its
/// [`TraceError`] and the statistics of the whole-record prefix it did
/// replay; sibling tenants are untouched.
///
/// # Examples
///
/// ```
/// use tcp_cache::NullPrefetcher;
/// use tcp_sim::stream::{StreamOpts, SyntheticTrace, TenantMux};
/// use tcp_sim::SystemConfig;
///
/// let mut mux = TenantMux::new(SystemConfig::table1(), StreamOpts::default());
/// mux.add_tenant("a", SyntheticTrace::new(2_000), Box::new(NullPrefetcher));
/// mux.add_tenant("b", SyntheticTrace::new(1_000), Box::new(NullPrefetcher));
/// let results = mux.run();
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].records, 2_000);
/// assert!(results[1].error.is_none());
/// ```
pub struct TenantMux<R> {
    cfg: SystemConfig,
    opts: StreamOpts,
    lanes: Vec<Lane<R>>,
}

impl<R: Read> TenantMux<R> {
    /// An empty mux over the given machine and streaming options.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` violates the core/hierarchy construction
    /// constraints or `opts` is degenerate (zero ring depth or quantum).
    pub fn new(cfg: SystemConfig, opts: StreamOpts) -> Self {
        assert!(cfg.validate().is_ok(), "invalid machine configuration");
        TenantMux {
            cfg,
            opts: opts.validated(),
            lanes: Vec::new(),
        }
    }

    /// Registers a tenant: a named trace source replayed under its own
    /// prefetcher. A source whose *header* is already corrupt still gets
    /// a lane — the error surfaces in its [`TenantResult`], never as a
    /// construction failure that would take the batch down.
    pub fn add_tenant(&mut self, name: &str, source: R, prefetcher: Box<dyn Prefetcher>) {
        let prefetcher_name = prefetcher.name().to_owned();
        let prefetcher_bytes = prefetcher.storage_bytes();
        let engine = ReplayEngine::new(&self.cfg, prefetcher);
        let (reader, error) = match TraceReader::new(source, self.cfg.hierarchy.l1d) {
            Ok(r) => (Some(r), None),
            Err(e) => (None, Some(e)),
        };
        self.lanes.push(Lane {
            name: name.to_owned(),
            prefetcher: prefetcher_name,
            prefetcher_bytes,
            reader,
            ring: BoundedRing::new(self.opts.ring_capacity()),
            engine,
            records: 0,
            error,
            next_snapshot: self.opts.snapshot_cycles,
            done: false,
        });
    }

    /// Tenants registered so far.
    pub fn tenants(&self) -> usize {
        self.lanes.len()
    }

    /// Runs every tenant to completion without observing snapshots.
    pub fn run(self) -> Vec<TenantResult> {
        self.run_with(|_| {})
    }

    /// Runs every tenant to completion, invoking `sink` for each
    /// incremental [`TenantSnapshot`] (when
    /// [`StreamOpts::snapshot_cycles`] is non-zero).
    pub fn run_with(mut self, mut sink: impl FnMut(TenantSnapshot)) -> Vec<TenantResult> {
        let quantum = self.opts.quantum;
        let every = self.opts.snapshot_cycles;
        loop {
            let mut active = false;
            for (index, lane) in self.lanes.iter_mut().enumerate() {
                if lane.done {
                    continue;
                }
                active = true;
                // Refill this lane's ring by whole chunks. A decode
                // error retires the reader but keeps the ring: whole
                // records already decoded still replay, so the tenant's
                // final statistics cover exactly the prefix before the
                // corruption — same discipline as `TraceStream`.
                while lane.ring.free() >= STREAM_CHUNK {
                    let Some(reader) = lane.reader.as_mut() else {
                        break;
                    };
                    match reader.next_chunk() {
                        Ok(Some(chunk)) => {
                            for rec in chunk.records() {
                                // tcp-lint: allow(alloc-in-hot-loop) — BoundedRing::push writes into a fixed-capacity buffer guarded by free() >= STREAM_CHUNK above
                                lane.ring.push(rec);
                            }
                        }
                        Ok(None) => {
                            lane.reader = None;
                        }
                        Err(e) => {
                            lane.error = Some(e);
                            lane.reader = None;
                        }
                    }
                }
                // One quantum of replay, then yield the turn.
                let mut budget = quantum;
                while budget > 0 {
                    let Some(rec) = lane.ring.pop() else {
                        break;
                    };
                    lane.engine.feed(rec);
                    lane.records += 1;
                    budget -= 1;
                }
                if lane.reader.is_none() && lane.ring.is_empty() {
                    lane.done = true;
                }
                if every > 0 {
                    let cycles = lane.engine.core.cycles();
                    if cycles >= lane.next_snapshot {
                        sink(TenantSnapshot {
                            tenant: index,
                            name: lane.name.clone(),
                            records: lane.records,
                            cycles,
                            l1_misses: lane.engine.hierarchy.stats().l1_misses,
                        });
                        lane.next_snapshot = cycles.saturating_add(every);
                    }
                }
            }
            if !active {
                break;
            }
        }
        self.lanes
            .into_iter()
            .map(|lane| {
                let ring_high_water = lane.ring.high_water();
                let ring_capacity = lane.ring.capacity();
                let records = lane.records;
                let result = finish_engine(lane.engine, records);
                TenantResult {
                    name: lane.name,
                    prefetcher: lane.prefetcher,
                    prefetcher_bytes: lane.prefetcher_bytes,
                    records,
                    cycles: result.cycles,
                    ipc: result.ipc,
                    stats: result.stats,
                    error: lane.error,
                    ring_high_water,
                    ring_capacity,
                }
            })
            .collect()
    }
}

/// An O(1)-memory source of well-formed trace bytes: generates the
/// header and `records` deterministic line-strided load records on
/// demand, without ever materializing the trace. Lets acceptance tests
/// stream traces many times larger than any ring or buffer.
#[derive(Debug)]
pub struct SyntheticTrace {
    total: u64,
    /// Next record index to stage.
    next: u64,
    /// Bytes generated but not yet handed to the caller.
    staged: Vec<u8>,
    pos: usize,
}

/// Records staged per refill of the internal byte buffer.
const SYNTH_BATCH: u64 = 256;

impl SyntheticTrace {
    /// A trace of exactly `records` records.
    pub fn new(records: u64) -> Self {
        let mut staged = Vec::new();
        // tcp-lint: allow(panic-in-library) — io::Write for Vec<u8> is infallible
        write_trace(&mut staged, &[]).expect("writing to a Vec cannot fail");
        // Patch the empty header's count field: same bytes `write_trace`
        // would emit for a `records`-long trace, without materializing it.
        let count_at = staged.len() - 8;
        staged[count_at..].copy_from_slice(&records.to_le_bytes());
        SyntheticTrace {
            total: records,
            next: 0,
            staged,
            pos: 0,
        }
    }

    /// Records this source will emit.
    pub fn records(&self) -> u64 {
        self.total
    }

    /// The pc/addr pair of record `i` — exposed so tests can check the
    /// decoded stream against the generator without materializing it.
    pub fn record_fields(i: u64) -> (u64, u64) {
        let pc = 0x400 + (i % 4096) * 4;
        let addr = 0x0400_0000 + (i * 64) % (1 << 26);
        (pc, addr)
    }

    fn stage_batch(&mut self) {
        self.staged.clear();
        self.pos = 0;
        let batch = (self.total - self.next).min(SYNTH_BATCH);
        for i in self.next..self.next + batch {
            let (pc, addr) = Self::record_fields(i);
            self.staged.extend_from_slice(&pc.to_le_bytes());
            self.staged.extend_from_slice(&addr.to_le_bytes());
        }
        self.next += batch;
    }
}

impl Read for SyntheticTrace {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.pos == self.staged.len() {
            if self.next == self.total {
                return Ok(0);
            }
            self.stage_batch();
        }
        let (_, rest) = self.staged.split_at(self.pos);
        let n = out.len().min(rest.len());
        out[..n].copy_from_slice(&rest[..n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_analysis::read_trace;
    use tcp_cache::NullPrefetcher;

    fn table1() -> SystemConfig {
        SystemConfig::table1()
    }

    fn synth_bytes(n: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        let mut src = SyntheticTrace::new(n);
        src.read_to_end(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn ring_wraps_and_tracks_high_water() {
        let records = read_trace(synth_bytes(10).as_slice(), table1().hierarchy.l1d).unwrap();
        let mut ring = BoundedRing::new(4);
        assert!(ring.is_empty());
        for rep in 0..3 {
            for rec in &records[..3] {
                ring.push(*rec);
            }
            assert_eq!(ring.len(), 3, "rep {rep}");
            assert_eq!(ring.free(), 1);
            assert_eq!(ring.pop().unwrap(), records[0]);
            assert_eq!(ring.pop().unwrap(), records[1]);
            assert_eq!(ring.pop().unwrap(), records[2]);
            assert!(ring.pop().is_none());
        }
        assert_eq!(ring.high_water(), 3);
        assert_eq!(ring.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "ring overflow")]
    fn ring_refuses_overfill() {
        let records = read_trace(synth_bytes(3).as_slice(), table1().hierarchy.l1d).unwrap();
        let mut ring = BoundedRing::new(2);
        for rec in &records {
            ring.push(*rec);
        }
    }

    #[test]
    fn synthetic_trace_round_trips_through_the_materialized_reader() {
        let n = 3_000u64;
        let records = read_trace(synth_bytes(n).as_slice(), table1().hierarchy.l1d).unwrap();
        assert_eq!(records.len() as u64, n);
        for (i, rec) in records.iter().enumerate() {
            let (pc, addr) = SyntheticTrace::record_fields(i as u64);
            assert_eq!(rec.pc.raw(), pc);
            assert_eq!(rec.addr.raw(), addr);
        }
    }

    #[test]
    fn stream_replay_is_bit_identical_to_materialized_replay() {
        let n = 2 * STREAM_CHUNK as u64 + 123;
        let bytes = synth_bytes(n);
        let cfg = table1();
        let records = read_trace(bytes.as_slice(), cfg.hierarchy.l1d).unwrap();
        let materialized = replay_records(&records, &cfg, Box::new(NullPrefetcher));
        let streamed = replay_stream(
            bytes.as_slice(),
            &cfg,
            Box::new(NullPrefetcher),
            StreamOpts::default(),
        )
        .unwrap();
        assert_eq!(streamed.result, materialized);
        assert!(streamed.ring_high_water <= streamed.ring_capacity);
    }

    #[test]
    fn stream_replay_memory_stays_bounded_on_a_long_trace() {
        let opts = StreamOpts {
            ring_chunks: 2,
            ..StreamOpts::default()
        };
        // 8× the ring capacity: the ring must wrap many times.
        let n = (8 * opts.ring_capacity()) as u64;
        let out = replay_stream(
            SyntheticTrace::new(n),
            &table1(),
            Box::new(NullPrefetcher),
            opts,
        )
        .unwrap();
        assert_eq!(out.result.records, n);
        assert!(out.result.cycles > 0);
        assert_eq!(out.ring_capacity, 2 * STREAM_CHUNK);
        assert!(
            out.ring_high_water <= out.ring_capacity,
            "high water {} must stay within capacity {}",
            out.ring_high_water,
            out.ring_capacity
        );
    }

    #[test]
    fn stream_replay_surfaces_trace_errors() {
        let mut bytes = synth_bytes(100);
        bytes.truncate(bytes.len() - 5);
        let err = replay_stream(
            bytes.as_slice(),
            &table1(),
            Box::new(NullPrefetcher),
            StreamOpts::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::Trace(TraceError::TruncatedMidRecord { .. })
        ));
    }

    #[test]
    fn mux_tenants_match_solo_runs_exactly() {
        let cfg = table1();
        let sizes = [1_500u64, 700, 2_300];
        let mut mux = TenantMux::new(cfg, StreamOpts::default());
        for (i, n) in sizes.iter().enumerate() {
            mux.add_tenant(
                &format!("tenant-{i}"),
                SyntheticTrace::new(*n),
                Box::new(NullPrefetcher),
            );
        }
        let results = mux.run();
        assert_eq!(results.len(), sizes.len());
        for (i, (r, n)) in results.iter().zip(&sizes).enumerate() {
            let solo = replay_stream(
                SyntheticTrace::new(*n),
                &cfg,
                Box::new(NullPrefetcher),
                StreamOpts::default(),
            )
            .unwrap();
            assert!(r.error.is_none(), "tenant {i}");
            assert_eq!(r.records, *n);
            assert_eq!(r.cycles, solo.result.cycles, "tenant {i} cycles");
            assert_eq!(r.stats, solo.result.stats, "tenant {i} stats");
            assert_eq!(r.ipc.to_bits(), solo.result.ipc.to_bits());
            let rr = r.to_run_result();
            assert_eq!(rr.benchmark, format!("tenant-{i}"));
            assert_eq!(rr.ops, *n);
        }
    }

    #[test]
    fn corrupt_tenant_is_isolated_from_siblings() {
        let cfg = table1();
        let healthy_n = 1_800u64;
        let torn = {
            let mut b = synth_bytes(1_200);
            b.truncate(b.len() - 9);
            b
        };
        let mut mux = TenantMux::new(cfg, StreamOpts::default());
        mux.add_tenant(
            "healthy-a",
            io::Cursor::new(synth_bytes(healthy_n)),
            Box::new(NullPrefetcher),
        );
        mux.add_tenant("torn", io::Cursor::new(torn), Box::new(NullPrefetcher));
        mux.add_tenant(
            "healthy-b",
            io::Cursor::new(synth_bytes(healthy_n)),
            Box::new(NullPrefetcher),
        );
        let byte_sources = mux.run();

        let torn_result = &byte_sources[1];
        assert!(matches!(
            torn_result.error,
            Some(TraceError::TruncatedMidRecord { .. })
        ));
        assert_eq!(
            torn_result.records, 1_199,
            "the whole-record prefix replays"
        );
        assert!(torn_result.cycles > 0, "prefix statistics survive");

        let solo = replay_stream(
            SyntheticTrace::new(healthy_n),
            &cfg,
            Box::new(NullPrefetcher),
            StreamOpts::default(),
        )
        .unwrap();
        for at in [0usize, 2] {
            assert!(byte_sources[at].error.is_none());
            assert_eq!(byte_sources[at].cycles, solo.result.cycles, "lane {at}");
            assert_eq!(byte_sources[at].stats, solo.result.stats, "lane {at}");
        }
    }

    #[test]
    fn header_corrupt_tenant_gets_an_error_lane_not_a_crash() {
        let mut mux = TenantMux::new(table1(), StreamOpts::default());
        mux.add_tenant(
            "bad-header",
            io::Cursor::new(b"XXXX\x01\0\0\0\0\0\0\0\0".to_vec()),
            Box::new(NullPrefetcher),
        );
        mux.add_tenant(
            "ok",
            io::Cursor::new(synth_bytes(64)),
            Box::new(NullPrefetcher),
        );
        let results = mux.run();
        assert!(matches!(
            results[0].error,
            Some(TraceError::BadMagic { .. })
        ));
        assert_eq!(results[0].records, 0);
        assert!(results[1].error.is_none());
        assert_eq!(results[1].records, 64);
    }

    #[test]
    fn snapshots_are_monotone_and_deterministic() {
        let run_once = || {
            let mut mux = TenantMux::new(
                table1(),
                StreamOpts {
                    snapshot_cycles: 2_000,
                    ..StreamOpts::default()
                },
            );
            mux.add_tenant("a", SyntheticTrace::new(4_000), Box::new(NullPrefetcher));
            mux.add_tenant("b", SyntheticTrace::new(2_000), Box::new(NullPrefetcher));
            let mut snaps = Vec::new();
            let results = mux.run_with(|s| snaps.push(s));
            (snaps, results)
        };
        let (snaps, results) = run_once();
        assert!(!snaps.is_empty(), "snapshot cadence must fire");
        for pair in snaps.windows(2) {
            if pair[0].tenant == pair[1].tenant {
                assert!(pair[1].cycles > pair[0].cycles);
                assert!(pair[1].records >= pair[0].records);
            }
        }
        for s in &snaps {
            let final_r = &results[s.tenant];
            assert_eq!(s.name, final_r.name);
            assert!(s.records <= final_r.records);
            assert!(s.cycles <= final_r.cycles);
            assert!(s.l1_misses <= final_r.stats.l1_misses);
        }
        let (snaps2, _) = run_once();
        assert_eq!(snaps, snaps2, "snapshot stream is deterministic");
    }
}
