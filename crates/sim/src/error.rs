//! The typed error layer of the simulator.
//!
//! Every failure a caller can reach through the public runner API is one
//! of three kinds, unified under [`SimError`]:
//!
//! * [`ConfigError`] — the requested machine cannot exist (re-exported
//!   from `tcp-cache`, where the hierarchy and core validate themselves);
//! * [`TraceError`] — persisted miss-trace bytes are corrupt (re-exported
//!   from `tcp-analysis`);
//! * [`RunError`] — the simulation itself failed: a benchmark panicked, a
//!   run stopped making forward progress, or a derived statistic is
//!   undefined (zero-IPC baseline).
//!
//! The suite runners never propagate these as panics: each benchmark's
//! failure is recorded as a [`crate::RunOutcome::Failed`] entry so one bad
//! workload cannot take down a 26-benchmark suite.

use std::fmt;

pub use tcp_analysis::TraceError;
pub use tcp_cache::ConfigError;

/// Any error the simulation layer can surface.
#[derive(Debug)]
pub enum SimError {
    /// The machine configuration is invalid.
    Config(ConfigError),
    /// A persisted miss trace could not be read.
    Trace(TraceError),
    /// A simulation run failed.
    Run(RunError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "configuration error: {e}"),
            SimError::Trace(e) => write!(f, "trace error: {e}"),
            SimError::Run(e) => write!(f, "run error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Trace(e) => Some(e),
            SimError::Run(e) => Some(e),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

impl From<RunError> for SimError {
    fn from(e: RunError) -> Self {
        SimError::Run(e)
    }
}

/// A failure during (or derived from) a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The benchmark's workload or the simulator panicked; the panic was
    /// caught at the run boundary.
    Panicked {
        /// Benchmark that was running.
        benchmark: String,
        /// The panic payload, as text.
        reason: String,
    },
    /// The watchdog aborted a run that stopped making forward progress:
    /// the cycles-per-committed-op ratio exceeded the configured cap.
    Wedged {
        /// Benchmark that was running.
        benchmark: String,
        /// Ops committed when the watchdog fired.
        ops: u64,
        /// Cycles elapsed when the watchdog fired.
        cycles: u64,
        /// The cap that was exceeded.
        max_cycles_per_op: u64,
    },
    /// An IPC-improvement figure was requested against a baseline whose
    /// IPC is not positive, which would divide by zero.
    ZeroBaselineIpc {
        /// Benchmark whose baseline IPC is degenerate.
        benchmark: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Panicked { benchmark, reason } => {
                write!(f, "benchmark '{benchmark}' panicked: {reason}")
            }
            RunError::Wedged {
                benchmark,
                ops,
                cycles,
                max_cycles_per_op,
            } => write!(
                f,
                "benchmark '{benchmark}' wedged: {cycles} cycles for {ops} committed ops \
                 exceeds the watchdog cap of {max_cycles_per_op} cycles/op"
            ),
            RunError::ZeroBaselineIpc { benchmark } => {
                write!(f, "baseline IPC for '{benchmark}' is not positive")
            }
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_delegates_to_inner() {
        let e = SimError::Config(ConfigError::ZeroField { field: "l1_mshrs" });
        assert!(e.to_string().contains("l1_mshrs"));
        let e = SimError::Run(RunError::Panicked {
            benchmark: "gzip".into(),
            reason: "boom".into(),
        });
        assert!(e.to_string().contains("gzip") && e.to_string().contains("boom"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = SimError::from(RunError::ZeroBaselineIpc {
            benchmark: "art".into(),
        });
        assert!(e.source().unwrap().to_string().contains("art"));
        let e = SimError::from(ConfigError::ZeroField { field: "window" });
        assert!(e.source().is_some());
    }

    #[test]
    fn wedged_display_names_the_numbers() {
        let e = RunError::Wedged {
            benchmark: "mcf".into(),
            ops: 100,
            cycles: 2_000_000,
            max_cycles_per_op: 10_000,
        };
        let s = e.to_string();
        assert!(s.contains("mcf") && s.contains("2000000") && s.contains("10000"));
    }
}
