//! Deterministic parallel sweep execution: a work-stealing job pool with
//! order-preserving results, plus key-based memoization that runs each
//! distinct job once and shares its result.
//!
//! # Why work stealing
//!
//! The experiment harness fans out *batches* of independent simulation
//! jobs whose durations differ by an order of magnitude (a pointer-chasing
//! `mcf` run costs far more cycles-per-op than `fma3d`, and Figure 13
//! mixes 2 KB and 8 MB PHT configurations in one sweep). A shared-counter
//! pool keeps cores busy but makes every *batch boundary* a barrier; the
//! harness previously paid that barrier once per figure panel and once per
//! sweep point. Here each worker owns a contiguous block of job indices in
//! a deque and steals from the *tail* of other workers' deques when its
//! own block drains, so a single large batch (every sweep point of every
//! figure at once) keeps all cores busy until the global tail.
//!
//! # Why it stays deterministic
//!
//! Jobs are pure functions of their index: nothing about scheduling leaks
//! into a job's inputs, every result lands in the slot of the index that
//! produced it, and panics are re-raised in job order. The determinism
//! suite pins the stronger end-to-end property (identical simulation
//! results at 1, 2, and 8 workers).
//!
//! # Memoization
//!
//! [`run_jobs_memoized`] assigns each job a caller-provided key, executes
//! only the first job of each distinct key, and clones that result into
//! every duplicate's slot. Keys live in a `BTreeMap`, so deduplication
//! order — and therefore which index executes — is a pure function of the
//! input, never of hash or schedule state.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Worker count used by the `*_parallel` conveniences: the machine's
/// available parallelism, or 4 when that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Pops the next job index for worker `w`: its own deque's head first,
/// then the tail of the nearest non-empty victim. Returns `None` only
/// when every deque is empty — no new jobs are ever enqueued mid-run, so
/// that is a stable termination condition.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    // A queue lock is only held across a pop, which cannot panic, so a
    // poisoned lock still guards coherent data; taking it anyway is sound.
    if let Some(i) = queues[w]
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .pop_front()
    {
        return Some(i);
    }
    for k in 1..queues.len() {
        let victim = (w + k) % queues.len();
        if let Some(i) = queues[victim]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_back()
        {
            return Some(i);
        }
    }
    None
}

/// Runs jobs `0..n_jobs` on `threads` work-stealing workers and returns
/// `f(0), f(1), …` in index order regardless of which worker ran what.
///
/// Job indices are block-distributed: worker `w` seeds its deque with a
/// contiguous chunk and only steals (from the tail of another worker's
/// chunk) once its own is exhausted, so neighbouring jobs — which in the
/// experiment harness share benchmark state shapes — tend to stay on one
/// core.
///
/// A panic inside `f` does not abort the other jobs: every remaining job
/// still runs, and the first panic *in job order* is re-raised after all
/// workers have finished, mirroring [`crate::map_benchmarks_parallel`].
///
/// # Panics
///
/// Panics if `threads` is zero, or re-raises the first (in job order)
/// panic from `f` once every job has been processed.
pub fn run_jobs_stealing<T, F>(n_jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "worker pool needs at least one thread");
    let workers = threads.min(n_jobs).max(1);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = n_jobs * w / workers;
            let hi = n_jobs * (w + 1) / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n_jobs).map(|_| None).collect();
    let slot_cells: Vec<Mutex<&mut Option<std::thread::Result<T>>>> =
        slots.iter_mut().map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slot_cells = &slot_cells;
            let f = &f;
            scope.spawn(move || {
                while let Some(i) = next_job(queues, w) {
                    let result = catch_unwind(AssertUnwindSafe(|| f(i)));
                    // A poisoned slot lock can only mean a panic between
                    // lock and store — the value is still absent and that
                    // iteration's panic is already recorded, so taking the
                    // lock anyway is sound.
                    **slot_cells[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
                }
            });
        }
    });
    drop(slot_cells);
    let mut out = Vec::with_capacity(n_jobs);
    let mut first_panic = None;
    for slot in slots {
        // tcp-lint: allow(panic-in-library) — every index is popped exactly once and its slot written before scope join
        match slot.expect("every job processed") {
            Ok(v) => out.push(v),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    out
}

/// Execution accounting for one memoized batch: how many results were
/// requested and how many jobs actually ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Results requested (length of the key slice).
    pub requested: usize,
    /// Jobs executed — one per distinct key.
    pub executed: usize,
}

impl MemoStats {
    /// Requests served by cloning an already-computed result.
    pub fn hits(&self) -> usize {
        self.requested - self.executed
    }
}

/// Like [`run_jobs_stealing`], but jobs with equal keys run once: for
/// each distinct key the *first* job index carrying it executes, and its
/// result is cloned into every later duplicate's slot.
///
/// The caller's key must capture everything `f` depends on; two jobs with
/// equal keys are asserted (by construction, not at runtime) to produce
/// identical results. Simulation jobs qualify — they are deterministic
/// functions of benchmark, scale, machine, and prefetcher configuration.
///
/// # Panics
///
/// Panics if `threads` is zero, or re-raises the first executing job's
/// panic as [`run_jobs_stealing`] does.
pub fn run_jobs_memoized<K, T, F>(keys: &[K], threads: usize, f: F) -> (Vec<T>, MemoStats)
where
    K: Ord,
    T: Send + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut first: BTreeMap<&K, usize> = BTreeMap::new();
    // For each distinct key in first-seen order, the job index to run…
    let mut uniques: Vec<usize> = Vec::new();
    // …and for each requested job, the unique slot serving it.
    let mut owner: Vec<usize> = Vec::with_capacity(keys.len());
    for (i, key) in keys.iter().enumerate() {
        let u = *first.entry(key).or_insert_with(|| {
            uniques.push(i);
            uniques.len() - 1
        });
        owner.push(u);
    }
    let results = run_jobs_stealing(uniques.len(), threads, |u| f(uniques[u]));
    let out = owner.iter().map(|&u| results[u].clone()).collect();
    (
        out,
        MemoStats {
            requested: keys.len(),
            executed: uniques.len(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_land_in_job_order_at_any_thread_count() {
        for threads in [1, 2, 3, 8, 31] {
            let out = run_jobs_stealing(100, threads, |i| i * i);
            assert_eq!(
                out,
                (0..100).map(|i| i * i).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn skewed_job_sizes_complete_and_preserve_order() {
        // The first block is far heavier than the rest: with block
        // distribution, workers 1.. drain their chunks and must steal
        // from worker 0's tail to finish.
        let out = run_jobs_stealing(64, 8, |i| {
            let rounds = if i < 8 { 200_000u64 } else { 100 };
            (0..rounds).fold(i as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        });
        let reference: Vec<u64> = (0..64)
            .map(|i| {
                let rounds = if i < 8 { 200_000u64 } else { 100 };
                (0..rounds).fold(i as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
            })
            .collect();
        assert_eq!(out, reference);
    }

    #[test]
    fn every_job_executes_exactly_once() {
        let executions = AtomicUsize::new(0);
        let out = run_jobs_stealing(32, 4, |i| {
            executions.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 32);
        assert_eq!(executions.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn empty_batch_returns_empty() {
        let out: Vec<u32> = run_jobs_stealing(0, 4, |_| unreachable!("no jobs"));
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = run_jobs_stealing(1, 0, |i| i);
    }

    #[test]
    fn first_panic_in_job_order_wins_and_other_jobs_still_run() {
        let ran = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_jobs_stealing(10, 4, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    panic!("boom-three");
                }
                if i == 7 {
                    panic!("boom-seven");
                }
                i
            })
        }));
        let payload = caught.expect_err("a job panicked");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("string payload");
        assert_eq!(msg, "boom-three", "earliest job's panic is re-raised");
        assert_eq!(ran.load(Ordering::Relaxed), 10, "no job was skipped");
    }

    #[test]
    fn memoized_runs_each_distinct_key_once() {
        let executions = AtomicUsize::new(0);
        let keys = ["a", "b", "a", "c", "b", "a"];
        let (out, stats) = run_jobs_memoized(&keys, 4, |i| {
            executions.fetch_add(1, Ordering::Relaxed);
            format!("{}!", keys[i])
        });
        assert_eq!(out, ["a!", "b!", "a!", "c!", "b!", "a!"]);
        assert_eq!(executions.load(Ordering::Relaxed), 3);
        assert_eq!(
            stats,
            MemoStats {
                requested: 6,
                executed: 3
            }
        );
        assert_eq!(stats.hits(), 3);
    }

    #[test]
    fn memoized_executes_the_first_occurrence_index() {
        let keys = ["x", "y", "x"];
        let (out, _) = run_jobs_memoized(&keys, 2, |i| i);
        // Duplicates are served by the first index that carried the key.
        assert_eq!(out, [0, 1, 0]);
    }

    #[test]
    fn memoized_empty_batch() {
        let keys: [u32; 0] = [];
        let (out, stats) = run_jobs_memoized(&keys, 2, |_| 0u32);
        assert!(out.is_empty());
        assert_eq!(stats, MemoStats::default());
    }

    #[test]
    fn memoized_determinism_across_thread_counts() {
        let keys: Vec<u64> = (0..40).map(|i| i % 7).collect();
        let reference = run_jobs_memoized(&keys, 1, |i| keys[i] * 1000 + i as u64);
        for threads in [2, 8] {
            let got = run_jobs_memoized(&keys, threads, |i| keys[i] * 1000 + i as u64);
            assert_eq!(got, reference, "{threads} threads");
        }
    }
}
