//! Full-system simulation: the Table 1 machine assembled end to end.
//!
//! This crate wires the out-of-order core (`tcp-cpu`), the memory
//! hierarchy (`tcp-cache`), a prefetch engine (TCP from `tcp-core` or a
//! baseline from `tcp-baselines`), and a workload (`tcp-workloads`) into
//! one run, and provides the suite-level driver the experiment harness
//! uses for Figures 1 and 11–14.
//!
//! # Fault tolerance
//!
//! The runner comes in two tiers. The classic functions
//! ([`run_benchmark`], [`ipc_improvement`]) panic on bad input, which is
//! right for the experiment harness where every configuration is shipped
//! and known-good. The checked tier ([`try_run_benchmark`],
//! [`try_ipc_improvement`]) validates the machine first
//! ([`SystemConfig::validate`]), supervises forward progress with a
//! [`Watchdog`], and returns typed [`SimError`]s. The suite runners
//! ([`run_suite`], [`run_suite_parallel`]) build on the checked tier and
//! additionally isolate each benchmark behind a panic boundary: a
//! degenerate workload becomes a [`RunOutcome::Failed`] entry in the
//! [`SuiteResult`] while the remaining benchmarks complete. The [`faults`]
//! module provides deliberately broken inputs for exercising all of this.
//!
//! # Examples
//!
//! ```
//! use tcp_sim::{run_benchmark, SystemConfig};
//! use tcp_cache::NullPrefetcher;
//! use tcp_workloads::suite;
//!
//! let bench = &suite()[0]; // fma3d
//! let result = run_benchmark(bench, 20_000, &SystemConfig::table1(), Box::new(NullPrefetcher));
//! assert!(result.ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
pub mod faults;
mod runner;
mod simulation;
pub mod stream;
pub mod sweep;

pub use config::SystemConfig;
pub use error::{ConfigError, RunError, SimError, TraceError};
pub use runner::{
    ipc_improvement, map_benchmarks_parallel, map_benchmarks_parallel_with_threads, run_benchmark,
    run_benchmark_warm, run_suite, run_suite_parallel, run_suite_parallel_with_threads,
    try_ipc_improvement, try_run_benchmark, try_run_benchmark_warm, RunOutcome, RunResult,
    SuiteResult, Watchdog,
};
pub use simulation::{Simulation, StepProgress};
