//! Full-system simulation: the Table 1 machine assembled end to end.
//!
//! This crate wires the out-of-order core (`tcp-cpu`), the memory
//! hierarchy (`tcp-cache`), a prefetch engine (TCP from `tcp-core` or a
//! baseline from `tcp-baselines`), and a workload (`tcp-workloads`) into
//! one run, and provides the suite-level driver the experiment harness
//! uses for Figures 1 and 11–14.
//!
//! # Examples
//!
//! ```
//! use tcp_sim::{run_benchmark, SystemConfig};
//! use tcp_cache::NullPrefetcher;
//! use tcp_workloads::suite;
//!
//! let bench = &suite()[0]; // fma3d
//! let result = run_benchmark(bench, 20_000, &SystemConfig::table1(), Box::new(NullPrefetcher));
//! assert!(result.ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod runner;
mod simulation;

pub use config::SystemConfig;
pub use simulation::{Simulation, StepProgress};
pub use runner::{ipc_improvement, map_benchmarks_parallel, run_benchmark, run_benchmark_warm, run_suite, run_suite_parallel, RunResult, SuiteResult};
