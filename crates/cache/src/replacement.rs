//! Replacement policies for set-associative caches.

use crate::kernels;
use tcp_mem::SplitMix64;

/// Victim-selection policy within a cache set.
///
/// The paper's caches are LRU (Table 1); FIFO, Random, and tree-PLRU are
/// provided for ablation studies and for stress-testing prefetcher
/// robustness against different eviction orders.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Replacement {
    /// Evict the least-recently-used way (the paper's configuration).
    #[default]
    Lru,
    /// Evict the oldest-filled way regardless of use.
    Fifo,
    /// Evict a pseudo-random way (deterministic, seeded).
    Random(SplitMix64),
    /// Tree pseudo-LRU: the one-bit-per-node approximation real caches
    /// implement. Approximated here from access recency: follow the
    /// less-recent half of the ways at each tree level.
    TreePlru,
}

impl Replacement {
    /// Creates the deterministic random policy from a seed.
    pub fn random(seed: u64) -> Self {
        Replacement::Random(SplitMix64::new(seed))
    }

    /// Chooses a victim way among `ways`, where each element is
    /// `(fill_order, last_access_order)` for an occupied way.
    ///
    /// Invalid (empty) ways are handled by the cache before this is called;
    /// this method only picks among occupied ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is empty.
    pub fn choose_victim(&mut self, ways: &[(u64, u64)]) -> usize {
        self.choose_victim_by(ways.len(), |i| ways[i])
    }

    /// Chooses a victim among occupied ways whose stamps live in the
    /// parallel struct-of-arrays slices `fill` (fill order) and `last`
    /// (last-access order) — the form the cache's fused fill pass feeds
    /// straight from its contiguous per-set stamp rows, letting LRU and
    /// FIFO run as chunked min-reductions ([`kernels::min_index`]).
    ///
    /// Equivalent to [`choose_victim`] on the zipped stamps, including
    /// the lowest-way tie-break.
    ///
    /// [`choose_victim`]: Replacement::choose_victim
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or of different lengths.
    #[inline]
    pub fn choose_victim_in(&mut self, fill: &[u64], last: &[u64]) -> usize {
        assert_eq!(fill.len(), last.len(), "stamp slices must be parallel");
        assert!(!fill.is_empty(), "cannot choose a victim among zero ways");
        match self {
            Replacement::Lru => kernels::min_index(last),
            Replacement::Fifo => kernels::min_index(fill),
            Replacement::Random(rng) => rng.next_below(fill.len() as u64) as usize,
            Replacement::TreePlru => {
                let mut lo = 0usize;
                let mut hi = last.len();
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    let newest_left = last[lo..mid].iter().copied().max().unwrap_or(0);
                    let newest_right = last[mid..hi].iter().copied().max().unwrap_or(0);
                    if newest_left <= newest_right {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                lo
            }
        }
    }

    /// Chooses a victim among `n` occupied ways whose
    /// `(fill_order, last_access_order)` stamps are produced on demand by
    /// `stamp` — the closure form [`choose_victim`] wraps, for callers
    /// whose stamps are not contiguous in memory.
    ///
    /// Ties break toward the lowest way index for every policy, matching
    /// [`choose_victim`] exactly.
    ///
    /// [`choose_victim`]: Replacement::choose_victim
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn choose_victim_by(&mut self, n: usize, stamp: impl Fn(usize) -> (u64, u64)) -> usize {
        assert!(n > 0, "cannot choose a victim among zero ways");
        match self {
            // First strict minimum wins, as `min_by_key` ties do.
            Replacement::Lru => {
                let mut best = 0;
                let mut best_last = stamp(0).1;
                for i in 1..n {
                    let last = stamp(i).1;
                    if last < best_last {
                        best = i;
                        best_last = last;
                    }
                }
                best
            }
            Replacement::Fifo => {
                let mut best = 0;
                let mut best_fill = stamp(0).0;
                for i in 1..n {
                    let fill = stamp(i).0;
                    if fill < best_fill {
                        best = i;
                        best_fill = fill;
                    }
                }
                best
            }
            Replacement::Random(rng) => rng.next_below(n as u64) as usize,
            Replacement::TreePlru => {
                // Binary descent: at each level keep the half whose most
                // recent access is older (the half the PLRU bits would
                // point away from).
                let mut lo = 0usize;
                let mut hi = n;
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    let newest_left = (lo..mid).map(|i| stamp(i).1).max().unwrap_or(0);
                    let newest_right = (mid..hi).map(|i| stamp(i).1).max().unwrap_or(0);
                    if newest_left <= newest_right {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                lo
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_least_recent() {
        let mut p = Replacement::Lru;
        // (fill, last_access)
        let ways = [(0, 5), (1, 2), (2, 9)];
        assert_eq!(p.choose_victim(&ways), 1);
    }

    #[test]
    fn fifo_picks_oldest_fill() {
        let mut p = Replacement::Fifo;
        let ways = [(7, 1), (3, 100), (9, 2)];
        assert_eq!(p.choose_victim(&ways), 1);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut a = Replacement::random(42);
        let mut b = Replacement::random(42);
        let ways = [(0, 0), (1, 1), (2, 2), (3, 3)];
        for _ in 0..32 {
            let va = a.choose_victim(&ways);
            assert_eq!(va, b.choose_victim(&ways));
            assert!(va < 4);
        }
    }

    #[test]
    fn tree_plru_picks_from_the_older_half() {
        let mut p = Replacement::TreePlru;
        // Ways 0..3 with recency (5, 9, 1, 2): right half (1, 2) is older,
        // and within it way 2 (recency 1) is chosen.
        assert_eq!(p.choose_victim(&[(0, 5), (0, 9), (0, 1), (0, 2)]), 2);
        // All-left-recent: victim comes from the right.
        assert!(p.choose_victim(&[(0, 10), (0, 11), (0, 1), (0, 3)]) >= 2);
    }

    #[test]
    fn tree_plru_matches_lru_for_two_ways() {
        let mut plru = Replacement::TreePlru;
        let mut lru = Replacement::Lru;
        for ways in [[(0u64, 3u64), (0, 7)], [(0, 9), (0, 2)], [(0, 1), (0, 1)]] {
            assert_eq!(plru.choose_victim(&ways), lru.choose_victim(&ways));
        }
    }

    #[test]
    fn tree_plru_never_evicts_the_most_recent_way() {
        let mut p = Replacement::TreePlru;
        for newest in 0..8usize {
            let ways: Vec<(u64, u64)> = (0..8)
                .map(|i| (0, if i == newest { 100 } else { i as u64 }))
                .collect();
            assert_ne!(p.choose_victim(&ways), newest, "MRU way must survive");
        }
    }

    #[test]
    #[should_panic(expected = "zero ways")]
    fn empty_ways_panics() {
        Replacement::Lru.choose_victim(&[]);
    }

    #[test]
    fn by_form_matches_slice_form_including_ties() {
        let cases: Vec<Vec<(u64, u64)>> = vec![
            vec![(0, 5), (1, 2), (2, 9)],
            vec![(3, 4), (3, 4), (1, 4), (2, 2)],
            vec![(7, 1)],
            vec![(5, 5); 8],
            (0..8).map(|i| (i, (i * 31) % 7)).collect(),
        ];
        for ways in &cases {
            for p in [Replacement::Lru, Replacement::Fifo, Replacement::TreePlru] {
                let (mut a, mut b) = (p, p);
                assert_eq!(
                    a.choose_victim(ways),
                    b.choose_victim_by(ways.len(), |i| ways[i]),
                    "{p:?} on {ways:?}"
                );
            }
            let (mut a, mut b) = (Replacement::random(9), Replacement::random(9));
            assert_eq!(
                a.choose_victim(ways),
                b.choose_victim_by(ways.len(), |i| ways[i])
            );
        }
    }

    #[test]
    fn in_form_matches_slice_form_including_ties() {
        let cases: Vec<Vec<(u64, u64)>> = vec![
            vec![(0, 5), (1, 2), (2, 9)],
            vec![(3, 4), (3, 4), (1, 4), (2, 2)],
            vec![(7, 1)],
            vec![(5, 5); 8],
            (0..8).map(|i| (i, (i * 31) % 7)).collect(),
            (0..13).map(|i| ((i * 17) % 5, (i * 13) % 11)).collect(),
        ];
        for ways in &cases {
            let fill: Vec<u64> = ways.iter().map(|w| w.0).collect();
            let last: Vec<u64> = ways.iter().map(|w| w.1).collect();
            for p in [Replacement::Lru, Replacement::Fifo, Replacement::TreePlru] {
                let (mut a, mut b) = (p, p);
                assert_eq!(
                    a.choose_victim(ways),
                    b.choose_victim_in(&fill, &last),
                    "{p:?} on {ways:?}"
                );
            }
            let (mut a, mut b) = (Replacement::random(9), Replacement::random(9));
            assert_eq!(a.choose_victim(ways), b.choose_victim_in(&fill, &last));
        }
    }

    #[test]
    #[should_panic(expected = "zero ways")]
    fn in_form_empty_panics() {
        Replacement::Lru.choose_victim_in(&[], &[]);
    }
}
