//! A victim cache after Jouppi (ISCA 1990) — the same paper that
//! introduced stream buffers, cited by TCP's related work.
//!
//! A small fully-associative buffer beside a direct-mapped L1 holds the
//! last few evicted lines; a miss that hits the buffer swaps the line
//! back in a couple of cycles instead of paying the L2 round trip. It is
//! the classic fix for the conflict misses a direct-mapped 32 KB L1
//! suffers — and an interesting interaction study for TCP, whose raw
//! material *is* the conflict-miss stream. Off by default; enabled via
//! [`crate::HierarchyConfig::victim_cache_entries`].

use crate::kernels;
use tcp_mem::LineAddr;

/// A small fully-associative FIFO victim buffer.
///
/// # Examples
///
/// ```
/// use tcp_cache::VictimCache;
/// use tcp_mem::LineAddr;
///
/// let mut vc = VictimCache::new(4);
/// let l = LineAddr::from_line_number(9);
/// vc.insert(l, false);
/// assert_eq!(vc.take(l), Some(false)); // hit: removed with dirty state
/// assert_eq!(vc.take(l), None);
/// ```
#[derive(Clone, Debug)]
pub struct VictimCache {
    capacity: usize,
    // Struct-of-arrays, oldest first: the buffered line numbers sit in
    // one dense `u64` array probed by the chunked find_u64 kernel, with
    // the dirty bits parallel to it. FIFO order is positional (shifting
    // removes), which a buffer of a few dozen entries absorbs easily.
    lines: Vec<u64>,
    dirty: Vec<bool>,
    hits: u64,
    misses: u64,
}

impl VictimCache {
    /// Creates an empty victim cache with `capacity` line slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "victim cache needs at least one entry");
        VictimCache {
            capacity,
            lines: Vec::with_capacity(capacity),
            dirty: Vec::with_capacity(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of line slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lines currently buffered.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` when no victims are buffered.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// `(hits, misses)` observed by [`VictimCache::take`].
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Buffers an evicted line; returns the overflowing oldest victim
    /// `(line, dirty)` if the buffer was full (it continues down the
    /// hierarchy).
    pub fn insert(&mut self, line: LineAddr, dirty: bool) -> Option<(LineAddr, bool)> {
        let n = line.line_number();
        // Replace an existing copy of the same line.
        if let Some(pos) = kernels::find_u64(&self.lines, n) {
            self.lines.remove(pos);
            let old_dirty = self.dirty.remove(pos);
            self.lines.push(n);
            self.dirty.push(dirty || old_dirty);
            return None;
        }
        let overflow = if self.lines.len() == self.capacity {
            Some((
                LineAddr::from_line_number(self.lines.remove(0)),
                self.dirty.remove(0),
            ))
        } else {
            None
        };
        self.lines.push(n);
        self.dirty.push(dirty);
        overflow
    }

    /// Removes `line` if buffered, returning its dirty state — the swap
    /// path of a victim-cache hit.
    pub fn take(&mut self, line: LineAddr) -> Option<bool> {
        match kernels::find_u64(&self.lines, line.line_number()) {
            Some(pos) => {
                self.hits += 1;
                self.lines.remove(pos);
                Some(self.dirty.remove(pos))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn fifo_overflow_returns_oldest() {
        let mut vc = VictimCache::new(2);
        assert!(vc.insert(l(1), false).is_none());
        assert!(vc.insert(l(2), true).is_none());
        let overflow = vc.insert(l(3), false);
        assert_eq!(overflow, Some((l(1), false)));
        assert_eq!(vc.len(), 2);
    }

    #[test]
    fn take_removes_and_counts() {
        let mut vc = VictimCache::new(4);
        vc.insert(l(7), true);
        assert_eq!(vc.take(l(7)), Some(true));
        assert_eq!(vc.take(l(7)), None);
        assert_eq!(vc.counters(), (1, 1));
        assert!(vc.is_empty());
    }

    #[test]
    fn reinsert_merges_dirty_state() {
        let mut vc = VictimCache::new(4);
        vc.insert(l(5), true);
        vc.insert(l(5), false);
        assert_eq!(vc.len(), 1);
        assert_eq!(vc.take(l(5)), Some(true), "dirty bit must not be lost");
    }

    #[test]
    fn reinsert_refreshes_fifo_position() {
        let mut vc = VictimCache::new(2);
        vc.insert(l(1), false);
        vc.insert(l(2), false);
        vc.insert(l(1), false); // refresh: 1 is now newest
        let overflow = vc.insert(l(3), false);
        assert_eq!(overflow, Some((l(2), false)));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        let _ = VictimCache::new(0);
    }
}
