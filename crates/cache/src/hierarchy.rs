//! The two-level memory hierarchy of Figure 10: L1 data cache, L1/L2 bus,
//! L2 cache with an attached prefetch engine, memory bus, main memory.
//!
//! Timing model. The hierarchy is driven by timestamped demand accesses
//! from the core. Misses allocate in-flight fill entries whose completion
//! cycles are computed from cache latencies, bus queuing (demand and
//! prefetch traffic share the buses), and the 70-cycle memory. Fills are
//! applied lazily: every call first lands all fills that completed before
//! the current access. The prefetch engine observes each primary L1 miss
//! and its requests enter the same machinery, filling the L2 only — or,
//! for [`PrefetchTarget::L1`], additionally promoting into the L1 over a
//! (possibly dedicated) prefetch bus.

use crate::cache::AccessOutcome;
use crate::mshr::InflightFill;
use crate::{
    Bus, Cache, ConfigError, HierarchyStats, L1MissInfo, MshrFile, PrefetchRequest, PrefetchTarget,
    Prefetcher, Replacement, Tlb, TlbConfig, VictimCache,
};
use tcp_mem::{CacheGeometry, LineAddr, MemAccess};

/// Which level serviced a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServicedBy {
    /// L1 data-cache hit.
    L1,
    /// L1 miss swapped back from the victim cache.
    Victim,
    /// L1 miss serviced by the L2 (hit or merged into an in-flight fill).
    L2,
    /// L1 and L2 miss serviced by main memory.
    Memory,
}

/// The outcome of one demand access, as seen by the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the loaded value is available to dependents. For
    /// stores this is the cycle the store leaves the core's write buffer.
    pub completes_at: u64,
    /// The level that provided the data.
    pub serviced_by: ServicedBy,
}

/// Configuration of the hierarchy (Table 1 of the paper by default).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HierarchyConfig {
    /// L1 data-cache geometry (default 32 KB, direct-mapped, 32 B lines).
    pub l1d: CacheGeometry,
    /// L2 geometry (default 1 MB, 4-way, 64 B lines).
    pub l2: CacheGeometry,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u64,
    /// L2 access latency in cycles (12 in Table 1).
    pub l2_latency: u64,
    /// Main-memory access latency in cycles (70 in Table 1).
    pub memory_latency: u64,
    /// Cycles one L1 line occupies the L1/L2 bus (32 B over a 32-byte-wide
    /// 2 GHz bus: 1 cycle).
    pub l1_bus_cycles: u64,
    /// Cycles one L2 line occupies the memory bus.
    pub mem_bus_cycles: u64,
    /// Number of L1 MSHRs (64 in Table 1).
    pub l1_mshrs: usize,
    /// Maximum prefetch fetches in flight; further requests are dropped,
    /// modelling a bounded outgoing prefetch buffer.
    pub prefetch_buffer: usize,
    /// When `true`, every L2 demand access hits (the Figure 1 limit study).
    pub ideal_l2: bool,
    /// Dedicated prefetch bus for L1 promotions (Section 5.2.2 adds one so
    /// prefetches do not compete with demand traffic on the L1/L2 bus).
    pub separate_prefetch_bus: bool,
    /// L1 replacement policy.
    pub l1_replacement: Replacement,
    /// L2 replacement policy (LRU in Table 1).
    pub l2_replacement: Replacement,
    /// Optional victim cache beside the L1 (entries); `None` matches
    /// Table 1. Victim hits swap in `victim_latency` cycles and do not
    /// reach the L2 (so the prefetcher does not observe them).
    pub victim_cache_entries: Option<usize>,
    /// Victim-cache swap latency in cycles.
    pub victim_latency: u64,
    /// Optional data TLB; misses add the configured walk penalty.
    pub dtlb: Option<TlbConfig>,
    /// Optional store-buffer bound: at most this many store-initiated
    /// fills in flight before further store misses stall. `None` models
    /// the paper's unbounded write buffering.
    pub store_buffer_entries: Option<usize>,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1d: CacheGeometry::new(32 * 1024, 32, 1),
            l2: CacheGeometry::new(1024 * 1024, 64, 4),
            l1_hit_latency: 2,
            l2_latency: 12,
            memory_latency: 70,
            l1_bus_cycles: 1,
            mem_bus_cycles: 4,
            l1_mshrs: 64,
            prefetch_buffer: 64,
            ideal_l2: false,
            separate_prefetch_bus: false,
            l1_replacement: Replacement::Lru,
            l2_replacement: Replacement::Lru,
            victim_cache_entries: None,
            victim_latency: 3,
            dtlb: None,
            store_buffer_entries: None,
        }
    }
}

impl HierarchyConfig {
    /// Checks that the configuration describes a machine the timing model
    /// can simulate: power-of-two geometries, an L1 line no larger than an
    /// L2 line (an L1 fill must come from a single L2 line), and nonzero
    /// latencies, bus widths, and MSHR counts (a zero-entry MSHR file
    /// would wedge the first miss forever).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found; the checks are ordered
    /// from geometry to latencies to optional structures.
    ///
    /// # Examples
    ///
    /// ```
    /// use tcp_cache::HierarchyConfig;
    ///
    /// assert!(HierarchyConfig::default().validate().is_ok());
    /// let broken = HierarchyConfig { l1_mshrs: 0, ..HierarchyConfig::default() };
    /// assert!(broken.validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("l1 line size", self.l1d.line_bytes()),
            ("l1 set count", self.l1d.num_sets() as u64),
            ("l2 line size", self.l2.line_bytes()),
            ("l2 set count", self.l2.num_sets() as u64),
        ] {
            if !value.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { field, value });
            }
        }
        for (field, value) in [
            ("l1 associativity", u64::from(self.l1d.associativity())),
            ("l2 associativity", u64::from(self.l2.associativity())),
        ] {
            // The cache's per-set occupancy bitmask is one bit per way.
            if !(1..=64).contains(&value) {
                return Err(ConfigError::OutOfRange {
                    field,
                    value,
                    min: 1,
                    max: 64,
                });
            }
        }
        if self.l1d.line_bytes() > self.l2.line_bytes() {
            return Err(ConfigError::LineSizeMismatch {
                l1_line: self.l1d.line_bytes(),
                l2_line: self.l2.line_bytes(),
            });
        }
        for (field, value) in [
            ("l1_hit_latency", self.l1_hit_latency),
            ("l2_latency", self.l2_latency),
            ("memory_latency", self.memory_latency),
            ("l1_bus_cycles", self.l1_bus_cycles),
            ("mem_bus_cycles", self.mem_bus_cycles),
            ("l1_mshrs", self.l1_mshrs as u64),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroField { field });
            }
        }
        if let Some(entries) = self.victim_cache_entries {
            if entries == 0 {
                return Err(ConfigError::ZeroField {
                    field: "victim_cache_entries",
                });
            }
            if self.victim_latency == 0 {
                return Err(ConfigError::ZeroField {
                    field: "victim_latency",
                });
            }
        }
        if let Some(tlb) = &self.dtlb {
            if tlb.entries == 0 {
                return Err(ConfigError::ZeroField {
                    field: "dtlb entries",
                });
            }
            if tlb.page_bits < 1 || tlb.page_bits > 63 {
                return Err(ConfigError::OutOfRange {
                    field: "dtlb page_bits",
                    value: u64::from(tlb.page_bits),
                    min: 1,
                    max: 63,
                });
            }
        }
        if self.store_buffer_entries == Some(0) {
            return Err(ConfigError::ZeroField {
                field: "store_buffer_entries",
            });
        }
        Ok(())
    }
}

#[derive(Clone, Copy, Debug)]
struct PendingPromotion {
    ready_at: u64,
    line: LineAddr, // L1 geometry
    demanded: bool,
}

/// The simulated memory hierarchy below the core.
///
/// # Examples
///
/// ```
/// use tcp_cache::{HierarchyConfig, MemoryHierarchy, NullPrefetcher, ServicedBy};
/// use tcp_mem::{Addr, MemAccess};
///
/// let mut h = MemoryHierarchy::new(HierarchyConfig::default(), Box::new(NullPrefetcher));
/// let miss = h.access(MemAccess::load(Addr::new(0x400000), Addr::new(0x1000)), 0);
/// assert_eq!(miss.serviced_by, ServicedBy::Memory);
/// // Re-access after the fill lands: L1 hit.
/// let hit = h.access(MemAccess::load(Addr::new(0x400000), Addr::new(0x1008)), miss.completes_at + 1);
/// assert_eq!(hit.serviced_by, ServicedBy::L1);
/// ```
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    l1_bus: Bus,
    mem_bus: Bus,
    prefetch_bus: Option<Bus>,
    l1_fills: MshrFile, // in-flight fills into L1 (demand)
    l2_fills: MshrFile, // in-flight fills into L2 (demand + prefetch)
    promotions: Vec<PendingPromotion>,
    inflight_prefetches: usize,
    victim: Option<VictimCache>,
    dtlb: Option<Tlb>,
    store_fills: std::collections::HashSet<LineAddr>,
    prefetcher: Box<dyn Prefetcher>,
    // `prefetcher.is_active()`, cached at construction: the no-prefetch
    // baseline pays no virtual dispatch on the per-access hot path.
    engine_active: bool,
    stats: HierarchyStats,
    scratch: Vec<PrefetchRequest>,
    drained: Vec<(LineAddr, InflightFill)>,
}

impl std::fmt::Debug for MemoryHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryHierarchy")
            .field("cfg", &self.cfg)
            .field("prefetcher", &self.prefetcher.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl MemoryHierarchy {
    /// Builds a hierarchy around a prefetch engine.
    pub fn new(cfg: HierarchyConfig, prefetcher: Box<dyn Prefetcher>) -> Self {
        let l1 = Cache::new(cfg.l1d, cfg.l1_replacement);
        let l2 = Cache::new(cfg.l2, cfg.l2_replacement);
        let l1_bus = Bus::new(cfg.l1_bus_cycles);
        let mem_bus = Bus::new(cfg.mem_bus_cycles);
        let prefetch_bus = cfg
            .separate_prefetch_bus
            .then(|| Bus::new(cfg.l1_bus_cycles));
        let l1_fills = MshrFile::new(cfg.l1_mshrs);
        let l2_fills = MshrFile::new(cfg.l1_mshrs + cfg.prefetch_buffer.max(1));
        let cfg_victim = cfg.victim_cache_entries.map(VictimCache::new);
        let cfg_dtlb = cfg.dtlb.map(Tlb::new);
        let engine_active = prefetcher.is_active();
        MemoryHierarchy {
            cfg,
            l1,
            l2,
            l1_bus,
            mem_bus,
            prefetch_bus,
            l1_fills,
            l2_fills,
            promotions: Vec::new(),
            inflight_prefetches: 0,
            victim: cfg_victim,
            dtlb: cfg_dtlb,
            store_fills: std::collections::HashSet::new(),
            prefetcher,
            engine_active,
            stats: HierarchyStats::default(),
            scratch: Vec::new(),
            drained: Vec::new(),
        }
    }

    /// Like [`MemoryHierarchy::new`], but validates `cfg` first instead of
    /// risking a panic or a wedged simulation on an impossible machine.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`HierarchyConfig::validate`].
    pub fn try_new(
        cfg: HierarchyConfig,
        prefetcher: Box<dyn Prefetcher>,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(MemoryHierarchy::new(cfg, prefetcher))
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Accumulated statistics. Call [`MemoryHierarchy::finalize`] first at
    /// the end of a run to fold still-unused prefetched lines into the
    /// "prefetched extra" count.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// The attached prefetch engine.
    pub fn prefetcher(&self) -> &dyn Prefetcher {
        self.prefetcher.as_ref()
    }

    /// The L1/L2 bus (for occupancy reporting).
    pub fn l1_bus(&self) -> &Bus {
        &self.l1_bus
    }

    /// The L2/memory bus (for occupancy reporting).
    pub fn mem_bus(&self) -> &Bus {
        &self.mem_bus
    }

    /// Lands every in-flight fill and promotion that completes at or
    /// before `now`.
    fn advance(&mut self, now: u64) {
        // Fast path: on most accesses nothing has completed yet, and the
        // cached-minimum checks answer that without touching the files.
        if !self.l2_fills.has_ready(now)
            && !self.l1_fills.has_ready(now)
            && self.promotions.is_empty()
        {
            return;
        }
        // One drain buffer is reused across all accesses (take/restore so
        // the loop bodies below can borrow `self` mutably).
        let mut drained = std::mem::take(&mut self.drained);
        // L2 fills first: an L1 fill may logically depend on the L2 copy.
        self.l2_fills.drain_ready_into(now, &mut drained);
        for &(line, fill) in &drained {
            if fill.is_prefetch {
                self.inflight_prefetches = self.inflight_prefetches.saturating_sub(1);
            }
            let still_prefetch_credit = fill.is_prefetch && !fill.demanded;
            let evicted = self.l2.fill(line, fill.ready_at, still_prefetch_credit);
            if fill.dirty {
                self.l2.mark_dirty(line);
            }
            if let Some(ev) = evicted {
                if ev.meta.prefetched && !ev.meta.demanded {
                    self.stats.l2_breakdown.prefetched_extra += 1;
                }
                if ev.meta.dirty {
                    self.stats.l2_writebacks += 1;
                    self.mem_bus.schedule(fill.ready_at);
                }
            }
        }
        self.l1_fills.drain_ready_into(now, &mut drained);
        for &(line, fill) in &drained {
            if self.cfg.store_buffer_entries.is_some() {
                self.store_fills.remove(&line);
            }
            self.fill_l1(line, fill.ready_at, false, fill.dirty, false);
        }
        drained.clear();
        self.drained = drained;
        if !self.promotions.is_empty() {
            let mut i = 0;
            while i < self.promotions.len() {
                if self.promotions[i].ready_at <= now {
                    let p = self.promotions.swap_remove(i);
                    if !self.l1.contains(p.line) && self.l1_fills.lookup(p.line).is_none() {
                        self.stats.l1_prefetch_fills += 1;
                        self.fill_l1(p.line, p.ready_at, true, false, p.demanded);
                    }
                } else {
                    i += 1;
                }
            }
        }
    }

    fn fill_l1(
        &mut self,
        line: LineAddr,
        cycle: u64,
        prefetched: bool,
        dirty: bool,
        already_demanded: bool,
    ) {
        let evicted = self.l1.fill(line, cycle, prefetched);
        if dirty {
            self.l1.mark_dirty(line);
        }
        if already_demanded {
            self.l1.mark_demanded(line);
        }
        if self.engine_active {
            self.prefetcher.on_l1_fill(line, cycle);
        }
        if let Some(ev) = evicted {
            if self.engine_active {
                self.prefetcher.on_l1_evict(ev.line, cycle);
            }
            // With a victim cache, evictions park beside the L1; only the
            // overflowing oldest victim continues down the hierarchy.
            let downstream = match self.victim.as_mut() {
                Some(vc) => vc.insert(ev.line, ev.meta.dirty),
                None => Some((ev.line, ev.meta.dirty)),
            };
            if let Some((down_line, down_dirty)) = downstream {
                if down_dirty {
                    self.stats.l1_writebacks += 1;
                    self.l1_bus.schedule(cycle);
                    let l2_line = self.cfg.l1d.rescale_line(down_line, &self.cfg.l2);
                    if !self.l2.mark_dirty(l2_line) {
                        self.l2_fills.mark_dirty(l2_line);
                    }
                }
            }
        }
    }

    /// Performs one demand access from the core at cycle `now`.
    pub fn access(&mut self, acc: MemAccess, now: u64) -> AccessResult {
        let mut now = now;
        if let Some(tlb) = self.dtlb.as_mut() {
            if !tlb.access(acc.addr, now) {
                self.stats.dtlb_misses += 1;
                now += tlb.config().miss_penalty;
            }
        }
        self.advance(now);
        if acc.kind.is_store() {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        let l1_line = self.cfg.l1d.line_addr(acc.addr);
        let write = acc.kind.is_store();
        match self.l1.access(l1_line, write, now) {
            AccessOutcome::Hit {
                first_demand_of_prefetch,
            } => {
                self.stats.l1_hits += 1;
                if first_demand_of_prefetch {
                    // A promoted prefetch pays off: in the no-prefetch
                    // machine this access would have gone to L2.
                    self.stats.l2_breakdown.prefetched_original += 1;
                    let l2_line = self.cfg.l1d.rescale_line(l1_line, &self.cfg.l2);
                    self.l2.mark_demanded(l2_line);
                }
                if self.engine_active {
                    let mut requests = std::mem::take(&mut self.scratch);
                    requests.clear();
                    if first_demand_of_prefetch {
                        // Let the engine observe the miss this would have
                        // been.
                        let (tag, set) = self.cfg.l1d.split_line(l1_line);
                        let info = L1MissInfo {
                            access: acc,
                            line: l1_line,
                            tag,
                            set,
                            cycle: now,
                        };
                        self.prefetcher.on_promoted_first_use(&info, &mut requests);
                    }
                    self.prefetcher.on_hit(&acc, l1_line, now, &mut requests);
                    for req in requests.drain(..) {
                        self.handle_prefetch(req, now);
                    }
                    self.scratch = requests;
                }
                AccessResult {
                    completes_at: now + self.cfg.l1_hit_latency,
                    serviced_by: ServicedBy::L1,
                }
            }
            AccessOutcome::Miss => self.handle_l1_miss(acc, l1_line, write, now),
        }
    }

    fn handle_l1_miss(
        &mut self,
        acc: MemAccess,
        l1_line: LineAddr,
        write: bool,
        now: u64,
    ) -> AccessResult {
        // Secondary miss: merge into an in-flight demand fill. The block
        // is being delivered, so predictors observing per-block reuse
        // (DBCP traces, dead-block timekeeping) see this as a touch.
        if let Some(fill) = self.l1_fills.lookup(l1_line).copied() {
            self.stats.l1_mshr_merges += 1;
            if write {
                self.l1_fills.mark_dirty(l1_line);
            }
            if self.engine_active {
                let mut requests = std::mem::take(&mut self.scratch);
                requests.clear();
                self.prefetcher.on_hit(&acc, l1_line, now, &mut requests);
                for req in requests.drain(..) {
                    self.handle_prefetch(req, now);
                }
                self.scratch = requests;
            }
            let completes_at = fill.ready_at.max(now + self.cfg.l1_hit_latency);
            return AccessResult {
                completes_at,
                serviced_by: ServicedBy::L2,
            };
        }
        // Merge into a pending L1 promotion.
        if let Some(p) = self.promotions.iter_mut().find(|p| p.line == l1_line) {
            self.stats.l1_mshr_merges += 1;
            if !p.demanded {
                p.demanded = true;
                self.stats.l2_breakdown.prefetched_original += 1;
                let l2_line = self.cfg.l1d.rescale_line(l1_line, &self.cfg.l2);
                self.l2.mark_demanded(l2_line);
            }
            let ready = p.ready_at;
            return AccessResult {
                completes_at: ready.max(now + self.cfg.l1_hit_latency),
                serviced_by: ServicedBy::L2,
            };
        }

        // Victim-cache swap: a conflict victim parked beside the L1
        // returns in a few cycles without touching the L2 (and without
        // appearing in the miss stream the prefetcher observes).
        if let Some(vc) = self.victim.as_mut() {
            if let Some(dirty) = vc.take(l1_line) {
                self.stats.victim_hits += 1;
                let done = now + self.cfg.victim_latency + self.cfg.l1_hit_latency;
                self.fill_l1(l1_line, now, false, dirty || write, true);
                return AccessResult {
                    completes_at: done,
                    serviced_by: ServicedBy::Victim,
                };
            }
        }

        // Primary miss.
        self.stats.l1_misses += 1;
        let mut t = now;
        while self.l1_fills.is_full() {
            let earliest = self
                .l1_fills
                .earliest_ready()
                // tcp-lint: allow(panic-in-library) — is_full() guard means entries exist
                .expect("full file has entries");
            let wait_until = earliest.max(t + 1);
            self.stats.mshr_stall_cycles += wait_until - t;
            t = wait_until;
            self.advance(t);
        }

        if write {
            if let Some(cap) = self.cfg.store_buffer_entries {
                while self.store_fills.len() >= cap {
                    let earliest = self
                        .l1_fills
                        .earliest_ready()
                        // tcp-lint: allow(panic-in-library) — store_fills ⊆ l1_fills, so nonempty
                        .expect("stores are in flight");
                    let wait_until = earliest.max(t + 1);
                    self.stats.store_buffer_stall_cycles += wait_until - t;
                    t = wait_until;
                    self.advance(t);
                }
            }
        }
        let (data_at_l2, serviced_by) = self.l2_demand_access(l1_line, write, t);
        let (_, l1_done) = self.l1_bus.schedule(data_at_l2);
        self.l1_fills.allocate(l1_line, l1_done, false);
        if write {
            self.l1_fills.mark_dirty(l1_line);
            // The set only feeds the bounded-store-buffer stall check, so
            // skip the upkeep entirely when no bound is configured.
            if self.cfg.store_buffer_entries.is_some() {
                self.store_fills.insert(l1_line);
            }
        }

        // Notify the prefetch engine of the primary miss.
        if self.engine_active {
            let (tag, set) = self.cfg.l1d.split_line(l1_line);
            let info = L1MissInfo {
                access: acc,
                line: l1_line,
                tag,
                set,
                cycle: t,
            };
            let mut requests = std::mem::take(&mut self.scratch);
            requests.clear();
            self.prefetcher.on_miss(&info, &mut requests);
            for req in requests.drain(..) {
                self.handle_prefetch(req, t);
            }
            self.scratch = requests;
        }

        // Stores retire through the write buffer; loads wait for data.
        let completes_at = if write {
            t + self.cfg.l1_hit_latency
        } else {
            l1_done
        };
        AccessResult {
            completes_at,
            serviced_by,
        }
    }

    /// Demand access to the L2. Returns the cycle at which the line is
    /// available at the L2 side of the L1/L2 bus and the servicing level.
    fn l2_demand_access(&mut self, l1_line: LineAddr, write: bool, t: u64) -> (u64, ServicedBy) {
        self.stats.l2_demand_accesses += 1;
        let l2_line = self.cfg.l1d.rescale_line(l1_line, &self.cfg.l2);
        let t_tag = t + self.cfg.l2_latency;

        if self.cfg.ideal_l2 {
            self.stats.l2_demand_hits += 1;
            self.stats.l2_breakdown.non_prefetched_original += 1;
            return (t_tag, ServicedBy::L2);
        }

        match self.l2.access(l2_line, write, t) {
            AccessOutcome::Hit {
                first_demand_of_prefetch,
            } => {
                self.stats.l2_demand_hits += 1;
                if first_demand_of_prefetch {
                    self.stats.l2_breakdown.prefetched_original += 1;
                } else {
                    self.stats.l2_breakdown.non_prefetched_original += 1;
                }
                (t_tag, ServicedBy::L2)
            }
            AccessOutcome::Miss => {
                if let Some(fill) = self.l2_fills.lookup(l2_line).copied() {
                    // Merge into an in-flight L2 fill (demand or prefetch).
                    self.stats.l2_demand_hits += 1;
                    if fill.is_prefetch && !fill.demanded {
                        self.stats.l2_breakdown.prefetched_original += 1;
                    } else {
                        self.stats.l2_breakdown.non_prefetched_original += 1;
                    }
                    self.l2_fills.mark_demanded(l2_line);
                    (fill.ready_at.max(t_tag), ServicedBy::L2)
                } else {
                    // True L2 miss: fetch from memory.
                    self.stats.l2_demand_misses += 1;
                    self.stats.l2_breakdown.non_prefetched_original += 1;
                    let (_, data_ready) = self.mem_bus.schedule(t_tag + self.cfg.memory_latency);
                    if self.l2_fills.is_full() {
                        // Pathological backlog: complete without caching.
                        return (data_ready, ServicedBy::Memory);
                    }
                    self.l2_fills.allocate(l2_line, data_ready, false);
                    (data_ready, ServicedBy::Memory)
                }
            }
        }
    }

    fn handle_prefetch(&mut self, req: PrefetchRequest, t: u64) {
        self.stats.prefetches_issued += 1;
        let l2_line = self.cfg.l1d.rescale_line(req.line, &self.cfg.l2);
        let t_tag = t + self.cfg.l2_latency;

        // "The L2 first checks whether the target data is already in
        // itself. If found, the prefetch is completed."
        let resident = self.cfg.ideal_l2 || self.l2.contains(l2_line);
        if resident {
            self.stats.prefetches_already_resident += 1;
            if req.target == PrefetchTarget::L1 && !self.l1.contains(req.line) {
                let done = self.schedule_promotion_transfer(t_tag);
                self.promotions.push(PendingPromotion {
                    ready_at: done,
                    line: req.line,
                    demanded: false,
                });
            }
            return;
        }
        if let Some(fill) = self.l2_fills.lookup(l2_line).copied() {
            // Already being fetched; piggyback an L1 promotion if asked.
            self.stats.prefetches_already_resident += 1;
            if req.target == PrefetchTarget::L1 && !self.l1.contains(req.line) {
                let done = self.schedule_promotion_transfer(fill.ready_at);
                self.promotions.push(PendingPromotion {
                    ready_at: done,
                    line: req.line,
                    demanded: false,
                });
            }
            return;
        }
        if self.inflight_prefetches >= self.cfg.prefetch_buffer || self.l2_fills.is_full() {
            self.stats.prefetches_dropped += 1;
            return;
        }
        self.stats.prefetches_to_memory += 1;
        self.inflight_prefetches += 1;
        let (_, data_ready) = self.mem_bus.schedule(t_tag + self.cfg.memory_latency);
        self.l2_fills.allocate(l2_line, data_ready, true);
        if req.target == PrefetchTarget::L1 && !self.l1.contains(req.line) {
            let done = self.schedule_promotion_transfer(data_ready);
            self.promotions.push(PendingPromotion {
                ready_at: done,
                line: req.line,
                demanded: false,
            });
        }
    }

    fn schedule_promotion_transfer(&mut self, earliest: u64) -> u64 {
        match self.prefetch_bus.as_mut() {
            Some(bus) => bus.schedule(earliest).1,
            None => self.l1_bus.schedule(earliest).1,
        }
    }

    /// Resets accumulated statistics while keeping cache contents, bus
    /// backlog, and in-flight fills: the warm-up boundary of a measured
    /// run.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        // Lines prefetched before the boundary should not be charged as
        // "extra" to the measured window if still unused: clear credit.
        // (Their demand hits inside the window also stop counting as
        // prefetched-original, keeping the breakdown conservative.)
    }

    /// Finishes the run: lands all in-flight fills and counts prefetched
    /// lines that never saw a demand access as "prefetched extra".
    /// Returns the final statistics.
    pub fn finalize(&mut self) -> HierarchyStats {
        let horizon = self
            .l2_fills
            .earliest_ready()
            .into_iter()
            .chain(self.l1_fills.earliest_ready())
            .max()
            .unwrap_or(0)
            .saturating_add(1_000_000);
        self.advance(horizon);
        for (_, meta) in self.l2.iter() {
            if meta.prefetched && !meta.demanded {
                self.stats.l2_breakdown.prefetched_extra += 1;
            }
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullPrefetcher;
    use tcp_mem::Addr;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default(), Box::new(NullPrefetcher))
    }

    fn load(a: u64) -> MemAccess {
        MemAccess::load(Addr::new(0x40_0000), Addr::new(a))
    }

    fn store(a: u64) -> MemAccess {
        MemAccess::store(Addr::new(0x40_0000), Addr::new(a))
    }

    #[test]
    fn cold_miss_goes_to_memory_with_expected_latency() {
        let mut h = hierarchy();
        let r = h.access(load(0x1000), 0);
        assert_eq!(r.serviced_by, ServicedBy::Memory);
        // l2_latency + memory_latency + mem bus + l1 bus = 12 + 70 + 4 + 1
        assert_eq!(r.completes_at, 87);
    }

    #[test]
    fn fill_lands_and_second_access_hits_l1() {
        let mut h = hierarchy();
        let r = h.access(load(0x1000), 0);
        let r2 = h.access(load(0x1010), r.completes_at);
        assert_eq!(r2.serviced_by, ServicedBy::L1);
        assert_eq!(r2.completes_at, r.completes_at + 2);
        assert_eq!(h.stats().l1_hits, 1);
        assert_eq!(h.stats().l1_misses, 1);
    }

    #[test]
    fn secondary_miss_merges_not_refetches() {
        let mut h = hierarchy();
        let r = h.access(load(0x1000), 0);
        let r2 = h.access(load(0x1008), 5); // same L1 line, fill in flight
        assert_eq!(r2.completes_at, r.completes_at);
        assert_eq!(h.stats().l1_misses, 1);
        assert_eq!(h.stats().l1_mshr_merges, 1);
        assert_eq!(h.stats().l2_demand_accesses, 1);
    }

    #[test]
    fn l1_conflict_miss_hits_l2() {
        let mut h = hierarchy();
        let r1 = h.access(load(0x1000), 0);
        // Same L1 set, different tag: evicts 0x1000 from L1 but both stay in L2.
        let r2 = h.access(load(0x1000 + 32 * 1024), r1.completes_at + 1);
        let r3 = h.access(load(0x1000), r2.completes_at + 1);
        assert_eq!(r3.serviced_by, ServicedBy::L2);
        // L2 hit: l2_latency + l1 bus transfer.
        assert_eq!(r3.completes_at - (r2.completes_at + 1), 12 + 1);
        assert_eq!(h.stats().l2_demand_hits, 1);
    }

    #[test]
    fn ideal_l2_never_accesses_memory() {
        let mut h = MemoryHierarchy::new(
            HierarchyConfig {
                ideal_l2: true,
                ..HierarchyConfig::default()
            },
            Box::new(NullPrefetcher),
        );
        let mut t = 0;
        for i in 0..100 {
            let r = h.access(load(i * 4096), t);
            assert_ne!(r.serviced_by, ServicedBy::Memory);
            t = r.completes_at + 1;
        }
        assert_eq!(h.stats().l2_demand_misses, 0);
        assert_eq!(h.mem_bus().transfers(), 0);
    }

    #[test]
    fn stores_complete_fast_but_fetch_line() {
        let mut h = hierarchy();
        let r = h.access(store(0x2000), 0);
        assert_eq!(r.completes_at, 2); // write buffer
                                       // Line still arrives; later load hits.
        let r2 = h.access(load(0x2000), 200);
        assert_eq!(r2.serviced_by, ServicedBy::L1);
    }

    #[test]
    fn store_merging_into_fill_marks_dirty_for_writeback() {
        let mut h = hierarchy();
        h.access(store(0x3000), 0);
        // After fill, evict via conflicting line; the dirty line must write back.
        h.access(load(0x3000 + 32 * 1024), 500);
        // wait for fill of conflicting line, then force another eviction round
        h.access(load(0x3000 + 2 * 32 * 1024), 1000);
        assert!(h.stats().l1_writebacks >= 1);
    }

    #[test]
    fn mshr_pressure_stalls() {
        let cfg = HierarchyConfig {
            l1_mshrs: 2,
            ..HierarchyConfig::default()
        };
        let mut h = MemoryHierarchy::new(cfg, Box::new(NullPrefetcher));
        // Three distinct lines at the same cycle: third must wait.
        h.access(load(0x1000), 0);
        h.access(load(0x2000), 0);
        let r3 = h.access(load(0x3000), 0);
        assert!(h.stats().mshr_stall_cycles > 0);
        assert!(r3.completes_at > 87);
    }

    #[test]
    fn finalize_counts_unused_prefetches_as_extra() {
        struct NextLine;
        impl Prefetcher for NextLine {
            fn name(&self) -> &str {
                "next-line-test"
            }
            fn storage_bytes(&self) -> usize {
                0
            }
            fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>) {
                // Prefetch a far-away line that is never used.
                out.push(PrefetchRequest::to_l2(info.line.offset(1 << 20)));
            }
        }
        let mut h = MemoryHierarchy::new(HierarchyConfig::default(), Box::new(NextLine));
        h.access(load(0x1000), 0);
        let stats = h.finalize();
        assert_eq!(stats.prefetches_to_memory, 1);
        assert_eq!(stats.l2_breakdown.prefetched_extra, 1);
        assert_eq!(stats.l2_breakdown.prefetched_original, 0);
    }

    #[test]
    fn useful_prefetch_counts_as_prefetched_original() {
        struct NextL2Line;
        impl Prefetcher for NextL2Line {
            fn name(&self) -> &str {
                "next-l2-line-test"
            }
            fn storage_bytes(&self) -> usize {
                0
            }
            fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>) {
                // Next 64-byte L2 line = two L1 lines ahead.
                out.push(PrefetchRequest::to_l2(info.line.offset(2)));
            }
        }
        let mut h = MemoryHierarchy::new(HierarchyConfig::default(), Box::new(NextL2Line));
        let r1 = h.access(load(0x1000), 0);
        // Demand the prefetched L2 line well after it landed.
        let r2 = h.access(load(0x1040), r1.completes_at + 500);
        assert_eq!(r2.serviced_by, ServicedBy::L2);
        let stats = h.finalize();
        assert_eq!(stats.l2_breakdown.prefetched_original, 1);
        // The second miss prefetched one more line that is never demanded.
        assert_eq!(stats.l2_breakdown.prefetched_extra, 1);
        assert!((stats.prefetch_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn demand_merging_into_inflight_prefetch_gets_partial_credit() {
        struct NextL2Line;
        impl Prefetcher for NextL2Line {
            fn name(&self) -> &str {
                "next-l2-line-test"
            }
            fn storage_bytes(&self) -> usize {
                0
            }
            fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>) {
                out.push(PrefetchRequest::to_l2(info.line.offset(2)));
            }
        }
        let mut h = MemoryHierarchy::new(HierarchyConfig::default(), Box::new(NextL2Line));
        h.access(load(0x1000), 0);
        // Demand the prefetched line immediately, while still in flight.
        let r2 = h.access(load(0x1040), 5);
        assert_eq!(r2.serviced_by, ServicedBy::L2);
        let stats = h.finalize();
        assert_eq!(stats.l2_breakdown.prefetched_original, 1);
        // Only the trailing prefetch from the second miss is unused.
        assert_eq!(stats.l2_breakdown.prefetched_extra, 1);
    }

    #[test]
    fn prefetch_buffer_limit_drops() {
        struct Blast;
        impl Prefetcher for Blast {
            fn name(&self) -> &str {
                "blast-test"
            }
            fn storage_bytes(&self) -> usize {
                0
            }
            fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>) {
                for i in 1..=64i64 {
                    out.push(PrefetchRequest::to_l2(info.line.offset(i * 2)));
                }
            }
        }
        let cfg = HierarchyConfig {
            prefetch_buffer: 4,
            ..HierarchyConfig::default()
        };
        let mut h = MemoryHierarchy::new(cfg, Box::new(Blast));
        h.access(load(0x100000), 0);
        assert_eq!(h.stats().prefetches_to_memory, 4);
        assert!(h.stats().prefetches_dropped >= 60);
    }

    #[test]
    fn l1_promotion_turns_future_miss_into_l1_hit() {
        struct PromoteNext;
        impl Prefetcher for PromoteNext {
            fn name(&self) -> &str {
                "promote-test"
            }
            fn storage_bytes(&self) -> usize {
                0
            }
            fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>) {
                out.push(PrefetchRequest::to_l1(info.line.offset(2)));
            }
        }
        let cfg = HierarchyConfig {
            separate_prefetch_bus: true,
            ..HierarchyConfig::default()
        };
        let mut h = MemoryHierarchy::new(cfg, Box::new(PromoteNext));
        let r1 = h.access(load(0x1000), 0);
        let r2 = h.access(load(0x1040), r1.completes_at + 500);
        assert_eq!(r2.serviced_by, ServicedBy::L1);
        let stats = h.finalize();
        assert_eq!(stats.l1_prefetch_fills, 1);
        // First L1 touch of a promoted line is the prefetched-original credit.
        assert_eq!(stats.l2_breakdown.prefetched_original, 1);
        assert_eq!(stats.l2_breakdown.prefetched_extra, 0);
    }

    #[test]
    fn l2_eviction_writes_back_dirty_lines_to_memory() {
        let mut h = hierarchy();
        // Dirty a line in L1, force it down to L2, then thrash the L2 set
        // until the dirty line is evicted to memory.
        let base = 0x10_0000u64;
        h.access(store(base), 0);
        let mut t = 200u64;
        // Evict from L1 (same L1 set): dirty data reaches L2.
        let r = h.access(load(base + 32 * 1024), t);
        t = r.completes_at + 1;
        // Now conflict in the L2 set: L2 is 4-way with 4096 sets of 64B,
        // so lines 256 KB apart collide.
        for i in 1..=6u64 {
            let r = h.access(load(base + i * 256 * 1024), t);
            t = r.completes_at + 1;
        }
        let stats = h.finalize();
        assert!(stats.l1_writebacks >= 1, "dirty L1 line must write back");
        assert!(
            stats.l2_writebacks >= 1,
            "dirty L2 victim must write to memory"
        );
    }

    #[test]
    fn saturated_mem_bus_queues_but_stays_causal() {
        // Fire misses far faster than the bus can serve; completion times
        // must be strictly increasing (FIFO bus) and the bus fully busy.
        let mut h = hierarchy();
        let mut last_done = 0;
        for i in 0..64u64 {
            let r = h.access(load(0x40_0000 + i * 64), i); // distinct L2 lines
            assert!(r.completes_at > last_done, "bus service must be FIFO");
            last_done = r.completes_at;
        }
        let busy = h.mem_bus().busy_cycles();
        assert_eq!(busy, 64 * 4, "every miss occupies the bus once");
    }

    #[test]
    fn ideal_l2_with_prefetcher_generates_no_memory_traffic() {
        struct Noisy;
        impl Prefetcher for Noisy {
            fn name(&self) -> &str {
                "noisy-test"
            }
            fn storage_bytes(&self) -> usize {
                0
            }
            fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>) {
                out.push(PrefetchRequest::to_l2(info.line.offset(123)));
            }
        }
        let cfg = HierarchyConfig {
            ideal_l2: true,
            ..HierarchyConfig::default()
        };
        let mut h = MemoryHierarchy::new(cfg, Box::new(Noisy));
        let mut t = 0;
        for i in 0..50u64 {
            let r = h.access(load(i * 4096), t);
            t = r.completes_at + 1;
        }
        let stats = h.finalize();
        assert_eq!(h.mem_bus().transfers(), 0, "an ideal L2 absorbs everything");
        assert_eq!(stats.prefetches_to_memory, 0);
        assert_eq!(stats.prefetches_already_resident, stats.prefetches_issued);
    }

    #[test]
    fn victim_cache_turns_conflict_misses_into_swaps() {
        let cfg = HierarchyConfig {
            victim_cache_entries: Some(8),
            ..HierarchyConfig::default()
        };
        let mut h = MemoryHierarchy::new(cfg, Box::new(NullPrefetcher));
        // Ping-pong between two lines in the same L1 set.
        let a = 0x1000u64;
        let b = a + 32 * 1024;
        let mut t = 0;
        for i in 0..20 {
            let addr = if i % 2 == 0 { a } else { b };
            let r = h.access(load(addr), t);
            t = r.completes_at + 1;
        }
        let stats = h.finalize();
        assert!(
            stats.victim_hits >= 16,
            "ping-pong should swap, got {}",
            stats.victim_hits
        );
        // After the first two fetches the L2 sees nothing new.
        assert!(
            stats.l2_demand_accesses <= 3,
            "L2 accesses {}",
            stats.l2_demand_accesses
        );
    }

    #[test]
    fn victim_cache_swap_is_fast() {
        let cfg = HierarchyConfig {
            victim_cache_entries: Some(4),
            ..HierarchyConfig::default()
        };
        let mut h = MemoryHierarchy::new(cfg, Box::new(NullPrefetcher));
        let a = 0x1000u64;
        let b = a + 32 * 1024;
        let r1 = h.access(load(a), 0);
        let r2 = h.access(load(b), r1.completes_at + 1);
        let r3 = h.access(load(a), r2.completes_at + 1);
        assert_eq!(r3.serviced_by, ServicedBy::Victim);
        // victim_latency + l1_hit_latency = 3 + 2.
        assert_eq!(r3.completes_at - (r2.completes_at + 1), 5);
    }

    #[test]
    fn dtlb_misses_add_walk_latency() {
        let cfg = HierarchyConfig {
            dtlb: Some(crate::TlbConfig {
                entries: 4,
                page_bits: 13,
                miss_penalty: 30,
            }),
            ..HierarchyConfig::default()
        };
        let mut h = MemoryHierarchy::new(cfg, Box::new(NullPrefetcher));
        let r1 = h.access(load(0x1000), 0);
        // Cold TLB miss + cold cache miss: 30 + 87.
        assert_eq!(r1.completes_at, 117);
        // Same page, same line: TLB hit, L1 hit.
        let r2 = h.access(load(0x1008), r1.completes_at + 1);
        assert_eq!(r2.completes_at - (r1.completes_at + 1), 2);
        assert_eq!(h.stats().dtlb_misses, 1);
    }

    #[test]
    fn bounded_store_buffer_stalls_store_bursts() {
        let cfg = HierarchyConfig {
            store_buffer_entries: Some(2),
            ..HierarchyConfig::default()
        };
        let mut h = MemoryHierarchy::new(cfg, Box::new(NullPrefetcher));
        // Four stores to distinct lines in the same cycle: the third must
        // wait for a buffer slot.
        for i in 0..4u64 {
            h.access(store(0x10_0000 + i * 4096), 0);
        }
        assert!(h.stats().store_buffer_stall_cycles > 0);
    }

    #[test]
    fn validate_accepts_table1_and_variants() {
        assert_eq!(HierarchyConfig::default().validate(), Ok(()));
        let victim = HierarchyConfig {
            victim_cache_entries: Some(8),
            ..HierarchyConfig::default()
        };
        assert_eq!(victim.validate(), Ok(()));
        let tlb = HierarchyConfig {
            dtlb: Some(TlbConfig::default()),
            ..HierarchyConfig::default()
        };
        assert_eq!(tlb.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_impossible_geometries() {
        // L1 lines wider than L2 lines: an L1 fill would span L2 lines.
        let cfg = HierarchyConfig {
            l1d: CacheGeometry::new(32 * 1024, 128, 1),
            ..HierarchyConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::LineSizeMismatch {
                l1_line: 128,
                l2_line: 64
            })
        );
    }

    #[test]
    fn validate_rejects_zero_fields() {
        for (mk, field) in [
            (
                Box::new(|| HierarchyConfig {
                    l1_mshrs: 0,
                    ..HierarchyConfig::default()
                }) as Box<dyn Fn() -> HierarchyConfig>,
                "l1_mshrs",
            ),
            (
                Box::new(|| HierarchyConfig {
                    memory_latency: 0,
                    ..HierarchyConfig::default()
                }),
                "memory_latency",
            ),
            (
                Box::new(|| HierarchyConfig {
                    l1_bus_cycles: 0,
                    ..HierarchyConfig::default()
                }),
                "l1_bus_cycles",
            ),
            (
                Box::new(|| HierarchyConfig {
                    victim_cache_entries: Some(0),
                    ..HierarchyConfig::default()
                }),
                "victim_cache_entries",
            ),
            (
                Box::new(|| HierarchyConfig {
                    store_buffer_entries: Some(0),
                    ..HierarchyConfig::default()
                }),
                "store_buffer_entries",
            ),
        ] {
            assert_eq!(mk().validate(), Err(ConfigError::ZeroField { field }));
        }
    }

    #[test]
    fn validate_rejects_bad_tlb() {
        let cfg = HierarchyConfig {
            dtlb: Some(TlbConfig {
                entries: 0,
                ..TlbConfig::default()
            }),
            ..HierarchyConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(ConfigError::ZeroField { .. })));
        let cfg = HierarchyConfig {
            dtlb: Some(TlbConfig {
                page_bits: 64,
                ..TlbConfig::default()
            }),
            ..HierarchyConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::OutOfRange { .. })
        ));
    }

    #[test]
    fn try_new_rejects_invalid_and_accepts_valid() {
        let bad = HierarchyConfig {
            l2_latency: 0,
            ..HierarchyConfig::default()
        };
        assert!(MemoryHierarchy::try_new(bad, Box::new(NullPrefetcher)).is_err());
        let mut h =
            MemoryHierarchy::try_new(HierarchyConfig::default(), Box::new(NullPrefetcher)).unwrap();
        assert_eq!(h.access(load(0x1000), 0).serviced_by, ServicedBy::Memory);
    }

    #[test]
    fn breakdown_original_matches_primary_misses_without_prefetcher() {
        let mut h = hierarchy();
        let mut t = 0;
        for i in 0..50 {
            let r = h.access(load(i * 64), t);
            t = r.completes_at + 1;
        }
        let stats = h.finalize();
        assert_eq!(stats.l2_breakdown.original(), stats.l1_misses);
        assert_eq!(stats.l2_breakdown.prefetched_original, 0);
        assert_eq!(stats.l2_breakdown.prefetched_extra, 0);
    }
}
