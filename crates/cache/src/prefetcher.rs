//! The interface between the memory hierarchy and prefetch engines.
//!
//! The paper positions the prefetcher between the L1 data cache and the
//! L2 (Figure 10): it observes the L1 *miss* stream and issues prefetches
//! that fill the L2 (and, in the hybrid design of Section 5.2.2, the L1
//! once the resident line is predicted dead). This module defines that
//! contract; `tcp-core` implements TCP against it and `tcp-baselines`
//! implements DBCP, stride, stream-buffer, and Markov comparators.

use tcp_mem::{LineAddr, MemAccess, SetIndex, Tag};

/// Everything a prefetcher may observe about one L1 data-cache miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L1MissInfo {
    /// The demand access that missed (PC, address, load/store).
    pub access: MemAccess,
    /// L1-geometry line address of the miss.
    pub line: LineAddr,
    /// L1 tag of the miss address — TCP's raw material.
    pub tag: Tag,
    /// L1 set index of the miss address.
    pub set: SetIndex,
    /// Cycle at which the miss was detected.
    pub cycle: u64,
}

/// Where a prefetched line should land.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrefetchTarget {
    /// Fill the L2 only — the paper's default placement, which cannot
    /// pollute the small L1.
    L2,
    /// Fill the L2 and then promote into the L1 (hybrid design; used only
    /// when a dead-block predictor says the victim frame is dead).
    L1,
}

/// A prefetch request emitted by a prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// L1-geometry line address to prefetch.
    pub line: LineAddr,
    /// Destination level.
    pub target: PrefetchTarget,
}

impl PrefetchRequest {
    /// A request targeting the L2 (the common case).
    pub const fn to_l2(line: LineAddr) -> Self {
        PrefetchRequest {
            line,
            target: PrefetchTarget::L2,
        }
    }

    /// A request that also promotes into the L1.
    pub const fn to_l1(line: LineAddr) -> Self {
        PrefetchRequest {
            line,
            target: PrefetchTarget::L1,
        }
    }
}

/// A hardware prefetch engine observing the L1 data-cache reference stream.
///
/// Implementations push zero or more [`PrefetchRequest`]s into `out` on
/// each primary L1 miss. Hit and eviction callbacks exist for predictors
/// that track per-line liveness (the timekeeping dead-block predictor) or
/// per-line PC traces (DBCP); pure miss-stream prefetchers like TCP ignore
/// them.
pub trait Prefetcher {
    /// Short engine name, e.g. `"TCP-8K"`.
    fn name(&self) -> &str;

    /// Total prediction-table storage in bytes (history + pattern tables),
    /// the cost metric the paper compares designs by.
    fn storage_bytes(&self) -> usize;

    /// Called on every primary L1 data-cache miss.
    fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>);

    /// Called on every L1 data-cache hit. Default: ignored. Engines that
    /// predict mid-generation (e.g. DBCP's dead-block signatures complete
    /// on a hit) may push prefetch requests into `out`.
    fn on_hit(
        &mut self,
        _access: &MemAccess,
        _line: LineAddr,
        _cycle: u64,
        _out: &mut Vec<PrefetchRequest>,
    ) {
    }

    /// Called on the *first demand use* of a line that a prefetch
    /// promoted into the L1. Without promotion this access would have
    /// been an L1 miss, so history-based engines treat it as a virtual
    /// miss to keep their prediction cascade rolling (the L1's
    /// prefetched bit makes this observable in hardware). Default:
    /// ignored.
    fn on_promoted_first_use(&mut self, _info: &L1MissInfo, _out: &mut Vec<PrefetchRequest>) {}

    /// Called when the L1 evicts a line. Default: ignored.
    fn on_l1_evict(&mut self, _line: LineAddr, _cycle: u64) {}

    /// Called when the L1 fills a line (demand or prefetch promotion).
    /// Default: ignored.
    fn on_l1_fill(&mut self, _line: LineAddr, _cycle: u64) {}

    /// `false` promises every callback is a no-op, letting the hierarchy
    /// skip virtual dispatch and request-buffer bookkeeping on its hot
    /// paths (the no-prefetch baseline runs every access). Default:
    /// `true`. Only override to return a constant `false`; the hierarchy
    /// caches the answer at construction.
    fn is_active(&self) -> bool {
        true
    }
}

/// A prefetcher that never prefetches: the no-prefetch baseline.
///
/// # Examples
///
/// ```
/// use tcp_cache::{NullPrefetcher, Prefetcher};
/// assert_eq!(NullPrefetcher.name(), "none");
/// assert_eq!(NullPrefetcher.storage_bytes(), 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullPrefetcher;

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &str {
        "none"
    }

    fn storage_bytes(&self) -> usize {
        0
    }

    fn on_miss(&mut self, _info: &L1MissInfo, _out: &mut Vec<PrefetchRequest>) {}

    fn is_active(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_mem::Addr;

    #[test]
    fn null_prefetcher_emits_nothing() {
        let mut p = NullPrefetcher;
        let mut out = Vec::new();
        let info = L1MissInfo {
            access: MemAccess::load(Addr::new(0), Addr::new(0x40)),
            line: LineAddr::from_line_number(2),
            tag: Tag::new(0),
            set: SetIndex::new(2),
            cycle: 0,
        };
        p.on_miss(&info, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn request_constructors_set_target() {
        let l = LineAddr::from_line_number(9);
        assert_eq!(PrefetchRequest::to_l2(l).target, PrefetchTarget::L2);
        assert_eq!(PrefetchRequest::to_l1(l).target, PrefetchTarget::L1);
    }

    #[test]
    fn prefetcher_is_object_safe() {
        let b: Box<dyn Prefetcher> = Box::new(NullPrefetcher);
        assert_eq!(b.name(), "none");
    }
}
