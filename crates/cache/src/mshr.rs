//! Miss status holding registers: the bound on outstanding misses.
//!
//! The simulated machine (Table 1) gives the L1 data cache 64 MSHRs. An
//! MSHR tracks one in-flight line fill; a second miss to the same line
//! merges into the existing entry instead of issuing a duplicate fetch,
//! and when all registers are busy new misses must wait for the earliest
//! completion — the mechanism that caps memory-level parallelism.

use tcp_mem::LineAddr;

/// An in-flight fill tracked by an MSHR.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InflightFill {
    /// Cycle at which the fill data arrives.
    pub ready_at: u64,
    /// The fill was initiated by a prefetch.
    pub is_prefetch: bool,
    /// A demand access has merged into this fill while it was in flight.
    pub demanded: bool,
    /// A store has merged into this fill; the line must fill dirty.
    pub dirty: bool,
}

/// A file of miss status holding registers keyed by line address.
///
/// # Examples
///
/// ```
/// use tcp_cache::MshrFile;
/// use tcp_mem::LineAddr;
///
/// let mut m = MshrFile::new(2);
/// let l = LineAddr::from_line_number(7);
/// m.allocate(l, 100, false);
/// assert_eq!(m.lookup(l).unwrap().ready_at, 100);
/// ```
/// The file holds at most `capacity` entries — 64 on the Table 1 machine
/// — so it is a flat `Vec` rather than a hash map: a linear scan over a
/// few cache lines beats hashing at this size, and the cached minimum
/// `ready_at` lets [`MshrFile::drain_ready`] (called on *every* hierarchy
/// access via `advance`) return without scanning or allocating in the
/// common nothing-is-ready case.
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    inflight: Vec<(LineAddr, InflightFill)>,
    /// Exact minimum `ready_at` over `inflight`; `u64::MAX` when empty.
    /// `ready_at` never changes after allocation, so this stays exact
    /// without per-mutation upkeep beyond allocate/drain.
    min_ready: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        MshrFile {
            capacity,
            inflight: Vec::with_capacity(capacity),
            min_ready: u64::MAX,
        }
    }

    /// Number of registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of fills currently in flight.
    pub fn in_use(&self) -> usize {
        self.inflight.len()
    }

    /// `true` when no register is free.
    pub fn is_full(&self) -> bool {
        self.inflight.len() >= self.capacity
    }

    /// Looks up an in-flight fill for `line`.
    pub fn lookup(&self, line: LineAddr) -> Option<&InflightFill> {
        self.inflight
            .iter()
            .find(|(l, _)| *l == line)
            .map(|(_, f)| f)
    }

    fn lookup_mut(&mut self, line: LineAddr) -> Option<&mut InflightFill> {
        self.inflight
            .iter_mut()
            .find(|(l, _)| *l == line)
            .map(|(_, f)| f)
    }

    /// Marks an in-flight fill as demanded (a demand miss merged into it).
    ///
    /// Returns `false` if no fill for `line` is in flight.
    pub fn mark_demanded(&mut self, line: LineAddr) -> bool {
        match self.lookup_mut(line) {
            Some(f) => {
                f.demanded = true;
                true
            }
            None => false,
        }
    }

    /// Allocates a register for a new fill.
    ///
    /// # Panics
    ///
    /// Panics if the file is full or a fill for `line` already exists —
    /// callers must check [`MshrFile::is_full`] and merge via
    /// [`MshrFile::lookup`] first.
    pub fn allocate(&mut self, line: LineAddr, ready_at: u64, is_prefetch: bool) {
        assert!(!self.is_full(), "MSHR file is full");
        assert!(
            self.lookup(line).is_none(),
            "duplicate MSHR allocation for {line}"
        );
        self.inflight.push((
            line,
            InflightFill {
                ready_at,
                is_prefetch,
                demanded: !is_prefetch,
                dirty: false,
            },
        ));
        self.min_ready = self.min_ready.min(ready_at);
    }

    /// Marks an in-flight fill dirty (a store merged into it).
    ///
    /// Returns `false` if no fill for `line` is in flight.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        match self.lookup_mut(line) {
            Some(f) => {
                f.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Earliest completion cycle among in-flight fills, if any.
    pub fn earliest_ready(&self) -> Option<u64> {
        if self.inflight.is_empty() {
            None
        } else {
            Some(self.min_ready)
        }
    }

    /// Removes and returns every fill with `ready_at <= now`.
    pub fn drain_ready(&mut self, now: u64) -> Vec<(LineAddr, InflightFill)> {
        if now < self.min_ready {
            // Nothing is ready; `Vec::new` does not allocate.
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].1.ready_at <= now {
                out.push(self.inflight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        // Deterministic order for reproducibility (line addresses are
        // unique, so the pre-sort order cannot influence the result).
        out.sort_by_key(|(l, f)| (f.ready_at, l.line_number()));
        self.min_ready = self
            .inflight
            .iter()
            .map(|(_, f)| f.ready_at)
            .min()
            .unwrap_or(u64::MAX);
        out
    }

    /// Removes every in-flight fill, returning them (end-of-run cleanup).
    pub fn drain_all(&mut self) -> Vec<(LineAddr, InflightFill)> {
        let mut out: Vec<_> = std::mem::take(&mut self.inflight);
        out.sort_by_key(|(l, f)| (f.ready_at, l.line_number()));
        self.min_ready = u64::MAX;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn allocate_and_lookup() {
        let mut m = MshrFile::new(4);
        m.allocate(l(1), 10, false);
        m.allocate(l(2), 20, true);
        assert_eq!(m.in_use(), 2);
        assert!(m.lookup(l(1)).unwrap().demanded);
        assert!(!m.lookup(l(2)).unwrap().demanded);
        assert!(m.lookup(l(3)).is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut m = MshrFile::new(2);
        m.allocate(l(1), 1, false);
        assert!(!m.is_full());
        m.allocate(l(2), 2, false);
        assert!(m.is_full());
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overflow_panics() {
        let mut m = MshrFile::new(1);
        m.allocate(l(1), 1, false);
        m.allocate(l(2), 2, false);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_allocation_panics() {
        let mut m = MshrFile::new(2);
        m.allocate(l(1), 1, false);
        m.allocate(l(1), 2, false);
    }

    #[test]
    fn merge_marks_demanded() {
        let mut m = MshrFile::new(2);
        m.allocate(l(5), 50, true);
        assert!(m.mark_demanded(l(5)));
        assert!(m.lookup(l(5)).unwrap().demanded);
        assert!(!m.mark_demanded(l(6)));
    }

    #[test]
    fn drain_ready_is_ordered_and_partial() {
        let mut m = MshrFile::new(8);
        m.allocate(l(1), 30, false);
        m.allocate(l(2), 10, false);
        m.allocate(l(3), 20, true);
        let drained = m.drain_ready(25);
        assert_eq!(
            drained
                .iter()
                .map(|(a, _)| a.line_number())
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(m.in_use(), 1);
        assert_eq!(m.earliest_ready(), Some(30));
    }

    #[test]
    fn drain_all_empties() {
        let mut m = MshrFile::new(4);
        m.allocate(l(1), 5, false);
        m.allocate(l(2), 6, false);
        assert_eq!(m.drain_all().len(), 2);
        assert_eq!(m.in_use(), 0);
        assert_eq!(m.earliest_ready(), None);
    }
}
