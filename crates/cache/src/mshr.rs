//! Miss status holding registers: the bound on outstanding misses.
//!
//! The simulated machine (Table 1) gives the L1 data cache 64 MSHRs. An
//! MSHR tracks one in-flight line fill; a second miss to the same line
//! merges into the existing entry instead of issuing a duplicate fetch,
//! and when all registers are busy new misses must wait for the earliest
//! completion — the mechanism that caps memory-level parallelism.

use crate::kernels;
use tcp_mem::LineAddr;

/// An in-flight fill tracked by an MSHR.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InflightFill {
    /// Cycle at which the fill data arrives.
    pub ready_at: u64,
    /// The fill was initiated by a prefetch.
    pub is_prefetch: bool,
    /// A demand access has merged into this fill while it was in flight.
    pub demanded: bool,
    /// A store has merged into this fill; the line must fill dirty.
    pub dirty: bool,
}

/// A file of miss status holding registers keyed by line address.
///
/// # Examples
///
/// ```
/// use tcp_cache::MshrFile;
/// use tcp_mem::LineAddr;
///
/// let mut m = MshrFile::new(2);
/// let l = LineAddr::from_line_number(7);
/// m.allocate(l, 100, false);
/// assert_eq!(m.lookup(l).unwrap().ready_at, 100);
/// ```
/// The file holds at most `capacity` entries — 64 on the Table 1 machine
/// — stored struct-of-arrays: the line numbers sit in their own dense
/// `u64` array so [`MshrFile::lookup`] (on *every* L1 and L2 miss) is one
/// chunked [`kernels::find_u64`] sweep, and the cached minimum `ready_at`
/// lets [`MshrFile::drain_ready_into`] (called on every hierarchy access
/// via `advance`) return without scanning in the common nothing-is-ready
/// case.
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    /// Line numbers of in-flight fills; parallel to `fills`.
    lines: Vec<u64>,
    fills: Vec<InflightFill>,
    /// Exact minimum `ready_at` over `fills`; `u64::MAX` when empty.
    /// `ready_at` never changes after allocation, so this stays exact
    /// without per-mutation upkeep beyond allocate/drain.
    min_ready: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        MshrFile {
            capacity,
            lines: Vec::with_capacity(capacity),
            fills: Vec::with_capacity(capacity),
            min_ready: u64::MAX,
        }
    }

    /// Number of registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of fills currently in flight.
    pub fn in_use(&self) -> usize {
        self.fills.len()
    }

    /// `true` when no register is free.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.fills.len() >= self.capacity
    }

    /// `true` when at least one fill has completed by `now` — the
    /// allocation-free fast-path check `advance` uses before draining.
    #[inline]
    pub fn has_ready(&self, now: u64) -> bool {
        now >= self.min_ready
    }

    /// Looks up an in-flight fill for `line`.
    #[inline]
    pub fn lookup(&self, line: LineAddr) -> Option<&InflightFill> {
        kernels::find_u64(&self.lines, line.line_number()).map(|i| &self.fills[i])
    }

    #[inline]
    fn lookup_mut(&mut self, line: LineAddr) -> Option<&mut InflightFill> {
        kernels::find_u64(&self.lines, line.line_number()).map(|i| &mut self.fills[i])
    }

    /// Marks an in-flight fill as demanded (a demand miss merged into it).
    ///
    /// Returns `false` if no fill for `line` is in flight.
    pub fn mark_demanded(&mut self, line: LineAddr) -> bool {
        match self.lookup_mut(line) {
            Some(f) => {
                f.demanded = true;
                true
            }
            None => false,
        }
    }

    /// Allocates a register for a new fill.
    ///
    /// # Panics
    ///
    /// Panics if the file is full. Callers must check
    /// [`MshrFile::is_full`] and merge duplicates via
    /// [`MshrFile::lookup`] first; every call site performs that lookup
    /// as part of its merge path, so the duplicate check here is a debug
    /// assertion rather than a second release-mode scan of the file.
    pub fn allocate(&mut self, line: LineAddr, ready_at: u64, is_prefetch: bool) {
        assert!(!self.is_full(), "MSHR file is full");
        debug_assert!(
            self.lookup(line).is_none(),
            "duplicate MSHR allocation for {line}"
        );
        self.lines.push(line.line_number());
        self.fills.push(InflightFill {
            ready_at,
            is_prefetch,
            demanded: !is_prefetch,
            dirty: false,
        });
        self.min_ready = self.min_ready.min(ready_at);
    }

    /// Marks an in-flight fill dirty (a store merged into it).
    ///
    /// Returns `false` if no fill for `line` is in flight.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        match self.lookup_mut(line) {
            Some(f) => {
                f.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Earliest completion cycle among in-flight fills, if any.
    pub fn earliest_ready(&self) -> Option<u64> {
        if self.fills.is_empty() {
            None
        } else {
            Some(self.min_ready)
        }
    }

    /// Removes and returns every fill with `ready_at <= now`.
    pub fn drain_ready(&mut self, now: u64) -> Vec<(LineAddr, InflightFill)> {
        let mut out = Vec::new();
        self.drain_ready_into(now, &mut out);
        out
    }

    /// Clears `out`, then fills it with every fill whose
    /// `ready_at <= now`, removing them from the file — the reusable-
    /// buffer form of [`MshrFile::drain_ready`] the hierarchy's hot
    /// `advance` path uses to avoid a fresh `Vec` per access.
    pub fn drain_ready_into(&mut self, now: u64, out: &mut Vec<(LineAddr, InflightFill)>) {
        out.clear();
        if now < self.min_ready {
            return;
        }
        let mut i = 0;
        while i < self.fills.len() {
            if self.fills[i].ready_at <= now {
                let line = LineAddr::from_line_number(self.lines.swap_remove(i));
                out.push((line, self.fills.swap_remove(i)));
            } else {
                i += 1;
            }
        }
        // Deterministic order for reproducibility (line addresses are
        // unique, so the pre-sort order cannot influence the result).
        out.sort_by_key(|(l, f)| (f.ready_at, l.line_number()));
        let mut min = u64::MAX;
        for f in &self.fills {
            min = min.min(f.ready_at);
        }
        self.min_ready = min;
    }

    /// Removes every in-flight fill, returning them (end-of-run cleanup).
    pub fn drain_all(&mut self) -> Vec<(LineAddr, InflightFill)> {
        let mut out: Vec<_> = self
            .lines
            .drain(..)
            .map(LineAddr::from_line_number)
            .zip(self.fills.drain(..))
            .collect();
        out.sort_by_key(|(l, f)| (f.ready_at, l.line_number()));
        self.min_ready = u64::MAX;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn allocate_and_lookup() {
        let mut m = MshrFile::new(4);
        m.allocate(l(1), 10, false);
        m.allocate(l(2), 20, true);
        assert_eq!(m.in_use(), 2);
        assert!(m.lookup(l(1)).unwrap().demanded);
        assert!(!m.lookup(l(2)).unwrap().demanded);
        assert!(m.lookup(l(3)).is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut m = MshrFile::new(2);
        m.allocate(l(1), 1, false);
        assert!(!m.is_full());
        m.allocate(l(2), 2, false);
        assert!(m.is_full());
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overflow_panics() {
        let mut m = MshrFile::new(1);
        m.allocate(l(1), 1, false);
        m.allocate(l(2), 2, false);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_allocation_panics() {
        let mut m = MshrFile::new(2);
        m.allocate(l(1), 1, false);
        m.allocate(l(1), 2, false);
    }

    #[test]
    fn merge_marks_demanded() {
        let mut m = MshrFile::new(2);
        m.allocate(l(5), 50, true);
        assert!(m.mark_demanded(l(5)));
        assert!(m.lookup(l(5)).unwrap().demanded);
        assert!(!m.mark_demanded(l(6)));
    }

    #[test]
    fn drain_ready_is_ordered_and_partial() {
        let mut m = MshrFile::new(8);
        m.allocate(l(1), 30, false);
        m.allocate(l(2), 10, false);
        m.allocate(l(3), 20, true);
        let drained = m.drain_ready(25);
        assert_eq!(
            drained
                .iter()
                .map(|(a, _)| a.line_number())
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(m.in_use(), 1);
        assert_eq!(m.earliest_ready(), Some(30));
    }

    #[test]
    fn drain_ready_into_reuses_and_clears_the_buffer() {
        let mut m = MshrFile::new(4);
        m.allocate(l(1), 10, false);
        let mut buf = vec![(l(99), m.lookup(l(1)).copied().unwrap())];
        m.drain_ready_into(5, &mut buf);
        assert!(buf.is_empty(), "stale contents must be cleared");
        assert!(m.has_ready(10));
        m.drain_ready_into(10, &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].0, l(1));
        assert!(!m.has_ready(u64::MAX - 1));
    }

    #[test]
    fn drain_all_empties() {
        let mut m = MshrFile::new(4);
        m.allocate(l(1), 5, false);
        m.allocate(l(2), 6, false);
        assert_eq!(m.drain_all().len(), 2);
        assert_eq!(m.in_use(), 0);
        assert_eq!(m.earliest_ready(), None);
    }
}
