//! Miss status holding registers: the bound on outstanding misses.
//!
//! The simulated machine (Table 1) gives the L1 data cache 64 MSHRs. An
//! MSHR tracks one in-flight line fill; a second miss to the same line
//! merges into the existing entry instead of issuing a duplicate fetch,
//! and when all registers are busy new misses must wait for the earliest
//! completion — the mechanism that caps memory-level parallelism.

use std::collections::HashMap;
use tcp_mem::LineAddr;

/// An in-flight fill tracked by an MSHR.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InflightFill {
    /// Cycle at which the fill data arrives.
    pub ready_at: u64,
    /// The fill was initiated by a prefetch.
    pub is_prefetch: bool,
    /// A demand access has merged into this fill while it was in flight.
    pub demanded: bool,
    /// A store has merged into this fill; the line must fill dirty.
    pub dirty: bool,
}

/// A file of miss status holding registers keyed by line address.
///
/// # Examples
///
/// ```
/// use tcp_cache::MshrFile;
/// use tcp_mem::LineAddr;
///
/// let mut m = MshrFile::new(2);
/// let l = LineAddr::from_line_number(7);
/// m.allocate(l, 100, false);
/// assert_eq!(m.lookup(l).unwrap().ready_at, 100);
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    inflight: HashMap<LineAddr, InflightFill>,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        MshrFile { capacity, inflight: HashMap::new() }
    }

    /// Number of registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of fills currently in flight.
    pub fn in_use(&self) -> usize {
        self.inflight.len()
    }

    /// `true` when no register is free.
    pub fn is_full(&self) -> bool {
        self.inflight.len() >= self.capacity
    }

    /// Looks up an in-flight fill for `line`.
    pub fn lookup(&self, line: LineAddr) -> Option<&InflightFill> {
        self.inflight.get(&line)
    }

    /// Marks an in-flight fill as demanded (a demand miss merged into it).
    ///
    /// Returns `false` if no fill for `line` is in flight.
    pub fn mark_demanded(&mut self, line: LineAddr) -> bool {
        if let Some(f) = self.inflight.get_mut(&line) {
            f.demanded = true;
            true
        } else {
            false
        }
    }

    /// Allocates a register for a new fill.
    ///
    /// # Panics
    ///
    /// Panics if the file is full or a fill for `line` already exists —
    /// callers must check [`MshrFile::is_full`] and merge via
    /// [`MshrFile::lookup`] first.
    pub fn allocate(&mut self, line: LineAddr, ready_at: u64, is_prefetch: bool) {
        assert!(!self.is_full(), "MSHR file is full");
        let prev = self
            .inflight
            .insert(line, InflightFill { ready_at, is_prefetch, demanded: !is_prefetch, dirty: false });
        assert!(prev.is_none(), "duplicate MSHR allocation for {line}");
    }

    /// Marks an in-flight fill dirty (a store merged into it).
    ///
    /// Returns `false` if no fill for `line` is in flight.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        if let Some(f) = self.inflight.get_mut(&line) {
            f.dirty = true;
            true
        } else {
            false
        }
    }

    /// Earliest completion cycle among in-flight fills, if any.
    pub fn earliest_ready(&self) -> Option<u64> {
        self.inflight.values().map(|f| f.ready_at).min()
    }

    /// Removes and returns every fill with `ready_at <= now`.
    pub fn drain_ready(&mut self, now: u64) -> Vec<(LineAddr, InflightFill)> {
        let ready: Vec<LineAddr> =
            self.inflight.iter().filter(|(_, f)| f.ready_at <= now).map(|(l, _)| *l).collect();
        let mut out = Vec::with_capacity(ready.len());
        for l in ready {
            let f = self.inflight.remove(&l).expect("key listed above");
            out.push((l, f));
        }
        // Deterministic order for reproducibility.
        out.sort_by_key(|(l, f)| (f.ready_at, l.line_number()));
        out
    }

    /// Removes every in-flight fill, returning them (end-of-run cleanup).
    pub fn drain_all(&mut self) -> Vec<(LineAddr, InflightFill)> {
        let mut out: Vec<_> = self.inflight.drain().collect();
        out.sort_by_key(|(l, f)| (f.ready_at, l.line_number()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn allocate_and_lookup() {
        let mut m = MshrFile::new(4);
        m.allocate(l(1), 10, false);
        m.allocate(l(2), 20, true);
        assert_eq!(m.in_use(), 2);
        assert!(m.lookup(l(1)).unwrap().demanded);
        assert!(!m.lookup(l(2)).unwrap().demanded);
        assert!(m.lookup(l(3)).is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut m = MshrFile::new(2);
        m.allocate(l(1), 1, false);
        assert!(!m.is_full());
        m.allocate(l(2), 2, false);
        assert!(m.is_full());
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overflow_panics() {
        let mut m = MshrFile::new(1);
        m.allocate(l(1), 1, false);
        m.allocate(l(2), 2, false);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_allocation_panics() {
        let mut m = MshrFile::new(2);
        m.allocate(l(1), 1, false);
        m.allocate(l(1), 2, false);
    }

    #[test]
    fn merge_marks_demanded() {
        let mut m = MshrFile::new(2);
        m.allocate(l(5), 50, true);
        assert!(m.mark_demanded(l(5)));
        assert!(m.lookup(l(5)).unwrap().demanded);
        assert!(!m.mark_demanded(l(6)));
    }

    #[test]
    fn drain_ready_is_ordered_and_partial() {
        let mut m = MshrFile::new(8);
        m.allocate(l(1), 30, false);
        m.allocate(l(2), 10, false);
        m.allocate(l(3), 20, true);
        let drained = m.drain_ready(25);
        assert_eq!(drained.iter().map(|(a, _)| a.line_number()).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(m.in_use(), 1);
        assert_eq!(m.earliest_ready(), Some(30));
    }

    #[test]
    fn drain_all_empties() {
        let mut m = MshrFile::new(4);
        m.allocate(l(1), 5, false);
        m.allocate(l(2), 6, false);
        assert_eq!(m.drain_all().len(), 2);
        assert_eq!(m.in_use(), 0);
        assert_eq!(m.earliest_ready(), None);
    }
}
