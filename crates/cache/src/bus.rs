//! A contended, in-order bus model.
//!
//! The paper credits its bus model ("a simulator modification that
//! accurately models contention at the L1/L2 and memory buses", citing Lai
//! et al.) for realistic prefetching results: prefetch traffic and demand
//! traffic compete for the same wires. [`Bus`] models a single transaction
//! channel: each line transfer occupies the bus for a fixed number of
//! cycles and later requests queue behind earlier ones.

/// A single-channel bus with fixed per-transfer occupancy.
///
/// # Examples
///
/// ```
/// use tcp_cache::Bus;
///
/// // 64-byte lines over a 32-byte-wide bus: 2 cycles per transfer.
/// let mut bus = Bus::new(2);
/// assert_eq!(bus.schedule(10), (10, 12));
/// assert_eq!(bus.schedule(10), (12, 14)); // queues behind the first
/// assert_eq!(bus.schedule(100), (100, 102)); // idle gap, no queuing
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bus {
    cycles_per_transfer: u64,
    next_free: u64,
    transfers: u64,
    busy_cycles: u64,
}

impl Bus {
    /// Creates a bus that takes `cycles_per_transfer` cycles per line.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_transfer` is zero.
    pub fn new(cycles_per_transfer: u64) -> Self {
        assert!(cycles_per_transfer > 0, "bus transfer time must be nonzero");
        Bus {
            cycles_per_transfer,
            next_free: 0,
            transfers: 0,
            busy_cycles: 0,
        }
    }

    /// Schedules one line transfer no earlier than `earliest`.
    ///
    /// Returns `(start, done)`: the transfer occupies `[start, done)` and
    /// the requested data is available at `done`.
    pub fn schedule(&mut self, earliest: u64) -> (u64, u64) {
        let start = earliest.max(self.next_free);
        let done = start + self.cycles_per_transfer;
        self.next_free = done;
        self.transfers += 1;
        self.busy_cycles += self.cycles_per_transfer;
        (start, done)
    }

    /// The queuing delay a request arriving at `at` would currently see,
    /// without scheduling anything.
    pub fn queue_delay(&self, at: u64) -> u64 {
        self.next_free.saturating_sub(at)
    }

    /// Number of transfers scheduled so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total cycles the bus has been occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Occupancy as a fraction of `elapsed` cycles (clamped to 1.0).
    pub fn occupancy(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.busy_cycles as f64 / elapsed as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_queue() {
        let mut b = Bus::new(4);
        assert_eq!(b.schedule(0), (0, 4));
        assert_eq!(b.schedule(1), (4, 8));
        assert_eq!(b.schedule(2), (8, 12));
        assert_eq!(b.transfers(), 3);
        assert_eq!(b.busy_cycles(), 12);
    }

    #[test]
    fn idle_bus_starts_immediately() {
        let mut b = Bus::new(2);
        b.schedule(0);
        assert_eq!(b.schedule(50), (50, 52));
    }

    #[test]
    fn queue_delay_reflects_backlog() {
        let mut b = Bus::new(10);
        b.schedule(0); // busy until 10
        assert_eq!(b.queue_delay(3), 7);
        assert_eq!(b.queue_delay(10), 0);
        assert_eq!(b.queue_delay(99), 0);
    }

    #[test]
    fn occupancy_is_bounded() {
        let mut b = Bus::new(5);
        for _ in 0..10 {
            b.schedule(0);
        }
        assert!((b.occupancy(100) - 0.5).abs() < 1e-9);
        assert_eq!(b.occupancy(0), 0.0);
        assert!(b.occupancy(1) <= 1.0);
    }

    #[test]
    fn earlier_request_after_late_one_still_queues() {
        // Non-monotonic arrival (out-of-order issue): the bus stays causal
        // by serialising on next_free.
        let mut b = Bus::new(3);
        assert_eq!(b.schedule(100), (100, 103));
        assert_eq!(b.schedule(10), (103, 106));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_transfer_time_rejected() {
        let _ = Bus::new(0);
    }
}
