//! Typed configuration errors.
//!
//! Every layer of the simulated machine — hierarchy, core, full system —
//! validates its parameters against the same small vocabulary of defects
//! instead of panicking deep inside the timing model. A [`ConfigError`]
//! names the offending field and the constraint it violates, so callers
//! (the suite runner, the experiment harness, a service endpoint) can
//! reject an impossible machine before spending cycles simulating it.

use std::fmt;

/// A machine-configuration parameter that cannot describe real hardware.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A field that must be a power of two is not.
    NotPowerOfTwo {
        /// Name of the offending parameter.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A field that must be nonzero is zero.
    ZeroField {
        /// Name of the offending parameter.
        field: &'static str,
    },
    /// The L1 line size exceeds the L2 line size, so an L1 fill could not
    /// be satisfied from a single L2 line.
    LineSizeMismatch {
        /// Configured L1 line size in bytes.
        l1_line: u64,
        /// Configured L2 line size in bytes.
        l2_line: u64,
    },
    /// A field is outside its meaningful range.
    OutOfRange {
        /// Name of the offending parameter.
        field: &'static str,
        /// The rejected value.
        value: u64,
        /// Smallest accepted value.
        min: u64,
        /// Largest accepted value.
        max: u64,
    },
    /// A floating-point field is not a positive finite number.
    NotPositiveFinite {
        /// Name of the offending parameter.
        field: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a power of two, got {value}")
            }
            ConfigError::ZeroField { field } => write!(f, "{field} must be nonzero"),
            ConfigError::LineSizeMismatch { l1_line, l2_line } => write!(
                f,
                "L1 line size ({l1_line} B) must not exceed L2 line size ({l2_line} B)"
            ),
            ConfigError::OutOfRange {
                field,
                value,
                min,
                max,
            } => {
                write!(f, "{field} must be in {min}..={max}, got {value}")
            }
            ConfigError::NotPositiveFinite { field } => {
                write!(f, "{field} must be a positive finite number")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let cases: Vec<(ConfigError, &str)> = vec![
            (
                ConfigError::NotPowerOfTwo {
                    field: "l1 line size",
                    value: 48,
                },
                "l1 line size",
            ),
            (ConfigError::ZeroField { field: "l1_mshrs" }, "l1_mshrs"),
            (
                ConfigError::LineSizeMismatch {
                    l1_line: 64,
                    l2_line: 32,
                },
                "64 B",
            ),
            (
                ConfigError::OutOfRange {
                    field: "page_bits",
                    value: 99,
                    min: 1,
                    max: 63,
                },
                "page_bits",
            ),
            (
                ConfigError::NotPositiveFinite { field: "clock_ghz" },
                "clock_ghz",
            ),
        ];
        for (err, needle) in cases {
            assert!(format!("{err}").contains(needle), "{err:?}");
        }
    }

    #[test]
    fn implements_error_trait() {
        let err: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroField { field: "x" });
        assert!(err.to_string().contains("x"));
    }
}
