//! Chunked compare/reduce kernels for the probe, fill, and victim-select
//! hot paths.
//!
//! Every structure on the simulator's inner loop — cache sets, MSHR
//! files, the TLB, the PHT — stores its keys as contiguous `u64` arrays
//! (struct-of-arrays), so the questions they ask ("which way holds this
//! tag?", "which entry is oldest?") reduce to three kernels:
//!
//! * [`find_tag`] — masked first-match over one cache set (≤ 64 ways);
//! * [`find_u64`] — first-match over a dense array of any length;
//! * [`min_index`] — first index of the minimum of a dense array.
//!
//! Each kernel walks fixed-width `[u64; CHUNK]` blocks whose trip counts
//! are compile-time constants, accumulating branch-free equality
//! bitmasks; the winning lane falls out of `trailing_zeros`, which also
//! encodes the lowest-index tie-break every caller relies on. Partial
//! tails dispatch through a slice-pattern match to the same fixed-width
//! compare, so no path ever runs a variable-trip loop — that shape is
//! what keeps the compiler from wrapping a 4-way probe in a runtime
//! vector-dispatch prologue (or a `memcpy` call for a padded tail) that
//! costs more than the probe itself.
//!
//! All three kernels have scalar reference twins (`*_scalar`) that state
//! the semantics in the obvious one-element-at-a-time form; the
//! equivalence suite in `tests/kernel_equivalence.rs` pins the pairs
//! together over exhaustive chunk-boundary lengths and randomized
//! patterns. Per-kernel memory models (reads, writes, extra bytes per
//! op) live in DESIGN.md §12.

/// Elements processed per block by the chunked kernels.
pub const CHUNK: usize = 8;

/// Equality bitmask of one fixed-width block: bit `lane` is set when
/// `xs[lane] == needle`. `N` is a compile-time constant, so the chain
/// unrolls flat.
#[inline(always)]
fn fixed_eq<const N: usize>(xs: &[u64; N], needle: u64) -> u64 {
    let mut m: u64 = 0;
    let mut lane = 0;
    while lane < N {
        m |= u64::from(xs[lane] == needle) << lane;
        lane += 1;
    }
    m
}

/// Equality bitmask of a partial block shorter than [`CHUNK`]: each
/// possible tail length dispatches to its own fixed-width [`fixed_eq`],
/// so the compare stays straight-line code for every arm.
#[inline(always)]
fn tail_eq(tail: &[u64], needle: u64) -> u64 {
    debug_assert!(tail.len() < CHUNK, "tails are shorter than one block");
    match *tail {
        [] => 0,
        [a] => fixed_eq(&[a], needle),
        [a, b] => fixed_eq(&[a, b], needle),
        [a, b, c] => fixed_eq(&[a, b, c], needle),
        [a, b, c, d] => fixed_eq(&[a, b, c, d], needle),
        [a, b, c, d, e] => fixed_eq(&[a, b, c, d, e], needle),
        [a, b, c, d, e, f] => fixed_eq(&[a, b, c, d, e, f], needle),
        [a, b, c, d, e, f, g] => fixed_eq(&[a, b, c, d, e, f, g], needle),
        _ => 0,
    }
}

/// Minimum of a fixed-width block, as a branch-free reduction.
#[inline(always)]
fn fixed_min<const N: usize>(xs: &[u64; N]) -> u64 {
    let mut m = u64::MAX;
    let mut lane = 0;
    while lane < N {
        m = m.min(xs[lane]);
        lane += 1;
    }
    m
}

/// Minimum of a partial block shorter than [`CHUNK`], dispatched like
/// [`tail_eq`]. Returns `u64::MAX` for an empty tail.
#[inline(always)]
fn tail_min(tail: &[u64]) -> u64 {
    debug_assert!(tail.len() < CHUNK, "tails are shorter than one block");
    match *tail {
        [] => u64::MAX,
        [a] => a,
        [a, b] => fixed_min(&[a, b]),
        [a, b, c] => fixed_min(&[a, b, c]),
        [a, b, c, d] => fixed_min(&[a, b, c, d]),
        [a, b, c, d, e] => fixed_min(&[a, b, c, d, e]),
        [a, b, c, d, e, f] => fixed_min(&[a, b, c, d, e, f]),
        [a, b, c, d, e, f, g] => fixed_min(&[a, b, c, d, e, f, g]),
        _ => u64::MAX,
    }
}

/// Returns the lowest index `i` with `tags[i] == needle` and bit `i` of
/// `valid_mask` set, or `None`.
///
/// This is the set-probe kernel: `tags` is one cache set's way-tag row
/// and `valid_mask` its occupancy bitmask. `tags.len()` must be at most
/// 64 (one bit per way); bits of `valid_mask` at or above `tags.len()`
/// must be zero.
#[inline(always)]
pub fn find_tag(tags: &[u64], valid_mask: u64, needle: u64) -> Option<usize> {
    debug_assert!(tags.len() <= 64, "find_tag is limited to 64 ways");
    debug_assert!(tags.len() == 64 || valid_mask >> tags.len() == 0);
    let (blocks, tail) = tags.as_chunks::<CHUNK>();
    let mut eq: u64 = 0;
    let mut base = 0u32;
    for block in blocks {
        eq |= fixed_eq(block, needle) << base;
        base += CHUNK as u32;
    }
    if !tail.is_empty() {
        eq |= tail_eq(tail, needle) << base;
    }
    let hit = eq & valid_mask;
    if hit == 0 {
        None
    } else {
        Some(hit.trailing_zeros() as usize)
    }
}

/// Scalar reference for [`find_tag`]: the one-way-at-a-time probe the
/// chunked kernel must match bit for bit.
pub fn find_tag_scalar(tags: &[u64], valid_mask: u64, needle: u64) -> Option<usize> {
    (0..tags.len()).find(|&i| (valid_mask >> i) & 1 == 1 && tags[i] == needle)
}

/// Returns the lowest index `i` with `xs[i] == needle`, or `None`.
///
/// The dense-array probe kernel (MSHR files, the TLB, the victim cache):
/// every element is live, and `xs` may be any length.
#[inline(always)]
pub fn find_u64(xs: &[u64], needle: u64) -> Option<usize> {
    let (blocks, tail) = xs.as_chunks::<CHUNK>();
    let mut base = 0usize;
    for block in blocks {
        let m = fixed_eq(block, needle);
        if m != 0 {
            return Some(base + m.trailing_zeros() as usize);
        }
        base += CHUNK;
    }
    if !tail.is_empty() {
        let m = tail_eq(tail, needle);
        if m != 0 {
            return Some(base + m.trailing_zeros() as usize);
        }
    }
    None
}

/// Scalar reference for [`find_u64`].
pub fn find_u64_scalar(xs: &[u64], needle: u64) -> Option<usize> {
    xs.iter().position(|&x| x == needle)
}

/// Returns the index of the first occurrence of the minimum of `xs`, or
/// 0 when `xs` is empty.
///
/// The victim-select kernel (LRU/FIFO stamps): a branch-free min
/// reduction followed by a first-match scan, so the "first strict
/// minimum wins" tie-break of the replacement policies is preserved.
#[inline(always)]
pub fn min_index(xs: &[u64]) -> usize {
    let (blocks, tail) = xs.as_chunks::<CHUNK>();
    let mut m = u64::MAX;
    for block in blocks {
        m = m.min(fixed_min(block));
    }
    m = m.min(tail_min(tail));
    find_u64(xs, m).unwrap_or(0)
}

/// Scalar reference for [`min_index`]: the running first-strict-minimum
/// scan the replacement policies were originally written as.
pub fn min_index_scalar(xs: &[u64]) -> usize {
    let mut best = 0;
    let mut best_v = u64::MAX;
    for (i, &x) in xs.iter().enumerate() {
        if x < best_v {
            best = i;
            best_v = x;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_tag_respects_valid_mask() {
        let tags = [7, 7, 7, 7];
        assert_eq!(find_tag(&tags, 0b0000, 7), None);
        assert_eq!(find_tag(&tags, 0b0100, 7), Some(2));
        assert_eq!(find_tag(&tags, 0b1111, 7), Some(0));
    }

    #[test]
    fn find_tag_crosses_chunk_boundary() {
        let mut tags = [0u64; 19];
        tags[17] = 42;
        let mask = (1u64 << 19) - 1;
        assert_eq!(find_tag(&tags, mask, 42), Some(17));
        assert_eq!(find_tag(&tags, mask & !(1 << 17), 42), None);
    }

    #[test]
    fn find_tag_full_64_ways() {
        let mut tags = [1u64; 64];
        tags[63] = 9;
        assert_eq!(find_tag(&tags, u64::MAX, 9), Some(63));
        assert_eq!(find_tag(&tags, u64::MAX, 1), Some(0));
    }

    #[test]
    fn find_u64_first_match_wins() {
        assert_eq!(find_u64(&[3, 1, 4, 1, 5], 1), Some(1));
        assert_eq!(find_u64(&[3, 1, 4, 1, 5], 9), None);
        assert_eq!(find_u64(&[], 0), None);
    }

    #[test]
    fn min_index_first_minimum_wins() {
        assert_eq!(min_index(&[5, 2, 9, 2]), 1);
        assert_eq!(min_index(&[7]), 0);
        assert_eq!(min_index(&[]), 0);
    }

    #[test]
    fn every_tail_length_matches_scalar() {
        for len in 0..2 * CHUNK {
            let xs: Vec<u64> = (0..len as u64).map(|i| i % 5).collect();
            for needle in 0..6 {
                assert_eq!(
                    find_u64(&xs, needle),
                    find_u64_scalar(&xs, needle),
                    "len {len} needle {needle}"
                );
            }
            assert_eq!(min_index(&xs), min_index_scalar(&xs), "len {len}");
        }
    }
}
