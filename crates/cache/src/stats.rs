//! Hierarchy statistics, including the Figure 12 L2-access decomposition.

/// The three-way decomposition of L2 accesses from Figure 12 of the paper.
///
/// "Original" L2 accesses are demand accesses — the accesses that would
/// reach L2 even without a prefetcher. With a prefetcher some of them are
/// *pre-issued* (they find their data already prefetched, or merge into an
/// in-flight prefetch); the rest are *non-prefetched*. Prefetches that
/// fetch lines from memory which are never demanded before leaving the L2
/// are *extra* accesses: pure overhead traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L2AccessBreakdown {
    /// Demand L2 accesses whose data was brought (or being brought) by a
    /// prefetch: the prefetcher captured these.
    pub prefetched_original: u64,
    /// Demand L2 accesses the prefetcher did not capture.
    pub non_prefetched_original: u64,
    /// Prefetch-initiated memory fetches whose lines were never demanded.
    pub prefetched_extra: u64,
}

impl L2AccessBreakdown {
    /// Total original (demand) L2 accesses.
    pub fn original(&self) -> u64 {
        self.prefetched_original + self.non_prefetched_original
    }

    /// The three bars of Figure 12, normalised to original L2 accesses:
    /// `(prefetched original, non-prefetched original, prefetched extra)`.
    pub fn normalized(&self) -> (f64, f64, f64) {
        let base = self.original();
        if base == 0 {
            return (0.0, 0.0, 0.0);
        }
        let b = base as f64;
        (
            self.prefetched_original as f64 / b,
            self.non_prefetched_original as f64 / b,
            self.prefetched_extra as f64 / b,
        )
    }

    /// Coverage: fraction of original accesses captured by the prefetcher.
    pub fn coverage(&self) -> f64 {
        self.normalized().0
    }
}

/// Counters accumulated by [`crate::MemoryHierarchy`] during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Demand loads observed.
    pub loads: u64,
    /// Demand stores observed.
    pub stores: u64,
    /// L1 data-cache hits.
    pub l1_hits: u64,
    /// Primary L1 data-cache misses (one per line fetch).
    pub l1_misses: u64,
    /// Secondary misses merged into an in-flight fill.
    pub l1_mshr_merges: u64,
    /// Cycles an access had to wait because every MSHR was busy.
    pub mshr_stall_cycles: u64,
    /// Demand accesses reaching the L2.
    pub l2_demand_accesses: u64,
    /// Demand accesses hitting in the L2 (or merging into a fill).
    pub l2_demand_hits: u64,
    /// Demand accesses missing in the L2 and going to memory.
    pub l2_demand_misses: u64,
    /// Prefetch requests handed to the hierarchy by the engine.
    pub prefetches_issued: u64,
    /// Prefetch requests that found their line already in L2 (completed
    /// on the spot, no traffic).
    pub prefetches_already_resident: u64,
    /// Prefetch requests dropped because the in-flight prefetch buffer was
    /// full.
    pub prefetches_dropped: u64,
    /// Prefetch requests that went to main memory.
    pub prefetches_to_memory: u64,
    /// Prefetched lines promoted into the L1 (hybrid design).
    pub l1_prefetch_fills: u64,
    /// Dirty lines written back from L1 to L2.
    pub l1_writebacks: u64,
    /// Dirty lines written back from L2 to memory.
    pub l2_writebacks: u64,
    /// Misses serviced by the optional victim cache (swap hits).
    pub victim_hits: u64,
    /// Data-TLB misses (optional model).
    pub dtlb_misses: u64,
    /// Cycles stores stalled because the store buffer was full.
    pub store_buffer_stall_cycles: u64,
    /// Figure 12 decomposition.
    pub l2_breakdown: L2AccessBreakdown,
}

impl HierarchyStats {
    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// L1 miss rate over demand accesses (primary + merged misses).
    pub fn l1_miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            (self.l1_misses + self.l1_mshr_merges) as f64 / total as f64
        }
    }

    /// L2 local hit rate over demand L2 accesses.
    pub fn l2_hit_rate(&self) -> f64 {
        if self.l2_demand_accesses == 0 {
            0.0
        } else {
            self.l2_demand_hits as f64 / self.l2_demand_accesses as f64
        }
    }

    /// Prefetch accuracy: useful prefetches / memory-fetching prefetches.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetches_to_memory == 0 {
            0.0
        } else {
            let useful = self
                .prefetches_to_memory
                .saturating_sub(self.l2_breakdown.prefetched_extra);
            useful as f64 / self.prefetches_to_memory as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_normalization() {
        let b = L2AccessBreakdown {
            prefetched_original: 60,
            non_prefetched_original: 40,
            prefetched_extra: 25,
        };
        assert_eq!(b.original(), 100);
        let (p, n, e) = b.normalized();
        assert!((p - 0.60).abs() < 1e-12);
        assert!((n - 0.40).abs() < 1e-12);
        assert!((e - 0.25).abs() < 1e-12);
        assert!((b.coverage() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn breakdown_zero_base_is_zero() {
        let b = L2AccessBreakdown::default();
        assert_eq!(b.normalized(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn rates_handle_empty_runs() {
        let s = HierarchyStats::default();
        assert_eq!(s.l1_miss_rate(), 0.0);
        assert_eq!(s.l2_hit_rate(), 0.0);
        assert_eq!(s.prefetch_accuracy(), 0.0);
    }

    #[test]
    fn miss_rate_counts_merges() {
        let s = HierarchyStats {
            loads: 8,
            stores: 2,
            l1_misses: 2,
            l1_mshr_merges: 1,
            ..Default::default()
        };
        assert!((s.l1_miss_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn prefetch_accuracy_uses_extra() {
        let s = HierarchyStats {
            prefetches_to_memory: 10,
            l2_breakdown: L2AccessBreakdown {
                prefetched_extra: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((s.prefetch_accuracy() - 0.6).abs() < 1e-12);
    }
}
