//! A functional set-associative cache with per-line prefetch metadata.
//!
//! Timing is owned by [`crate::MemoryHierarchy`]; this type answers the
//! purely structural questions — is the line present, which line gets
//! evicted, which lines were prefetched but never demanded.

use crate::Replacement;
use tcp_mem::{CacheGeometry, LineAddr, SetIndex, Tag};

/// Metadata kept for each resident cache line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineMeta {
    /// Tag of the resident line.
    pub tag: Tag,
    /// Line has been written and must be written back on eviction.
    pub dirty: bool,
    /// Line was brought in by a prefetch rather than a demand fetch.
    pub prefetched: bool,
    /// Line has serviced at least one demand access since fill.
    pub demanded: bool,
    /// Monotonic order stamp of the fill (for FIFO).
    pub fill_order: u64,
    /// Monotonic order stamp of the last access (for LRU).
    pub last_access_order: u64,
    /// Cycle at which the line was filled.
    pub fill_cycle: u64,
    /// Cycle of the most recent access.
    pub last_access_cycle: u64,
}

/// A line pushed out of the cache by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Line address of the victim.
    pub line: LineAddr,
    /// Victim metadata at eviction time.
    pub meta: LineMeta,
}

/// Outcome of a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident. `first_demand_of_prefetch` is `true` when
    /// this is the first demand touch of a line a prefetcher brought in —
    /// the event counted as "prefetched original" in Figure 12.
    Hit {
        /// First demand use of a prefetched line.
        first_demand_of_prefetch: bool,
    },
    /// The line was not resident.
    Miss,
}

/// A set-associative cache.
///
/// # Examples
///
/// ```
/// use tcp_cache::{Cache, Replacement};
/// use tcp_mem::{Addr, CacheGeometry};
///
/// let geom = CacheGeometry::new(32 * 1024, 32, 1);
/// let mut c = Cache::new(geom, Replacement::Lru);
/// let line = geom.line_addr(Addr::new(0x1000));
/// assert!(!c.contains(line));
/// c.fill(line, 0, false);
/// assert!(c.contains(line));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    geom: CacheGeometry,
    policy: Replacement,
    ways: Vec<Option<LineMeta>>, // num_sets * associativity, row-major by set
    order: u64,
    occupied: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry and policy.
    pub fn new(geom: CacheGeometry, policy: Replacement) -> Self {
        let n = geom.num_sets() as usize * geom.associativity() as usize;
        Cache {
            geom,
            policy,
            ways: vec![None; n],
            order: 0,
            occupied: 0,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Number of resident lines.
    pub fn occupied_lines(&self) -> u64 {
        self.occupied
    }

    fn set_range(&self, set: SetIndex) -> std::ops::Range<usize> {
        let assoc = self.geom.associativity() as usize;
        let base = set.as_usize() * assoc;
        base..base + assoc
    }

    fn find(&self, tag: Tag, set: SetIndex) -> Option<usize> {
        self.set_range(set)
            .find(|&i| self.ways[i].map(|m| m.tag) == Some(tag))
    }

    /// Returns `true` if the line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        let (tag, set) = self.geom.split_line(line);
        self.find(tag, set).is_some()
    }

    /// Returns the metadata of a resident line, if present.
    pub fn peek(&self, line: LineAddr) -> Option<&LineMeta> {
        let (tag, set) = self.geom.split_line(line);
        self.find(tag, set).and_then(|i| self.ways[i].as_ref())
    }

    /// Performs a demand access (load or store) to the line.
    ///
    /// On a hit, the line's recency and dirty state are updated and the
    /// prefetch-credit event is reported. On a miss nothing changes: the
    /// caller decides when the fill lands (after the memory round trip).
    pub fn access(&mut self, line: LineAddr, write: bool, cycle: u64) -> AccessOutcome {
        let (tag, set) = self.geom.split_line(line);
        match self.find(tag, set) {
            Some(i) => {
                self.order += 1;
                // tcp-lint: allow(panic-in-library) — find() only returns occupied ways
                let m = self.ways[i].as_mut().expect("found way is occupied");
                let first = m.prefetched && !m.demanded;
                m.demanded = true;
                m.dirty |= write;
                m.last_access_order = self.order;
                m.last_access_cycle = cycle;
                AccessOutcome::Hit {
                    first_demand_of_prefetch: first,
                }
            }
            None => AccessOutcome::Miss,
        }
    }

    /// Installs a line, evicting a victim if the set is full.
    ///
    /// `prefetched` marks prefetcher-initiated fills for the Figure 12
    /// accounting. Filling a line that is already resident refreshes its
    /// recency and returns `None`.
    pub fn fill(&mut self, line: LineAddr, cycle: u64, prefetched: bool) -> Option<Evicted> {
        let (tag, set) = self.geom.split_line(line);
        self.order += 1;
        if let Some(i) = self.find(tag, set) {
            // tcp-lint: allow(panic-in-library) — find() only returns occupied ways
            let m = self.ways[i].as_mut().expect("found way is occupied");
            m.last_access_order = self.order;
            m.last_access_cycle = cycle;
            return None;
        }
        let meta = LineMeta {
            tag,
            dirty: false,
            prefetched,
            demanded: false,
            fill_order: self.order,
            last_access_order: self.order,
            fill_cycle: cycle,
            last_access_cycle: cycle,
        };
        // Empty way first.
        if let Some(i) = self.set_range(set).find(|&i| self.ways[i].is_none()) {
            self.ways[i] = Some(meta);
            self.occupied += 1;
            return None;
        }
        // Choose a victim among occupied ways, reading stamps straight
        // from the way array (no per-eviction scratch allocation).
        let range = self.set_range(set);
        let ways = &self.ways;
        let victim_way = self.policy.choose_victim_by(range.len(), |w| {
            // tcp-lint: allow(panic-in-library) — empty-way fill above returned already
            let m = ways[range.start + w].expect("set is full");
            (m.fill_order, m.last_access_order)
        });
        let idx = range.start + victim_way;
        let old = self.ways[idx]
            .replace(meta)
            // tcp-lint: allow(panic-in-library) — victim was chosen among occupied ways
            .expect("victim way was occupied");
        Some(Evicted {
            line: self.geom.compose(old.tag, set),
            meta: old,
        })
    }

    /// Marks a resident line as having serviced a demand access, without
    /// updating recency. Returns `false` if the line is not resident.
    ///
    /// Used by the hierarchy to keep prefetch-credit accounting consistent
    /// when the credit was granted elsewhere (e.g. a demand miss merged
    /// into an in-flight prefetch).
    pub fn mark_demanded(&mut self, line: LineAddr) -> bool {
        let (tag, set) = self.geom.split_line(line);
        if let Some(i) = self.find(tag, set) {
            self.ways[i]
                .as_mut()
                // tcp-lint: allow(panic-in-library) — find() only returns occupied ways
                .expect("found way is occupied")
                .demanded = true;
            true
        } else {
            false
        }
    }

    /// Marks a resident line dirty without updating recency. Returns
    /// `false` if the line is not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let (tag, set) = self.geom.split_line(line);
        if let Some(i) = self.find(tag, set) {
            // tcp-lint: allow(panic-in-library) — find() only returns occupied ways
            self.ways[i].as_mut().expect("found way is occupied").dirty = true;
            true
        } else {
            false
        }
    }

    /// Removes a line if resident, returning its metadata.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineMeta> {
        let (tag, set) = self.geom.split_line(line);
        if let Some(i) = self.find(tag, set) {
            self.occupied -= 1;
            self.ways[i].take()
        } else {
            None
        }
    }

    /// Iterates over all resident lines as `(line address, metadata)`.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &LineMeta)> + '_ {
        let assoc = self.geom.associativity() as usize;
        self.ways.iter().enumerate().filter_map(move |(i, w)| {
            w.as_ref().map(|m| {
                let set = SetIndex::new((i / assoc) as u32);
                (self.geom.compose(m.tag, set), m)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_mem::Addr;

    fn dm_l1() -> Cache {
        Cache::new(CacheGeometry::new(32 * 1024, 32, 1), Replacement::Lru)
    }

    fn small_4way() -> Cache {
        // 8 lines of 32 B, 4-way: 2 sets.
        Cache::new(CacheGeometry::new(256, 32, 4), Replacement::Lru)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = dm_l1();
        let line = c.geometry().line_addr(Addr::new(0x1000));
        assert_eq!(c.access(line, false, 0), AccessOutcome::Miss);
        assert!(c.fill(line, 1, false).is_none());
        assert!(matches!(
            c.access(line, false, 2),
            AccessOutcome::Hit { .. }
        ));
        assert_eq!(c.occupied_lines(), 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = dm_l1();
        let a = c.geometry().line_addr(Addr::new(0x1000));
        let b = c.geometry().line_addr(Addr::new(0x1000 + 32 * 1024)); // same set
        c.fill(a, 0, false);
        let ev = c.fill(b, 1, false).expect("conflict must evict");
        assert_eq!(ev.line, a);
        assert!(!c.contains(a));
        assert!(c.contains(b));
        assert_eq!(c.occupied_lines(), 1);
    }

    #[test]
    fn lru_evicts_least_recent_way() {
        let mut c = small_4way();
        let g = *c.geometry();
        // Four lines in set 0 (stride = num_sets * line = 64 B).
        let lines: Vec<_> = (0..5).map(|i| g.line_addr(Addr::new(i * 64))).collect();
        for l in &lines[..4] {
            c.fill(*l, 0, false);
        }
        // Touch 0,2,3 so line 1 is LRU.
        c.access(lines[0], false, 1);
        c.access(lines[2], false, 2);
        c.access(lines[3], false, 3);
        let ev = c.fill(lines[4], 4, false).expect("full set evicts");
        assert_eq!(ev.line, lines[1]);
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut c = dm_l1();
        let g = *c.geometry();
        let a = g.line_addr(Addr::new(0x2000));
        let b = g.line_addr(Addr::new(0x2000 + 32 * 1024));
        c.fill(a, 0, false);
        c.access(a, true, 1);
        let ev = c.fill(b, 2, false).expect("evicts");
        assert!(ev.meta.dirty);
    }

    #[test]
    fn prefetch_credit_reported_once() {
        let mut c = dm_l1();
        let line = c.geometry().line_addr(Addr::new(0x3000));
        c.fill(line, 0, true);
        assert_eq!(
            c.access(line, false, 1),
            AccessOutcome::Hit {
                first_demand_of_prefetch: true
            }
        );
        assert_eq!(
            c.access(line, false, 2),
            AccessOutcome::Hit {
                first_demand_of_prefetch: false
            }
        );
    }

    #[test]
    fn refill_of_resident_line_does_not_evict_or_duplicate() {
        let mut c = small_4way();
        let line = c.geometry().line_addr(Addr::new(0));
        c.fill(line, 0, false);
        assert!(c.fill(line, 1, true).is_none());
        assert_eq!(c.occupied_lines(), 1);
        // Refill must not clear the demand/prefetch state into a prefetch credit.
        assert_eq!(
            c.access(line, false, 2),
            AccessOutcome::Hit {
                first_demand_of_prefetch: false
            }
        );
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = dm_l1();
        let line = c.geometry().line_addr(Addr::new(0x4000));
        c.fill(line, 0, false);
        assert!(c.invalidate(line).is_some());
        assert!(!c.contains(line));
        assert!(c.invalidate(line).is_none());
        assert_eq!(c.occupied_lines(), 0);
    }

    #[test]
    fn iter_reports_resident_lines() {
        let mut c = small_4way();
        let g = *c.geometry();
        let a = g.line_addr(Addr::new(0));
        let b = g.line_addr(Addr::new(32)); // other set
        c.fill(a, 0, false);
        c.fill(b, 0, true);
        let mut lines: Vec<_> = c.iter().map(|(l, m)| (l, m.prefetched)).collect();
        lines.sort();
        assert_eq!(lines, vec![(a, false), (b, true)]);
    }
}
