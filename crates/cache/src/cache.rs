//! A functional set-associative cache with per-line prefetch metadata.
//!
//! Timing is owned by [`crate::MemoryHierarchy`]; this type answers the
//! purely structural questions — is the line present, which line gets
//! evicted, which lines were prefetched but never demanded.
//!
//! The storage is struct-of-arrays: each set's way tags sit in one
//! contiguous `u64` row probed by the chunked [`kernels::find_tag`]
//! kernel, occupancy is one bitmask per set (empty-way selection is a
//! single `trailing_zeros`), and the flag/stamp planes are separate
//! parallel arrays so a probe touches only the bytes it needs. The fill
//! path is one fused probe → empty-way → victim-select pass over those
//! rows. [`LineMeta`] remains the external view, assembled on demand.

use crate::{kernels, Replacement};
use tcp_mem::{CacheGeometry, LineAddr, SetIndex, Tag};

/// Metadata kept for each resident cache line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineMeta {
    /// Tag of the resident line.
    pub tag: Tag,
    /// Line has been written and must be written back on eviction.
    pub dirty: bool,
    /// Line was brought in by a prefetch rather than a demand fetch.
    pub prefetched: bool,
    /// Line has serviced at least one demand access since fill.
    pub demanded: bool,
    /// Monotonic order stamp of the fill (for FIFO).
    pub fill_order: u64,
    /// Monotonic order stamp of the last access (for LRU).
    pub last_access_order: u64,
    /// Cycle at which the line was filled.
    pub fill_cycle: u64,
    /// Cycle of the most recent access.
    pub last_access_cycle: u64,
}

/// A line pushed out of the cache by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Line address of the victim.
    pub line: LineAddr,
    /// Victim metadata at eviction time.
    pub meta: LineMeta,
}

/// Outcome of a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident. `first_demand_of_prefetch` is `true` when
    /// this is the first demand touch of a line a prefetcher brought in —
    /// the event counted as "prefetched original" in Figure 12.
    Hit {
        /// First demand use of a prefetched line.
        first_demand_of_prefetch: bool,
    },
    /// The line was not resident.
    Miss,
}

const FLAG_DIRTY: u8 = 1;
const FLAG_PREFETCHED: u8 = 1 << 1;
const FLAG_DEMANDED: u8 = 1 << 2;

/// One `u64` metadata plane whose live data starts `OFF` elements into
/// its allocation.
///
/// The stagger is load-bearing for performance: every plane is a
/// page-multiple in size, large allocations are page-aligned, so with
/// all planes starting at offset 0 a given set's row would land at the
/// *same offset modulo 4 KB* in every plane — i.e. in the same
/// associativity set of the host CPU's L1 cache. A workload hammering
/// one simulated set would then thrash one host cache set with six
/// conflicting lines. Shifting each plane by a different whole cache
/// line (multiples of 8 × `u64`) spreads the planes' rows across host
/// sets. `OFF` is a const generic so the offset folds into the
/// addressing arithmetic at compile time.
#[derive(Clone, Debug)]
struct Plane<const OFF: usize>(Vec<u64>);

impl<const OFF: usize> Plane<OFF> {
    fn new(len: usize) -> Self {
        Plane(vec![0; OFF + len])
    }

    /// The `len`-element row starting at logical index `base`.
    #[inline(always)]
    fn row(&self, base: usize, len: usize) -> &[u64] {
        &self.0[OFF + base..OFF + base + len]
    }

    #[inline(always)]
    fn at(&self, i: usize) -> u64 {
        self.0[OFF + i]
    }

    #[inline(always)]
    fn set(&mut self, i: usize, v: u64) {
        self.0[OFF + i] = v;
    }
}

/// A set-associative cache.
///
/// # Examples
///
/// ```
/// use tcp_cache::{Cache, Replacement};
/// use tcp_mem::{Addr, CacheGeometry};
///
/// let geom = CacheGeometry::new(32 * 1024, 32, 1);
/// let mut c = Cache::new(geom, Replacement::Lru);
/// let line = geom.line_addr(Addr::new(0x1000));
/// assert!(!c.contains(line));
/// c.fill(line, 0, false);
/// assert!(c.contains(line));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    geom: CacheGeometry,
    policy: Replacement,
    assoc: usize,
    // Struct-of-arrays way storage, row-major by set: `tags` holds each
    // set's way tags contiguously, `valid` one occupancy bitmask per set,
    // and the flag/stamp planes are parallel to `tags` (each at its own
    // host-cache-line stagger; see [`Plane`]).
    tags: Plane<0>,
    valid: Vec<u64>,
    flags: Vec<u8>,
    fill_order: Plane<8>,
    last_order: Plane<16>,
    fill_cycle: Plane<24>,
    last_cycle: Plane<32>,
    order: u64,
    occupied: u64,
    // Probe memo: the line most recently *missed* by [`Cache::access`]
    // and the residency epoch it was probed under. Residency only
    // changes when a line is installed or invalidated (`epoch` counts
    // those events), so a fill of the same line in the same epoch can
    // skip its residency probe — the common access-miss-then-fill
    // sequence pays for one probe, not two. Recency updates (hits)
    // deliberately do not bump the epoch: they cannot change a probe's
    // outcome.
    missed_line: u64,
    missed_epoch: u64,
    epoch: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry and policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's associativity exceeds 64 (the per-set
    /// occupancy bitmask is one bit per way).
    pub fn new(geom: CacheGeometry, policy: Replacement) -> Self {
        assert!(
            (1..=64).contains(&geom.associativity()),
            "associativity above 64 is not supported"
        );
        let n = geom.num_sets() as usize * geom.associativity() as usize;
        Cache {
            geom,
            policy,
            assoc: geom.associativity() as usize,
            tags: Plane::new(n),
            valid: vec![0; geom.num_sets() as usize],
            flags: vec![0; n],
            fill_order: Plane::new(n),
            last_order: Plane::new(n),
            fill_cycle: Plane::new(n),
            last_cycle: Plane::new(n),
            order: 0,
            occupied: 0,
            missed_line: 0,
            // `epoch` never reaches MAX, so the memo starts invalid.
            missed_epoch: u64::MAX,
            epoch: 0,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Number of resident lines.
    pub fn occupied_lines(&self) -> u64 {
        self.occupied
    }

    /// Bitmask with one bit set per way.
    #[inline]
    fn full_mask(&self) -> u64 {
        u64::MAX >> (64 - self.assoc as u32)
    }

    /// Absolute way index of the resident line `(tag, set)`, if any.
    #[inline]
    fn find(&self, tag: Tag, set: SetIndex) -> Option<usize> {
        let base = set.as_usize() * self.assoc;
        kernels::find_tag(
            self.tags.row(base, self.assoc),
            self.valid[set.as_usize()],
            tag.raw(),
        )
        .map(|w| base + w)
    }

    /// Assembles the external metadata view of way `i`.
    #[inline(always)]
    fn meta_at(&self, i: usize) -> LineMeta {
        let f = self.flags[i];
        LineMeta {
            tag: Tag::new(self.tags.at(i)),
            dirty: f & FLAG_DIRTY != 0,
            prefetched: f & FLAG_PREFETCHED != 0,
            demanded: f & FLAG_DEMANDED != 0,
            fill_order: self.fill_order.at(i),
            last_access_order: self.last_order.at(i),
            fill_cycle: self.fill_cycle.at(i),
            last_access_cycle: self.last_cycle.at(i),
        }
    }

    /// Returns `true` if the line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        let (tag, set) = self.geom.split_line(line);
        self.find(tag, set).is_some()
    }

    /// Returns the metadata of a resident line, if present.
    pub fn peek(&self, line: LineAddr) -> Option<LineMeta> {
        let (tag, set) = self.geom.split_line(line);
        self.find(tag, set).map(|i| self.meta_at(i))
    }

    /// Performs a demand access (load or store) to the line.
    ///
    /// On a hit, the line's recency and dirty state are updated and the
    /// prefetch-credit event is reported. On a miss nothing changes: the
    /// caller decides when the fill lands (after the memory round trip).
    pub fn access(&mut self, line: LineAddr, write: bool, cycle: u64) -> AccessOutcome {
        let (tag, set) = self.geom.split_line(line);
        let s = set.as_usize();
        let base = s * self.assoc;
        match kernels::find_tag(self.tags.row(base, self.assoc), self.valid[s], tag.raw()) {
            Some(w) => {
                let i = base + w;
                self.order += 1;
                let f = self.flags[i];
                let first = f & (FLAG_PREFETCHED | FLAG_DEMANDED) == FLAG_PREFETCHED;
                self.flags[i] = f | FLAG_DEMANDED | if write { FLAG_DIRTY } else { 0 };
                self.last_order.set(i, self.order);
                self.last_cycle.set(i, cycle);
                AccessOutcome::Hit {
                    first_demand_of_prefetch: first,
                }
            }
            None => {
                self.missed_line = line.line_number();
                self.missed_epoch = self.epoch;
                AccessOutcome::Miss
            }
        }
    }

    /// Installs a line, evicting a victim if the set is full.
    ///
    /// `prefetched` marks prefetcher-initiated fills for the Figure 12
    /// accounting. Filling a line that is already resident refreshes its
    /// recency and returns `None`.
    ///
    /// This is the fused probe + empty-way + victim-select pass: one trip
    /// over the set's contiguous tag row answers residency, the occupancy
    /// bitmask yields the lowest empty way without a second scan, and the
    /// victim (when the set is full) comes from the stamp rows in place.
    pub fn fill(&mut self, line: LineAddr, cycle: u64, prefetched: bool) -> Option<Evicted> {
        let (tag, set) = self.geom.split_line(line);
        self.order += 1;
        let s = set.as_usize();
        let base = s * self.assoc;
        let vm = self.valid[s];
        // The probe memo proves non-residency when `access` missed this
        // very line and no install/invalidate has happened since.
        let known_absent =
            self.missed_line == line.line_number() && self.missed_epoch == self.epoch;
        if !known_absent {
            if let Some(w) = kernels::find_tag(self.tags.row(base, self.assoc), vm, tag.raw()) {
                let i = base + w;
                self.last_order.set(i, self.order);
                self.last_cycle.set(i, cycle);
                return None;
            }
        }
        self.epoch += 1;
        let (i, evicted) = if vm != self.full_mask() {
            // Lowest empty way, straight from the occupancy bitmask.
            let w = (!vm).trailing_zeros() as usize;
            self.valid[s] = vm | (1 << w);
            self.occupied += 1;
            (base + w, None)
        } else {
            let w = self.policy.choose_victim_in(
                self.fill_order.row(base, self.assoc),
                self.last_order.row(base, self.assoc),
            );
            let i = base + w;
            let old = self.meta_at(i);
            (
                i,
                Some(Evicted {
                    line: self.geom.compose(old.tag, set),
                    meta: old,
                }),
            )
        };
        self.tags.set(i, tag.raw());
        self.flags[i] = if prefetched { FLAG_PREFETCHED } else { 0 };
        self.fill_order.set(i, self.order);
        self.last_order.set(i, self.order);
        self.fill_cycle.set(i, cycle);
        self.last_cycle.set(i, cycle);
        evicted
    }

    /// Marks a resident line as having serviced a demand access, without
    /// updating recency. Returns `false` if the line is not resident.
    ///
    /// Used by the hierarchy to keep prefetch-credit accounting consistent
    /// when the credit was granted elsewhere (e.g. a demand miss merged
    /// into an in-flight prefetch).
    pub fn mark_demanded(&mut self, line: LineAddr) -> bool {
        let (tag, set) = self.geom.split_line(line);
        match self.find(tag, set) {
            Some(i) => {
                self.flags[i] |= FLAG_DEMANDED;
                true
            }
            None => false,
        }
    }

    /// Marks a resident line dirty without updating recency. Returns
    /// `false` if the line is not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let (tag, set) = self.geom.split_line(line);
        match self.find(tag, set) {
            Some(i) => {
                self.flags[i] |= FLAG_DIRTY;
                true
            }
            None => false,
        }
    }

    /// Removes a line if resident, returning its metadata.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineMeta> {
        let (tag, set) = self.geom.split_line(line);
        match self.find(tag, set) {
            Some(i) => {
                self.occupied -= 1;
                self.epoch += 1;
                self.valid[set.as_usize()] &= !(1 << (i - set.as_usize() * self.assoc));
                Some(self.meta_at(i))
            }
            None => None,
        }
    }

    /// Iterates over all resident lines as `(line address, metadata)`.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, LineMeta)> + '_ {
        (0..self.flags.len()).filter_map(move |i| {
            let set = i / self.assoc;
            let way = i % self.assoc;
            ((self.valid[set] >> way) & 1 == 1).then(|| {
                let set = SetIndex::new(set as u32);
                (
                    self.geom.compose(Tag::new(self.tags.at(i)), set),
                    self.meta_at(i),
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_mem::Addr;

    fn dm_l1() -> Cache {
        Cache::new(CacheGeometry::new(32 * 1024, 32, 1), Replacement::Lru)
    }

    fn small_4way() -> Cache {
        // 8 lines of 32 B, 4-way: 2 sets.
        Cache::new(CacheGeometry::new(256, 32, 4), Replacement::Lru)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = dm_l1();
        let line = c.geometry().line_addr(Addr::new(0x1000));
        assert_eq!(c.access(line, false, 0), AccessOutcome::Miss);
        assert!(c.fill(line, 1, false).is_none());
        assert!(matches!(
            c.access(line, false, 2),
            AccessOutcome::Hit { .. }
        ));
        assert_eq!(c.occupied_lines(), 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = dm_l1();
        let a = c.geometry().line_addr(Addr::new(0x1000));
        let b = c.geometry().line_addr(Addr::new(0x1000 + 32 * 1024)); // same set
        c.fill(a, 0, false);
        let ev = c.fill(b, 1, false).expect("conflict must evict");
        assert_eq!(ev.line, a);
        assert!(!c.contains(a));
        assert!(c.contains(b));
        assert_eq!(c.occupied_lines(), 1);
    }

    #[test]
    fn lru_evicts_least_recent_way() {
        let mut c = small_4way();
        let g = *c.geometry();
        // Four lines in set 0 (stride = num_sets * line = 64 B).
        let lines: Vec<_> = (0..5).map(|i| g.line_addr(Addr::new(i * 64))).collect();
        for l in &lines[..4] {
            c.fill(*l, 0, false);
        }
        // Touch 0,2,3 so line 1 is LRU.
        c.access(lines[0], false, 1);
        c.access(lines[2], false, 2);
        c.access(lines[3], false, 3);
        let ev = c.fill(lines[4], 4, false).expect("full set evicts");
        assert_eq!(ev.line, lines[1]);
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut c = dm_l1();
        let g = *c.geometry();
        let a = g.line_addr(Addr::new(0x2000));
        let b = g.line_addr(Addr::new(0x2000 + 32 * 1024));
        c.fill(a, 0, false);
        c.access(a, true, 1);
        let ev = c.fill(b, 2, false).expect("evicts");
        assert!(ev.meta.dirty);
    }

    #[test]
    fn prefetch_credit_reported_once() {
        let mut c = dm_l1();
        let line = c.geometry().line_addr(Addr::new(0x3000));
        c.fill(line, 0, true);
        assert_eq!(
            c.access(line, false, 1),
            AccessOutcome::Hit {
                first_demand_of_prefetch: true
            }
        );
        assert_eq!(
            c.access(line, false, 2),
            AccessOutcome::Hit {
                first_demand_of_prefetch: false
            }
        );
    }

    #[test]
    fn refill_of_resident_line_does_not_evict_or_duplicate() {
        let mut c = small_4way();
        let line = c.geometry().line_addr(Addr::new(0));
        c.fill(line, 0, false);
        assert!(c.fill(line, 1, true).is_none());
        assert_eq!(c.occupied_lines(), 1);
        // Refill must not clear the demand/prefetch state into a prefetch credit.
        assert_eq!(
            c.access(line, false, 2),
            AccessOutcome::Hit {
                first_demand_of_prefetch: false
            }
        );
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = dm_l1();
        let line = c.geometry().line_addr(Addr::new(0x4000));
        c.fill(line, 0, false);
        assert!(c.invalidate(line).is_some());
        assert!(!c.contains(line));
        assert!(c.invalidate(line).is_none());
        assert_eq!(c.occupied_lines(), 0);
    }

    #[test]
    fn refill_after_invalidate_reuses_the_hole() {
        let mut c = small_4way();
        let g = *c.geometry();
        let lines: Vec<_> = (0..5).map(|i| g.line_addr(Addr::new(i * 64))).collect();
        for l in &lines[..4] {
            c.fill(*l, 0, false);
        }
        c.invalidate(lines[1]);
        // The freed way (lowest empty) takes the next fill: no eviction.
        assert!(c.fill(lines[4], 1, false).is_none());
        assert_eq!(c.occupied_lines(), 4);
        assert!(c.contains(lines[4]));
    }

    #[test]
    fn peek_reports_metadata() {
        let mut c = dm_l1();
        let line = c.geometry().line_addr(Addr::new(0x5000));
        assert!(c.peek(line).is_none());
        c.fill(line, 7, true);
        let m = c.peek(line).expect("resident");
        assert!(m.prefetched && !m.demanded && !m.dirty);
        assert_eq!(m.fill_cycle, 7);
    }

    #[test]
    fn iter_reports_resident_lines() {
        let mut c = small_4way();
        let g = *c.geometry();
        let a = g.line_addr(Addr::new(0));
        let b = g.line_addr(Addr::new(32)); // other set
        c.fill(a, 0, false);
        c.fill(b, 0, true);
        let mut lines: Vec<_> = c.iter().map(|(l, m)| (l, m.prefetched)).collect();
        lines.sort();
        assert_eq!(lines, vec![(a, false), (b, true)]);
    }
}
