//! A data TLB model.
//!
//! The paper grounds tag locality in the well-known locality of virtual
//! pages and TLBs (its references [1, 11, 18]): an L1 tag covers a 32 KB
//! address range, a page covers 4–8 KB, and both recur the same way. This
//! TLB makes that connection measurable — `inspect` reports TLB miss
//! rates next to tag statistics — and optionally adds translation misses
//! to the timing model via
//! [`crate::HierarchyConfig::dtlb`].

use crate::kernels;
use tcp_mem::Addr;

/// Configuration of a TLB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative, LRU).
    pub entries: usize,
    /// Page size as a power of two (e.g. 13 ⇒ 8 KB pages, the Alpha's).
    pub page_bits: u32,
    /// Cycles a miss (page-table walk) costs.
    pub miss_penalty: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        // 128-entry, 8 KB pages, 30-cycle walk: era-appropriate.
        TlbConfig {
            entries: 128,
            page_bits: 13,
            miss_penalty: 30,
        }
    }
}

/// A fully-associative LRU TLB.
///
/// # Examples
///
/// ```
/// use tcp_cache::{Tlb, TlbConfig};
/// use tcp_mem::Addr;
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert!(!tlb.access(Addr::new(0x2000), 0)); // cold miss
/// assert!(tlb.access(Addr::new(0x3FFF), 1));  // same 8 KB page: hit
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    // Struct-of-arrays: resident page numbers in one dense `u64` array
    // (probed by the chunked find_u64 kernel) with their last-use stamps
    // parallel to it. Stamps are unique, so the min-stamp LRU victim is
    // independent of array order and swap_remove stays deterministic.
    pages: Vec<u64>,
    stamps: Vec<u64>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bits` is not in `1..=63`.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0, "TLB needs at least one entry");
        assert!(
            cfg.page_bits >= 1 && cfg.page_bits < 64,
            "page size out of range"
        );
        Tlb {
            cfg,
            pages: Vec::with_capacity(cfg.entries),
            stamps: Vec::with_capacity(cfg.entries),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Translates `addr` at `_cycle`; returns `true` on a hit. A miss
    /// installs the page, evicting the least recently used entry.
    pub fn access(&mut self, addr: Addr, _cycle: u64) -> bool {
        self.stamp += 1;
        let page = addr.raw() >> self.cfg.page_bits;
        if let Some(i) = kernels::find_u64(&self.pages, page) {
            self.stamps[i] = self.stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.pages.len() >= self.cfg.entries {
            let victim = kernels::min_index(&self.stamps);
            self.pages.swap_remove(victim);
            self.stamps.swap_remove(victim);
        }
        self.pages.push(page);
        self.stamps.push(self.stamp);
        false
    }

    /// `(hits, misses)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss rate over all translations (0.0 when unused).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Distinct pages currently mapped.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bits: 12,
            miss_penalty: 30,
        })
    }

    #[test]
    fn same_page_hits() {
        let mut t = tiny();
        assert!(!t.access(Addr::new(0x1000), 0));
        assert!(t.access(Addr::new(0x1FFF), 1));
        assert!(!t.access(Addr::new(0x2000), 2), "next page misses");
        assert_eq!(t.counters(), (1, 2));
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny();
        t.access(Addr::new(0x1000), 0); // page 1
        t.access(Addr::new(0x2000), 1); // page 2
        t.access(Addr::new(0x1000), 2); // touch page 1
        t.access(Addr::new(0x3000), 3); // page 3 evicts page 2 (LRU)
        assert!(t.access(Addr::new(0x1000), 4), "page 1 survived");
        assert!(!t.access(Addr::new(0x2000), 5), "page 2 was evicted");
        assert_eq!(t.resident_pages(), 2);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut t = Tlb::new(TlbConfig {
            entries: 8,
            page_bits: 12,
            miss_penalty: 30,
        });
        for i in 0..100u64 {
            t.access(Addr::new(i * 4096), i);
            assert!(t.resident_pages() <= 8);
        }
        assert!(
            (t.miss_rate() - 1.0).abs() < 1e-12,
            "a pure page sweep always misses"
        );
    }

    #[test]
    fn miss_rate_zero_when_unused() {
        assert_eq!(tiny().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(TlbConfig {
            entries: 0,
            page_bits: 12,
            miss_penalty: 1,
        });
    }
}
