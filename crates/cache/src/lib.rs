//! Memory-hierarchy substrate for the TCP reproduction.
//!
//! This crate implements the machine from Table 1 of "TCP: Tag Correlating
//! Prefetchers" (HPCA 2003) below the processor core:
//!
//! * a set-associative [`Cache`] with pluggable [`Replacement`] policies,
//!   per-line prefetch/demand metadata, and write-back/write-allocate
//!   semantics;
//! * a contended [`Bus`] model (the paper stresses that L1/L2 and memory
//!   bus contention is modelled accurately; prefetches and demand fetches
//!   queue on the same wires unless a dedicated prefetch bus is added);
//! * an in-flight miss tracker ([`MshrFile`]) bounding memory-level
//!   parallelism like the 64 L1 MSHRs of the simulated machine;
//! * the [`Prefetcher`] trait through which the TCP prefetcher and all
//!   baselines observe the L1 miss stream and inject prefetches; and
//! * the two-level [`MemoryHierarchy`] that ties it all together and keeps
//!   the three-way L2-access breakdown of Figure 12 (prefetched original /
//!   non-prefetched original / prefetched extra).
//!
//! # Examples
//!
//! ```
//! use tcp_cache::{HierarchyConfig, MemoryHierarchy, NullPrefetcher};
//! use tcp_mem::{Addr, MemAccess};
//!
//! let mut h = MemoryHierarchy::new(HierarchyConfig::default(), Box::new(NullPrefetcher));
//! let r = h.access(MemAccess::load(Addr::new(0x400000), Addr::new(0x1000)), 0);
//! assert!(r.completes_at > 0); // cold miss goes to memory
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod cache;
mod error;
mod hierarchy;
pub mod kernels;
mod mshr;
mod prefetcher;
mod replacement;
mod stats;
mod tlb;
mod victim;

pub use bus::Bus;
pub use cache::{AccessOutcome, Cache, Evicted, LineMeta};
pub use error::ConfigError;
pub use hierarchy::{AccessResult, HierarchyConfig, MemoryHierarchy, ServicedBy};
pub use mshr::MshrFile;
pub use prefetcher::{L1MissInfo, NullPrefetcher, PrefetchRequest, PrefetchTarget, Prefetcher};
pub use replacement::Replacement;
pub use stats::{HierarchyStats, L2AccessBreakdown};
pub use tlb::{Tlb, TlbConfig};
pub use victim::VictimCache;
