//! Equivalence suite for the chunked probe kernels (`tcp_cache::kernels`)
//! against their scalar reference twins.
//!
//! The chunked kernels process tags in fixed `[u64; 8]` blocks with a
//! slice-pattern tail dispatch (DESIGN.md §12); every block/tail split in
//! `0..=2×CHUNK` plus SplitMix64-randomized longer rows must agree with
//! the one-element-at-a-time scalar implementations on hit way, miss,
//! and tie-breaking. `scripts/check-robustness.sh` runs this suite.

use tcp_cache::kernels::{
    find_tag, find_tag_scalar, find_u64, find_u64_scalar, min_index, min_index_scalar, CHUNK,
};
use tcp_mem::SplitMix64;

/// Mask of `len` low bits (the all-valid mask for a row of `len` ways).
fn full_mask(len: usize) -> u64 {
    if len == 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    }
}

/// Rows exercising every block/tail split the kernels can see: every
/// length in `0..=2×CHUNK` (one full block either side of the boundary)
/// and a band of longer rows up to the 64-way kernel limit.
fn lengths() -> impl Iterator<Item = usize> {
    (0..=2 * CHUNK).chain([3 * CHUNK - 1, 3 * CHUNK, 37, 63, 64])
}

/// A row of tags drawn from a small alphabet, so duplicates and
/// repeated-minimum ties occur constantly.
fn random_row(rng: &mut SplitMix64, len: usize, alphabet: u64) -> Vec<u64> {
    (0..len).map(|_| rng.next_below(alphabet)).collect()
}

#[test]
fn find_tag_matches_scalar_exhaustively() {
    let mut rng = SplitMix64::new(0xF1AD_7A65);
    for len in lengths() {
        for round in 0..200 {
            // Narrow alphabets force hits and multi-way duplicates; wide
            // ones force misses.
            let alphabet = if round % 2 == 0 { 4 } else { 1 << 16 };
            let tags = random_row(&mut rng, len, alphabet);
            let needle = rng.next_below(alphabet);
            // All-valid, random, and empty masks.
            for mask in [full_mask(len), rng.next_u64() & full_mask(len), 0] {
                assert_eq!(
                    find_tag(&tags, mask, needle),
                    find_tag_scalar(&tags, mask, needle),
                    "len {len} mask {mask:#x} needle {needle} tags {tags:?}"
                );
            }
        }
    }
}

#[test]
fn find_u64_matches_scalar_exhaustively() {
    let mut rng = SplitMix64::new(0x0F1D_0640);
    for len in lengths() {
        for round in 0..200 {
            let alphabet = if round % 2 == 0 { 4 } else { 1 << 16 };
            let xs = random_row(&mut rng, len, alphabet);
            let needle = rng.next_below(alphabet);
            assert_eq!(
                find_u64(&xs, needle),
                find_u64_scalar(&xs, needle),
                "len {len} needle {needle} xs {xs:?}"
            );
        }
    }
}

#[test]
fn min_index_matches_scalar_exhaustively() {
    let mut rng = SplitMix64::new(0x3133_7D06);
    for len in lengths() {
        if len == 0 {
            continue; // min of an empty row is undefined for both forms
        }
        for round in 0..200 {
            // Tiny alphabets make duplicate minima (the tie-break case)
            // the common case rather than the rare one.
            let alphabet = if round % 2 == 0 { 3 } else { 1 << 20 };
            let xs = random_row(&mut rng, len, alphabet);
            assert_eq!(min_index(&xs), min_index_scalar(&xs), "len {len} xs {xs:?}");
        }
    }
}

#[test]
fn find_tag_first_valid_duplicate_wins() {
    // Duplicates across a block boundary: the lowest *valid* way wins,
    // exactly as the scalar scan does.
    let mut tags = vec![7u64; 2 * CHUNK];
    tags[3] = 9;
    let dup = 7u64;
    let all = full_mask(tags.len());
    assert_eq!(find_tag(&tags, all, dup), Some(0));
    // Invalidate the first block entirely: the hit moves to the second.
    let mask = all & !full_mask(CHUNK);
    assert_eq!(find_tag(&tags, mask, dup), Some(CHUNK));
    assert_eq!(
        find_tag(&tags, mask, dup),
        find_tag_scalar(&tags, mask, dup)
    );
}

#[test]
fn min_index_tie_breaks_toward_lowest_index() {
    // The minimum appears in both the chunked body and the tail.
    let mut xs = vec![5u64; CHUNK + 3];
    xs[2] = 1;
    xs[CHUNK + 1] = 1;
    assert_eq!(min_index(&xs), 2);
    assert_eq!(min_index(&xs), min_index_scalar(&xs));
}
