//! A minimal JSON reader/writer shared by the workspace's persisted
//! artifacts (`BENCH.json`, the sweep store, `tcp-serve` requests).
//!
//! The workspace builds offline with no external crates, so it carries
//! its own JSON support: a small recursive-descent parser covering the
//! full JSON grammar (objects, arrays, strings with escapes, numbers,
//! booleans, null) — enough to reject a damaged document with a useful
//! message rather than a panic — and a canonical writer ([`to_string`])
//! whose output is deterministic: object keys emit in sorted order, so
//! serialize → parse → serialize is a fixed point. The sweep store's
//! checksums rely on that canonical form.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (`BTreeMap`) so emission is stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) | Json::Arr(_) => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null | Json::Bool(_) | Json::Str(_) | Json::Arr(_) | Json::Obj(_) => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            Json::Null | Json::Num(_) | Json::Str(_) | Json::Arr(_) | Json::Obj(_) => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Arr(_) | Json::Obj(_) => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v.as_slice()),
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) | Json::Obj(_) => None,
        }
    }
}

/// Why a JSON document failed to parse.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is not.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first offending byte.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired here; the harness
                            // never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ParseError {
            offset: start,
            message: "non-ASCII bytes in number".to_owned(),
        })?;
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number '{text}'"),
        })
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float for JSON output: finite values round-trip through
/// Rust's shortest representation; non-finite values (which JSON cannot
/// represent) become `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Serializes `v` to its canonical compact form: no insignificant
/// whitespace, object keys in sorted order (the [`Json::Obj`] `BTreeMap`
/// ordering), strings escaped via [`escape`], numbers via [`num`].
///
/// Canonical means deterministic: parsing the output and serializing it
/// again yields byte-identical text, which is what lets the sweep store
/// checksum a record's payload by re-serializing the parsed value.
pub fn to_string(v: &Json) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => out.push_str(&num(*n)),
        Json::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape(key));
                out.push_str("\":");
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"cases":[{"name":"x","ops":1.5}],"n":2}"#).unwrap();
        let cases = v.get("cases").and_then(Json::as_arr).unwrap();
        assert_eq!(cases[0].get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(cases[0].get("ops").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn unicode_roundtrips() {
        let v = parse("\"caf\\u00e9 déjà\"").unwrap();
        assert_eq!(v.as_str(), Some("café déjà"));
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let back = parse(&format!("\"{}\"", escape("tab\there"))).unwrap();
        assert_eq!(back.as_str(), Some("tab\there"));
    }

    #[test]
    fn num_formats_round_trippable() {
        for v in [0.0, 1.5, 123456789.25, -3.25e-4] {
            let text = num(v);
            assert_eq!(parse(&text).unwrap().as_f64(), Some(v));
        }
        assert_eq!(num(f64::NAN), "null");
    }

    #[test]
    fn to_string_is_canonical() {
        // Keys out of order and redundant whitespace in the source: the
        // canonical form sorts and compacts, and re-serializing the
        // parsed canonical text is a fixed point.
        let v = parse(r#" { "b" : [1, true, null], "a" : {"z": "s\nx", "y": 2.5} } "#).unwrap();
        let text = to_string(&v);
        assert_eq!(text, r#"{"a":{"y":2.5,"z":"s\nx"},"b":[1,true,null]}"#);
        assert_eq!(to_string(&parse(&text).unwrap()), text);
    }

    #[test]
    fn to_string_escapes_keys_and_strings() {
        let mut map = BTreeMap::new();
        map.insert("k\"ey".to_owned(), Json::Str("a\tb".to_owned()));
        let text = to_string(&Json::Obj(map));
        assert_eq!(text, r#"{"k\"ey":"a\tb"}"#);
        assert_eq!(to_string(&parse(&text).unwrap()), text);
    }
}
