// A `Result`-returning call used as a bare statement: the error is
// silently dropped on the floor.

pub fn flush_counters() -> Result<u64, String> {
    Ok(0)
}

pub fn tick() {
    flush_counters();
}
