#![forbid(unsafe_code)]
// Three ways to drop a workspace Result on the floor: bind it to `_`,
// `.ok()` it away as a statement, and match it with an empty Err arm.

pub fn step() -> Result<u64, String> {
    Ok(1)
}

pub fn drive() -> u64 {
    let _ = step();
    step().ok();
    match step() {
        Ok(v) => v,
        Err(_) => 0,
    }
}

pub fn observe() {
    match step() {
        Ok(v) => {
            let kept = v;
            drop(kept);
        }
        Err(_) => {}
    }
}
