// A `_` arm on a closed workspace enum: adding a variant would silently
// fall into the wildcard instead of failing to compile.

pub enum GateKind {
    Open,
    Closed,
    Locked,
}

pub fn score(g: &GateKind) -> u64 {
    match g {
        GateKind::Open => 0,
        _ => 1,
    }
}
