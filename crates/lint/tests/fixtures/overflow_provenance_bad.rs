#![forbid(unsafe_code)]
// Unchecked arithmetic on provenance-tagged u64s: cycle/addr/tag-derived
// values flowing into bare `+`, `*`, and `<<`.

pub fn mix(cycle: u64, addr: u64, scale: u64) -> u64 {
    let window = cycle + addr;
    let spread = addr * scale;
    let plane = addr << scale;
    window ^ spread ^ plane
}

pub fn fold(tag: u64, set_bits: u64) -> u64 {
    tag << set_bits
}
