#![forbid(unsafe_code)]
// Composite index expressions with no dominating bound evidence: the
// arena-style `set * ways + way` flattening, indexed straight in.

pub fn probe(entries: &[u64], set_base: usize, way: usize) -> u64 {
    entries[set_base * 8 + way]
}

pub fn gather(plane: &[u64], base: usize, stride: usize, k: usize) -> u64 {
    plane[base + stride * k]
}
