#![forbid(unsafe_code)]
// The same streaming shape made bounded: the staging buffer is drained
// whenever it reaches a batch, and the audit buffer that deliberately
// accumulates carries a justified waiver.

pub struct GatedStream {
    staged: Vec<u64>,
    emitted: Vec<u64>,
}

impl GatedStream {
    pub fn replay(&mut self, records: &[u64]) -> u64 {
        let mut sum = 0u64;
        for r in records {
            self.staged.push(*r);
            if self.staged.len() >= 8 {
                for v in self.staged.drain(..) {
                    sum = sum.wrapping_add(v);
                }
            }
            // tcp-lint: allow(unbounded-growth-in-stream) — audit trail, bounded by the harness input size
            self.emitted.push(*r);
        }
        sum
    }
}
