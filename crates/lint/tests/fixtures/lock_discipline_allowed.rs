#![forbid(unsafe_code)]
// Clean lock discipline: temporaries die at the statement, guards are
// dropped before any call that locks, and a documented exception is
// waived at the site.
use std::collections::VecDeque;
use std::sync::Mutex;

pub struct Pool {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl Pool {
    fn steal_from(&self, victim: usize) -> Option<usize> {
        self.deques[victim]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_back()
    }

    pub fn drain_own(&self, worker: usize) -> Option<usize> {
        let mut own = self.deques[worker]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let job = own.pop_front();
        drop(own);
        if job.is_some() {
            return job;
        }
        self.steal_from(worker + 1)
    }

    pub fn audited(&self) -> Option<usize> {
        let g = self.deques[0].lock().unwrap_or_else(|p| p.into_inner());
        let head = g.front().copied();
        // tcp-lint: allow(lock-discipline) — lock order documented: deque 0 is never reachable from steal_from(1)
        let stolen = self.steal_from(1);
        drop(g);
        head.or(stolen)
    }
}
