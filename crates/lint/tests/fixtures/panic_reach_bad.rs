// A public API that reaches a panic two calls away: the panic site is
// private, so only the interprocedural pass can connect it to the API.

pub fn api_entry(x: Option<u64>) -> u64 {
    mid_step(x)
}

fn mid_step(x: Option<u64>) -> u64 {
    deep_value(x)
}

fn deep_value(x: Option<u64>) -> u64 {
    x.unwrap()
}
