#![forbid(unsafe_code)]
// The same shapes with the error reaching a sink: propagated with `?`,
// recorded in a counter before an early return, or carrying a justified
// waiver where dropping it is deliberate.

pub struct Health {
    pub io_errors: u64,
}

pub fn step() -> Result<u64, String> {
    Ok(1)
}

pub fn drive(h: &mut Health) -> Result<u64, String> {
    let v = step()?;
    if let Err(e) = step() {
        h.io_errors = h.io_errors.saturating_add(1);
        return Err(e);
    }
    // tcp-lint: allow(swallowed-error) — warm-up call; the demo path retries on the next quantum
    let _ = step();
    Ok(v)
}
