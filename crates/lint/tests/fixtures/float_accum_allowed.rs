//! Fixture: integer accumulation in cycle loops, float accumulation
//! outside them, and one waived site. Must lint clean.

pub fn integer_accum(n_cycles: u64) -> f64 {
    let mut total = 0u64;
    let mut cycle = 0u64;
    while cycle < n_cycles {
        total += 2;
        cycle += 1;
    }
    total as f64
}

pub fn non_cycle_loop(values: &[f64]) -> f64 {
    let mut sum = 0.0;
    for v in values {
        sum += v;
    }
    sum
}

pub fn waived(n_cycles: u64) -> f64 {
    let mut acc = 0.0;
    let mut cycle = 0u64;
    while cycle < n_cycles {
        // tcp-lint: allow(float-accum-in-hot-loop) — bounded loop, rounding error analyzed
        acc += 0.5;
        cycle += 1;
    }
    acc
}
