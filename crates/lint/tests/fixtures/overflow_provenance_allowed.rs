#![forbid(unsafe_code)]
// Escapes: literal operands keep intervals known, named constants read
// as reviewed scale factors, wrapping_* states intent, and a residual
// shift is waived with its invariant.

pub const LINE_BYTES: u64 = 32;

pub fn tick(cycle: u64, addr: u64) -> u64 {
    let next = cycle + 1;
    let line = addr * LINE_BYTES;
    let folded = cycle.wrapping_add(addr);
    next ^ line ^ folded
}

pub fn plane_of(addr: u64) -> u64 {
    // tcp-lint: allow(overflow-provenance) — addresses are line-aligned, so the top two bits are clear by construction
    addr << 2
}
