// Enumerated arms are clean; `#[non_exhaustive]` enums are open by
// declaration, so a wildcard over one is legitimate.

pub enum GateKind {
    Open,
    Closed,
    Locked,
}

#[non_exhaustive]
pub enum Wire {
    High,
    Low,
}

pub fn score(g: &GateKind) -> u64 {
    match g {
        GateKind::Open => 0,
        GateKind::Closed | GateKind::Locked => 1,
    }
}

pub fn level(w: &Wire) -> u64 {
    match w {
        Wire::High => 1,
        _ => 0,
    }
}
