#![forbid(unsafe_code)]
// A mutex guard held across a call whose summary blocks: `drain_one`
// keeps the jobs lock while `take` sits in a channel recv, so every
// other thread touching the pool stalls for the full wait.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Pool {
    jobs: Mutex<Vec<u64>>,
    rx: Receiver<u64>,
}

impl Pool {
    fn take(&self) -> u64 {
        self.rx.recv().unwrap_or(0)
    }

    pub fn drain_one(&self) -> u64 {
        let guard = self.jobs.lock().unwrap_or_else(|p| p.into_inner());
        let next = self.take();
        guard.len() as u64 + next
    }
}
