//! Fixture: narrowings that are safe, explicit, or waived. Must lint
//! clean.

pub fn masked(cycle: u64) -> u32 {
    // A masked expression is an explicit, reviewable truncation.
    (cycle & 0xffff_ffff) as u32
}

pub fn widening(tag: u32) -> u64 {
    u64::from(tag)
}

pub fn ring_slot(cycle: u64) -> usize {
    // usize is not a narrowing target on 64-bit hosts.
    (cycle as usize) & 1023
}

pub fn waived(cycle: u64) -> u32 {
    // tcp-lint: allow(lossy-cycle-cast) — cycle counters in this model fit u32
    cycle as u32
}
