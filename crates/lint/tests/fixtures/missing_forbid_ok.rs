//! Fixture: a crate root carrying the required attribute. Must lint
//! clean.
#![forbid(unsafe_code)]

pub fn noop() {}
