// Conserved counters lint clean; a field that is intentionally unused
// yet carries a waiver with the reason is also clean.

pub struct OkStats {
    pub hits: u64,
    // tcp-lint: allow(stat-conservation) -- reserved for the next trace format revision.
    pub reserved: u64,
}

pub fn tick(s: &mut OkStats) {
    s.hits += 1;
}

pub fn report(s: &OkStats) -> u64 {
    s.hits
}
