#![forbid(unsafe_code)]
// The blocking wait moved outside the guard's lifetime: the lock is
// scoped to the bookkeeping read and released before `take` blocks.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Pool {
    jobs: Mutex<Vec<u64>>,
    rx: Receiver<u64>,
}

impl Pool {
    fn take(&self) -> u64 {
        self.rx.recv().unwrap_or(0)
    }

    pub fn drain_one(&self) -> u64 {
        let guard = self.jobs.lock().unwrap_or_else(|p| p.into_inner());
        let queued = guard.len() as u64;
        drop(guard);
        let next = self.take();
        queued.wrapping_add(next)
    }
}
