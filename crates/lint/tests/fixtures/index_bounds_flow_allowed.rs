#![forbid(unsafe_code)]
// The same index expression under a dominating guard: the comparison is
// the `if` condition itself, so every path to the indexing has passed
// the bound check and the finding is killed.

pub fn pick(xs: &[u64], set: usize, way: usize) -> u64 {
    if set * 4 + way < xs.len() {
        xs[set * 4 + way]
    } else {
        0
    }
}
