//! Fixture: well-formed directives and prose mentions of the tool are
//! fine. Prose like "checked by tcp-lint: a custom pass" in a doc
//! comment is never a directive. Must lint clean.

// tcp-lint output gates CI; this plain comment is prose, not a directive.

pub fn fine() -> u64 {
    // tcp-lint: allow(panic-in-library) — demonstrates a justified, well-formed waiver
    0
}
