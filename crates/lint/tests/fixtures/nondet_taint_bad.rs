#![forbid(unsafe_code)]
// Worker-identity values leaking into results: a worker-derived value
// returned to the caller, and a stats accumulator fed from a worker id.

pub struct Totals {
    pub owner: u64,
}

pub fn pick(worker: usize, jobs: &[u64]) -> usize {
    let chosen = worker + 1;
    if jobs.is_empty() {
        return chosen;
    }
    0
}

pub fn account(worker: usize, stats: &mut Totals) {
    stats.owner += worker as u64;
}
