//! Fixture: panics in library code of a typed-error crate.

pub fn head(xs: &[u64]) -> u64 {
    *xs.first().expect("nonempty")
}

pub fn second(xs: &[u64]) -> u64 {
    if xs.len() < 2 {
        panic!("too short");
    }
    xs.get(1).copied().unwrap()
}

pub fn future() {
    todo!()
}

pub fn impossible() {
    unreachable!("never")
}
