//! Fixture: malformed suppression directives are themselves findings.

pub fn no_reason() -> u64 {
    // tcp-lint: allow(nondet-iteration)
    0
}

pub fn unknown_lint() -> u64 {
    // tcp-lint: allow(not-a-real-lint) — misspelled lint name
    0
}

pub fn unclosed() -> u64 {
    // tcp-lint: allow(nondet-iteration — missing closing paren
    0
}
