// Propagated, inspected, and explicitly waived results are all clean.

pub fn flush_counters() -> Result<u64, String> {
    Ok(0)
}

pub fn tick() -> Result<(), String> {
    flush_counters()?;
    Ok(())
}

pub fn tock() -> u64 {
    if flush_counters().is_ok() {
        return 1;
    }
    // tcp-lint: allow(discarded-result) -- counter flush is advisory during shutdown.
    flush_counters();
    0
}
