#![forbid(unsafe_code)]
// Bound evidence that does NOT dominate the index: the debug_assert
// sits in a sibling branch, so there are paths to the indexing that
// never pass the check — the textual match must not count.

pub fn pick(xs: &[u64], set: usize, way: usize) -> u64 {
    if way == 0 {
        debug_assert!(set * 4 + way < xs.len());
    }
    xs[set * 4 + way]
}
