//! Fixture: wall-clock time sources inside simulation code.

pub fn stamp_ms() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis()
}

pub fn epoch() -> u64 {
    let _ = std::time::SystemTime::now();
    0
}
