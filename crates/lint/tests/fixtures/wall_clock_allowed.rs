//! Fixture: waived wall-clock use plus exempt test code. Must lint
//! clean.

pub fn harness_stamp() -> u64 {
    // tcp-lint: allow(wall-clock-in-sim) — operator-facing progress display only
    let t = std::time::SystemTime::now();
    drop(t);
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn timeouts_may_use_instant() {
        let _ = std::time::Instant::now();
    }
}
