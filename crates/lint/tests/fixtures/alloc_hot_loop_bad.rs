#![forbid(unsafe_code)]
// Allocations inside a cycle-indexed replay loop: a direct constructor,
// an unreserved Vec push, and an allocation hidden two calls deep that
// only the interprocedural summaries can see.

pub struct Replay {
    out: Vec<u64>,
}

impl Replay {
    pub fn run(&mut self, cycles: u64) -> u64 {
        let mut sum = 0u64;
        for cycle in 0..cycles {
            let scratch: Vec<u64> = Vec::new();
            self.out.push(cycle);
            sum = sum.wrapping_add(scratch.len() as u64);
            sum = sum.wrapping_add(helper());
        }
        sum
    }
}

fn helper() -> u64 {
    mid()
}

fn mid() -> u64 {
    let v: Vec<u64> = Vec::with_capacity(8);
    v.len() as u64
}
