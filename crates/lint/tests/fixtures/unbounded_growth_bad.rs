#![forbid(unsafe_code)]
// A streaming struct whose staging buffer only ever grows: every record
// replayed pushes into `staged` and no path in the file pops, clears,
// truncates, or drains it — memory stays resident for the whole replay.

pub struct ReplayStream {
    staged: Vec<u64>,
    cursor: usize,
}

impl ReplayStream {
    pub fn replay(&mut self, records: &[u64]) -> u64 {
        let mut sum = 0u64;
        for r in records {
            self.staged.push(*r);
            sum = sum.wrapping_add(*r);
        }
        self.cursor = self.staged.len();
        sum.wrapping_add(self.cursor as u64)
    }
}
