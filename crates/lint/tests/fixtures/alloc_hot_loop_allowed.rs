#![forbid(unsafe_code)]
// The same replay shapes made clean: the scratch buffer is hoisted and
// pre-sized, the output vector carries reserve() evidence, the callee
// in the loop does not allocate, and one deliberate allocation carries
// a justified waiver.

pub struct Replay {
    out: Vec<u64>,
}

impl Replay {
    pub fn run(&mut self, cycles: u64) -> u64 {
        let mut scratch = Vec::with_capacity(64);
        self.out.reserve(cycles as usize);
        let mut sum = 0u64;
        for cycle in 0..cycles {
            scratch.push(cycle);
            self.out.push(cycle);
            sum = sum.wrapping_add(bump(cycle));
        }
        for chunk in 0..cycles {
            // tcp-lint: allow(alloc-in-hot-loop) — one label per chunk, amortized over the whole chunk replay
            let label = format!("chunk{chunk}");
            sum = sum.wrapping_add(label.len() as u64);
        }
        sum.wrapping_add(scratch.len() as u64)
    }
}

fn bump(x: u64) -> u64 {
    x.wrapping_mul(3)
}
