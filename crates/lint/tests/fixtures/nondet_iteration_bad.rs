//! Fixture: hash-order iteration in a simulation crate. Every loop and
//! method below is a nondet-iteration finding.
use std::collections::{HashMap, HashSet};

pub fn sum_values(counts: &HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_k, v) in counts.iter() {
        total += v;
    }
    total
}

pub fn collect_keys(counts: &HashMap<u64, u64>) -> Vec<u64> {
    counts.keys().copied().collect()
}

pub fn drain_all(seen: &mut HashSet<u64>) -> u64 {
    let mut n = 0;
    for s in seen.drain() {
        n += s;
    }
    n
}

pub fn direct_for(seen: HashSet<u64>) -> usize {
    let mut n = 0;
    for _ in &seen {
        n += 1;
    }
    n
}
