#![forbid(unsafe_code)]
// Clean uses of worker identity: as an index into schedule-invariant
// data (container reads shed index provenance), in totals that do not
// depend on which worker ran, and a waived debug hook.

pub struct Totals {
    pub done: u64,
}

pub fn pick(worker: usize, jobs: &[u64]) -> usize {
    let job = jobs[worker];
    if job > 0 {
        return job as usize;
    }
    0
}

pub fn account(completed: usize, stats: &mut Totals) {
    stats.done += completed as u64;
}

pub fn debug_owner(worker: usize) -> usize {
    // tcp-lint: allow(nondet-taint) — debug-only introspection hook, never feeds simulation results
    return worker;
}
