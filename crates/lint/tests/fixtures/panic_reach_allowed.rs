// Waiving the panic at its site stops propagation: callers of a waived
// panic are clean, because the waiver asserts the panic cannot fire.

pub fn api_entry(x: Option<u64>) -> u64 {
    mid_step(x)
}

fn mid_step(x: Option<u64>) -> u64 {
    deep_value(x)
}

fn deep_value(x: Option<u64>) -> u64 {
    // tcp-lint: allow(panic-in-library) -- callers pass Some by construction; see api_entry.
    x.unwrap()
}
