//! Fixture: truncating `as` casts on cycle/addr/tag identifiers.

pub fn pack(cycle: u64, line_addr: u64) -> (u32, u32) {
    let c = cycle as u32;
    let a = line_addr as u32;
    (c, a)
}

pub fn tag_low16(tag: u64) -> u16 {
    tag as u16
}
