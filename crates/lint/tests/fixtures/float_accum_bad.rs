//! Fixture: floating-point accumulation inside per-cycle loops.

pub fn run(n_cycles: u64) -> f64 {
    let mut acc: f64 = 0.0;
    let mut cycle = 0u64;
    while cycle < n_cycles {
        acc += 0.25;
        cycle += 1;
    }
    acc
}

pub fn sweep(cycles: &[u64]) -> f64 {
    let mut ipc = 0.0;
    for &cycle in cycles {
        ipc += 1.0 / (cycle as f64 + 1.0);
    }
    ipc
}
