// Stat counters that break conservation: `hits` is bumped but never
// reported, `misses` is reported but nothing ever bumps it.

pub struct CanaryStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

pub fn tick(s: &mut CanaryStats) {
    s.hits += 1;
    s.evictions += 1;
}

pub fn report(s: &CanaryStats) -> u64 {
    s.misses + s.evictions
}
