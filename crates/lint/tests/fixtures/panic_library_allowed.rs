//! Fixture: justified invariant panics and exempt code paths. Must lint
//! clean.

/// Doc-comment examples are documentation, not code:
///
/// ```
/// let v = vec![1u64];
/// v.first().unwrap();
/// ```
pub fn invariant(xs: &[u64]) -> u64 {
    // tcp-lint: allow(panic-in-library) — slice checked nonempty by caller contract
    *xs.first().expect("nonempty by contract")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = [1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
