#![forbid(unsafe_code)]
// Bound evidence shapes the lint accepts: a dominating debug_assert!,
// an `if` comparison guarding the access, a single-ident index, and a
// waived site carrying its geometry invariant.

pub fn probe(entries: &[u64], set_base: usize, way: usize) -> u64 {
    debug_assert!(set_base * 8 + way < entries.len());
    entries[set_base * 8 + way]
}

pub fn probe_checked(entries: &[u64], set_base: usize, way: usize) -> u64 {
    if set_base * 8 + way < entries.len() {
        return entries[set_base * 8 + way];
    }
    0
}

pub fn head(entries: &[u64], at: usize) -> u64 {
    entries[at]
}

pub fn probe_waived(entries: &[u64], set_base: usize, way: usize) -> u64 {
    // tcp-lint: allow(index-bounds) — constructor sizes the arena to sets * 8 and callers mask `way` to the associativity
    entries[set_base * 8 + way]
}
