//! Fixture: hash-order iteration that is waived per site, plus exempt
//! test code. This file must lint clean.
use std::collections::HashMap;

pub fn checksum(counts: &HashMap<u64, u64>) -> u64 {
    // tcp-lint: allow(nondet-iteration) — unordered sum, result is order-independent
    counts.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_code_is_exempt() {
        let s: HashSet<u64> = HashSet::new();
        for _ in &s {}
    }
}
