#![forbid(unsafe_code)]
// Deadlock shapes in a sweep-executor-shaped pool: a live guard across
// a call into a function that itself locks, and a double lock of one
// receiver on a single path.
use std::collections::VecDeque;
use std::sync::Mutex;

pub struct Pool {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl Pool {
    fn steal_from(&self, victim: usize) -> Option<usize> {
        let mut dq = self.deques[victim]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        dq.pop_back()
    }

    pub fn drain_own(&self, worker: usize) -> Option<usize> {
        let mut own = self.deques[worker]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if let Some(job) = own.pop_front() {
            return Some(job);
        }
        self.steal_from(worker + 1)
    }

    pub fn requeue(&self, job: usize) {
        let mut own = self.deques[0].lock().unwrap_or_else(|p| p.into_inner());
        own.push_back(job);
        let mut again = self.deques[0].lock().unwrap_or_else(|p| p.into_inner());
        again.push_back(job);
    }
}
