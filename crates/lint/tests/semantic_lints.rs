//! Fixture-based acceptance tests for the semantic (AST + call-graph)
//! passes: each lint fires on its known-bad fixture at the exact line,
//! and each allowed/waived fixture analyzes clean.
//!
//! Unlike the lexical fixtures these go through [`tcp_lint::analyze_files`],
//! which builds the workspace symbol table and call graph — the same
//! entry point `--workspace` mode uses — so cross-function and
//! cross-crate reasoning is exercised for real.

use tcp_lint::{analyze_files, Finding, SourceFile};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!("reading fixture {path}: {e}"),
    }
}

/// Analyzes one fixture under a synthetic workspace-relative path (the
/// path decides crate and file kind, exactly as in `--workspace` mode).
fn analyze_one(name: &str, rel_path: &str) -> Vec<Finding> {
    analyze_files(&[SourceFile {
        rel_path: rel_path.to_string(),
        src: fixture(name),
    }])
}

/// 1-based lines at which `lint` fired, in report order.
fn lines_for(findings: &[Finding], lint: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.lint == lint)
        .map(|f| f.line)
        .collect()
}

#[test]
fn panic_reachability_fires_on_bad_fixture() {
    let all = analyze_one("panic_reach_bad.rs", "crates/cpu/src/reach_fixture.rs");
    assert_eq!(lines_for(&all, "panic-reachability"), vec![4]);
    let f = all
        .iter()
        .find(|f| f.lint == "panic-reachability")
        .expect("reachability finding");
    assert!(
        f.message.contains("mid_step") && f.message.contains("deep_value"),
        "message should spell out the call chain: {}",
        f.message
    );
    // The direct panic site is still the lexical pass's finding.
    assert_eq!(lines_for(&all, "panic-in-library"), vec![13]);
}

#[test]
fn panic_reachability_allowed_fixture_is_clean() {
    let all = analyze_one("panic_reach_allowed.rs", "crates/cpu/src/reach_fixture.rs");
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}

#[test]
fn panic_reachability_crosses_crate_boundaries() {
    // A public `sim` entry reaches a panic that lives in `mem`, two hops
    // and one crate boundary away. The lexical pass flags the `mem` site
    // itself (manifest-derived coverage); only the call graph can tie it
    // back to the public `sim` API.
    let files = vec![
        SourceFile {
            rel_path: "crates/sim/src/lib.rs".to_string(),
            src: "#![forbid(unsafe_code)]\n\n\
                  pub fn canary_entry() -> u64 {\n    \
                  canary_mid()\n\
                  }\n\n\
                  fn canary_mid() -> u64 {\n    \
                  tcp_mem::canary_deep() + 1\n\
                  }\n"
            .to_string(),
        },
        SourceFile {
            rel_path: "crates/mem/src/lib.rs".to_string(),
            src: "#![forbid(unsafe_code)]\n\n\
                  pub fn canary_deep() -> u64 {\n    \
                  let v: Option<u64> = None;\n    \
                  v.unwrap()\n\
                  }\n"
            .to_string(),
        },
    ];
    let all = analyze_files(&files);
    let lints: Vec<&str> = all.iter().map(|f| f.lint).collect();
    assert_eq!(
        lints,
        vec!["panic-in-library", "panic-reachability"],
        "findings: {all:?}"
    );
    let f = &all[1];
    assert_eq!(f.path, "crates/sim/src/lib.rs");
    assert_eq!(f.line, 3, "finding anchors at the public entry point");
    assert!(
        f.message.contains("crates/mem/src/lib.rs:5"),
        "message should name the panic site: {}",
        f.message
    );
}

#[test]
fn stat_conservation_fires_on_bad_fixture() {
    let all = analyze_one(
        "stat_conservation_bad.rs",
        "crates/cache/src/stats_fixture.rs",
    );
    assert_eq!(lines_for(&all, "stat-conservation"), vec![5, 6]);
    let hits = all.iter().find(|f| f.line == 5).expect("hits finding");
    assert!(
        hits.message.contains("never read"),
        "hits is write-only: {}",
        hits.message
    );
    let misses = all.iter().find(|f| f.line == 6).expect("misses finding");
    assert!(
        misses.message.contains("never mutated"),
        "misses is read-only: {}",
        misses.message
    );
}

#[test]
fn stat_conservation_allowed_fixture_is_clean() {
    let all = analyze_one(
        "stat_conservation_allowed.rs",
        "crates/cache/src/stats_fixture.rs",
    );
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}

#[test]
fn exhaustive_dispatch_fires_on_bad_fixture() {
    let all = analyze_one(
        "exhaustive_dispatch_bad.rs",
        "crates/sim/src/dispatch_fixture.rs",
    );
    assert_eq!(lines_for(&all, "exhaustive-dispatch"), vec![13]);
    let f = &all[0];
    assert!(
        f.message.contains("Closed") && f.message.contains("Locked"),
        "message should list the hidden variants: {}",
        f.message
    );
}

#[test]
fn exhaustive_dispatch_allowed_fixture_is_clean() {
    // Enumerated arms and a wildcard over a #[non_exhaustive] enum.
    let all = analyze_one(
        "exhaustive_dispatch_allowed.rs",
        "crates/sim/src/dispatch_fixture.rs",
    );
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}

#[test]
fn discarded_result_fires_on_bad_fixture() {
    let all = analyze_one("discarded_result_bad.rs", "crates/sim/src/flush_fixture.rs");
    assert_eq!(lines_for(&all, "discarded-result"), vec![9]);
}

#[test]
fn discarded_result_allowed_fixture_is_clean() {
    let all = analyze_one(
        "discarded_result_allowed.rs",
        "crates/sim/src/flush_fixture.rs",
    );
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}

#[test]
fn semantic_passes_skip_test_code() {
    // The same discarded-result source under a `tests/` path is a test
    // binary: dropping a Result in a test is not a finding.
    let all = analyze_one(
        "discarded_result_bad.rs",
        "crates/sim/tests/flush_fixture.rs",
    );
    assert!(all.is_empty(), "expected clean in test code, got: {all:?}");
}

#[test]
fn lock_discipline_fires_on_bad_fixture() {
    // Two-function sweep-executor shape: `drain_own` holds its deque
    // guard across a call into `steal_from`, which itself locks; and
    // `requeue` locks deque 0 twice on one path.
    let all = analyze_one("lock_discipline_bad.rs", "crates/sim/src/pool_fixture.rs");
    assert_eq!(lines_for(&all, "lock-discipline"), vec![27, 33]);
    let across = all
        .iter()
        .find(|f| f.lint == "lock-discipline" && f.line == 27)
        .expect("guard-across-call finding");
    assert!(
        across.message.contains("own") && across.message.contains("steal_from"),
        "message should name the guard and the locking callee: {}",
        across.message
    );
    let double = all
        .iter()
        .find(|f| f.lint == "lock-discipline" && f.line == 33)
        .expect("double-lock finding");
    assert!(
        double.message.contains("locked again") || double.message.contains("already"),
        "message should describe the re-lock: {}",
        double.message
    );
}

#[test]
fn lock_discipline_allowed_fixture_is_clean() {
    let all = analyze_one(
        "lock_discipline_allowed.rs",
        "crates/sim/src/pool_fixture.rs",
    );
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}

#[test]
fn overflow_provenance_fires_on_bad_fixture() {
    let all = analyze_one(
        "overflow_provenance_bad.rs",
        "crates/cache/src/mix_fixture.rs",
    );
    assert_eq!(lines_for(&all, "overflow-provenance"), vec![6, 7, 8, 13]);
}

#[test]
fn overflow_provenance_allowed_fixture_is_clean() {
    let all = analyze_one(
        "overflow_provenance_allowed.rs",
        "crates/cache/src/mix_fixture.rs",
    );
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}

#[test]
fn index_bounds_fires_on_bad_fixture() {
    let all = analyze_one("index_bounds_bad.rs", "crates/cache/src/arena_fixture.rs");
    assert_eq!(lines_for(&all, "index-bounds"), vec![6, 10]);
}

#[test]
fn index_bounds_allowed_fixture_is_clean() {
    let all = analyze_one(
        "index_bounds_allowed.rs",
        "crates/cache/src/arena_fixture.rs",
    );
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}

#[test]
fn nondet_taint_fires_on_bad_fixture() {
    let all = analyze_one("nondet_taint_bad.rs", "crates/sim/src/taint_fixture.rs");
    assert_eq!(lines_for(&all, "nondet-taint"), vec![12, 18]);
}

#[test]
fn nondet_taint_allowed_fixture_is_clean() {
    let all = analyze_one("nondet_taint_allowed.rs", "crates/sim/src/taint_fixture.rs");
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}

#[test]
fn dataflow_passes_skip_test_code() {
    // The same lock-discipline source under a `tests/` path is a test
    // binary: holding a guard across a locking call in a test harness is
    // not a finding.
    let all = analyze_one("lock_discipline_bad.rs", "crates/sim/tests/pool_fixture.rs");
    assert!(all.is_empty(), "expected clean in test code, got: {all:?}");
}

#[test]
fn alloc_in_hot_loop_fires_on_bad_fixture() {
    let all = analyze_one("alloc_hot_loop_bad.rs", "crates/sim/src/alloc_fixture.rs");
    assert_eq!(lines_for(&all, "alloc-in-hot-loop"), vec![14, 15, 17]);
    // The call-site finding spells out the summary chain, proving the
    // allocation was found two calls deep.
    let via = all
        .iter()
        .find(|f| f.lint == "alloc-in-hot-loop" && f.line == 17)
        .expect("summarized-callee finding");
    assert!(
        via.message.contains("`helper`") && via.message.contains("`mid`"),
        "message should spell out the allocation chain: {}",
        via.message
    );
}

#[test]
fn alloc_in_hot_loop_allowed_fixture_is_clean() {
    let all = analyze_one(
        "alloc_hot_loop_allowed.rs",
        "crates/sim/src/alloc_fixture.rs",
    );
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}

#[test]
fn alloc_in_hot_loop_ignores_cold_crates() {
    // The identical bad source in a non-hot crate (tcp-experiments) is
    // outside the allocation contract.
    let all = analyze_one(
        "alloc_hot_loop_bad.rs",
        "crates/experiments/src/alloc_fixture.rs",
    );
    assert_eq!(lines_for(&all, "alloc-in-hot-loop"), Vec::<u32>::new());
}

#[test]
fn swallowed_error_fires_on_bad_fixture() {
    let all = analyze_one(
        "swallowed_error_bad.rs",
        "crates/sim/src/swallow_fixture.rs",
    );
    assert_eq!(lines_for(&all, "swallowed-error"), vec![10, 11, 24]);
}

#[test]
fn swallowed_error_allowed_fixture_is_clean() {
    let all = analyze_one(
        "swallowed_error_allowed.rs",
        "crates/sim/src/swallow_fixture.rs",
    );
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}

#[test]
fn unbounded_growth_fires_on_bad_fixture() {
    let all = analyze_one("unbounded_growth_bad.rs", "crates/sim/src/replay_stream.rs");
    assert_eq!(lines_for(&all, "unbounded-growth-in-stream"), vec![15]);
}

#[test]
fn unbounded_growth_allowed_fixture_is_clean() {
    let all = analyze_one(
        "unbounded_growth_allowed.rs",
        "crates/sim/src/replay_stream.rs",
    );
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}

#[test]
fn unbounded_growth_only_watches_stream_files() {
    // The same source outside a `*stream.rs` file is ordinary struct
    // state, not a streaming residency contract.
    let all = analyze_one("unbounded_growth_bad.rs", "crates/sim/src/replay.rs");
    assert_eq!(
        lines_for(&all, "unbounded-growth-in-stream"),
        Vec::<u32>::new()
    );
}

#[test]
fn guard_across_blocking_call_fires_on_bad_fixture() {
    let all = analyze_one("guard_blocking_bad.rs", "crates/sim/src/pool_fixture.rs");
    assert_eq!(lines_for(&all, "guard-across-blocking-call"), vec![21]);
    let f = all
        .iter()
        .find(|f| f.lint == "guard-across-blocking-call")
        .expect("blocking finding");
    assert!(
        f.message.contains("recv"),
        "message should name the blocking primitive: {}",
        f.message
    );
}

#[test]
fn guard_across_blocking_call_allowed_fixture_is_clean() {
    let all = analyze_one(
        "guard_blocking_allowed.rs",
        "crates/sim/src/pool_fixture.rs",
    );
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}

#[test]
fn index_bounds_guard_in_sibling_branch_does_not_count() {
    // Flow sensitivity, pinned as a fixture pair: the same `xs[set * 4
    // + way]` expression fires when its bound evidence sits in a
    // non-dominating sibling branch…
    let all = analyze_one(
        "index_bounds_flow_bad.rs",
        "crates/cache/src/flow_fixture.rs",
    );
    assert_eq!(lines_for(&all, "index-bounds"), vec![10]);
}

#[test]
fn index_bounds_dominating_guard_kills_the_finding() {
    // …and is clean when the comparison is the dominating `if`
    // condition itself.
    let all = analyze_one(
        "index_bounds_flow_allowed.rs",
        "crates/cache/src/flow_fixture.rs",
    );
    assert!(all.is_empty(), "expected clean, got: {all:?}");
}
