//! Fixture-based acceptance tests: every lint fires on its known-bad
//! fixture at the exact line it should, and every allowed/suppressed
//! fixture lints clean.
//!
//! Fixtures live in `tests/fixtures/` (a directory name the workspace
//! walker deliberately skips, so the bad files never gate CI). Each is
//! linted through [`tcp_lint::lint_file`] with an explicit [`FileSpec`]
//! standing in for a real simulator source file.

use tcp_lint::{lint_file, FileKind, FileSpec, Finding};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!("reading fixture {path}: {e}"),
    }
}

fn findings(name: &str, crate_dir: &str, crate_root: bool) -> Vec<Finding> {
    let src = fixture(name);
    let spec = FileSpec {
        path: name,
        crate_dir,
        kind: FileKind::Lib,
        crate_root,
    };
    lint_file(&spec, &src)
}

/// (lint name, 1-based line) pairs, in report order.
fn hits(name: &str, crate_dir: &str, crate_root: bool) -> Vec<(&'static str, u32)> {
    findings(name, crate_dir, crate_root)
        .into_iter()
        .map(|f| (f.lint, f.line))
        .collect()
}

#[test]
fn nondet_iteration_fires_on_bad_fixture() {
    assert_eq!(
        hits("nondet_iteration_bad.rs", "cache", false),
        vec![
            ("nondet-iteration", 7),  // for (_k, v) in counts.iter()
            ("nondet-iteration", 14), // counts.keys()
            ("nondet-iteration", 19), // seen.drain()
            ("nondet-iteration", 27), // for _ in &seen
        ],
    );
}

#[test]
fn nondet_iteration_allowed_fixture_is_clean() {
    assert_eq!(hits("nondet_iteration_allowed.rs", "cache", false), vec![]);
}

#[test]
fn nondet_iteration_covers_every_workspace_crate() {
    // Coverage is derived from the workspace manifest, not a hardcoded
    // crate list: the same source is flagged identically in a crate
    // that used to sit outside the old list (`analysis`).
    assert_eq!(
        hits("nondet_iteration_bad.rs", "analysis", false),
        hits("nondet_iteration_bad.rs", "cache", false),
    );
}

#[test]
fn wall_clock_fires_on_bad_fixture() {
    assert_eq!(
        hits("wall_clock_bad.rs", "sim", false),
        vec![("wall-clock-in-sim", 4), ("wall-clock-in-sim", 9)],
    );
}

#[test]
fn wall_clock_allowed_fixture_is_clean() {
    assert_eq!(hits("wall_clock_allowed.rs", "sim", false), vec![]);
}

#[test]
fn wall_clock_is_permitted_in_the_perf_crate() {
    assert_eq!(hits("wall_clock_bad.rs", "perf", false), vec![]);
}

#[test]
fn panic_in_library_fires_on_bad_fixture() {
    assert_eq!(
        hits("panic_library_bad.rs", "cache", false),
        vec![
            ("panic-in-library", 4),  // .expect(...)
            ("panic-in-library", 9),  // panic!(...)
            ("panic-in-library", 11), // .unwrap()
            ("panic-in-library", 15), // todo!()
            ("panic-in-library", 19), // unreachable!(...)
        ],
    );
}

#[test]
fn panic_in_library_allowed_fixture_is_clean() {
    assert_eq!(hits("panic_library_allowed.rs", "cache", false), vec![]);
}

#[test]
fn panic_in_library_skips_test_binaries() {
    let src = fixture("panic_library_bad.rs");
    let spec = FileSpec {
        path: "panic_library_bad.rs",
        crate_dir: "cache",
        kind: FileKind::Test,
        crate_root: false,
    };
    assert_eq!(lint_file(&spec, &src).len(), 0);
}

#[test]
fn lossy_cycle_cast_fires_on_bad_fixture() {
    assert_eq!(
        hits("lossy_cast_bad.rs", "cpu", false),
        vec![
            ("lossy-cycle-cast", 4),  // cycle as u32
            ("lossy-cycle-cast", 5),  // line_addr as u32
            ("lossy-cycle-cast", 10), // tag as u16
        ],
    );
}

#[test]
fn lossy_cycle_cast_allowed_fixture_is_clean() {
    assert_eq!(hits("lossy_cast_allowed.rs", "cpu", false), vec![]);
}

#[test]
fn float_accum_fires_on_bad_fixture() {
    assert_eq!(
        hits("float_accum_bad.rs", "cpu", false),
        vec![
            ("float-accum-in-hot-loop", 7),  // acc += 0.25 in while-cycle loop
            ("float-accum-in-hot-loop", 16), // ipc += ... in for-cycle loop
        ],
    );
}

#[test]
fn float_accum_allowed_fixture_is_clean() {
    assert_eq!(hits("float_accum_allowed.rs", "cpu", false), vec![]);
}

#[test]
fn missing_forbid_unsafe_fires_on_bad_crate_root() {
    assert_eq!(
        hits("missing_forbid_bad.rs", "cache", true),
        vec![("missing-forbid-unsafe", 1)],
    );
}

#[test]
fn missing_forbid_unsafe_ok_crate_root_is_clean() {
    assert_eq!(hits("missing_forbid_ok.rs", "cache", true), vec![]);
}

#[test]
fn missing_forbid_unsafe_only_applies_to_crate_roots() {
    assert_eq!(hits("missing_forbid_bad.rs", "cache", false), vec![]);
}

#[test]
fn bad_suppression_fires_on_bad_fixture() {
    assert_eq!(
        hits("bad_suppression_bad.rs", "cache", false),
        vec![
            ("bad-suppression", 4),  // reason missing
            ("bad-suppression", 9),  // unknown lint name
            ("bad-suppression", 14), // unclosed paren
        ],
    );
}

#[test]
fn bad_suppression_allowed_fixture_is_clean() {
    assert_eq!(hits("bad_suppression_allowed.rs", "cache", false), vec![]);
}

#[test]
fn findings_carry_path_snippet_and_column() {
    let all = findings("wall_clock_bad.rs", "sim", false);
    let f = &all[0];
    assert_eq!(f.path, "wall_clock_bad.rs");
    assert_eq!(f.line, 4);
    assert!(f.col > 1, "column should point at the offending token");
    assert_eq!(f.snippet, "let t = std::time::Instant::now();");
    assert!(f.message.contains("Instant"), "message: {}", f.message);
}
