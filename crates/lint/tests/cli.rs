//! End-to-end checks of the `tcp-lint` binary: the real workspace must
//! lint clean at HEAD (the CI gate's definition of green), JSON output
//! must be machine-readable, and an injected violation must flip the
//! exit code to 1.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tcp-lint"))
}

#[test]
fn workspace_is_clean_at_head() {
    let out = bin().arg("--workspace").output().expect("run tcp-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "tcp-lint must exit 0 on the committed tree; findings:\n{stdout}"
    );
    assert!(stdout.contains("clean"), "unexpected output: {stdout}");
}

#[test]
fn json_mode_emits_an_array() {
    let out = bin()
        .args(["--workspace", "--json"])
        .output()
        .expect("run tcp-lint");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let trimmed = stdout.trim();
    assert!(
        trimmed.starts_with('[') && trimmed.ends_with(']'),
        "JSON output must be a single array, got: {trimmed}"
    );
}

#[test]
fn waivers_report_lists_debt_with_a_total() {
    let out = bin().arg("--waivers").output().expect("run tcp-lint");
    assert!(out.status.success(), "--waivers itself must not gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut tail = stdout.lines().rev();
    let stale_line = tail.next().expect("waiver report ends with stale count");
    assert!(
        stale_line.starts_with("stale: ") && stale_line.ends_with(" waivers"),
        "unexpected stale line: {stale_line}"
    );
    assert_eq!(
        stale_line, "stale: 0 waivers",
        "the committed tree must carry no rotten suppressions"
    );
    let total_line = tail.next().expect("waiver report has a total");
    assert!(
        total_line.starts_with("total: ") && total_line.ends_with(" waivers"),
        "unexpected total line: {total_line}"
    );
    // The committed tree carries at least the documented panic waivers,
    // each with a file:line anchor and a reason.
    assert!(stdout.contains("panic-in-library"), "report: {stdout}");
    for line in stdout.lines() {
        if line.starts_with("total: ") || line.starts_with("stale: ") {
            continue;
        }
        assert!(
            line.contains(':') && line.contains('—'),
            "each entry needs file:line and a reason: {line}"
        );
    }
}

#[test]
fn stale_waiver_is_reported_in_the_debt_report() {
    // A waiver whose lint does not fire on its line must be marked
    // stale and counted, so suppressions cannot rot in place.
    let root = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("lint-stale-check");
    let src_dir = root.join("crates").join("sim").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir temp workspace");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         // tcp-lint: allow(wall-clock-in-sim) — nothing here reads the clock anymore\n\
         pub fn fine() -> u64 {\n    \
         7\n\
         }\n",
    )
    .expect("write clean lib.rs");

    let out = bin()
        .args(["--waivers", "--root", root.to_str().expect("utf-8 path")])
        .output()
        .expect("run tcp-lint --waivers");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[STALE"), "report must flag it: {stdout}");
    assert!(stdout.contains("total: 1 waivers"), "report: {stdout}");
    assert!(stdout.contains("stale: 1 waivers"), "report: {stdout}");
}

#[test]
fn gh_format_emits_error_annotations() {
    let root = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("lint-gh-check");
    let src_dir = root.join("crates").join("sim").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir temp workspace");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         pub fn canary() -> std::time::Instant {\n    \
         std::time::Instant::now()\n\
         }\n",
    )
    .expect("write offending lib.rs");

    let out = bin()
        .args([
            "--workspace",
            "--format",
            "gh",
            "--root",
            root.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run tcp-lint --format gh");
    assert_eq!(out.status.code(), Some(1), "violations must still exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("::error file=crates/sim/src/lib.rs,line="),
        "gh annotations must carry the path: {stdout}"
    );
    assert!(
        stdout.contains("title=tcp-lint wall-clock-in-sim::"),
        "gh annotations must carry the lint name: {stdout}"
    );

    let bad_format = bin()
        .args(["--workspace", "--format", "yaml"])
        .output()
        .expect("run tcp-lint with bad format");
    assert_eq!(
        bad_format.status.code(),
        Some(2),
        "unknown format is usage error"
    );
}

#[test]
fn list_lints_names_every_lint() {
    let out = bin().arg("--list-lints").output().expect("run tcp-lint");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for lint in tcp_lint::ALL_LINTS {
        assert!(stdout.contains(lint), "--list-lints missing {lint}");
    }
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = bin().arg("--bogus").output().expect("run tcp-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn injected_violation_fails_with_exit_code_one() {
    // A throwaway one-crate workspace whose `sim` library reads the wall
    // clock: tcp-lint must report it and exit 1.
    let root = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("lint-exit-check");
    let src_dir = root.join("crates").join("sim").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir temp workspace");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         pub fn canary() -> std::time::Instant {\n    \
         std::time::Instant::now()\n\
         }\n",
    )
    .expect("write offending lib.rs");

    let out = bin()
        .args(["--workspace", "--root", root.to_str().expect("utf-8 path")])
        .output()
        .expect("run tcp-lint");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wall-clock-in-sim"), "output: {stdout}");

    let json = bin()
        .args([
            "--workspace",
            "--json",
            "--root",
            root.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run tcp-lint --json");
    assert_eq!(json.status.code(), Some(1));
    let payload = String::from_utf8_lossy(&json.stdout);
    assert!(
        payload.contains("\"lint\":\"wall-clock-in-sim\""),
        "json: {payload}"
    );
}

#[test]
fn sarif_format_emits_a_sarif_2_1_0_log() {
    let root = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("lint-sarif-check");
    let src_dir = root.join("crates").join("sim").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir temp workspace");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         pub fn canary() -> std::time::Instant {\n    \
         std::time::Instant::now()\n\
         }\n",
    )
    .expect("write offending lib.rs");

    let out = bin()
        .args([
            "--workspace",
            "--format",
            "sarif",
            "--root",
            root.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run tcp-lint --format sarif");
    assert_eq!(out.status.code(), Some(1), "violations must still exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"version\":\"2.1.0\""),
        "sarif log must carry the format version: {stdout}"
    );
    assert!(
        stdout.contains("\"ruleId\":\"wall-clock-in-sim\""),
        "sarif results must carry the lint as ruleId: {stdout}"
    );
    assert!(
        stdout.contains("\"uri\":\"crates/sim/src/lib.rs\""),
        "sarif locations must carry the path: {stdout}"
    );
    assert!(
        stdout.contains("\"startLine\":3"),
        "sarif regions must carry the line: {stdout}"
    );
    // Every lint is described as a rule, findings or not.
    assert!(
        stdout.contains("\"id\":\"alloc-in-hot-loop\""),
        "sarif driver must list all rules: {stdout}"
    );

    // A clean tree still emits a well-formed log with zero results.
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\npub fn fine() -> u64 {\n    7\n}\n",
    )
    .expect("write clean lib.rs");
    let out = bin()
        .args([
            "--workspace",
            "--format",
            "sarif",
            "--root",
            root.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run tcp-lint --format sarif clean");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"results\":[]"),
        "clean tree yields an empty results array: {stdout}"
    );
}

#[test]
fn stale_and_malformed_directives_on_one_line_count_once() {
    // A line hosting both a well-formed (but stale) waiver and a
    // malformed directive is ONE broken site: it trips bad-suppression
    // and must NOT also be counted as a stale waiver (check-lint.sh
    // weights stale double, so double-counting would triple the debt).
    let root = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("lint-dedupe-check");
    let src_dir = root.join("crates").join("sim").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir temp workspace");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         /* tcp-lint: allow(wall-clock-in-sim) — stale: nothing below reads the clock */ // tcp-lint: allow(bogus-lint)\n\
         pub fn fine() -> u64 {\n    \
         7\n\
         }\n",
    )
    .expect("write lib.rs");

    let out = bin()
        .args(["--waivers", "--root", root.to_str().expect("utf-8 path")])
        .output()
        .expect("run tcp-lint --waivers");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("total: 1 waivers"),
        "one well-formed waiver: {stdout}"
    );
    assert!(
        stdout.contains("stale: 0 waivers"),
        "the site already counts via bad-suppression; it must not also be stale: {stdout}"
    );

    let lint = bin()
        .args(["--workspace", "--root", root.to_str().expect("utf-8 path")])
        .output()
        .expect("run tcp-lint --workspace");
    assert_eq!(lint.status.code(), Some(1));
    let lint_out = String::from_utf8_lossy(&lint.stdout);
    assert_eq!(
        lint_out.matches("[bad-suppression]").count(),
        1,
        "exactly one bad-suppression finding for the site: {lint_out}"
    );
}
