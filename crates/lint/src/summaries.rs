//! Bottom-up interprocedural effect summaries over call-graph SCCs.
//!
//! PR 8's dataflow tier stopped at function boundaries: a tainted value
//! returned from a helper lost its provenance at the call site, a lock
//! acquired two calls down was invisible to the guard lints, and an
//! allocation hidden in a callee never counted against a hot loop. This
//! pass closes those holes with one `FnSummary` per workspace function:
//!
//! * **allocation effect** — does the function (transitively) allocate,
//!   and through which call chain (for the finding message);
//! * **lock effect** — does it (transitively) acquire a lock — the
//!   generalization of the PR-8 `locks_trans` fixpoint;
//! * **blocking effect** — does it (transitively) reach a blocking call
//!   (`recv`/`wait`/`sleep`/blocking reads), feeding the
//!   guard-across-blocking-call lint;
//! * **provenance transfer** — the tag set of its returned values, so
//!   `let x = current_cycle();` seeds `x` with `TAG_CYCLE` in the
//!   caller's dataflow instead of dropping to ⊥.
//!
//! The pass condenses the call graph into strongly connected components
//! (Tarjan), then walks components bottom-up — Tarjan emits an SCC only
//! after everything it calls into — iterating the members of each SCC
//! to a fixpoint (all effects are monotone: booleans only flip to true,
//! tag sets only grow, and an allocation effect is set at most once).
//!
//! Conservatism contract: summaries under-match like everything else in
//! this linter. An unresolved call contributes nothing (no edge ⇒ no
//! effect), `.clone()` is deliberately *not* an allocation effect (too
//! many cheap `Copy`-adjacent clones — hot-loop clones are still caught
//! directly at the loop site), and a tail expression containing nested
//! blocks contributes no return tags rather than over-tainting.

use std::collections::BTreeMap;

use crate::ast::Callee;
use crate::dataflow::{self, FnFlow, Tags};
use crate::lexer::{TokKind, Token};
use crate::symbols::{FileInput, Workspace};

/// Method calls that block the calling thread. Deliberately tight:
/// `join` is excluded (slice/path `join` would swamp it with false
/// positives) — an under-match, per the contract.
const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "read_to_end",
    "read_to_string",
    "read_line",
];

/// Allocating constructor paths: `Type::ctor` (turbofish tolerated).
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];

/// Allocating methods summarized through calls. `.clone(` is absent by
/// design (see module docs).
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string"];

/// An allocation reachable from a function, with the call chain that
/// reaches it (empty for a direct allocation).
#[derive(Clone, Debug)]
pub struct AllocEffect {
    /// The allocating shape, e.g. `Vec::new` or `format!`.
    pub what: String,
    /// 1-based line of the allocation site in its own file.
    pub line: u32,
    /// Display names of the callees between this function and the
    /// site, outermost first.
    pub via: Vec<String>,
}

/// The interprocedural effect summary of one function.
#[derive(Clone, Debug, Default)]
pub struct FnSummary {
    /// Acquires a lock in its own body.
    pub direct_lock: bool,
    /// Acquires a lock transitively (includes `direct_lock`).
    pub locks: bool,
    /// Reaches a blocking call in its own body.
    pub direct_block: bool,
    /// Reaches a blocking call transitively (includes `direct_block`).
    pub blocks: bool,
    /// The blocking call's name, for messages.
    pub block_what: Option<String>,
    /// The first reachable allocation, if any.
    pub alloc: Option<AllocEffect>,
    /// Provenance tags of the function's returned values.
    pub returns_tags: Tags,
}

/// Computes one summary per `ws.fns` entry (parallel indexing).
/// `flows` are the phase-1 intra-procedural results, also parallel.
pub fn summarize(
    ws: &Workspace<'_>,
    files: &[FileInput<'_>],
    flows: &[Option<FnFlow>],
) -> Vec<FnSummary> {
    let n = ws.fns.len();
    let mut sums: Vec<FnSummary> = Vec::with_capacity(n);
    for (i, f) in ws.fns.iter().enumerate() {
        let mut s = FnSummary::default();
        if let Some(flow) = flows.get(i).and_then(Option::as_ref) {
            s.direct_lock = !flow.locks.is_empty();
            s.locks = s.direct_lock;
        }
        // Test-only functions keep an empty summary: they are never
        // call-resolution targets, and their bodies (assert scaffolding,
        // Vec-heavy setup) must not leak effects into product findings.
        if !f.in_test {
            if let Some(body) = f.def.body.as_ref() {
                let toks = files[f.file].toks;
                for c in &body.calls {
                    if let Callee::Method { name, .. } = &c.callee {
                        if BLOCKING_METHODS.contains(&name.as_str()) {
                            s.direct_block = true;
                            s.blocks = true;
                            s.block_what.get_or_insert_with(|| format!(".{name}()"));
                        }
                    }
                    if let Callee::Path(segs) = &c.callee {
                        if segs.last().is_some_and(|l| l == "sleep") {
                            s.direct_block = true;
                            s.blocks = true;
                            s.block_what.get_or_insert_with(|| segs.join("::") + "()");
                        }
                    }
                }
                s.alloc = direct_alloc(toks, body);
            }
        }
        sums.push(s);
    }

    // Phase-1 return tags, from the intra-procedural environment only.
    for (i, f) in ws.fns.iter().enumerate() {
        if let (Some(flow), Some(body)) = (flows[i].as_ref(), f.def.body.as_ref()) {
            let toks = files[f.file].toks;
            sums[i].returns_tags = dataflow::return_tags(toks, body, flow, &BTreeMap::new());
        }
    }

    // Bottom-up over the condensation. Tarjan emits each SCC after all
    // SCCs it reaches, so a single pass in emission order sees callee
    // summaries already settled; within an SCC, iterate to fixpoint.
    for scc in tarjan(ws) {
        loop {
            let mut changed = false;
            for &i in &scc {
                let f = &ws.fns[i];
                let mut locks = sums[i].locks;
                let mut blocks = sums[i].blocks;
                let mut block_what = sums[i].block_what.clone();
                let mut alloc = sums[i].alloc.clone();
                let mut call_rets: BTreeMap<usize, Tags> = BTreeMap::new();
                for c in &f.calls {
                    let mut ret: Tags = 0;
                    for &t in &c.targets {
                        locks |= sums[t].locks;
                        if sums[t].blocks {
                            blocks = true;
                            block_what.get_or_insert_with(|| {
                                format!(
                                    "{} (reaching {})",
                                    ws.fns[t].display_name(),
                                    sums[t].block_what.as_deref().unwrap_or("a blocking call")
                                )
                            });
                        }
                        if alloc.is_none() && !f.in_test {
                            if let Some(a) = &sums[t].alloc {
                                let mut via = vec![ws.fns[t].display_name()];
                                via.extend(a.via.iter().cloned());
                                alloc = Some(AllocEffect {
                                    what: a.what.clone(),
                                    line: a.line,
                                    via,
                                });
                            }
                        }
                        ret |= sums[t].returns_tags;
                    }
                    if ret != 0 {
                        call_rets.insert(c.site.paren_open, ret);
                    }
                }
                let mut returns_tags = sums[i].returns_tags;
                if !call_rets.is_empty() {
                    if let (Some(flow), Some(body)) = (flows[i].as_ref(), f.def.body.as_ref()) {
                        let toks = files[f.file].toks;
                        returns_tags |= dataflow::return_tags(toks, body, flow, &call_rets);
                    }
                }
                let s = &mut sums[i];
                changed |= locks != s.locks
                    || blocks != s.blocks
                    || returns_tags != s.returns_tags
                    || alloc.is_some() != s.alloc.is_some();
                s.locks = locks;
                s.blocks = blocks;
                s.block_what = block_what;
                s.alloc = alloc;
                s.returns_tags = returns_tags;
            }
            if !changed {
                break;
            }
        }
    }
    sums
}

/// Per-caller map from call-site `paren_open` token to the union of the
/// targets' return tags — the seed for the caller's phase-2 dataflow.
pub fn call_return_tags(
    ws: &Workspace<'_>,
    sums: &[FnSummary],
    fn_id: usize,
) -> BTreeMap<usize, Tags> {
    let mut map = BTreeMap::new();
    for c in &ws.fns[fn_id].calls {
        let mut ret: Tags = 0;
        for &t in &c.targets {
            ret |= sums[t].returns_tags;
        }
        if ret != 0 {
            map.insert(c.site.paren_open, ret);
        }
    }
    map
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// First allocating shape in a body's token range, if any.
fn direct_alloc(toks: &[Token], body: &crate::ast::BodyFacts) -> Option<AllocEffect> {
    let hit = |what: &str, line: u32| {
        Some(AllocEffect {
            what: what.to_owned(),
            line,
            via: Vec::new(),
        })
    };
    let end = body.close.min(toks.len());
    let mut i = body.open + 1;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            // `vec![…]` / `format!(…)`.
            if (t.text == "vec" || t.text == "format")
                && toks.get(i + 1).is_some_and(|n| is_punct(n, "!"))
            {
                return hit(&format!("{}!", t.text), t.line);
            }
            // `Type::ctor(`, tolerating a `::<T>` turbofish.
            if ALLOC_CTORS.iter().any(|(ty, _)| *ty == t.text)
                && toks.get(i + 1).is_some_and(|n| is_punct(n, "::"))
            {
                let mut j = i + 2;
                if toks.get(j).is_some_and(|n| is_punct(n, "<")) {
                    let mut depth = 1u32;
                    j += 1;
                    while j < end && depth > 0 {
                        if is_punct(&toks[j], "<") {
                            depth += 1;
                        } else if is_punct(&toks[j], ">") {
                            depth -= 1;
                        } else if is_punct(&toks[j], ">>") {
                            depth = depth.saturating_sub(2);
                        }
                        j += 1;
                    }
                    if !toks.get(j).is_some_and(|n| is_punct(n, "::")) {
                        i += 1;
                        continue;
                    }
                    j += 1;
                }
                if let Some(m) = toks.get(j) {
                    if m.kind == TokKind::Ident
                        && ALLOC_CTORS
                            .iter()
                            .any(|(ty, c)| *ty == t.text && *c == m.text)
                        && toks.get(j + 1).is_some_and(|n| is_punct(n, "("))
                    {
                        return hit(&format!("{}::{}", t.text, m.text), t.line);
                    }
                }
            }
            // `.to_vec(` and friends.
            if i > 0
                && is_punct(&toks[i - 1], ".")
                && ALLOC_METHODS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| is_punct(n, "("))
            {
                return hit(&format!(".{}()", t.text), t.line);
            }
        }
        i += 1;
    }
    None
}

/// Tarjan's SCC algorithm over the call graph, iterative to keep deep
/// call chains off the native stack. Emission order is bottom-up: every
/// SCC is produced after all SCCs it has edges into.
fn tarjan(ws: &Workspace<'_>) -> Vec<Vec<usize>> {
    let n = ws.fns.len();
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, edge cursor over flattened targets).
    let succs: Vec<Vec<usize>> = ws
        .fns
        .iter()
        .map(|f| {
            let mut out: Vec<usize> = f.calls.iter().flat_map(|c| c.targets.clone()).collect();
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect();
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if let Some(&w) = succs[v].get(*cursor) {
                *cursor += 1;
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                // `v` is on the stack by construction, so the pop loop
                // terminates at `w == v`; an empty stack would be a
                // Tarjan invariant violation and simply ends the SCC.
                let mut scc = Vec::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                scc.sort_unstable();
                sccs.push(scc);
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;
    use crate::lints::{test_mask, FileKind};
    use crate::symbols;

    struct Built {
        toks: Vec<crate::lexer::Token>,
        mask: Vec<bool>,
        ast: crate::ast::Ast,
    }

    fn build_one(src: &str) -> Built {
        let lx = lex(src);
        let mask = test_mask(&lx.tokens, FileKind::Lib);
        let ast = parse(&lx.tokens, &mask);
        Built {
            toks: lx.tokens,
            mask,
            ast,
        }
    }

    fn summaries_for(src: &str) -> (Vec<String>, Vec<FnSummary>) {
        let b = build_one(src);
        let files = vec![FileInput {
            path: "crates/sim/src/lib.rs",
            crate_dir: "sim",
            kind: FileKind::Lib,
            toks: &b.toks,
            in_test: &b.mask,
            ast: &b.ast,
        }];
        let ws = symbols::build(&files);
        let flows: Vec<Option<FnFlow>> = ws
            .fns
            .iter()
            .map(|f| dataflow::analyze(files[f.file].toks, files[f.file].in_test, f.def))
            .collect();
        let names = ws.fns.iter().map(|f| f.display_name()).collect();
        let sums = summarize(&ws, &files, &flows);
        (names, sums)
    }

    fn sum_of<'s>(names: &[String], sums: &'s [FnSummary], name: &str) -> &'s FnSummary {
        let i = names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("no fn {name}"));
        &sums[i]
    }

    #[test]
    fn alloc_effect_propagates_two_calls_deep_with_chain() {
        let (names, sums) = summaries_for(
            "pub fn deep() -> Vec<u64> { Vec::new() }\n\
             pub fn mid() -> Vec<u64> { deep() }\n\
             pub fn top() -> Vec<u64> { mid() }\n",
        );
        let deep = sum_of(&names, &sums, "deep");
        assert_eq!(
            deep.alloc.as_ref().map(|a| a.what.as_str()),
            Some("Vec::new")
        );
        assert!(deep.alloc.as_ref().is_some_and(|a| a.via.is_empty()));
        let top = sum_of(&names, &sums, "top");
        let a = top.alloc.as_ref().expect("alloc reaches top");
        assert_eq!(a.what, "Vec::new");
        assert_eq!(a.via, vec!["mid".to_owned(), "deep".to_owned()]);
    }

    #[test]
    fn clone_is_not_a_summarized_allocation() {
        let (names, sums) = summaries_for(
            "pub fn copies(xs: &[u64]) -> u64 { let ys = xs.first().cloned(); ys.unwrap_or(0) }\n\
             pub fn cloner(s: &str) -> u64 { let t = s.clone(); t.len() as u64 }\n",
        );
        assert!(sum_of(&names, &sums, "cloner").alloc.is_none());
        assert!(sum_of(&names, &sums, "copies").alloc.is_none());
    }

    #[test]
    fn lock_and_blocking_effects_cross_function_boundaries() {
        let (names, sums) = summaries_for(
            "use std::sync::Mutex;\n\
             pub struct P { inner: Mutex<u64> }\n\
             impl P {\n\
                 pub fn bump(&self) -> u64 { let g = self.inner.lock().unwrap(); *g + 1 }\n\
                 pub fn outer(&self) -> u64 { self.bump() }\n\
             }\n\
             pub fn waits(rx: &std::sync::mpsc::Receiver<u64>) -> u64 { rx.recv().unwrap_or(0) }\n\
             pub fn calls_waits(rx: &std::sync::mpsc::Receiver<u64>) -> u64 { waits(rx) }\n",
        );
        let bump = sum_of(&names, &sums, "P::bump");
        assert!(bump.direct_lock && bump.locks);
        let outer = sum_of(&names, &sums, "P::outer");
        assert!(
            !outer.direct_lock && outer.locks,
            "lock effect is transitive"
        );
        let waits = sum_of(&names, &sums, "waits");
        assert!(waits.direct_block && waits.blocks);
        let cw = sum_of(&names, &sums, "calls_waits");
        assert!(
            !cw.direct_block && cw.blocks,
            "blocking effect is transitive"
        );
        assert!(cw.block_what.as_deref().unwrap_or("").contains("waits"));
    }

    #[test]
    fn return_tags_transfer_through_calls() {
        let (names, sums) = summaries_for(
            "pub fn current_cycle(cycle: u64) -> u64 { cycle }\n\
             pub fn relayed(cycle: u64) -> u64 { let c = current_cycle(cycle); c }\n",
        );
        let direct = sum_of(&names, &sums, "current_cycle");
        assert_ne!(direct.returns_tags & dataflow::TAG_CYCLE, 0);
        let relayed = sum_of(&names, &sums, "relayed");
        assert_ne!(
            relayed.returns_tags & dataflow::TAG_CYCLE,
            0,
            "tags flow through the call and back out"
        );
    }

    #[test]
    fn recursive_scc_reaches_a_fixpoint() {
        let (names, sums) = summaries_for(
            "pub fn ping(n: u64) -> Vec<u64> { if n == 0 { Vec::new() } else { pong(n - 1) } }\n\
             pub fn pong(n: u64) -> Vec<u64> { ping(n) }\n",
        );
        assert!(sum_of(&names, &sums, "ping").alloc.is_some());
        assert!(sum_of(&names, &sums, "pong").alloc.is_some());
    }
}
