//! The semantic lint passes: workspace-level invariants that need the
//! AST, symbol table, and call graph rather than a single file's token
//! stream.
//!
//! Four passes live here:
//!
//! - **panic-reachability** — no public API of a typed-error crate
//!   (tcp-cache / tcp-cpu / tcp-sim) may *transitively* reach an
//!   unwaived `panic!`/`unwrap`/`expect` through the in-workspace call
//!   graph. The lexical `panic-in-library` pass catches direct sites;
//!   this one follows calls across crates.
//! - **stat-conservation** — every numeric field of a `*Stats` struct
//!   must be both mutated somewhere and read/reported somewhere. The
//!   paper's coverage/accuracy numbers are ratios of such counters; a
//!   write-only or dead counter is a silent accounting bug.
//! - **exhaustive-dispatch** — `match` over a closed workspace enum
//!   (`PrefetcherSpec`, `SimError`, `Replacement`, …) must not hide
//!   variants behind `_`, so adding a prefetcher cannot silently fall
//!   through an existing dispatch site.
//! - **discarded-result** — a `Result` returned by a workspace function
//!   must not be dropped as a bare statement.
//!
//! The dataflow passes (v3) also live here, consuming the per-function
//! abstract environments computed by [`crate::dataflow`] — now
//! flow-sensitive through [`crate::cfg`] and interprocedural through
//! [`crate::summaries`] (v4):
//!
//! - **lock-discipline** — a `let`-bound `Mutex` guard live across a
//!   call into a workspace function whose summary says it locks is the
//!   deadlock shape; a second `.lock()` of the same receiver inside a
//!   live guard range is a self-deadlock on that path.
//! - **overflow-provenance** — unchecked `+`/`*`/`<<` on values whose
//!   provenance tags say cycle/addr/tag/stat counter, with tags flowing
//!   through workspace calls via the return-tag summaries.
//! - **index-bounds** — composite index expressions with no bound
//!   evidence in a *dominating* basic block.
//! - **nondet-taint** — worker/thread-identity values reaching returns
//!   or stats fields, through calls.
//! - **alloc-in-hot-loop** — allocation (direct or via a summarized
//!   callee) inside a cycle-/chunk-iteration loop of the hot crates.
//! - **swallowed-error** — a workspace `Result` discarded without the
//!   error reaching any sink.
//! - **unbounded-growth-in-stream** — streaming struct fields grown in
//!   loops and never drained.
//! - **guard-across-blocking-call** — a guard live across a call whose
//!   summary blocks.
//!
//! Findings are produced unsuppressed; the caller filters them through
//! each file's waivers exactly like the lexical passes. `run` also
//! reports which waiver directive lines did real work here (panic-site
//! waivers that stopped reachability propagation), so the stale-waiver
//! report can tell live suppressions from rotten ones.

use crate::ast::{ArmHead, CallSite};
use crate::dataflow::{self, FnFlow};
use crate::lexer::{TokKind, Token};
use crate::lints::{
    is_ident, is_punct, matching, push, FileKind, FileSpec, Finding, Suppressions,
    ALLOC_IN_HOT_LOOP, DISCARDED_RESULT, EXHAUSTIVE_DISPATCH, GUARD_ACROSS_BLOCKING_CALL,
    INDEX_BOUNDS, LOCK_DISCIPLINE, NONDET_TAINT, OVERFLOW_PROVENANCE, PANIC_IN_LIBRARY,
    PANIC_REACHABILITY, STAT_CONSERVATION, SWALLOWED_ERROR, UNBOUNDED_GROWTH_IN_STREAM,
};
use crate::summaries::{self, FnSummary};
use crate::symbols::{FileInput, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose cycle/chunk loops are allocation-free by contract.
const HOT_CRATES: [&str; 4] = ["cache", "cpu", "sim", "analysis"];

/// Any identifier token (the two-argument [`is_ident`] matches exact
/// text; the allocation scans only care about token kind).
fn any_ident(t: &Token) -> bool {
    t.kind == TokKind::Ident
}

/// Crates whose public APIs must be transitively panic-free.
const REACHABILITY_ROOTS: [&str; 3] = ["cache", "cpu", "sim"];

/// Integer/float types a stats counter may carry.
const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Compound/plain assignment operators, as single lexer tokens.
const ASSIGN_OPS: [&str; 11] = [
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Per-file context the passes need alongside the workspace graph.
pub struct SemanticInput<'a> {
    /// The analyzed file (tokens, mask, AST, spec fields).
    pub file: FileInput<'a>,
    /// Source split into lines, for snippets.
    pub lines: Vec<&'a str>,
    /// Active waivers of this file (for panic-site non-propagation).
    pub sups: &'a Suppressions,
}

/// Runs all semantic passes; findings are unsuppressed and unsorted.
/// Waiver directive lines that did suppression work inside the passes
/// themselves (panic-site waivers stopping reachability propagation)
/// are recorded per file path into `used`.
pub fn run(
    ws: &Workspace<'_>,
    inputs: &[SemanticInput<'_>],
    used: &mut BTreeMap<String, BTreeSet<u32>>,
) -> Vec<Finding> {
    let mut findings = run_core(ws, inputs, used);
    findings.extend(run_dataflow(ws, inputs));
    findings
}

/// The AST/call-graph passes alone (no dataflow) — the `lint_semantic`
/// perf phase.
pub fn run_core(
    ws: &Workspace<'_>,
    inputs: &[SemanticInput<'_>],
    used: &mut BTreeMap<String, BTreeSet<u32>>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    panic_reachability(ws, inputs, used, &mut findings);
    stat_conservation(ws, inputs, &mut findings);
    exhaustive_dispatch(ws, inputs, &mut findings);
    discarded_result(ws, inputs, &mut findings);
    findings
}

/// The dataflow + interprocedural passes alone — the `lint_dataflow`
/// perf phase.
pub fn run_dataflow(ws: &Workspace<'_>, inputs: &[SemanticInput<'_>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    dataflow_passes(ws, inputs, &mut findings);
    findings
}

fn spec_of<'a>(input: &'a SemanticInput<'_>) -> FileSpec<'a> {
    FileSpec {
        path: input.file.path,
        crate_dir: input.file.crate_dir,
        kind: input.file.kind,
        crate_root: input.file.path.ends_with("src/lib.rs"),
    }
}

/// The directive line of a waiver stopping propagation at a panic site
/// on `line`: `allow(panic-reachability)` or `allow(panic-in-library)`
/// on the same line or the line above.
fn panic_site_waiver_line(sups: &Suppressions, line: u32) -> Option<u32> {
    let hit = |l: u32| {
        sups.get(&l).is_some_and(|names| {
            names
                .iter()
                .any(|n| n == PANIC_REACHABILITY || n == PANIC_IN_LIBRARY)
        })
    };
    if hit(line) {
        Some(line)
    } else if line > 1 && hit(line - 1) {
        Some(line - 1)
    } else {
        None
    }
}

fn panic_reachability(
    ws: &Workspace<'_>,
    inputs: &[SemanticInput<'_>],
    used: &mut BTreeMap<String, BTreeSet<u32>>,
    findings: &mut Vec<Finding>,
) {
    // First unwaived direct panic per function; every waiver that
    // shields a site is marked used along the way.
    let mut direct: Vec<Option<(String, u32)>> = Vec::with_capacity(ws.fns.len());
    for node in &ws.fns {
        if node.in_test {
            direct.push(None);
            continue;
        }
        let input = &inputs[node.file];
        let mut site = None;
        for p in node.def.body.iter().flat_map(|b| b.panics.iter()) {
            match panic_site_waiver_line(input.sups, p.line) {
                Some(dl) => {
                    used.entry(input.file.path.to_owned())
                        .or_default()
                        .insert(dl);
                }
                None => {
                    if site.is_none() {
                        site = Some(p);
                    }
                }
            }
        }
        direct.push(site.map(|p| (p.what.clone(), p.line)));
    }

    for (root, node) in ws.fns.iter().enumerate() {
        let input = &inputs[node.file];
        let rootable = node.def.is_pub
            && !node.in_test
            && input.file.kind == FileKind::Lib
            && REACHABILITY_ROOTS.contains(&input.file.crate_dir);
        if !rootable {
            continue;
        }
        // BFS over the call graph; the root's own panic sites are the
        // lexical pass's concern, so only deeper nodes report here.
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: Vec<usize> = vec![root];
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        seen.insert(root);
        let mut hit: Option<usize> = None;
        let mut qi = 0;
        while qi < queue.len() && hit.is_none() {
            let cur = queue[qi];
            qi += 1;
            for edge in &ws.fns[cur].calls {
                for &t in &edge.targets {
                    if !seen.insert(t) {
                        continue;
                    }
                    parent.insert(t, cur);
                    if direct[t].is_some() {
                        hit = Some(t);
                        break;
                    }
                    queue.push(t);
                }
                if hit.is_some() {
                    break;
                }
            }
        }
        let Some(sink) = hit else { continue };
        let Some((what, line)) = direct[sink].clone() else {
            continue;
        };
        // Reconstruct root → … → sink for the message.
        let mut chain = vec![sink];
        let mut cur = sink;
        while let Some(&p) = parent.get(&cur) {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        let names: Vec<String> = chain.iter().map(|&id| ws.fns[id].display_name()).collect();
        let sink_file = &inputs[ws.fns[sink].file].file;
        push(
            findings,
            &spec_of(input),
            &input.lines,
            PANIC_REACHABILITY,
            node.def.line,
            node.def.col,
            format!(
                "public `{}` can transitively reach `{}` at {}:{} (call chain: {}); \
                 return a typed error, or waive panic-reachability at the panic \
                 site with the invariant that makes it unreachable",
                node.def.name,
                what,
                sink_file.path,
                line,
                names.join(" → "),
            ),
        );
    }
}

fn stat_conservation(
    ws: &Workspace<'_>,
    inputs: &[SemanticInput<'_>],
    findings: &mut Vec<Finding>,
) {
    for &(fi, s) in &ws.structs {
        if !s.name.ends_with("Stats") {
            continue;
        }
        if inputs[fi].file.kind != FileKind::Lib {
            continue;
        }
        let fields: Vec<&crate::ast::FieldDef> = s
            .fields
            .iter()
            .filter(|f| f.ty.len() == 1 && NUMERIC_TYPES.contains(&f.ty[0].as_str()))
            .collect();
        if fields.is_empty() {
            continue;
        }
        let names: BTreeSet<&str> = fields.iter().map(|f| f.name.as_str()).collect();
        let mut written: BTreeSet<String> = BTreeSet::new();
        let mut read: BTreeSet<String> = BTreeSet::new();
        for input in inputs {
            field_accesses(
                input.file.toks,
                input.file.in_test,
                &s.name,
                &names,
                &mut written,
                &mut read,
            );
        }
        let input = &inputs[fi];
        for f in fields {
            let missing_write = !written.contains(&f.name);
            let missing_read = !read.contains(&f.name);
            if !(missing_write || missing_read) {
                continue;
            }
            let problem = match (missing_write, missing_read) {
                (true, true) => "is never mutated and never read",
                (true, false) => "is never mutated — it can only ever report zero",
                (false, true) => "is written but never read or reported",
                (false, false) => continue,
            };
            push(
                findings,
                &spec_of(input),
                &input.lines,
                STAT_CONSERVATION,
                f.line,
                f.col,
                format!(
                    "stat counter `{}.{}` {problem}; every `*Stats` field must \
                     flow from an increment to a report (or carry a waiver)",
                    s.name, f.name,
                ),
            );
        }
    }
}

/// Scans one token stream for writes/reads of the given stat fields:
/// `.field <assign-op>` is a write (non-test only), `.field` otherwise a
/// read (tests count — assertions are a legitimate consumer), and field
/// inits inside `StructName { … }` literals are writes.
fn field_accesses(
    toks: &[Token],
    in_test: &[bool],
    struct_name: &str,
    fields: &BTreeSet<&str>,
    written: &mut BTreeSet<String>,
    read: &mut BTreeSet<String>,
) {
    for i in 0..toks.len() {
        // `.field …`
        if is_punct(&toks[i], ".")
            && toks
                .get(i + 1)
                .is_some_and(|t| fields.contains(t.text.as_str()))
        {
            let name = toks[i + 1].text.clone();
            let assigned = toks
                .get(i + 2)
                .is_some_and(|t| ASSIGN_OPS.contains(&t.text.as_str()));
            if assigned {
                if !in_test.get(i + 1).copied().unwrap_or(false) {
                    written.insert(name);
                }
            } else {
                read.insert(name);
            }
        }
        // `StructName { field: …, shorthand, .. }` literals.
        if is_ident(&toks[i], struct_name)
            && toks.get(i + 1).is_some_and(|t| is_punct(t, "{"))
            && !(i > 0 && (is_ident(&toks[i - 1], "struct") || is_ident(&toks[i - 1], "enum")))
        {
            let Some(close) = matching(toks, i + 1, "{", "}") else {
                continue;
            };
            let mut k = i + 2;
            while k < close {
                let t = &toks[k];
                if is_punct(t, "{") || is_punct(t, "(") || is_punct(t, "[") {
                    let (open_text, close_text) = if is_punct(t, "{") {
                        ("{", "}")
                    } else if is_punct(t, "(") {
                        ("(", ")")
                    } else {
                        ("[", "]")
                    };
                    k = matching(toks, k, open_text, close_text).map_or(close, |c| c + 1);
                    continue;
                }
                if fields.contains(t.text.as_str())
                    && !in_test.get(k).copied().unwrap_or(false)
                    && toks
                        .get(k + 1)
                        .is_some_and(|n| is_punct(n, ":") || is_punct(n, ",") || is_punct(n, "}"))
                {
                    written.insert(t.text.clone());
                }
                k += 1;
            }
        }
    }
}

fn exhaustive_dispatch(
    ws: &Workspace<'_>,
    inputs: &[SemanticInput<'_>],
    findings: &mut Vec<Finding>,
) {
    for node in &ws.fns {
        if node.in_test {
            continue;
        }
        let input = &inputs[node.file];
        for m in node.def.body.iter().flat_map(|b| b.matches.iter()) {
            // Identify the matched enum from a qualified variant arm.
            let mut enum_name: Option<&str> = None;
            let mut covered: BTreeSet<&str> = BTreeSet::new();
            for arm in &m.arms {
                if let ArmHead::Path(segs) = &arm.head {
                    if segs.len() < 2 {
                        continue;
                    }
                    let cand = segs[segs.len() - 2].as_str();
                    if !ws.closed_enums.contains_key(cand) {
                        continue;
                    }
                    match enum_name {
                        None => enum_name = Some(cand),
                        Some(existing) if existing != cand => continue,
                        Some(_) => {}
                    }
                    covered.insert(segs[segs.len() - 1].as_str());
                }
            }
            let Some(name) = enum_name else { continue };
            let Some(wild) = m
                .arms
                .iter()
                .find(|a| a.head == ArmHead::Wildcard && !a.guarded)
            else {
                continue;
            };
            let Some(closed) = ws.closed_enums.get(name) else {
                continue;
            };
            let missing: Vec<&str> = closed
                .variants
                .iter()
                .map(String::as_str)
                .filter(|v| !covered.contains(*v))
                .collect();
            let hidden = if missing.is_empty() {
                "no remaining variants — the arm is dead".to_owned()
            } else {
                missing.join(", ")
            };
            push(
                findings,
                &spec_of(input),
                &input.lines,
                EXHAUSTIVE_DISPATCH,
                wild.line,
                wild.col,
                format!(
                    "`_` arm on closed enum `{name}` hides variants ({hidden}); \
                     enumerate them so a new variant fails to compile instead of \
                     silently falling through",
                ),
            );
        }
    }
}

fn discarded_result(ws: &Workspace<'_>, inputs: &[SemanticInput<'_>], findings: &mut Vec<Finding>) {
    for node in &ws.fns {
        if node.in_test {
            continue;
        }
        let input = &inputs[node.file];
        for edge in &node.calls {
            if !edge.bare_statement || edge.targets.is_empty() {
                continue;
            }
            let all_result = edge.targets.iter().all(|&t| ws.fns[t].def.returns_result);
            if !all_result {
                continue;
            }
            let site: &CallSite = edge.site;
            push(
                findings,
                &spec_of(input),
                &input.lines,
                DISCARDED_RESULT,
                site.line,
                site.col,
                format!(
                    "`{}` returns a Result that this statement discards; \
                     propagate it with `?`, handle the error, or waive with the \
                     reason the failure is impossible here",
                    edge.name,
                ),
            );
        }
    }
}

/// Is this function eligible for dataflow analysis? Tests are masked,
/// and example programs are demo code outside the lint's
/// determinism/robustness contract.
fn analyzable(ws: &Workspace<'_>, inputs: &[SemanticInput<'_>], i: usize) -> bool {
    let node = &ws.fns[i];
    let input = &inputs[node.file];
    !node.in_test && matches!(input.file.kind, FileKind::Lib | FileKind::Bin)
}

/// The v3/v4 dataflow lints, driven by per-function [`FnFlow`]s and the
/// interprocedural [`FnSummary`] table.
fn dataflow_passes(ws: &Workspace<'_>, inputs: &[SemanticInput<'_>], findings: &mut Vec<Finding>) {
    // Phase A: a cheap environment-only pass per function, enough for
    // the summary computation (locks, guards, assignment tags).
    let flows0: Vec<Option<FnFlow>> = (0..ws.fns.len())
        .map(|i| {
            if !analyzable(ws, inputs, i) {
                return None;
            }
            let node = &ws.fns[i];
            let input = &inputs[node.file];
            dataflow::analyze_with(
                input.file.toks,
                input.file.in_test,
                node.def,
                &BTreeMap::new(),
                false,
            )
        })
        .collect();

    // Bottom-up interprocedural summaries over call-graph SCCs.
    let files: Vec<FileInput<'_>> = inputs.iter().map(|i| i.file).collect();
    let sums = summaries::summarize(ws, &files, &flows0);

    // Phase B: the full flow-sensitive pass, seeding call-return tags
    // from the summaries so provenance crosses function boundaries.
    let flows: Vec<Option<FnFlow>> = (0..ws.fns.len())
        .map(|i| {
            if !analyzable(ws, inputs, i) {
                return None;
            }
            let node = &ws.fns[i];
            let input = &inputs[node.file];
            let call_tags = summaries::call_return_tags(ws, &sums, i);
            dataflow::analyze_with(
                input.file.toks,
                input.file.in_test,
                node.def,
                &call_tags,
                true,
            )
        })
        .collect();

    for (i, node) in ws.fns.iter().enumerate() {
        let Some(flow) = &flows[i] else { continue };
        let input = &inputs[node.file];
        let spec = spec_of(input);

        for g in &flow.guards {
            for edge in &node.calls {
                let s = edge.site;
                if s.paren_open <= g.start || s.paren_open >= g.end {
                    continue;
                }
                // Deadlock shape: guard live across a call into a
                // workspace function whose summary says it locks.
                if let Some(&t) = edge.targets.iter().find(|&&t| sums[t].locks) {
                    let how = if sums[t].direct_lock {
                        "itself acquires a lock"
                    } else {
                        "acquires a lock further down its call graph"
                    };
                    push(
                        findings,
                        &spec,
                        &input.lines,
                        LOCK_DISCIPLINE,
                        s.line,
                        s.col,
                        format!(
                            "guard `{}` (locking `{}`, bound at line {}) is still live \
                             across this call to `{}`, which {how} — the deadlock shape; \
                             drop or scope the guard before the call",
                            g.name,
                            g.mutex,
                            g.line,
                            ws.fns[t].display_name(),
                        ),
                    );
                }
                // Latency shape: guard held across a call whose summary
                // says it blocks (channel recv, condvar wait, sleep, …).
                if let Some(&t) = edge.targets.iter().find(|&&t| sums[t].blocks) {
                    let what = sums[t]
                        .block_what
                        .clone()
                        .unwrap_or_else(|| "a blocking call".to_string());
                    let how = if sums[t].direct_block {
                        format!("blocks on `{what}`")
                    } else {
                        format!("reaches `{what}` further down its call graph")
                    };
                    push(
                        findings,
                        &spec,
                        &input.lines,
                        GUARD_ACROSS_BLOCKING_CALL,
                        s.line,
                        s.col,
                        format!(
                            "guard `{}` (locking `{}`, bound at line {}) is held across \
                             this call to `{}`, which {how} — every other thread \
                             touching `{}` stalls for the full wait; drop the guard \
                             before blocking",
                            g.name,
                            g.mutex,
                            g.line,
                            ws.fns[t].display_name(),
                            g.mutex,
                        ),
                    );
                }
            }
            // Double lock of one receiver on a single path.
            for l in &flow.locks {
                if l.paren_open > g.start && l.paren_open < g.end && l.recv == g.mutex {
                    push(
                        findings,
                        &spec,
                        &input.lines,
                        LOCK_DISCIPLINE,
                        l.line,
                        l.col,
                        format!(
                            "`{}` is locked again while guard `{}` from line {} still \
                             holds it — self-deadlock on this path; drop the guard \
                             before re-locking",
                            l.recv, g.name, g.line,
                        ),
                    );
                }
            }
        }

        for v in &flow.overflow {
            push(
                findings,
                &spec,
                &input.lines,
                OVERFLOW_PROVENANCE,
                v.line,
                v.col,
                v.what.clone(),
            );
        }
        for v in &flow.index {
            push(
                findings,
                &spec,
                &input.lines,
                INDEX_BOUNDS,
                v.line,
                v.col,
                v.what.clone(),
            );
        }
        for v in &flow.taint {
            push(
                findings,
                &spec,
                &input.lines,
                NONDET_TAINT,
                v.line,
                v.col,
                v.what.clone(),
            );
        }
    }

    alloc_in_hot_loop(ws, inputs, &flows, &sums, findings);
    swallowed_error(ws, inputs, findings);
    unbounded_growth_in_stream(ws, inputs, &flows, findings);
}

/// Idents in `toks[..]` that have *capacity evidence* somewhere in the
/// file: `x: Vec::with_capacity(..)`, `let x = Vec::with_capacity(..)`
/// (or `String::`/`Box::` forms), or an `x.reserve(..)` call. A push
/// into such a vector is amortised-free by contract, so it is exempt
/// from the allocation lints. Under-matches: evidence in *another* file
/// (e.g. a constructor in a sibling module) is invisible, which errs
/// toward reporting — callers pair this with a waiver escape hatch.
fn capacity_evidenced(toks: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        if !any_ident(&toks[i]) {
            continue;
        }
        // `x . reserve (`
        if toks[i].text == "reserve"
            && i >= 2
            && is_punct(&toks[i - 1], ".")
            && any_ident(&toks[i - 2])
        {
            out.insert(toks[i - 2].text.clone());
            continue;
        }
        // `x :` or `x =` followed by `Type :: with_capacity`
        if toks[i].text == "with_capacity"
            && i >= 4
            && is_punct(&toks[i - 1], "::")
            && any_ident(&toks[i - 2])
            && (is_punct(&toks[i - 3], ":") || is_punct(&toks[i - 3], "="))
            && any_ident(&toks[i - 4])
        {
            out.insert(toks[i - 4].text.clone());
        }
    }
    out
}

/// Does any ident in the loop header name a cycle- or chunk-indexed
/// iteration? Exact snake_case components only, so `recycled` does not
/// make a loop hot.
fn is_hot_header(header_idents: &[String]) -> bool {
    header_idents.iter().any(|id| {
        id.split('_')
            .any(|c| matches!(c, "cycle" | "cycles" | "chunk" | "chunks"))
    })
}

/// **alloc-in-hot-loop** — allocation inside a cycle-indexed or
/// chunk-iteration loop in the hot crates (`tcp-cache`, `tcp-cpu`,
/// `tcp-sim`, `tcp-analysis`). Catches direct constructor/`.clone()`
/// shapes, growth of vectors with no capacity evidence, and calls whose
/// interprocedural summary says an allocation is reached — however many
/// calls deep.
fn alloc_in_hot_loop(
    ws: &Workspace<'_>,
    inputs: &[SemanticInput<'_>],
    flows: &[Option<FnFlow>],
    sums: &[FnSummary],
    findings: &mut Vec<Finding>,
) {
    for (i, node) in ws.fns.iter().enumerate() {
        let Some(flow) = &flows[i] else { continue };
        let Some(cfg) = &flow.cfg else { continue };
        let input = &inputs[node.file];
        let crate_name = input
            .file
            .crate_dir
            .rsplit('/')
            .next()
            .unwrap_or(input.file.crate_dir);
        if !HOT_CRATES.contains(&crate_name) {
            continue;
        }
        let spec = spec_of(input);
        let toks = input.file.toks;
        let reserved = capacity_evidenced(toks);
        // `(`-positions of calls that resolve to workspace functions
        // with *no* allocation in their summary — a `.push(..)` landing
        // on, say, `BoundedRing::push` is a fixed-capacity write, not a
        // `Vec` growth, and the callee-summary pass below covers any
        // resolved callee that does allocate.
        let nonalloc_calls: BTreeSet<usize> = node
            .calls
            .iter()
            .filter(|e| !e.targets.is_empty() && e.targets.iter().all(|&t| sums[t].alloc.is_none()))
            .map(|e| e.site.paren_open)
            .collect();

        for lp in &cfg.loops {
            if !is_hot_header(&lp.header_idents) {
                continue;
            }
            // Direct allocation shapes between the loop braces.
            for t in lp.body_open + 1..lp.body_close {
                if input.file.in_test[t] || !any_ident(&toks[t]) {
                    continue;
                }
                let after_dot = t > 0 && is_punct(&toks[t - 1], ".");
                let called = toks.get(t + 1).is_some_and(|n| is_punct(n, "("));
                let bang = toks.get(t + 1).is_some_and(|n| is_punct(n, "!"));
                let what: Option<String> =
                    if bang && matches!(toks[t].text.as_str(), "vec" | "format") {
                        Some(format!("`{}!` builds a fresh allocation", toks[t].text))
                    } else if after_dot
                        && called
                        && matches!(
                            toks[t].text.as_str(),
                            "to_vec" | "to_owned" | "to_string" | "clone"
                        )
                    {
                        Some(format!(
                            "`.{}()` copies into a fresh allocation",
                            toks[t].text
                        ))
                    } else if !after_dot
                        && called
                        && matches!(toks[t].text.as_str(), "new" | "with_capacity" | "from")
                        && t >= 2
                        && is_punct(&toks[t - 1], "::")
                        && any_ident(&toks[t - 2])
                        && matches!(
                            toks[t - 2].text.as_str(),
                            "Vec" | "Box" | "String" | "VecDeque"
                        )
                    {
                        Some(format!(
                            "`{}::{}` allocates",
                            toks[t - 2].text,
                            toks[t].text
                        ))
                    } else if after_dot
                        && called
                        && matches!(toks[t].text.as_str(), "push" | "extend")
                        && t >= 2
                        && any_ident(&toks[t - 2])
                        && !reserved.contains(&toks[t - 2].text)
                        && !nonalloc_calls.contains(&(t + 1))
                    {
                        Some(format!(
                            "`{}.{}(..)` may reallocate — no `with_capacity`/`reserve` \
                         evidence for `{}` in this file",
                            toks[t - 2].text,
                            toks[t].text,
                            toks[t - 2].text
                        ))
                    } else {
                        None
                    };
                if let Some(what) = what {
                    push(
                        findings,
                        &spec,
                        &input.lines,
                        ALLOC_IN_HOT_LOOP,
                        toks[t].line,
                        toks[t].col,
                        format!(
                            "{what} inside this {}-loop over `{}` (line {}) — hot-path \
                             loops in `{crate_name}` must reuse buffers \
                             (TraceChunk/BoundedRing contract); hoist the allocation \
                             out of the loop or pre-reserve",
                            lp.keyword,
                            lp.header_idents.join(" "),
                            lp.line,
                        ),
                    );
                }
            }
            // Calls whose summary reaches an allocation.
            for edge in &node.calls {
                let s = edge.site;
                if s.paren_open <= lp.body_open || s.paren_open >= lp.body_close {
                    continue;
                }
                let Some((t, a)) = edge
                    .targets
                    .iter()
                    .filter(|&&t| !ws.fns[t].in_test)
                    .find_map(|&t| sums[t].alloc.as_ref().map(|a| (t, a)))
                else {
                    continue;
                };
                let mut chain = vec![ws.fns[t].display_name().to_string()];
                chain.extend(a.via.iter().cloned());
                push(
                    findings,
                    &spec,
                    &input.lines,
                    ALLOC_IN_HOT_LOOP,
                    s.line,
                    s.col,
                    format!(
                        "this call allocates via {} — {} at line {} of its defining \
                         file — inside this {}-loop (line {}); hot-path loops in \
                         `{crate_name}` must reuse buffers; hoist the allocation or \
                         restructure the callee",
                        chain
                            .iter()
                            .map(|c| format!("`{c}`"))
                            .collect::<Vec<_>>()
                            .join(" → "),
                        a.what,
                        a.line,
                        lp.keyword,
                        lp.line,
                    ),
                );
            }
        }
    }
}

/// **swallowed-error** — a `Result` from a workspace function discarded
/// without the error value reaching any sink: `let _ = f();`,
/// a bare `f().ok();` statement, or a `match` on the call with an empty
/// `Err` arm.
fn swallowed_error(ws: &Workspace<'_>, inputs: &[SemanticInput<'_>], findings: &mut Vec<Finding>) {
    for (i, node) in ws.fns.iter().enumerate() {
        if !analyzable(ws, inputs, i) {
            continue;
        }
        let input = &inputs[node.file];
        let spec = spec_of(input);
        let toks = input.file.toks;
        for edge in &node.calls {
            if edge.targets.is_empty()
                || !edge.targets.iter().all(|&t| ws.fns[t].def.returns_result)
            {
                continue;
            }
            let s = edge.site;
            if input
                .file
                .in_test
                .get(s.paren_open)
                .copied()
                .unwrap_or(false)
            {
                continue;
            }
            // `let _ = f(..);` — binding straight to the wildcard.
            let discarded_to_wild = s.expr_start >= 3
                && any_ident(&toks[s.expr_start - 3])
                && toks[s.expr_start - 3].text == "let"
                && toks[s.expr_start - 2].text == "_"
                && is_punct(&toks[s.expr_start - 1], "=")
                && toks
                    .get(s.paren_close + 1)
                    .is_some_and(|t| is_punct(t, ";"));
            // `f(..).ok();` as a whole statement — converts the error
            // to None and drops it on the floor.
            let okd_away = toks
                .get(s.paren_close + 1)
                .is_some_and(|t| is_punct(t, "."))
                && toks
                    .get(s.paren_close + 2)
                    .is_some_and(|t| is_ident(t, "ok"))
                && toks
                    .get(s.paren_close + 3)
                    .is_some_and(|t| is_punct(t, "("))
                && toks
                    .get(s.paren_close + 4)
                    .is_some_and(|t| is_punct(t, ")"))
                && toks
                    .get(s.paren_close + 5)
                    .is_some_and(|t| is_punct(t, ";"))
                && s.expr_start >= 1
                && (is_punct(&toks[s.expr_start - 1], ";")
                    || is_punct(&toks[s.expr_start - 1], "{")
                    || is_punct(&toks[s.expr_start - 1], "}"));
            if discarded_to_wild || okd_away {
                let how = if discarded_to_wild {
                    "is bound to `_`"
                } else {
                    "is `.ok()`d away as a statement"
                };
                push(
                    findings,
                    &spec,
                    &input.lines,
                    SWALLOWED_ERROR,
                    s.line,
                    s.col,
                    format!(
                        "the Result of `{}` {how} — the error never reaches a return, \
                         a stat, or the quarantine log; propagate it with `?`, record \
                         it, or waive with the reason the failure is benign",
                        edge.name,
                    ),
                );
            }
        }
        // `match f(..) { .. Err(_) => {} .. }` — an empty Err arm on a
        // scrutinee containing a workspace Result call.
        empty_err_arms(ws, node, input, &spec, findings);
    }
}

/// Scan a function's `match` statements for empty `Err` arms whose
/// scrutinee contains a call to a workspace function returning Result.
/// Token-level: the AST's `MatchSite` records arm shapes but not token
/// spans, and the empty-body test needs exact tokens.
fn empty_err_arms(
    ws: &Workspace<'_>,
    node: &crate::symbols::FnNode<'_>,
    input: &SemanticInput<'_>,
    spec: &FileSpec<'_>,
    findings: &mut Vec<Finding>,
) {
    let toks = input.file.toks;
    let Some(body) = &node.def.body else {
        return;
    };
    let mut t = body.open + 1;
    while t < body.close {
        if input.file.in_test.get(t).copied().unwrap_or(false)
            || !(is_ident(&toks[t], "match"))
            || (t > 0 && is_punct(&toks[t - 1], "."))
        {
            t += 1;
            continue;
        }
        // Locate the match body `{`: first depth-0 brace after the
        // scrutinee, skipping paren/bracket groups; bail at `;`.
        let kw = t;
        let mut u = t + 1;
        let mut body_open = None;
        while u < body.close {
            if is_punct(&toks[u], "(") || is_punct(&toks[u], "[") {
                let (o, c) = if toks[u].text == "(" {
                    ("(", ")")
                } else {
                    ("[", "]")
                };
                match matching(toks, u, o, c) {
                    Some(close) => u = close + 1,
                    None => break,
                }
                continue;
            }
            if is_punct(&toks[u], ";") {
                break;
            }
            if is_punct(&toks[u], "{") {
                body_open = Some(u);
                break;
            }
            u += 1;
        }
        let Some(mo) = body_open else {
            t += 1;
            continue;
        };
        let Some(mc) = matching(toks, mo, "{", "}") else {
            t += 1;
            continue;
        };
        let scrutinee_has_result = node.calls.iter().any(|edge| {
            let p = edge.site.paren_open;
            p > kw
                && p < mo
                && !edge.targets.is_empty()
                && edge.targets.iter().all(|&x| ws.fns[x].def.returns_result)
        });
        if !scrutinee_has_result {
            t = mo + 1;
            continue;
        }
        // Find `Err(..)? => {}` / `Err(..)? => ()` arms in the body.
        let mut a = mo + 1;
        while a < mc {
            if !input.file.in_test.get(a).copied().unwrap_or(false)
                && any_ident(&toks[a])
                && toks[a].text == "Err"
            {
                let mut after = a + 1;
                if toks.get(after).is_some_and(|x| is_punct(x, "(")) {
                    if let Some(close) = matching(toks, after, "(", ")") {
                        after = close + 1;
                    }
                }
                let is_arrow = toks.get(after).is_some_and(|x| is_punct(x, "=>"));
                if is_arrow {
                    let b = after + 1;
                    let empty_braces = toks.get(b).is_some_and(|x| is_punct(x, "{"))
                        && toks.get(b + 1).is_some_and(|x| is_punct(x, "}"));
                    let unit_body = toks.get(b).is_some_and(|x| is_punct(x, "("))
                        && toks.get(b + 1).is_some_and(|x| is_punct(x, ")"));
                    if empty_braces || unit_body {
                        push(
                            findings,
                            spec,
                            &input.lines,
                            SWALLOWED_ERROR,
                            toks[a].line,
                            toks[a].col,
                            "this `Err` arm silently drops the error — it never \
                             reaches a return, a stat, or the quarantine log; record \
                             or propagate it, or waive with the reason it is benign"
                                .to_string(),
                        );
                    }
                }
            }
            a += 1;
        }
        t = mo + 1;
    }
}

/// **unbounded-growth-in-stream** — a field of a struct defined in a
/// `*stream.rs` file is `.push(..)`/`.extend(..)`-ed inside a loop, and
/// no path in the file ever drains it (`pop`/`clear`/`truncate`/
/// `drain`/`remove`) nor carries capacity evidence. That is the
/// stays-resident-forever shape the bounded-memory streaming contract
/// (BoundedRing) exists to prevent.
fn unbounded_growth_in_stream(
    ws: &Workspace<'_>,
    inputs: &[SemanticInput<'_>],
    flows: &[Option<FnFlow>],
    findings: &mut Vec<Finding>,
) {
    // Fields of structs defined in each stream file.
    let mut stream_fields: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for &(file, sd) in &ws.structs {
        if !inputs[file].file.path.ends_with("stream.rs") {
            continue;
        }
        stream_fields
            .entry(file)
            .or_default()
            .extend(sd.fields.iter().map(|f| f.name.clone()));
    }
    if stream_fields.is_empty() {
        return;
    }

    // Relief evidence per file: any `.field.pop()` style drain call, or
    // capacity evidence, anywhere in the file (any path suffices — the
    // lint under-matches by design).
    let mut relieved: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (&file, fields) in &stream_fields {
        let toks = inputs[file].file.toks;
        let mut set = capacity_evidenced(toks);
        for t in 2..toks.len() {
            if any_ident(&toks[t])
                && matches!(
                    toks[t].text.as_str(),
                    "pop"
                        | "pop_front"
                        | "pop_back"
                        | "clear"
                        | "truncate"
                        | "drain"
                        | "remove"
                        | "swap_remove"
                )
                && is_punct(&toks[t - 1], ".")
                && any_ident(&toks[t - 2])
                && fields.contains(&toks[t - 2].text)
            {
                set.insert(toks[t - 2].text.clone());
            }
        }
        relieved.insert(file, set);
    }

    for (i, node) in ws.fns.iter().enumerate() {
        let Some(flow) = &flows[i] else { continue };
        let Some(cfg) = &flow.cfg else { continue };
        let Some(fields) = stream_fields.get(&node.file) else {
            continue;
        };
        let relief = &relieved[&node.file];
        let input = &inputs[node.file];
        let spec = spec_of(input);
        let toks = input.file.toks;

        for lp in &cfg.loops {
            for t in lp.body_open + 1..lp.body_close {
                if input.file.in_test.get(t).copied().unwrap_or(false) {
                    continue;
                }
                if !(any_ident(&toks[t])
                    && matches!(toks[t].text.as_str(), "push" | "extend" | "push_back")
                    && toks.get(t + 1).is_some_and(|n| is_punct(n, "("))
                    && t >= 2
                    && is_punct(&toks[t - 1], ".")
                    && any_ident(&toks[t - 2]))
                {
                    continue;
                }
                let field = &toks[t - 2].text;
                if !fields.contains(field) || relief.contains(field) {
                    continue;
                }
                push(
                    findings,
                    &spec,
                    &input.lines,
                    UNBOUNDED_GROWTH_IN_STREAM,
                    toks[t].line,
                    toks[t].col,
                    format!(
                        "streaming-struct field `{field}` grows inside this loop \
                         (line {}) and nothing in this file ever pops, clears, \
                         truncates, or drains it — memory stays resident for the \
                         whole replay; bound it (BoundedRing) or add a drain path",
                        lp.line,
                    ),
                );
            }
        }
    }
}
