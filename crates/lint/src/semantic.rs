//! The semantic lint passes: workspace-level invariants that need the
//! AST, symbol table, and call graph rather than a single file's token
//! stream.
//!
//! Four passes live here:
//!
//! - **panic-reachability** — no public API of a typed-error crate
//!   (tcp-cache / tcp-cpu / tcp-sim) may *transitively* reach an
//!   unwaived `panic!`/`unwrap`/`expect` through the in-workspace call
//!   graph. The lexical `panic-in-library` pass catches direct sites;
//!   this one follows calls across crates.
//! - **stat-conservation** — every numeric field of a `*Stats` struct
//!   must be both mutated somewhere and read/reported somewhere. The
//!   paper's coverage/accuracy numbers are ratios of such counters; a
//!   write-only or dead counter is a silent accounting bug.
//! - **exhaustive-dispatch** — `match` over a closed workspace enum
//!   (`PrefetcherSpec`, `SimError`, `Replacement`, …) must not hide
//!   variants behind `_`, so adding a prefetcher cannot silently fall
//!   through an existing dispatch site.
//! - **discarded-result** — a `Result` returned by a workspace function
//!   must not be dropped as a bare statement.
//!
//! The v3 dataflow passes also live here, consuming the per-function
//! abstract environments computed by [`crate::dataflow`]:
//!
//! - **lock-discipline** — a `let`-bound `Mutex` guard live across a
//!   call into a workspace function that itself (transitively) locks is
//!   the deadlock shape; a second `.lock()` of the same receiver inside
//!   a live guard range is a self-deadlock on that path.
//! - **overflow-provenance** — unchecked `+`/`*`/`<<` on values whose
//!   provenance tags say cycle/addr/tag/stat counter.
//! - **index-bounds** — composite index expressions with no dominating
//!   bound evidence.
//! - **nondet-taint** — worker/thread-identity values reaching returns
//!   or stats fields.
//!
//! Findings are produced unsuppressed; the caller filters them through
//! each file's waivers exactly like the lexical passes. `run` also
//! reports which waiver directive lines did real work here (panic-site
//! waivers that stopped reachability propagation), so the stale-waiver
//! report can tell live suppressions from rotten ones.

use crate::ast::{ArmHead, CallSite};
use crate::dataflow::{self, FnFlow};
use crate::lexer::Token;
use crate::lints::{
    is_ident, is_punct, matching, push, FileKind, FileSpec, Finding, Suppressions,
    DISCARDED_RESULT, EXHAUSTIVE_DISPATCH, INDEX_BOUNDS, LOCK_DISCIPLINE, NONDET_TAINT,
    OVERFLOW_PROVENANCE, PANIC_IN_LIBRARY, PANIC_REACHABILITY, STAT_CONSERVATION,
};
use crate::symbols::{FileInput, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose public APIs must be transitively panic-free.
const REACHABILITY_ROOTS: [&str; 3] = ["cache", "cpu", "sim"];

/// Integer/float types a stats counter may carry.
const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Compound/plain assignment operators, as single lexer tokens.
const ASSIGN_OPS: [&str; 11] = [
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Per-file context the passes need alongside the workspace graph.
pub struct SemanticInput<'a> {
    /// The analyzed file (tokens, mask, AST, spec fields).
    pub file: FileInput<'a>,
    /// Source split into lines, for snippets.
    pub lines: Vec<&'a str>,
    /// Active waivers of this file (for panic-site non-propagation).
    pub sups: &'a Suppressions,
}

/// Runs all semantic passes; findings are unsuppressed and unsorted.
/// Waiver directive lines that did suppression work inside the passes
/// themselves (panic-site waivers stopping reachability propagation)
/// are recorded per file path into `used`.
pub fn run(
    ws: &Workspace<'_>,
    inputs: &[SemanticInput<'_>],
    used: &mut BTreeMap<String, BTreeSet<u32>>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    panic_reachability(ws, inputs, used, &mut findings);
    stat_conservation(ws, inputs, &mut findings);
    exhaustive_dispatch(ws, inputs, &mut findings);
    discarded_result(ws, inputs, &mut findings);
    dataflow_passes(ws, inputs, &mut findings);
    findings
}

fn spec_of<'a>(input: &'a SemanticInput<'_>) -> FileSpec<'a> {
    FileSpec {
        path: input.file.path,
        crate_dir: input.file.crate_dir,
        kind: input.file.kind,
        crate_root: input.file.path.ends_with("src/lib.rs"),
    }
}

/// The directive line of a waiver stopping propagation at a panic site
/// on `line`: `allow(panic-reachability)` or `allow(panic-in-library)`
/// on the same line or the line above.
fn panic_site_waiver_line(sups: &Suppressions, line: u32) -> Option<u32> {
    let hit = |l: u32| {
        sups.get(&l).is_some_and(|names| {
            names
                .iter()
                .any(|n| n == PANIC_REACHABILITY || n == PANIC_IN_LIBRARY)
        })
    };
    if hit(line) {
        Some(line)
    } else if line > 1 && hit(line - 1) {
        Some(line - 1)
    } else {
        None
    }
}

fn panic_reachability(
    ws: &Workspace<'_>,
    inputs: &[SemanticInput<'_>],
    used: &mut BTreeMap<String, BTreeSet<u32>>,
    findings: &mut Vec<Finding>,
) {
    // First unwaived direct panic per function; every waiver that
    // shields a site is marked used along the way.
    let mut direct: Vec<Option<(String, u32)>> = Vec::with_capacity(ws.fns.len());
    for node in &ws.fns {
        if node.in_test {
            direct.push(None);
            continue;
        }
        let input = &inputs[node.file];
        let mut site = None;
        for p in node.def.body.iter().flat_map(|b| b.panics.iter()) {
            match panic_site_waiver_line(input.sups, p.line) {
                Some(dl) => {
                    used.entry(input.file.path.to_owned())
                        .or_default()
                        .insert(dl);
                }
                None => {
                    if site.is_none() {
                        site = Some(p);
                    }
                }
            }
        }
        direct.push(site.map(|p| (p.what.clone(), p.line)));
    }

    for (root, node) in ws.fns.iter().enumerate() {
        let input = &inputs[node.file];
        let rootable = node.def.is_pub
            && !node.in_test
            && input.file.kind == FileKind::Lib
            && REACHABILITY_ROOTS.contains(&input.file.crate_dir);
        if !rootable {
            continue;
        }
        // BFS over the call graph; the root's own panic sites are the
        // lexical pass's concern, so only deeper nodes report here.
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: Vec<usize> = vec![root];
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        seen.insert(root);
        let mut hit: Option<usize> = None;
        let mut qi = 0;
        while qi < queue.len() && hit.is_none() {
            let cur = queue[qi];
            qi += 1;
            for edge in &ws.fns[cur].calls {
                for &t in &edge.targets {
                    if !seen.insert(t) {
                        continue;
                    }
                    parent.insert(t, cur);
                    if direct[t].is_some() {
                        hit = Some(t);
                        break;
                    }
                    queue.push(t);
                }
                if hit.is_some() {
                    break;
                }
            }
        }
        let Some(sink) = hit else { continue };
        let Some((what, line)) = direct[sink].clone() else {
            continue;
        };
        // Reconstruct root → … → sink for the message.
        let mut chain = vec![sink];
        let mut cur = sink;
        while let Some(&p) = parent.get(&cur) {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        let names: Vec<String> = chain.iter().map(|&id| ws.fns[id].display_name()).collect();
        let sink_file = &inputs[ws.fns[sink].file].file;
        push(
            findings,
            &spec_of(input),
            &input.lines,
            PANIC_REACHABILITY,
            node.def.line,
            node.def.col,
            format!(
                "public `{}` can transitively reach `{}` at {}:{} (call chain: {}); \
                 return a typed error, or waive panic-reachability at the panic \
                 site with the invariant that makes it unreachable",
                node.def.name,
                what,
                sink_file.path,
                line,
                names.join(" → "),
            ),
        );
    }
}

fn stat_conservation(
    ws: &Workspace<'_>,
    inputs: &[SemanticInput<'_>],
    findings: &mut Vec<Finding>,
) {
    for &(fi, s) in &ws.structs {
        if !s.name.ends_with("Stats") {
            continue;
        }
        if inputs[fi].file.kind != FileKind::Lib {
            continue;
        }
        let fields: Vec<&crate::ast::FieldDef> = s
            .fields
            .iter()
            .filter(|f| f.ty.len() == 1 && NUMERIC_TYPES.contains(&f.ty[0].as_str()))
            .collect();
        if fields.is_empty() {
            continue;
        }
        let names: BTreeSet<&str> = fields.iter().map(|f| f.name.as_str()).collect();
        let mut written: BTreeSet<String> = BTreeSet::new();
        let mut read: BTreeSet<String> = BTreeSet::new();
        for input in inputs {
            field_accesses(
                input.file.toks,
                input.file.in_test,
                &s.name,
                &names,
                &mut written,
                &mut read,
            );
        }
        let input = &inputs[fi];
        for f in fields {
            let missing_write = !written.contains(&f.name);
            let missing_read = !read.contains(&f.name);
            if !(missing_write || missing_read) {
                continue;
            }
            let problem = match (missing_write, missing_read) {
                (true, true) => "is never mutated and never read",
                (true, false) => "is never mutated — it can only ever report zero",
                (false, true) => "is written but never read or reported",
                (false, false) => continue,
            };
            push(
                findings,
                &spec_of(input),
                &input.lines,
                STAT_CONSERVATION,
                f.line,
                f.col,
                format!(
                    "stat counter `{}.{}` {problem}; every `*Stats` field must \
                     flow from an increment to a report (or carry a waiver)",
                    s.name, f.name,
                ),
            );
        }
    }
}

/// Scans one token stream for writes/reads of the given stat fields:
/// `.field <assign-op>` is a write (non-test only), `.field` otherwise a
/// read (tests count — assertions are a legitimate consumer), and field
/// inits inside `StructName { … }` literals are writes.
fn field_accesses(
    toks: &[Token],
    in_test: &[bool],
    struct_name: &str,
    fields: &BTreeSet<&str>,
    written: &mut BTreeSet<String>,
    read: &mut BTreeSet<String>,
) {
    for i in 0..toks.len() {
        // `.field …`
        if is_punct(&toks[i], ".")
            && toks
                .get(i + 1)
                .is_some_and(|t| fields.contains(t.text.as_str()))
        {
            let name = toks[i + 1].text.clone();
            let assigned = toks
                .get(i + 2)
                .is_some_and(|t| ASSIGN_OPS.contains(&t.text.as_str()));
            if assigned {
                if !in_test.get(i + 1).copied().unwrap_or(false) {
                    written.insert(name);
                }
            } else {
                read.insert(name);
            }
        }
        // `StructName { field: …, shorthand, .. }` literals.
        if is_ident(&toks[i], struct_name)
            && toks.get(i + 1).is_some_and(|t| is_punct(t, "{"))
            && !(i > 0 && (is_ident(&toks[i - 1], "struct") || is_ident(&toks[i - 1], "enum")))
        {
            let Some(close) = matching(toks, i + 1, "{", "}") else {
                continue;
            };
            let mut k = i + 2;
            while k < close {
                let t = &toks[k];
                if is_punct(t, "{") || is_punct(t, "(") || is_punct(t, "[") {
                    let (open_text, close_text) = if is_punct(t, "{") {
                        ("{", "}")
                    } else if is_punct(t, "(") {
                        ("(", ")")
                    } else {
                        ("[", "]")
                    };
                    k = matching(toks, k, open_text, close_text).map_or(close, |c| c + 1);
                    continue;
                }
                if fields.contains(t.text.as_str())
                    && !in_test.get(k).copied().unwrap_or(false)
                    && toks
                        .get(k + 1)
                        .is_some_and(|n| is_punct(n, ":") || is_punct(n, ",") || is_punct(n, "}"))
                {
                    written.insert(t.text.clone());
                }
                k += 1;
            }
        }
    }
}

fn exhaustive_dispatch(
    ws: &Workspace<'_>,
    inputs: &[SemanticInput<'_>],
    findings: &mut Vec<Finding>,
) {
    for node in &ws.fns {
        if node.in_test {
            continue;
        }
        let input = &inputs[node.file];
        for m in node.def.body.iter().flat_map(|b| b.matches.iter()) {
            // Identify the matched enum from a qualified variant arm.
            let mut enum_name: Option<&str> = None;
            let mut covered: BTreeSet<&str> = BTreeSet::new();
            for arm in &m.arms {
                if let ArmHead::Path(segs) = &arm.head {
                    if segs.len() < 2 {
                        continue;
                    }
                    let cand = segs[segs.len() - 2].as_str();
                    if !ws.closed_enums.contains_key(cand) {
                        continue;
                    }
                    match enum_name {
                        None => enum_name = Some(cand),
                        Some(existing) if existing != cand => continue,
                        Some(_) => {}
                    }
                    covered.insert(segs[segs.len() - 1].as_str());
                }
            }
            let Some(name) = enum_name else { continue };
            let Some(wild) = m
                .arms
                .iter()
                .find(|a| a.head == ArmHead::Wildcard && !a.guarded)
            else {
                continue;
            };
            let Some(closed) = ws.closed_enums.get(name) else {
                continue;
            };
            let missing: Vec<&str> = closed
                .variants
                .iter()
                .map(String::as_str)
                .filter(|v| !covered.contains(*v))
                .collect();
            let hidden = if missing.is_empty() {
                "no remaining variants — the arm is dead".to_owned()
            } else {
                missing.join(", ")
            };
            push(
                findings,
                &spec_of(input),
                &input.lines,
                EXHAUSTIVE_DISPATCH,
                wild.line,
                wild.col,
                format!(
                    "`_` arm on closed enum `{name}` hides variants ({hidden}); \
                     enumerate them so a new variant fails to compile instead of \
                     silently falling through",
                ),
            );
        }
    }
}

fn discarded_result(ws: &Workspace<'_>, inputs: &[SemanticInput<'_>], findings: &mut Vec<Finding>) {
    for node in &ws.fns {
        if node.in_test {
            continue;
        }
        let input = &inputs[node.file];
        for edge in &node.calls {
            if !edge.bare_statement || edge.targets.is_empty() {
                continue;
            }
            let all_result = edge.targets.iter().all(|&t| ws.fns[t].def.returns_result);
            if !all_result {
                continue;
            }
            let site: &CallSite = edge.site;
            push(
                findings,
                &spec_of(input),
                &input.lines,
                DISCARDED_RESULT,
                site.line,
                site.col,
                format!(
                    "`{}` returns a Result that this statement discards; \
                     propagate it with `?`, handle the error, or waive with the \
                     reason the failure is impossible here",
                    edge.name,
                ),
            );
        }
    }
}

/// The four v3 dataflow lints, driven by per-function [`FnFlow`]s.
fn dataflow_passes(ws: &Workspace<'_>, inputs: &[SemanticInput<'_>], findings: &mut Vec<Finding>) {
    // One abstract environment per analyzable function. Tests are
    // masked, and example programs are demo code outside the lint's
    // determinism/robustness contract.
    let flows: Vec<Option<FnFlow>> = ws
        .fns
        .iter()
        .map(|node| {
            let input = &inputs[node.file];
            if node.in_test || !matches!(input.file.kind, FileKind::Lib | FileKind::Bin) {
                return None;
            }
            dataflow::analyze(input.file.toks, input.file.in_test, node.def)
        })
        .collect();

    // Which functions (transitively) acquire a lock: seed with direct
    // `.lock()` callers, then propagate backwards over call edges to a
    // fixpoint. Conservative in the under-matching direction — an
    // unresolved call contributes no edge, hence no finding.
    let mut locks_trans: Vec<bool> = flows
        .iter()
        .map(|f| f.as_ref().is_some_and(|f| !f.locks.is_empty()))
        .collect();
    let direct_lock = locks_trans.clone();
    loop {
        let mut changed = false;
        for (i, node) in ws.fns.iter().enumerate() {
            if locks_trans[i] {
                continue;
            }
            let calls_locker = node
                .calls
                .iter()
                .flat_map(|e| e.targets.iter())
                .any(|&t| locks_trans[t]);
            if calls_locker {
                locks_trans[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for (i, node) in ws.fns.iter().enumerate() {
        let Some(flow) = &flows[i] else { continue };
        let input = &inputs[node.file];
        let spec = spec_of(input);

        for g in &flow.guards {
            // Deadlock shape: guard live across a call into a
            // workspace function that itself acquires some lock.
            for edge in &node.calls {
                let s = edge.site;
                if s.paren_open <= g.start || s.paren_open >= g.end {
                    continue;
                }
                let Some(&t) = edge.targets.iter().find(|&&t| locks_trans[t]) else {
                    continue;
                };
                let how = if direct_lock[t] {
                    "itself acquires a lock"
                } else {
                    "acquires a lock further down its call graph"
                };
                push(
                    findings,
                    &spec,
                    &input.lines,
                    LOCK_DISCIPLINE,
                    s.line,
                    s.col,
                    format!(
                        "guard `{}` (locking `{}`, bound at line {}) is still live \
                         across this call to `{}`, which {how} — the deadlock shape; \
                         drop or scope the guard before the call",
                        g.name,
                        g.mutex,
                        g.line,
                        ws.fns[t].display_name(),
                    ),
                );
            }
            // Double lock of one receiver on a single path.
            for l in &flow.locks {
                if l.paren_open > g.start && l.paren_open < g.end && l.recv == g.mutex {
                    push(
                        findings,
                        &spec,
                        &input.lines,
                        LOCK_DISCIPLINE,
                        l.line,
                        l.col,
                        format!(
                            "`{}` is locked again while guard `{}` from line {} still \
                             holds it — self-deadlock on this path; drop the guard \
                             before re-locking",
                            l.recv, g.name, g.line,
                        ),
                    );
                }
            }
        }

        for v in &flow.overflow {
            push(
                findings,
                &spec,
                &input.lines,
                OVERFLOW_PROVENANCE,
                v.line,
                v.col,
                v.what.clone(),
            );
        }
        for v in &flow.index {
            push(
                findings,
                &spec,
                &input.lines,
                INDEX_BOUNDS,
                v.line,
                v.col,
                v.what.clone(),
            );
        }
        for v in &flow.taint {
            push(
                findings,
                &spec,
                &input.lines,
                NONDET_TAINT,
                v.line,
                v.col,
                v.what.clone(),
            );
        }
    }
}
