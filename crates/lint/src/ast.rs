//! A hand-rolled recursive-descent parser over the [`crate::lexer`]
//! token stream, producing the lightweight AST the semantic lints run
//! on.
//!
//! This is deliberately not a full Rust grammar: it recognises exactly
//! the structure the workspace invariants need — items (`fn`, `struct`,
//! `enum`, `impl`, `trait`, `mod`), struct fields with their type
//! tokens, enum variants, and inside function bodies the *facts* the
//! lints consume: call sites (path and method form, turbofish included),
//! `match` expressions with classified arm patterns, loop headers, and
//! panic sites. Everything else is skipped by delimiter matching, so
//! unknown syntax degrades to "no facts extracted" rather than a parse
//! error — the lints only ever under-match on source this parser cannot
//! follow, and rustc rejects genuinely malformed source anyway.
//!
//! Token indices into the original stream are preserved on call sites so
//! statement-shape analysis (is this call's result discarded?) can be
//! done against the raw tokens without re-lexing.

use crate::lexer::{TokKind, Token};

/// Parsed view of one source file.
#[derive(Debug, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item. Items the lints do not care about are not represented.
#[derive(Debug)]
pub enum Item {
    /// A free function.
    Fn(FnDef),
    /// A struct with named fields (tuple/unit structs carry no fields).
    Struct(StructDef),
    /// An enum and its variant names.
    Enum(EnumDef),
    /// An `impl` block (or `trait` block — see [`ImplBlock::is_trait`]).
    Impl(ImplBlock),
    /// An inline `mod name { … }` with its nested items.
    Mod(ModDef),
}

/// A function definition (free, impl method, or trait default method).
#[derive(Debug)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// `true` only for unrestricted `pub` (not `pub(crate)` etc.).
    pub is_pub: bool,
    /// Whether the return type mentions `Result`.
    pub returns_result: bool,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Whether the definition sits in `#[cfg(test)]`/`#[test]` code.
    pub in_test: bool,
    /// Plain `name: Type` parameters, in order (`self` receivers and
    /// pattern parameters are skipped — the dataflow seeding only needs
    /// named value parameters).
    pub params: Vec<ParamDef>,
    /// Extracted body facts; `None` for bodiless trait declarations.
    pub body: Option<BodyFacts>,
}

/// One named function parameter.
#[derive(Debug)]
pub struct ParamDef {
    /// Parameter name.
    pub name: String,
    /// Identifier tokens of the parameter's type, in order.
    pub ty: Vec<String>,
}

/// The facts extracted from one function body.
#[derive(Debug, Default)]
pub struct BodyFacts {
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the matching `}`.
    pub close: usize,
    /// Every call site, in source order (includes calls nested anywhere
    /// in the body: closures, match arms, loop bodies).
    pub calls: Vec<CallSite>,
    /// Every `match` expression, outer and nested alike.
    pub matches: Vec<MatchSite>,
    /// Direct panic sites (`unwrap`/`expect`/`panic!` family).
    pub panics: Vec<PanicSite>,
    /// Loop headers (`for`/`while`/`loop`).
    pub loops: Vec<LoopSite>,
}

/// One call expression.
#[derive(Debug)]
pub struct CallSite {
    /// What is being called.
    pub callee: Callee,
    /// 1-based line of the callee name token.
    pub line: u32,
    /// 1-based column of the callee name token.
    pub col: u32,
    /// Token index where the whole call expression starts (path head,
    /// or the start of a method call's receiver chain).
    pub expr_start: usize,
    /// Token index of the argument list's `(`.
    pub paren_open: usize,
    /// Token index of the argument list's `)`.
    pub paren_close: usize,
}

/// Callee classification.
#[derive(Debug)]
pub enum Callee {
    /// `a::b::c(…)` — path segments with leading `crate`/`self`/`super`
    /// stripped. A bare `c(…)` is a one-segment path.
    Path(Vec<String>),
    /// `recv.name(…)`; `on_self` when the receiver chain starts at
    /// `self`.
    Method {
        /// Method name.
        name: String,
        /// Whether the receiver chain is rooted at `self`.
        on_self: bool,
    },
}

/// One `match` expression.
#[derive(Debug)]
pub struct MatchSite {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// 1-based column of the `match` keyword.
    pub col: u32,
    /// Identifier tokens of the scrutinee (for diagnostics).
    pub scrutinee: Vec<String>,
    /// The arms, in source order.
    pub arms: Vec<Arm>,
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Classified head of the (first alternative of the) pattern.
    pub head: ArmHead,
    /// Whether the arm carries an `if` guard.
    pub guarded: bool,
    /// 1-based line of the pattern's first token.
    pub line: u32,
    /// 1-based column of the pattern's first token.
    pub col: u32,
}

/// What kind of pattern heads a match arm.
#[derive(Debug, PartialEq, Eq)]
pub enum ArmHead {
    /// `_`.
    Wildcard,
    /// A lone lowercase identifier — a catch-all binding.
    Binding(String),
    /// `A::B` or `A::B::C` — a (possibly qualified) variant path.
    Path(Vec<String>),
    /// A literal pattern (`0`, `"x"`, `'c'`, `true`).
    Literal,
    /// Anything else: tuples, slices, struct patterns, ranges, …
    Other,
}

/// A direct panic site inside a function body.
#[derive(Debug)]
pub struct PanicSite {
    /// Which construct: `unwrap`, `expect`, `panic`, `unreachable`,
    /// `todo`, `unimplemented`.
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A loop header inside a function body.
#[derive(Debug)]
pub struct LoopSite {
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Identifier tokens appearing in the loop header.
    pub header_idents: Vec<String>,
    /// Token index of the loop body's `{`, when one was found.
    pub body_open: Option<usize>,
}

/// A struct definition with named fields.
#[derive(Debug)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// `true` for unrestricted `pub`.
    pub is_pub: bool,
    /// 1-based line of the name token.
    pub line: u32,
    /// Whether the definition sits in test code.
    pub in_test: bool,
    /// Named fields (empty for tuple and unit structs).
    pub fields: Vec<FieldDef>,
}

/// One named struct field.
#[derive(Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Identifier tokens of the field's type, in order (`Option<u64>`
    /// yields `["Option", "u64"]`).
    pub ty: Vec<String>,
    /// 1-based line of the field name.
    pub line: u32,
    /// 1-based column of the field name.
    pub col: u32,
}

/// An enum definition.
#[derive(Debug)]
pub struct EnumDef {
    /// Type name.
    pub name: String,
    /// `true` for unrestricted `pub`.
    pub is_pub: bool,
    /// 1-based line of the name token.
    pub line: u32,
    /// Whether the definition sits in test code.
    pub in_test: bool,
    /// Whether the enum is `#[non_exhaustive]`.
    pub non_exhaustive: bool,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// An `impl` block (inherent or trait impl) or a `trait` block.
#[derive(Debug)]
pub struct ImplBlock {
    /// The implementing type's name (for `trait` blocks, the trait's).
    pub self_ty: String,
    /// The implemented trait's name, for `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// `true` when this models a `trait` block (default methods).
    pub is_trait: bool,
    /// Whether the block sits in test code.
    pub in_test: bool,
    /// Functions defined inside the block.
    pub fns: Vec<FnDef>,
}

/// An inline module.
#[derive(Debug)]
pub struct ModDef {
    /// Module name.
    pub name: String,
    /// Nested items.
    pub items: Vec<Item>,
}

/// One function together with its enclosing context, as produced by
/// [`visit_fns`].
#[derive(Clone, Copy, Debug)]
pub struct FnRef<'a> {
    /// The function itself.
    pub f: &'a FnDef,
    /// The `impl`/`trait` block it sits in, if any.
    pub imp: Option<&'a ImplBlock>,
}

/// Depth-first walk collecting every function in the file (free,
/// method, trait default, nested in inline modules), paired with its
/// enclosing impl block.
pub fn visit_fns(ast: &Ast) -> Vec<FnRef<'_>> {
    fn walk<'a>(items: &'a [Item], out: &mut Vec<FnRef<'a>>) {
        for it in items {
            match it {
                Item::Fn(f) => out.push(FnRef { f, imp: None }),
                Item::Impl(b) => {
                    for f in &b.fns {
                        out.push(FnRef { f, imp: Some(b) });
                    }
                }
                Item::Mod(m) => walk(&m.items, out),
                Item::Struct(_) | Item::Enum(_) => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(&ast.items, &mut out);
    out
}

/// Depth-first walk collecting every struct in the file.
pub fn visit_structs(ast: &Ast) -> Vec<&StructDef> {
    fn walk<'a>(items: &'a [Item], out: &mut Vec<&'a StructDef>) {
        for it in items {
            match it {
                Item::Struct(s) => out.push(s),
                Item::Mod(m) => walk(&m.items, out),
                Item::Fn(_) | Item::Enum(_) | Item::Impl(_) => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(&ast.items, &mut out);
    out
}

/// Depth-first walk collecting every enum in the file.
pub fn visit_enums(ast: &Ast) -> Vec<&EnumDef> {
    fn walk<'a>(items: &'a [Item], out: &mut Vec<&'a EnumDef>) {
        for it in items {
            match it {
                Item::Enum(e) => out.push(e),
                Item::Mod(m) => walk(&m.items, out),
                Item::Fn(_) | Item::Struct(_) | Item::Impl(_) => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(&ast.items, &mut out);
    out
}

/// Keywords that can precede `(` without being a call.
const NON_CALL_KEYWORDS: [&str; 22] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "let", "fn",
    "pub", "use", "where", "break", "continue", "impl", "dyn", "ref", "mut", "box",
];

/// The panic-family macro names.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Parses a token stream. `in_test` is a per-token mask (same length as
/// `toks`) marking `#[cfg(test)]`/`#[test]` regions.
pub fn parse(toks: &[Token], in_test: &[bool]) -> Ast {
    let mut p = Parser { toks, in_test };
    Ast {
        items: p.parse_items(0, toks.len()),
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    in_test: &'a [bool],
}

/// Is this token the given punctuation?
fn punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// Is this token the given identifier/keyword?
fn ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

fn is_open(t: &Token) -> bool {
    punct(t, "(") || punct(t, "[") || punct(t, "{")
}

fn is_close(t: &Token) -> bool {
    punct(t, ")") || punct(t, "]") || punct(t, "}")
}

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&'a Token> {
        self.toks.get(i)
    }

    fn masked(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// Index just past the delimiter group opening at `i` (which must be
    /// an opening delimiter); token count on malformed input.
    fn skip_group(&self, i: usize) -> usize {
        self.matching(i).map_or(self.toks.len(), |c| c + 1)
    }

    /// Index of the delimiter closing the group opened at `i`.
    fn matching(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        let mut k = open;
        while let Some(t) = self.tok(k) {
            if is_open(t) {
                depth += 1;
            } else if is_close(t) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(k);
                }
            }
            k += 1;
        }
        None
    }

    /// Index of the delimiter opening the group closed at `close`,
    /// scanning backwards.
    fn matching_back(&self, close: usize) -> Option<usize> {
        let mut depth = 0usize;
        let mut k = close;
        loop {
            let t = self.tok(k)?;
            if is_close(t) {
                depth += 1;
            } else if is_open(t) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(k);
                }
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
    }

    /// At `<`: index just past the matching `>`; understands `>>`
    /// closing two levels and skips nested bracket groups (`Fn(A) -> B`).
    fn skip_generics(&self, i: usize) -> usize {
        let mut depth: i64 = 0;
        let mut k = i;
        while let Some(t) = self.tok(k) {
            if punct(t, "<") || punct(t, "<<") {
                depth += if t.text == "<<" { 2 } else { 1 };
            } else if punct(t, ">") {
                depth -= 1;
            } else if punct(t, ">>") {
                depth -= 2;
            } else if is_open(t) {
                k = self.skip_group(k);
                continue;
            } else if punct(t, ";") {
                // Recovery: generics never contain statement boundaries.
                return k;
            }
            k += 1;
            if depth <= 0 {
                return k;
            }
        }
        self.toks.len()
    }

    /// Parses items in `[i, end)`.
    fn parse_items(&mut self, mut i: usize, end: usize) -> Vec<Item> {
        let mut items = Vec::new();
        while i < end {
            let (next, item) = self.parse_item(i, end);
            if let Some(it) = item {
                items.push(it);
            }
            i = if next > i { next } else { i + 1 };
        }
        items
    }

    /// Parses one item starting at `i`; returns (index past it, item).
    fn parse_item(&mut self, mut i: usize, end: usize) -> (usize, Option<Item>) {
        let mut non_exhaustive = false;
        // Attributes.
        while i + 1 < end && punct(&self.toks[i], "#") {
            let open = if punct(&self.toks[i + 1], "!") {
                i + 2
            } else {
                i + 1
            };
            if self.tok(open).is_some_and(|t| punct(t, "[")) {
                let close = self.matching(open).unwrap_or(end.saturating_sub(1));
                if self.toks[open..=close.min(self.toks.len() - 1)]
                    .iter()
                    .any(|t| ident(t, "non_exhaustive"))
                {
                    non_exhaustive = true;
                }
                i = close + 1;
            } else {
                break;
            }
        }
        // Visibility.
        let mut is_pub = false;
        if i < end && ident(&self.toks[i], "pub") {
            if i + 1 < end && punct(&self.toks[i + 1], "(") {
                // pub(crate), pub(super), … — restricted, not public API.
                i = self.skip_group(i + 1);
            } else {
                is_pub = true;
                i += 1;
            }
        }
        // Modifiers before `fn`.
        while i < end
            && (ident(&self.toks[i], "async")
                || ident(&self.toks[i], "unsafe")
                || (ident(&self.toks[i], "const")
                    && self.tok(i + 1).is_some_and(|t| ident(t, "fn")))
                || (ident(&self.toks[i], "extern")
                    && self.tok(i + 1).is_some_and(|t| t.kind == TokKind::Str)))
        {
            i += if ident(&self.toks[i], "extern") { 2 } else { 1 };
        }
        let Some(head) = self.tok(i) else {
            return (end, None);
        };
        if head.kind != TokKind::Ident {
            return (i + 1, None);
        }
        match head.text.as_str() {
            "fn" => {
                let (next, f) = self.parse_fn(i, is_pub, end);
                (next, f.map(Item::Fn))
            }
            "struct" => self.parse_struct(i, is_pub, end),
            "enum" => self.parse_enum(i, is_pub, non_exhaustive, end),
            "impl" => self.parse_impl(i, false, end),
            "trait" => self.parse_impl(i, true, end),
            "mod" => self.parse_mod(i, end),
            "use" | "static" | "type" => (self.skip_to_semi(i, end), None),
            "const" => (self.skip_to_semi(i, end), None),
            "macro_rules" => {
                // macro_rules! name { … } or ( … );
                let mut k = i + 1;
                while k < end && !is_open(&self.toks[k]) && !punct(&self.toks[k], ";") {
                    k += 1;
                }
                if k < end && is_open(&self.toks[k]) {
                    (self.skip_group(k), None)
                } else {
                    (k + 1, None)
                }
            }
            _ => (i + 1, None),
        }
    }

    /// Skips to just past the next `;` at delimiter depth zero, jumping
    /// over bracket groups.
    fn skip_to_semi(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            let t = &self.toks[i];
            if punct(t, ";") {
                return i + 1;
            }
            if is_open(t) {
                i = self.skip_group(i);
            } else {
                i += 1;
            }
        }
        end
    }

    /// At the `fn` keyword: parses a function definition.
    fn parse_fn(&mut self, i: usize, is_pub: bool, end: usize) -> (usize, Option<FnDef>) {
        let Some(name_tok) = self.tok(i + 1) else {
            return (end, None);
        };
        if name_tok.kind != TokKind::Ident {
            return (i + 1, None);
        }
        let name = name_tok.text.clone();
        let (line, col) = (name_tok.line, name_tok.col);
        let in_test = self.masked(i);
        let mut k = i + 2;
        if self.tok(k).is_some_and(|t| punct(t, "<")) {
            k = self.skip_generics(k);
        }
        if !self.tok(k).is_some_and(|t| punct(t, "(")) {
            return (k, None);
        }
        let params = match self.matching(k) {
            Some(close) => self.parse_params(k + 1, close),
            None => Vec::new(),
        };
        k = self.skip_group(k);
        // Return type: tokens after `->` up to `{`, `;`, or `where`.
        let mut returns_result = false;
        if self.tok(k).is_some_and(|t| punct(t, "->")) {
            k += 1;
            while let Some(t) = self.tok(k) {
                if punct(t, "{") || punct(t, ";") || ident(t, "where") {
                    break;
                }
                if ident(t, "Result") {
                    returns_result = true;
                }
                if punct(t, "<") {
                    // Stay inside the same scan: generics in return types
                    // cannot contain `{`/`;`, so plain advance is safe.
                }
                k += 1;
                if k >= end {
                    break;
                }
            }
        }
        // Where clause.
        while k < end && !punct(&self.toks[k], "{") && !punct(&self.toks[k], ";") {
            k += 1;
        }
        let body = if self.tok(k).is_some_and(|t| punct(t, "{")) {
            let close = self
                .matching(k)
                .unwrap_or(self.toks.len().saturating_sub(1));
            let facts = self.scan_body(k, close);
            k = close + 1;
            Some(facts)
        } else {
            k += 1; // past `;`
            None
        };
        (
            k,
            Some(FnDef {
                name,
                is_pub,
                returns_result,
                line,
                col,
                in_test,
                params,
                body,
            }),
        )
    }

    /// Parses `name: Type` parameters in `[i, end)` (the argument list's
    /// interior). Receivers (`self` in any form) and pattern parameters
    /// (`(a, b): …`, `[x]: …`) are skipped — under-matching, as always.
    fn parse_params(&mut self, mut i: usize, end: usize) -> Vec<ParamDef> {
        let mut params = Vec::new();
        while i < end {
            // One parameter: up to the next depth-zero comma.
            let mut stop = i;
            while stop < end && !punct(&self.toks[stop], ",") {
                if punct(&self.toks[stop], "<") {
                    stop = self.skip_generics(stop);
                    continue;
                }
                if is_open(&self.toks[stop]) {
                    stop = self.skip_group(stop);
                    continue;
                }
                stop += 1;
            }
            let mut p = i;
            while p < stop && (ident(&self.toks[p], "mut") || punct(&self.toks[p], "&")) {
                p += 1;
            }
            if p < stop
                && self.toks[p].kind == TokKind::Ident
                && !ident(&self.toks[p], "self")
                && self.tok(p + 1).is_some_and(|t| punct(t, ":"))
                && p + 1 < stop
            {
                let mut ty = Vec::new();
                for t in &self.toks[p + 2..stop] {
                    if t.kind == TokKind::Ident {
                        ty.push(t.text.clone());
                    }
                }
                params.push(ParamDef {
                    name: self.toks[p].text.clone(),
                    ty,
                });
            }
            i = stop + 1;
        }
        params
    }

    /// At the `struct` keyword.
    fn parse_struct(&mut self, i: usize, is_pub: bool, end: usize) -> (usize, Option<Item>) {
        let Some(name_tok) = self.tok(i + 1) else {
            return (end, None);
        };
        if name_tok.kind != TokKind::Ident {
            return (i + 1, None);
        }
        let mut def = StructDef {
            name: name_tok.text.clone(),
            is_pub,
            line: name_tok.line,
            in_test: self.masked(i),
            fields: Vec::new(),
        };
        let mut k = i + 2;
        if self.tok(k).is_some_and(|t| punct(t, "<")) {
            k = self.skip_generics(k);
        }
        // `where` clause before the body.
        while k < end
            && !punct(&self.toks[k], "{")
            && !punct(&self.toks[k], ";")
            && !punct(&self.toks[k], "(")
        {
            k += 1;
        }
        match self.tok(k) {
            Some(t) if punct(t, "{") => {
                let close = self
                    .matching(k)
                    .unwrap_or(self.toks.len().saturating_sub(1));
                def.fields = self.parse_fields(k + 1, close);
                (close + 1, Some(Item::Struct(def)))
            }
            Some(t) if punct(t, "(") => {
                // Tuple struct: skip the fields and the trailing `;`.
                let next = self.skip_group(k);
                (
                    self.skip_to_semi(next.saturating_sub(1), end),
                    Some(Item::Struct(def)),
                )
            }
            _ => (k + 1, Some(Item::Struct(def))),
        }
    }

    /// Parses `name: Type,` fields in `[i, end)`.
    fn parse_fields(&mut self, mut i: usize, end: usize) -> Vec<FieldDef> {
        let mut fields = Vec::new();
        while i < end {
            // Attributes and visibility on the field.
            while i + 1 < end && punct(&self.toks[i], "#") && punct(&self.toks[i + 1], "[") {
                i = self.skip_group(i + 1);
            }
            if i < end && ident(&self.toks[i], "pub") {
                i += 1;
                if i < end && punct(&self.toks[i], "(") {
                    i = self.skip_group(i);
                }
            }
            let Some(name_tok) = self.tok(i) else { break };
            if i >= end {
                break;
            }
            if name_tok.kind == TokKind::Ident && self.tok(i + 1).is_some_and(|t| punct(t, ":")) {
                let mut ty = Vec::new();
                let mut k = i + 2;
                let mut angle: i64 = 0;
                while k < end {
                    let t = &self.toks[k];
                    if punct(t, ",") && angle <= 0 {
                        break;
                    }
                    if punct(t, "<") {
                        angle += 1;
                    } else if punct(t, ">") {
                        angle -= 1;
                    } else if punct(t, ">>") {
                        angle -= 2;
                    } else if is_open(t) {
                        // Collect idents inside e.g. `Fn(A, B)` too.
                        let close = self.matching(k).unwrap_or(end);
                        for tt in &self.toks[k..close.min(end)] {
                            if tt.kind == TokKind::Ident {
                                ty.push(tt.text.clone());
                            }
                        }
                        k = close;
                    } else if t.kind == TokKind::Ident {
                        ty.push(t.text.clone());
                    }
                    k += 1;
                }
                fields.push(FieldDef {
                    name: name_tok.text.clone(),
                    ty,
                    line: name_tok.line,
                    col: name_tok.col,
                });
                i = k + 1;
            } else {
                i += 1;
            }
        }
        fields
    }

    /// At the `enum` keyword.
    fn parse_enum(
        &mut self,
        i: usize,
        is_pub: bool,
        non_exhaustive: bool,
        end: usize,
    ) -> (usize, Option<Item>) {
        let Some(name_tok) = self.tok(i + 1) else {
            return (end, None);
        };
        if name_tok.kind != TokKind::Ident {
            return (i + 1, None);
        }
        let mut def = EnumDef {
            name: name_tok.text.clone(),
            is_pub,
            line: name_tok.line,
            in_test: self.masked(i),
            non_exhaustive,
            variants: Vec::new(),
        };
        let mut k = i + 2;
        if self.tok(k).is_some_and(|t| punct(t, "<")) {
            k = self.skip_generics(k);
        }
        while k < end && !punct(&self.toks[k], "{") && !punct(&self.toks[k], ";") {
            k += 1;
        }
        if !self.tok(k).is_some_and(|t| punct(t, "{")) {
            return (k + 1, Some(Item::Enum(def)));
        }
        let close = self
            .matching(k)
            .unwrap_or(self.toks.len().saturating_sub(1));
        let mut v = k + 1;
        while v < close {
            // Variant attributes.
            while v + 1 < close && punct(&self.toks[v], "#") && punct(&self.toks[v + 1], "[") {
                v = self.skip_group(v + 1);
            }
            let Some(t) = self.tok(v) else { break };
            if v >= close {
                break;
            }
            if t.kind == TokKind::Ident {
                def.variants.push(t.text.clone());
                v += 1;
                // Variant payload / discriminant, up to the next comma.
                while v < close && !punct(&self.toks[v], ",") {
                    if is_open(&self.toks[v]) {
                        v = self.skip_group(v);
                    } else {
                        v += 1;
                    }
                }
                v += 1; // past `,`
            } else {
                v += 1;
            }
        }
        (close + 1, Some(Item::Enum(def)))
    }

    /// At the `impl` or `trait` keyword.
    fn parse_impl(&mut self, i: usize, is_trait: bool, end: usize) -> (usize, Option<Item>) {
        let in_test = self.masked(i);
        let mut k = i + 1;
        if self.tok(k).is_some_and(|t| punct(t, "<")) {
            k = self.skip_generics(k);
        }
        // Head: everything up to `{` (jumping over `where` bounds).
        let head_start = k;
        let mut angle: i64 = 0;
        while k < end {
            let t = &self.toks[k];
            if punct(t, "{") && angle <= 0 {
                break;
            }
            if punct(t, ";") {
                // `trait X;`-ish recovery.
                return (k + 1, None);
            }
            if punct(t, "<") {
                angle += 1;
            } else if punct(t, ">") {
                angle -= 1;
            } else if punct(t, ">>") {
                angle -= 2;
            } else if punct(t, "(") || punct(t, "[") {
                k = self.skip_group(k);
                continue;
            }
            k += 1;
        }
        if k >= end {
            return (end, None);
        }
        let head = &self.toks[head_start..k];
        // Split at a depth-zero `for` (trait impls); also stop the type
        // scan at `where`.
        let mut for_idx = None;
        let mut where_idx = head.len();
        let mut depth: i64 = 0;
        for (j, t) in head.iter().enumerate() {
            if punct(t, "<") {
                depth += 1;
            } else if punct(t, ">") {
                depth -= 1;
            } else if punct(t, ">>") {
                depth -= 2;
            } else if ident(t, "for") && depth <= 0 && for_idx.is_none() {
                for_idx = Some(j);
            } else if ident(t, "where") && depth <= 0 {
                where_idx = j;
                break;
            }
        }
        let (trait_part, ty_part) = match for_idx {
            Some(f) if f < where_idx => (&head[..f], &head[f + 1..where_idx]),
            _ => (&head[..0], &head[..where_idx]),
        };
        let last_ident_depth0 = |toks: &[Token]| -> Option<String> {
            let mut depth: i64 = 0;
            let mut last = None;
            for t in toks {
                if punct(t, "<") {
                    depth += 1;
                } else if punct(t, ">") {
                    depth -= 1;
                } else if punct(t, ">>") {
                    depth -= 2;
                } else if t.kind == TokKind::Ident
                    && depth <= 0
                    && !ident(t, "dyn")
                    && !ident(t, "mut")
                {
                    last = Some(t.text.clone());
                }
            }
            last
        };
        let self_ty = match last_ident_depth0(ty_part) {
            Some(n) => n,
            None => return (self.skip_group(k), None),
        };
        let trait_name = last_ident_depth0(trait_part);
        let close = self
            .matching(k)
            .unwrap_or(self.toks.len().saturating_sub(1));
        let inner = self.parse_items(k + 1, close);
        let mut fns = Vec::new();
        for it in inner {
            if let Item::Fn(f) = it {
                fns.push(f);
            }
        }
        (
            close + 1,
            Some(Item::Impl(ImplBlock {
                self_ty,
                trait_name: if is_trait { None } else { trait_name },
                is_trait,
                in_test,
                fns,
            })),
        )
    }

    /// At the `mod` keyword.
    fn parse_mod(&mut self, i: usize, end: usize) -> (usize, Option<Item>) {
        let Some(name_tok) = self.tok(i + 1) else {
            return (end, None);
        };
        let name = name_tok.text.clone();
        match self.tok(i + 2) {
            Some(t) if punct(t, "{") => {
                let close = self
                    .matching(i + 2)
                    .unwrap_or(self.toks.len().saturating_sub(1));
                let items = self.parse_items(i + 3, close);
                (close + 1, Some(Item::Mod(ModDef { name, items })))
            }
            _ => (self.skip_to_semi(i, end), None),
        }
    }

    /// Extracts facts from a function body spanning tokens
    /// `(open, close)` exclusive of the braces themselves.
    fn scan_body(&mut self, open: usize, close: usize) -> BodyFacts {
        let mut facts = BodyFacts {
            open,
            close,
            ..BodyFacts::default()
        };
        let mut i = open + 1;
        while i < close {
            let t = &self.toks[i];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let prev_dot = i > 0 && punct(&self.toks[i - 1], ".");
            match t.text.as_str() {
                "match" if !prev_dot => {
                    if let Some(site) = self.parse_match(i, close) {
                        facts.matches.push(site);
                    }
                    i += 1;
                    continue;
                }
                "for" | "while" | "loop" if !prev_dot => {
                    let mut idents = Vec::new();
                    let mut k = i + 1;
                    let mut body_open = None;
                    while k < close {
                        if punct(&self.toks[k], "{") {
                            body_open = Some(k);
                            break;
                        }
                        if punct(&self.toks[k], ";") {
                            break;
                        }
                        if self.toks[k].kind == TokKind::Ident {
                            idents.push(self.toks[k].text.clone());
                        }
                        k += 1;
                    }
                    facts.loops.push(LoopSite {
                        line: t.line,
                        header_idents: idents,
                        body_open,
                    });
                    i += 1;
                    continue;
                }
                _ => {}
            }
            // Panic macros: `name !`.
            if PANIC_MACROS.contains(&t.text.as_str())
                && self.tok(i + 1).is_some_and(|n| punct(n, "!"))
            {
                facts.panics.push(PanicSite {
                    what: t.text.clone(),
                    line: t.line,
                    col: t.col,
                });
                i += 2;
                continue;
            }
            // `.unwrap(` / `.expect(` panic sites.
            if prev_dot
                && matches!(t.text.as_str(), "unwrap" | "expect")
                && self.tok(i + 1).is_some_and(|n| punct(n, "("))
            {
                facts.panics.push(PanicSite {
                    what: t.text.clone(),
                    line: t.line,
                    col: t.col,
                });
                // Not also recorded as a method call: these are std
                // methods, and a workspace method that happens to share
                // the name (the JSON parser's `expect`) must not attract
                // edges from every `.expect(…)` in the tree.
                i += 1;
                continue;
            }
            // Call detection: ident [::<…>] ( .
            if let Some(site) = self.parse_call(i, close) {
                facts.calls.push(site);
            }
            i += 1;
        }
        facts
    }

    /// Tries to read a call whose callee name token is at `i`.
    fn parse_call(&mut self, i: usize, close: usize) -> Option<CallSite> {
        let t = &self.toks[i];
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            return None;
        }
        // Macro invocation `name!(…)` is not a function call.
        if self.tok(i + 1).is_some_and(|n| punct(n, "!")) {
            return None;
        }
        // Skip a turbofish between the name and the argument list.
        let mut p = i + 1;
        if self.tok(p).is_some_and(|n| punct(n, "::"))
            && self.tok(p + 1).is_some_and(|n| punct(n, "<"))
        {
            p = self.skip_generics(p + 1);
        }
        if !self.tok(p).is_some_and(|n| punct(n, "(")) || p >= close {
            return None;
        }
        let paren_open = p;
        let paren_close = self.matching(paren_open)?;
        // `fn name(` — a nested item definition, not a call.
        if i > 0 && ident(&self.toks[i - 1], "fn") {
            return None;
        }
        if i > 0 && punct(&self.toks[i - 1], ".") {
            let expr_start = self.receiver_start(i - 1);
            let on_self = self.tok(expr_start).is_some_and(|r| ident(r, "self"));
            return Some(CallSite {
                callee: Callee::Method {
                    name: t.text.clone(),
                    on_self,
                },
                line: t.line,
                col: t.col,
                expr_start,
                paren_open,
                paren_close,
            });
        }
        // Path call: walk back over `ident ::` pairs.
        let mut segs = vec![t.text.clone()];
        let mut k = i;
        while k >= 2 && punct(&self.toks[k - 1], "::") {
            let prev = &self.toks[k - 2];
            if prev.kind == TokKind::Ident {
                segs.push(prev.text.clone());
                k -= 2;
            } else {
                // `<T as Trait>::name(` or turbofish inside the path:
                // give up on the qualifier, keep the bare name.
                segs.truncate(1);
                k = i;
                break;
            }
        }
        segs.reverse();
        while segs.len() > 1 && matches!(segs[0].as_str(), "crate" | "self" | "super") {
            segs.remove(0);
        }
        Some(CallSite {
            callee: Callee::Path(segs),
            line: t.line,
            col: t.col,
            expr_start: k,
            paren_open,
            paren_close,
        })
    }

    /// Given the index of the `.` before a method name, walks the
    /// receiver chain left and returns the index where the whole
    /// postfix expression starts.
    fn receiver_start(&self, dot: usize) -> usize {
        let mut p = dot; // points at '.' (or '?' while stepping)
        loop {
            if p == 0 {
                return p;
            }
            let mut q = p - 1;
            // `foo()?.bar()` — step over the `?`.
            while q > 0 && punct(&self.toks[q], "?") {
                q -= 1;
            }
            let t = &self.toks[q];
            let seg_start = if is_close(t) {
                let open = match self.matching_back(q) {
                    Some(o) => o,
                    None => return q,
                };
                // `foo(…)` call or `arr[…]` index: include the owner.
                if open > 0 && self.toks[open - 1].kind == TokKind::Ident {
                    let mut s = open - 1;
                    while s >= 2 && punct(&self.toks[s - 1], "::") {
                        if self.toks[s - 2].kind == TokKind::Ident {
                            s -= 2;
                        } else {
                            break;
                        }
                    }
                    s
                } else {
                    open
                }
            } else if t.kind == TokKind::Ident || t.kind == TokKind::Str || t.kind == TokKind::Int {
                let mut s = q;
                while s >= 2 && punct(&self.toks[s - 1], "::") {
                    if self.toks[s - 2].kind == TokKind::Ident {
                        s -= 2;
                    } else {
                        break;
                    }
                }
                s
            } else {
                return p;
            };
            if seg_start > 0 && punct(&self.toks[seg_start - 1], ".") {
                p = seg_start - 1;
            } else {
                return seg_start;
            }
        }
    }

    /// At the `match` keyword: reads the scrutinee and the arm list.
    fn parse_match(&mut self, i: usize, limit: usize) -> Option<MatchSite> {
        let kw = &self.toks[i];
        let mut k = i + 1;
        let mut scrutinee = Vec::new();
        while k < limit && !punct(&self.toks[k], "{") {
            if punct(&self.toks[k], ";") {
                return None; // not actually a match expression
            }
            if is_open(&self.toks[k]) {
                // Parenthesised scrutinee: collect idents, then jump.
                let close = self.matching(k)?;
                for t in &self.toks[k..close.min(limit)] {
                    if t.kind == TokKind::Ident {
                        scrutinee.push(t.text.clone());
                    }
                }
                k = close + 1;
                continue;
            }
            if self.toks[k].kind == TokKind::Ident {
                scrutinee.push(self.toks[k].text.clone());
            }
            k += 1;
        }
        if k >= limit {
            return None;
        }
        let body_open = k;
        let body_close = self.matching(body_open)?;
        let mut arms = Vec::new();
        let mut a = body_open + 1;
        while a < body_close {
            // Pattern: tokens up to `=>` at depth zero.
            let pat_start = a;
            let mut pat_end = a;
            let mut found = false;
            while pat_end < body_close {
                let t = &self.toks[pat_end];
                if punct(t, "=>") {
                    found = true;
                    break;
                }
                if is_open(t) {
                    pat_end = self.skip_group(pat_end);
                    continue;
                }
                pat_end += 1;
            }
            if !found {
                break;
            }
            let mut pat = &self.toks[pat_start..pat_end];
            // Guard: `pat if cond =>`.
            let mut guarded = false;
            let mut depth: i64 = 0;
            for (j, t) in pat.iter().enumerate() {
                if is_open(t) {
                    depth += 1;
                } else if is_close(t) {
                    depth -= 1;
                } else if ident(t, "if") && depth <= 0 {
                    guarded = true;
                    pat = &pat[..j];
                    break;
                }
            }
            let (line, col) = pat
                .first()
                .map(|t| (t.line, t.col))
                .unwrap_or((kw.line, kw.col));
            arms.push(Arm {
                head: classify_pattern(pat),
                guarded,
                line,
                col,
            });
            // Arm body: block, or expression up to the depth-zero comma.
            let mut b = pat_end + 1;
            if self.tok(b).is_some_and(|t| punct(t, "{")) {
                b = self.skip_group(b);
                if self.tok(b).is_some_and(|t| punct(t, ",")) {
                    b += 1;
                }
            } else {
                while b < body_close {
                    let t = &self.toks[b];
                    if punct(t, ",") {
                        b += 1;
                        break;
                    }
                    if is_open(t) {
                        b = self.skip_group(b);
                        continue;
                    }
                    b += 1;
                }
            }
            a = b;
        }
        Some(MatchSite {
            line: kw.line,
            col: kw.col,
            scrutinee,
            arms,
        })
    }
}

/// Classifies the head of a match-arm pattern.
fn classify_pattern(pat: &[Token]) -> ArmHead {
    let mut i = 0;
    // Strip leading alternation pipes, references, and binding modes.
    while i < pat.len()
        && (punct(&pat[i], "|")
            || punct(&pat[i], "&")
            || punct(&pat[i], "&&")
            || ident(&pat[i], "ref")
            || ident(&pat[i], "mut")
            || ident(&pat[i], "box"))
    {
        i += 1;
    }
    let Some(first) = pat.get(i) else {
        return ArmHead::Other;
    };
    match first.kind {
        TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char => ArmHead::Literal,
        TokKind::Punct | TokKind::Lifetime => {
            if first.text == "_" && pat.len() == i + 1 {
                ArmHead::Wildcard
            } else {
                ArmHead::Other
            }
        }
        TokKind::Ident => {
            if matches!(first.text.as_str(), "true" | "false") {
                return ArmHead::Literal;
            }
            // Depending on lexer classification `_` may arrive as an
            // identifier; it is still the wildcard pattern.
            if first.text == "_" {
                return if pat.len() == i + 1 {
                    ArmHead::Wildcard
                } else {
                    ArmHead::Other
                };
            }
            // Qualified variant path `A::B…`.
            if pat.get(i + 1).is_some_and(|t| punct(t, "::")) {
                let mut segs = vec![first.text.clone()];
                let mut k = i + 1;
                while pat.get(k).is_some_and(|t| punct(t, "::"))
                    && pat.get(k + 1).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    segs.push(pat[k + 1].text.clone());
                    k += 2;
                }
                return ArmHead::Path(segs);
            }
            // Lone identifier: `name @ …` and plain `name` are bindings
            // when lowercase; a lone capitalised ident is a unit variant
            // brought into scope, which we cannot attribute to an enum.
            let lone = pat.len() == i + 1 || pat.get(i + 1).is_some_and(|t| punct(t, "@"));
            let lowercase = first
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_');
            if lone && lowercase {
                ArmHead::Binding(first.text.clone())
            } else {
                ArmHead::Other
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lints::test_mask;

    fn parse_src(src: &str) -> Ast {
        let lx = lex(src);
        let mask = test_mask(&lx.tokens, crate::FileKind::Lib);
        parse(&lx.tokens, &mask)
    }

    fn first_fn(ast: &Ast) -> &FnDef {
        for it in &ast.items {
            if let Item::Fn(f) = it {
                return f;
            }
        }
        panic!("no fn parsed");
    }

    #[test]
    fn fn_signature_and_result_detection() {
        let ast = parse_src(
            "pub fn run(x: u64) -> Result<u64, SimError> { Ok(x) }\n\
             fn plain() -> u64 { 3 }\n\
             pub(crate) fn hidden() {}\n",
        );
        let fns: Vec<&FnDef> = ast
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Fn(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(fns.len(), 3);
        assert!(fns[0].is_pub && fns[0].returns_result);
        assert!(!fns[1].is_pub && !fns[1].returns_result);
        assert!(!fns[2].is_pub, "pub(crate) is not public API");
    }

    #[test]
    fn struct_fields_with_generic_types() {
        let ast = parse_src(
            "pub struct Stats { pub loads: u64, map: BTreeMap<u64, Vec<u8>>, ratio: f64 }",
        );
        let Some(Item::Struct(s)) = ast.items.first() else {
            panic!("no struct");
        };
        assert_eq!(s.name, "Stats");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["loads", "map", "ratio"]);
        assert_eq!(s.fields[0].ty, vec!["u64"]);
        assert_eq!(s.fields[1].ty, vec!["BTreeMap", "u64", "Vec", "u8"]);
    }

    #[test]
    fn enum_variants_and_non_exhaustive() {
        let ast =
            parse_src("#[non_exhaustive]\npub enum E { A, B(u64), C { x: u8 } }\nenum F { Only }");
        let enums: Vec<&EnumDef> = ast
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Enum(e) => Some(e),
                _ => None,
            })
            .collect();
        assert_eq!(enums.len(), 2);
        assert!(enums[0].non_exhaustive);
        assert_eq!(enums[0].variants, vec!["A", "B", "C"]);
        assert!(!enums[1].non_exhaustive);
    }

    #[test]
    fn impl_blocks_inherent_and_trait() {
        let ast = parse_src(
            "impl Cache { pub fn get(&self) -> u64 { 1 } }\n\
             impl fmt::Display for SimError { fn fmt(&self) -> u8 { 0 } }\n\
             impl<T: Clone> Wrapper<T> { fn inner(&self) {} }\n",
        );
        let impls: Vec<&ImplBlock> = ast
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Impl(b) => Some(b),
                _ => None,
            })
            .collect();
        assert_eq!(impls.len(), 3);
        assert_eq!(impls[0].self_ty, "Cache");
        assert!(impls[0].trait_name.is_none());
        assert_eq!(impls[1].self_ty, "SimError");
        assert_eq!(impls[1].trait_name.as_deref(), Some("Display"));
        assert_eq!(impls[2].self_ty, "Wrapper");
    }

    #[test]
    fn calls_path_method_and_turbofish() {
        let ast = parse_src(
            "fn f() {\n\
                helper(1);\n\
                tcp_mem::addr::line_of(x);\n\
                self.step(3);\n\
                v.iter().map(g).collect::<Vec<_>>();\n\
                Cache::new(cfg);\n\
             }",
        );
        let f = first_fn(&ast);
        let body = f.body.as_ref().expect("body");
        let mut paths = Vec::new();
        let mut methods = Vec::new();
        for c in &body.calls {
            match &c.callee {
                Callee::Path(segs) => paths.push(segs.join("::")),
                Callee::Method { name, on_self } => methods.push((name.clone(), *on_self)),
            }
        }
        assert!(paths.contains(&"helper".to_owned()));
        assert!(paths.contains(&"tcp_mem::addr::line_of".to_owned()));
        assert!(paths.contains(&"Cache::new".to_owned()));
        assert!(methods.contains(&("step".to_owned(), true)));
        assert!(methods.contains(&("iter".to_owned(), false)));
        assert!(
            methods.contains(&("collect".to_owned(), false)),
            "turbofish method call must be detected: {methods:?}"
        );
    }

    #[test]
    fn method_chain_receiver_start_tracks_self() {
        let ast = parse_src("fn f() { self.inner.table.lookup(x); other.lookup(y); }");
        let f = first_fn(&ast);
        let body = f.body.as_ref().expect("body");
        let lookups: Vec<bool> = body
            .calls
            .iter()
            .filter_map(|c| match &c.callee {
                Callee::Method { name, on_self } if name == "lookup" => Some(*on_self),
                _ => None,
            })
            .collect();
        assert_eq!(lookups, vec![true, false]);
    }

    #[test]
    fn nested_matches_are_all_found() {
        let ast = parse_src(
            "fn f(a: E, b: F) -> u32 {\n\
                match a {\n\
                    E::X => match b {\n\
                        F::P => 1,\n\
                        _ => 2,\n\
                    },\n\
                    E::Y(inner) => 3,\n\
                    _ => 4,\n\
                }\n\
             }",
        );
        let f = first_fn(&ast);
        let body = f.body.as_ref().expect("body");
        assert_eq!(body.matches.len(), 2, "outer and nested match");
        let outer = &body.matches[0];
        assert_eq!(outer.arms.len(), 3);
        assert_eq!(
            outer.arms[0].head,
            ArmHead::Path(vec!["E".into(), "X".into()])
        );
        assert_eq!(
            outer.arms[1].head,
            ArmHead::Path(vec!["E".into(), "Y".into()])
        );
        assert_eq!(outer.arms[2].head, ArmHead::Wildcard);
        let inner = &body.matches[1];
        assert_eq!(inner.arms.len(), 2);
        assert_eq!(inner.arms[1].head, ArmHead::Wildcard);
    }

    #[test]
    fn match_arm_guards_bindings_and_literals() {
        let ast = parse_src(
            "fn f(x: u8, o: Option<u8>) -> u8 {\n\
                match x {\n\
                    0 => 1,\n\
                    n if n > 4 => n,\n\
                    other => other,\n\
                }\n\
             }",
        );
        let f = first_fn(&ast);
        let m = &f.body.as_ref().expect("body").matches[0];
        assert_eq!(m.arms[0].head, ArmHead::Literal);
        assert_eq!(m.arms[1].head, ArmHead::Binding("n".into()));
        assert!(m.arms[1].guarded);
        assert_eq!(m.arms[2].head, ArmHead::Binding("other".into()));
        assert!(!m.arms[2].guarded);
    }

    #[test]
    fn qualified_variant_paths_in_patterns() {
        let ast = parse_src(
            "fn f(r: tcp_cache::Replacement) -> u8 {\n\
                match r {\n\
                    tcp_cache::Replacement::Lru => 0,\n\
                    Replacement::Fifo | Replacement::TreePlru => 1,\n\
                    _ => 2,\n\
                }\n\
             }",
        );
        let f = first_fn(&ast);
        let m = &f.body.as_ref().expect("body").matches[0];
        assert_eq!(
            m.arms[0].head,
            ArmHead::Path(vec!["tcp_cache".into(), "Replacement".into(), "Lru".into()])
        );
        assert_eq!(
            m.arms[1].head,
            ArmHead::Path(vec!["Replacement".into(), "Fifo".into()])
        );
        assert_eq!(m.arms[2].head, ArmHead::Wildcard);
    }

    #[test]
    fn panic_sites_in_bodies() {
        let ast = parse_src(
            "fn f(o: Option<u8>) -> u8 {\n\
                let a = o.unwrap();\n\
                let b = o.expect(\"msg\");\n\
                if a > b { panic!(\"boom\") }\n\
                unreachable!()\n\
             }",
        );
        let f = first_fn(&ast);
        let whats: Vec<&str> = f
            .body
            .as_ref()
            .expect("body")
            .panics
            .iter()
            .map(|p| p.what.as_str())
            .collect();
        assert_eq!(whats, vec!["unwrap", "expect", "panic", "unreachable"]);
    }

    #[test]
    fn loops_and_mods_and_test_masking() {
        let ast = parse_src(
            "fn f(n: u64) { for cycle in 0..n { work(cycle); } }\n\
             mod inner { pub fn g() {} }\n\
             #[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n",
        );
        let f = first_fn(&ast);
        let body = f.body.as_ref().expect("body");
        assert_eq!(body.loops.len(), 1);
        assert!(body.loops[0].header_idents.contains(&"cycle".to_owned()));
        let mods: Vec<&ModDef> = ast
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Mod(m) => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(mods.len(), 2);
        let tests_mod = mods.iter().find(|m| m.name == "tests").expect("tests mod");
        for it in &tests_mod.items {
            if let Item::Fn(f) = it {
                assert!(f.in_test, "fns under #[cfg(test)] must be marked");
            }
        }
    }

    #[test]
    fn discard_shape_fields_are_recorded() {
        let ast = parse_src("fn f() { fallible(); let x = fallible(); }");
        let f = first_fn(&ast);
        let body = f.body.as_ref().expect("body");
        assert_eq!(body.calls.len(), 2);
        let c = &body.calls[0];
        assert!(c.paren_close > c.paren_open);
        assert!(c.expr_start <= c.paren_open);
    }

    #[test]
    fn generic_fn_with_where_clause_parses() {
        let ast = parse_src(
            "pub fn pick<T: Ord, const N: usize>(xs: [T; N]) -> Result<T, u8>\n\
             where T: Clone { todo!() }",
        );
        let f = first_fn(&ast);
        assert_eq!(f.name, "pick");
        assert!(f.returns_result);
        assert_eq!(f.body.as_ref().expect("body").panics.len(), 1);
    }
}
