//! Per-function basic-block control-flow graphs over the raw token
//! stream, for the flow-sensitive v4 passes.
//!
//! The builder walks a function body (the token range recorded by the
//! parser in [`crate::ast::BodyFacts`]) and assigns every token to a
//! basic block, splitting at the constructs the lints care about:
//! `if`/`else if`/`else` chains, `match` arms, `for`/`while`/`loop`
//! bodies (with back edges), and the early exits `return`/`break`/
//! `continue`. Anything the walker cannot follow stays in the current
//! block — the same under-matching posture as the parser: a token the
//! builder mislabels can only land in a block with *more* dominators
//! than the truth, never fewer findings' worth of evidence (see below).
//!
//! On the block graph the module computes the dominator tree (iterative
//! bit-set dataflow) and natural loops (back edges whose head dominates
//! their tail, with nesting depth by header containment). Consumers ask
//! two questions: does the block holding token A dominate the block
//! holding token B (`dominates`), and which natural loops — with what
//! headers and depth — enclose a token (`loops`).
//!
//! Conservatism: dominance is used to *kill* findings (a dominating
//! bound check clears an index site), and killing is the safe,
//! under-reporting direction. Unreachable blocks (code after `return`,
//! or a branch the walker orphaned) keep the ⊤ dominator set, so
//! evidence anywhere clears sites inside them — degrading to the old
//! flow-insensitive behavior rather than inventing findings.

use crate::ast::BodyFacts;
use crate::lexer::{TokKind, Token};

/// One natural loop of the function.
#[derive(Debug)]
pub struct LoopInfo {
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Token index of the loop keyword (`for`/`while`/`loop`).
    pub keyword: usize,
    /// Token index of the body's `{`.
    pub body_open: usize,
    /// Token index of the body's `}`.
    pub body_close: usize,
    /// Identifier texts appearing in the loop header.
    pub header_idents: Vec<String>,
    /// Nesting depth: 1 for an outermost loop.
    pub depth: u32,
}

/// A function body's control-flow graph with dominator sets.
#[derive(Debug)]
pub struct Cfg {
    /// Token index of the body's `{`.
    open: usize,
    /// Token index of the body's `}`.
    close: usize,
    /// Block id per token offset from `open`.
    label: Vec<u32>,
    /// Dominator bit sets, one `Vec<u64>` row per block.
    dom: Vec<Vec<u64>>,
    /// Natural loops in source order.
    pub loops: Vec<LoopInfo>,
}

/// Blocks past this count abandon flow sensitivity for the function:
/// every dominance query answers `true` (the flow-insensitive, finding-
/// killing default). No workspace function comes close.
const MAX_BLOCKS: usize = 4096;

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

fn is_open(t: &Token) -> bool {
    is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")
}

fn is_close(t: &Token) -> bool {
    is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")
}

/// Index of the delimiter closing the group opened at `open`.
fn matching(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Loop context during the walk: where `continue` and `break` go.
#[derive(Clone, Copy)]
struct LoopCtx {
    header: u32,
    exit: u32,
}

/// A syntactic loop recorded during the walk, matched with the
/// dominator-confirmed back edges afterwards.
struct SynLoop {
    header_block: u32,
    keyword: usize,
    body_open: usize,
    body_close: usize,
    header_idents: Vec<String>,
}

struct Builder<'a> {
    toks: &'a [Token],
    open: usize,
    close: usize,
    label: Vec<u32>,
    preds: Vec<Vec<u32>>,
    syn_loops: Vec<SynLoop>,
}

/// Block id 0 is the entry; block 1 the virtual exit.
const ENTRY: u32 = 0;
const EXIT: u32 = 1;

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> u32 {
        self.preds.push(Vec::new());
        (self.preds.len() - 1) as u32
    }

    fn edge(&mut self, from: u32, to: u32) {
        let p = &mut self.preds[to as usize];
        if !p.contains(&from) {
            p.push(from);
        }
    }

    fn set(&mut self, tok: usize, blk: u32) {
        if tok >= self.open && tok <= self.close {
            self.label[tok - self.open] = blk;
        }
    }

    fn label_range(&mut self, from: usize, to: usize, blk: u32) {
        for k in from..to.min(self.close + 1) {
            self.set(k, blk);
        }
    }

    /// Finds the `{` opening a control-flow body, scanning from `i`.
    /// `Foo {` (capitalised owner) is a struct pattern/literal, not a
    /// body — its group is skipped. Bails at a depth-zero `;` or at
    /// `limit`.
    fn find_body_open(&self, mut i: usize, limit: usize) -> Option<usize> {
        while i < limit {
            let t = &self.toks[i];
            if is_punct(t, ";") {
                return None;
            }
            if is_punct(t, "{") {
                let owner_is_type = i > 0
                    && self.toks[i - 1].kind == TokKind::Ident
                    && self.toks[i - 1]
                        .text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase());
                if owner_is_type {
                    i = matching(self.toks, i).map_or(limit, |c| c + 1);
                    continue;
                }
                return Some(i);
            }
            if is_punct(t, "(") || is_punct(t, "[") {
                i = matching(self.toks, i).map_or(limit, |c| c + 1);
                continue;
            }
            i += 1;
        }
        None
    }

    /// Walks `[i, end)` as a statement sequence in block `cur`; returns
    /// the block control falls out of.
    fn walk(&mut self, mut i: usize, end: usize, mut cur: u32, lctx: Option<LoopCtx>) -> u32 {
        while i < end {
            let t = &self.toks[i];
            let prev_dot = i > 0 && is_punct(&self.toks[i - 1], ".");
            if t.kind == TokKind::Ident && !prev_dot {
                match t.text.as_str() {
                    "if" => {
                        let (next, out) = self.walk_if(i, end, cur, lctx);
                        cur = out;
                        i = next;
                        continue;
                    }
                    "match" => {
                        if let Some((next, out)) = self.walk_match(i, end, cur, lctx) {
                            cur = out;
                            i = next;
                            continue;
                        }
                    }
                    "for" | "while" | "loop" => {
                        if let Some((next, out)) = self.walk_loop(i, end, cur, lctx) {
                            cur = out;
                            i = next;
                            continue;
                        }
                    }
                    "return" => {
                        // Label to the statement end, edge to exit, and
                        // fall into a fresh (initially unreachable)
                        // block for whatever follows.
                        let stop = self.stmt_end(i, end);
                        self.label_range(i, stop, cur);
                        self.edge(cur, EXIT);
                        cur = self.new_block();
                        i = stop;
                        continue;
                    }
                    "break" | "continue" => {
                        let stop = self.stmt_end(i, end);
                        self.label_range(i, stop, cur);
                        if let Some(ctx) = lctx {
                            let to = if t.text == "break" {
                                ctx.exit
                            } else {
                                ctx.header
                            };
                            self.edge(cur, to);
                        }
                        cur = self.new_block();
                        i = stop;
                        continue;
                    }
                    _ => {}
                }
            }
            if is_punct(t, "{") {
                // A plain block / struct literal / closure body: same
                // block, recurse for nested control flow.
                let close = match matching(self.toks, i) {
                    Some(c) if c <= end => c,
                    _ => {
                        self.set(i, cur);
                        i += 1;
                        continue;
                    }
                };
                self.set(i, cur);
                self.set(close, cur);
                cur = self.walk(i + 1, close, cur, lctx);
                i = close + 1;
                continue;
            }
            self.set(i, cur);
            i += 1;
        }
        cur
    }

    /// Index just past the `;` ending the statement at `i` (or `end`).
    fn stmt_end(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            let t = &self.toks[i];
            if is_punct(t, ";") {
                return i + 1;
            }
            if is_open(t) {
                i = matching(self.toks, i).map_or(end, |c| c + 1);
                continue;
            }
            i += 1;
        }
        end
    }

    /// At the `if` keyword. Returns (index past the construct, join
    /// block).
    fn walk_if(&mut self, i: usize, end: usize, cur: u32, lctx: Option<LoopCtx>) -> (usize, u32) {
        let Some(then_open) = self.find_body_open(i + 1, end) else {
            // `if` we cannot follow: stay in the current block.
            self.set(i, cur);
            return (i + 1, cur);
        };
        let Some(then_close) = matching(self.toks, then_open).filter(|&c| c <= end) else {
            self.set(i, cur);
            return (i + 1, cur);
        };
        // Condition tokens belong to the current block — which is what
        // lets a condition's bound evidence dominate the then-branch.
        self.label_range(i, then_open, cur);
        let then_blk = self.new_block();
        self.edge(cur, then_blk);
        self.set(then_open, then_blk);
        self.set(then_close, then_blk);
        let then_out = self.walk(then_open + 1, then_close, then_blk, lctx);
        let join = self.new_block();
        self.edge(then_out, join);
        let mut next = then_close + 1;
        let has_else = next < end && is_ident(&self.toks[next], "else");
        if has_else {
            self.set(next, cur);
            if next + 1 < end && is_ident(&self.toks[next + 1], "if") {
                // `else if …`: a nested if whose branches join here.
                let (after, out) = self.walk_if(next + 1, end, cur, lctx);
                self.edge(out, join);
                next = after;
            } else if next + 1 < end && is_punct(&self.toks[next + 1], "{") {
                let else_open = next + 1;
                match matching(self.toks, else_open).filter(|&c| c <= end) {
                    Some(else_close) => {
                        let else_blk = self.new_block();
                        self.edge(cur, else_blk);
                        self.set(else_open, else_blk);
                        self.set(else_close, else_blk);
                        let else_out = self.walk(else_open + 1, else_close, else_blk, lctx);
                        self.edge(else_out, join);
                        next = else_close + 1;
                    }
                    None => {
                        self.edge(cur, join);
                        next += 1;
                    }
                }
            } else {
                self.edge(cur, join);
                next += 1;
            }
        } else {
            // No else: control may skip the then-branch entirely.
            self.edge(cur, join);
        }
        (next, join)
    }

    /// At the `match` keyword. Every arm is a block from the scrutinee
    /// block to the join; `None` when the construct cannot be followed.
    fn walk_match(
        &mut self,
        i: usize,
        end: usize,
        cur: u32,
        lctx: Option<LoopCtx>,
    ) -> Option<(usize, u32)> {
        let body_open = self.find_body_open(i + 1, end)?;
        let body_close = matching(self.toks, body_open).filter(|&c| c <= end)?;
        self.label_range(i, body_open + 1, cur);
        self.set(body_close, cur);
        let join = self.new_block();
        let mut a = body_open + 1;
        let mut any_arm = false;
        while a < body_close {
            // Pattern: up to the depth-zero `=>`.
            let pat_start = a;
            let mut pat_end = a;
            let mut found = false;
            while pat_end < body_close {
                let t = &self.toks[pat_end];
                if is_punct(t, "=>") {
                    found = true;
                    break;
                }
                if is_open(t) {
                    pat_end = matching(self.toks, pat_end).map_or(body_close, |c| c + 1);
                    continue;
                }
                pat_end += 1;
            }
            if !found {
                break;
            }
            let arm_blk = self.new_block();
            self.edge(cur, arm_blk);
            self.label_range(pat_start, pat_end + 1, arm_blk);
            // Arm body: a block, or an expression up to the depth-zero
            // comma.
            let mut b = pat_end + 1;
            if b < body_close && is_punct(&self.toks[b], "{") {
                let c = matching(self.toks, b).map_or(body_close, |c| c);
                self.set(b, arm_blk);
                self.set(c, arm_blk);
                let out = self.walk(b + 1, c.min(body_close), arm_blk, lctx);
                self.edge(out, join);
                b = c + 1;
                if b < body_close && is_punct(&self.toks[b], ",") {
                    self.set(b, arm_blk);
                    b += 1;
                }
            } else {
                let expr_start = b;
                while b < body_close {
                    let t = &self.toks[b];
                    if is_punct(t, ",") {
                        break;
                    }
                    if is_open(t) {
                        b = matching(self.toks, b).map_or(body_close, |c| c + 1);
                        continue;
                    }
                    b += 1;
                }
                let out = self.walk(expr_start, b.min(body_close), arm_blk, lctx);
                self.edge(out, join);
                if b < body_close {
                    self.set(b, arm_blk); // the `,`
                    b += 1;
                }
            }
            any_arm = true;
            a = b;
        }
        if !any_arm {
            self.edge(cur, join);
        }
        Some((body_close + 1, join))
    }

    /// At a `for`/`while`/`loop` keyword: header block, body block(s)
    /// with a back edge, and an exit block.
    fn walk_loop(
        &mut self,
        i: usize,
        end: usize,
        cur: u32,
        _lctx: Option<LoopCtx>,
    ) -> Option<(usize, u32)> {
        let body_open = self.find_body_open(i + 1, end)?;
        let body_close = matching(self.toks, body_open).filter(|&c| c <= end)?;
        let header = self.new_block();
        self.edge(cur, header);
        self.label_range(i, body_open + 1, header);
        self.set(body_close, header);
        let mut header_idents = Vec::new();
        for t in &self.toks[i + 1..body_open] {
            if t.kind == TokKind::Ident {
                header_idents.push(t.text.clone());
            }
        }
        let exit = self.new_block();
        self.edge(header, exit);
        let body_blk = self.new_block();
        self.edge(header, body_blk);
        let ctx = LoopCtx { header, exit };
        let out = self.walk(body_open + 1, body_close, body_blk, Some(ctx));
        self.edge(out, header);
        self.syn_loops.push(SynLoop {
            header_block: header,
            keyword: i,
            body_open,
            body_close,
            header_idents,
        });
        Some((body_close + 1, exit))
    }
}

impl Cfg {
    /// Builds the CFG of one function body.
    pub fn build(toks: &[Token], body: &BodyFacts) -> Cfg {
        let open = body.open.min(toks.len().saturating_sub(1));
        let close = body.close.min(toks.len().saturating_sub(1));
        let n_toks = close.saturating_sub(open) + 1;
        let mut b = Builder {
            toks,
            open,
            close,
            label: vec![ENTRY; n_toks],
            preds: vec![Vec::new(), Vec::new()], // entry, exit
            syn_loops: Vec::new(),
        };
        if close > open {
            let out = b.walk(open + 1, close, ENTRY, None);
            b.edge(out, EXIT);
        }
        let n = b.preds.len();
        let words = n.div_ceil(64);
        let mut cfg = Cfg {
            open,
            close,
            label: b.label,
            dom: Vec::new(),
            loops: Vec::new(),
        };
        if n > MAX_BLOCKS {
            // Degenerate: `dominates` answers true (see module docs);
            // loops fall back to the syntactic records at syntactic
            // depth order.
            for (depth0, s) in b.syn_loops.iter().enumerate() {
                let depth = 1 + b
                    .syn_loops
                    .iter()
                    .take(depth0)
                    .filter(|o| o.body_open < s.keyword && s.body_close <= o.body_close)
                    .count() as u32;
                cfg.loops.push(LoopInfo {
                    line: toks[s.keyword].line,
                    keyword: s.keyword,
                    body_open: s.body_open,
                    body_close: s.body_close,
                    header_idents: s.header_idents.clone(),
                    depth,
                });
            }
            return cfg;
        }
        cfg.dom = dominators(&b.preds, words);
        // Natural loops: the walker's syntactic loops whose back edge
        // (body-out → header) the dominator tree confirms. The builder
        // only creates header-targeted edges for loop constructs, so
        // confirmation means checking the header dominates some pred of
        // itself.
        let confirmed: Vec<&SynLoop> = b
            .syn_loops
            .iter()
            .filter(|s| {
                let h = s.header_block as usize;
                b.preds[h].iter().any(|&p| bit(&cfg.dom[p as usize], h))
            })
            .collect();
        let mut loops: Vec<LoopInfo> = confirmed
            .iter()
            .map(|s| LoopInfo {
                line: toks[s.keyword].line,
                keyword: s.keyword,
                body_open: s.body_open,
                body_close: s.body_close,
                header_idents: s.header_idents.clone(),
                depth: 1,
            })
            .collect();
        // Depth by token containment: a loop nested in k others has
        // depth k+1. Token ranges nest properly, so containment is the
        // natural-loop nesting.
        let spans: Vec<(usize, usize)> = loops.iter().map(|l| (l.keyword, l.body_close)).collect();
        for (li, l) in loops.iter_mut().enumerate() {
            l.depth = 1 + spans
                .iter()
                .enumerate()
                .filter(|&(oi, &(ks, kc))| oi != li && ks < l.keyword && l.body_close <= kc)
                .count() as u32;
        }
        loops.sort_by_key(|l| l.keyword);
        cfg.loops = loops;
        cfg
    }

    /// Block id of a token (entry for tokens outside the body).
    fn block_at(&self, tok: usize) -> usize {
        if tok < self.open || tok > self.close {
            return ENTRY as usize;
        }
        self.label[tok - self.open] as usize
    }

    /// Whether the block holding `a_tok` dominates the block holding
    /// `b_tok`. Degenerate CFGs (block cap exceeded) answer `true` —
    /// the flow-insensitive, finding-killing default.
    pub fn dominates(&self, a_tok: usize, b_tok: usize) -> bool {
        if self.dom.is_empty() {
            return true;
        }
        let a = self.block_at(a_tok);
        let b = self.block_at(b_tok);
        bit(&self.dom[b], a)
    }

    /// The innermost natural loop whose body contains `tok`, if any.
    pub fn innermost_loop_at(&self, tok: usize) -> Option<&LoopInfo> {
        self.loops
            .iter()
            .filter(|l| l.body_open < tok && tok < l.body_close)
            .max_by_key(|l| l.depth)
    }
}

fn bit(row: &[u64], i: usize) -> bool {
    row.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0)
}

/// Iterative dominator sets. Entry is its own singleton; every other
/// block starts at ⊤ and intersects its predecessors' sets until
/// stable, so unreachable blocks keep ⊤ (dominated by everything).
fn dominators(preds: &[Vec<u32>], words: usize) -> Vec<Vec<u64>> {
    let n = preds.len();
    let top = vec![u64::MAX; words];
    let mut dom: Vec<Vec<u64>> = vec![top; n];
    let entry = ENTRY as usize;
    dom[entry] = vec![0; words];
    dom[entry][entry / 64] |= 1 << (entry % 64);
    loop {
        let mut changed = false;
        for b in 0..n {
            if b == entry {
                continue;
            }
            let mut next = vec![u64::MAX; words];
            for &p in &preds[b] {
                for (w, pw) in next.iter_mut().zip(&dom[p as usize]) {
                    *w &= pw;
                }
            }
            next[b / 64] |= 1 << (b % 64);
            if next != dom[b] {
                dom[b] = next;
                changed = true;
            }
        }
        if !changed {
            return dom;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{parse, Item};
    use crate::lexer::lex;
    use crate::lints::test_mask;

    /// Builds the CFG of the first fn in `src` and returns it with the
    /// token stream.
    fn cfg_of(src: &str) -> (Vec<Token>, Cfg) {
        let lx = lex(src);
        let mask = test_mask(&lx.tokens, crate::FileKind::Lib);
        let ast = parse(&lx.tokens, &mask);
        for it in &ast.items {
            if let Item::Fn(f) = it {
                let body = f.body.as_ref().expect("body");
                let cfg = Cfg::build(&lx.tokens, body);
                return (lx.tokens, cfg);
            }
        }
        panic!("no fn in source");
    }

    /// Token index of the `n`th occurrence of `text` (0-based).
    fn tok_at(toks: &[Token], text: &str, n: usize) -> usize {
        toks.iter()
            .enumerate()
            .filter(|(_, t)| t.text == text)
            .map(|(i, _)| i)
            .nth(n)
            .unwrap_or_else(|| panic!("no occurrence {n} of `{text}`"))
    }

    #[test]
    fn straight_line_is_one_dominating_block() {
        let (toks, cfg) = cfg_of("fn f(a: u64) -> u64 { let b = a; let c = b; c }");
        let b = tok_at(&toks, "b", 0);
        let c = tok_at(&toks, "c", 0);
        assert!(cfg.dominates(b, c));
        assert!(cfg.dominates(c, b), "same block dominates both ways");
        assert!(cfg.loops.is_empty());
    }

    #[test]
    fn condition_dominates_then_branch_but_branch_not_join() {
        let (toks, cfg) = cfg_of(
            "fn f(n: u64) -> u64 {\n\
                let pre = 1;\n\
                if n > pre {\n\
                    let inside = 2;\n\
                    return inside;\n\
                }\n\
                let after = 3;\n\
                after\n\
             }",
        );
        let pre = tok_at(&toks, "pre", 0);
        let cond_n = tok_at(&toks, "n", 1); // `n` in the condition
        let inside = tok_at(&toks, "inside", 0);
        let after = tok_at(&toks, "after", 0);
        assert!(cfg.dominates(pre, inside), "entry dominates the branch");
        assert!(cfg.dominates(cond_n, inside), "condition dominates then");
        assert!(cfg.dominates(pre, after), "entry dominates the join");
        assert!(
            !cfg.dominates(inside, after),
            "a then-branch must not dominate code after the join"
        );
    }

    #[test]
    fn else_branches_do_not_dominate_each_other() {
        let (toks, cfg) = cfg_of(
            "fn f(n: u64) -> u64 {\n\
                let mut out = 0;\n\
                if n > 1 { let a = 1; out += a; } else { let b = 2; out += b; }\n\
                out\n\
             }",
        );
        let a = tok_at(&toks, "a", 0);
        let b = tok_at(&toks, "b", 0);
        let out_last = tok_at(&toks, "out", 3);
        assert!(!cfg.dominates(a, b));
        assert!(!cfg.dominates(b, a));
        assert!(!cfg.dominates(a, out_last), "branch does not dominate join");
    }

    #[test]
    fn match_arms_are_parallel_blocks() {
        let (toks, cfg) = cfg_of(
            "fn f(n: u64) -> u64 {\n\
                match n {\n\
                    0 => { let x = 1; x }\n\
                    1 => { let y = 2; y }\n\
                    _ => 0,\n\
                }\n\
             }",
        );
        let x = tok_at(&toks, "x", 0);
        let y = tok_at(&toks, "y", 0);
        let scrutinee = tok_at(&toks, "n", 1);
        assert!(!cfg.dominates(x, y));
        assert!(!cfg.dominates(y, x));
        assert!(cfg.dominates(scrutinee, x), "scrutinee dominates every arm");
        assert!(cfg.dominates(scrutinee, y));
    }

    #[test]
    fn loop_headers_dominate_bodies_and_loops_nest_with_depth() {
        let (toks, cfg) = cfg_of(
            "fn f(n: u64) -> u64 {\n\
                let mut acc = 0;\n\
                for cycle in 0..n {\n\
                    while acc < cycle {\n\
                        acc += 1;\n\
                    }\n\
                }\n\
                acc\n\
             }",
        );
        assert_eq!(cfg.loops.len(), 2, "both loops are natural loops");
        let outer = &cfg.loops[0];
        let inner = &cfg.loops[1];
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(outer.header_idents.contains(&"cycle".to_owned()));
        let acc_in_body = tok_at(&toks, "acc", 2); // acc += 1
        assert_eq!(
            cfg.innermost_loop_at(acc_in_body).map(|l| l.depth),
            Some(2),
            "innermost loop wins"
        );
        let hdr_cycle = tok_at(&toks, "cycle", 0);
        assert!(
            cfg.dominates(hdr_cycle, acc_in_body),
            "loop header dominates the body"
        );
        let acc_last = tok_at(&toks, "acc", 3); // trailing `acc` expression
        assert!(
            !cfg.dominates(acc_in_body, acc_last),
            "a loop body must not dominate code after the loop"
        );
    }

    #[test]
    fn code_after_return_degrades_to_dominated_by_everything() {
        // Orphaned code keeps the ⊤ dominator set: evidence anywhere
        // kills findings inside it — the safe direction.
        let (toks, cfg) = cfg_of(
            "fn f(n: u64) -> u64 {\n\
                if n > 0 { let a = 1; return a; }\n\
                let b = 2;\n\
                b\n\
             }",
        );
        let a = tok_at(&toks, "a", 0);
        let b = tok_at(&toks, "b", 0);
        // `b` is reachable (the if may not fire), so the branch must
        // still not dominate it.
        assert!(!cfg.dominates(a, b));
    }
}
