//! Workspace symbol table and function call graph, built from the
//! per-file ASTs of [`crate::ast`].
//!
//! Resolution is name-based — there is no type checker here — so every
//! rule is conservative: a call resolves only when the workspace gives
//! an unambiguous answer for it (same file, then same crate, then a
//! workspace-unique name), and qualifiers the workspace does not define
//! (`Vec::`, `std::`, …) resolve to nothing rather than falling back to
//! a bare-name guess. Missing edges make the semantic lints
//! under-report; invented edges would make them lie. The maps are all
//! `BTreeMap` and functions are numbered in sorted-file visit order, so
//! the graph — and therefore every finding derived from it — is
//! deterministic.

use crate::ast::{visit_enums, visit_fns, visit_structs, Ast, Callee, EnumDef, FnDef, ImplBlock};
use crate::lexer::Token;
use crate::lints::{is_punct, FileKind};
use std::collections::{BTreeMap, BTreeSet};

/// Analyzed context of one source file, supplied by the caller.
#[derive(Clone, Copy)]
pub struct FileInput<'a> {
    /// Workspace-relative display path.
    pub path: &'a str,
    /// `crates/<dir>` component (`""` for the root package,
    /// `"proptests"` for the proptest tree).
    pub crate_dir: &'a str,
    /// Build role of the file.
    pub kind: FileKind,
    /// The file's token stream.
    pub toks: &'a [Token],
    /// Per-token test mask.
    pub in_test: &'a [bool],
    /// The parsed file.
    pub ast: &'a Ast,
}

/// One function in the workspace graph.
pub struct FnNode<'a> {
    /// Index into the input file list.
    pub file: usize,
    /// The parsed definition (body facts included).
    pub def: &'a FnDef,
    /// Enclosing impl block, if the function is a method.
    pub imp: Option<&'a ImplBlock>,
    /// Whether the function is test-only (its own mask or a test file).
    pub in_test: bool,
    /// Resolved calls out of this function.
    pub calls: Vec<CallEdge<'a>>,
}

impl FnNode<'_> {
    /// The implementing type, for methods.
    pub fn self_ty(&self) -> Option<&str> {
        self.imp.map(|b| b.self_ty.as_str())
    }

    /// `Type::name` or bare `name`, for messages.
    pub fn display_name(&self) -> String {
        match self.self_ty() {
            Some(ty) => format!("{ty}::{}", self.def.name),
            None => self.def.name.clone(),
        }
    }
}

/// One call site with its resolved in-workspace targets.
pub struct CallEdge<'a> {
    /// The AST call site.
    pub site: &'a crate::ast::CallSite,
    /// Display name of the callee, for messages.
    pub name: String,
    /// Whether the call is a bare statement (`…;` discarding the value).
    pub bare_statement: bool,
    /// Resolved target functions (empty when unknown/out-of-workspace).
    pub targets: Vec<usize>,
}

/// A closed enum the dispatch lint protects: union of variants across
/// same-named workspace definitions.
pub struct ClosedEnum {
    /// Variant names.
    pub variants: BTreeSet<String>,
    /// Defining file index (first definition, for messages).
    pub file: usize,
}

/// The workspace graph.
pub struct Workspace<'a> {
    /// Every function, in deterministic id order.
    pub fns: Vec<FnNode<'a>>,
    /// Every struct definition with its file index.
    pub structs: Vec<(usize, &'a crate::ast::StructDef)>,
    /// Closed (`#[non_exhaustive]`-free) workspace enums by name.
    pub closed_enums: BTreeMap<String, ClosedEnum>,
}

/// Key sets used during call resolution.
struct Indexes {
    /// (file, name) → free fns in that file.
    free_by_file: BTreeMap<(usize, String), Vec<usize>>,
    /// (crate_dir, name) → free fns in that crate.
    free_by_crate: BTreeMap<(String, String), Vec<usize>>,
    /// (crate_dir, module, name) → free fns in that module.
    free_by_module: BTreeMap<(String, String, String), Vec<usize>>,
    /// name → free fns anywhere.
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// (self_ty, name) → impl fns anywhere.
    method_by_ty: BTreeMap<(String, String), Vec<usize>>,
    /// name → impl fns anywhere.
    method_by_name: BTreeMap<String, Vec<usize>>,
    /// fn id → its crate dir, for crate-filtered resolution.
    fn_crate: BTreeMap<usize, String>,
    /// Crate dirs that exist, for `tcp_x` → `x` mapping.
    crate_dirs: BTreeSet<String>,
}

/// Module name of a file: its stem, with crate roots mapping to `""`.
fn module_of(path: &str) -> String {
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    if matches!(stem, "lib" | "main" | "mod") {
        String::new()
    } else {
        stem.to_owned()
    }
}

/// `tcp_cache` → `cache` when such a crate exists in the inputs.
fn crate_of(seg: &str, idx: &Indexes) -> Option<String> {
    let dir = seg.strip_prefix("tcp_")?;
    if idx.crate_dirs.contains(dir) {
        Some(dir.to_owned())
    } else {
        None
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Builds the workspace graph from analyzed files. Files must be in a
/// deterministic (sorted) order; fn ids follow that order.
pub fn build<'a>(files: &[FileInput<'a>]) -> Workspace<'a> {
    let mut fns: Vec<FnNode<'a>> = Vec::new();
    let mut structs = Vec::new();
    let mut closed: BTreeMap<String, ClosedEnum> = BTreeMap::new();
    let mut open_enums: BTreeSet<String> = BTreeSet::new();

    for (fi, file) in files.iter().enumerate() {
        let whole_file_test = file.kind == FileKind::Test;
        for fr in visit_fns(file.ast) {
            let impl_test = fr.imp.is_some_and(|b| b.in_test);
            fns.push(FnNode {
                file: fi,
                def: fr.f,
                imp: fr.imp,
                in_test: whole_file_test || fr.f.in_test || impl_test,
                calls: Vec::new(),
            });
        }
        for s in visit_structs(file.ast) {
            if !(whole_file_test || s.in_test) {
                structs.push((fi, s));
            }
        }
        for e in visit_enums(file.ast) {
            if whole_file_test || e.in_test {
                continue;
            }
            record_enum(&mut closed, &mut open_enums, fi, e);
        }
    }
    for name in &open_enums {
        closed.remove(name);
    }

    let idx = build_indexes(files, &fns);
    let mut resolved: Vec<Vec<CallEdge<'a>>> = Vec::new();
    for node in &fns {
        let file = &files[node.file];
        let mut edges = Vec::new();
        let body_calls = node.def.body.iter().flat_map(|b| b.calls.iter());
        for site in body_calls {
            let targets = resolve(site, node, file, &idx);
            edges.push(CallEdge {
                site,
                name: callee_name(&site.callee),
                bare_statement: bare_statement(file.toks, site),
                targets,
            });
        }
        resolved.push(edges);
    }
    for (node, edges) in fns.iter_mut().zip(resolved) {
        node.calls = edges;
    }

    Workspace {
        fns,
        structs,
        closed_enums: closed,
    }
}

/// Tracks an enum definition: `#[non_exhaustive]` poisons the name.
fn record_enum(
    closed: &mut BTreeMap<String, ClosedEnum>,
    open: &mut BTreeSet<String>,
    fi: usize,
    e: &EnumDef,
) {
    if e.non_exhaustive {
        open.insert(e.name.clone());
        return;
    }
    match closed.get_mut(&e.name) {
        Some(existing) => existing.variants.extend(e.variants.iter().cloned()),
        None => {
            closed.insert(
                e.name.clone(),
                ClosedEnum {
                    variants: e.variants.iter().cloned().collect(),
                    file: fi,
                },
            );
        }
    }
}

fn build_indexes(files: &[FileInput<'_>], fns: &[FnNode<'_>]) -> Indexes {
    let mut idx = Indexes {
        free_by_file: BTreeMap::new(),
        free_by_crate: BTreeMap::new(),
        free_by_module: BTreeMap::new(),
        free_by_name: BTreeMap::new(),
        method_by_ty: BTreeMap::new(),
        method_by_name: BTreeMap::new(),
        fn_crate: BTreeMap::new(),
        crate_dirs: BTreeSet::new(),
    };
    for file in files {
        if !file.crate_dir.is_empty() {
            idx.crate_dirs.insert(file.crate_dir.to_owned());
        }
    }
    for (id, node) in fns.iter().enumerate() {
        // Test helpers are never resolution targets for non-test code.
        if node.in_test {
            continue;
        }
        let file = &files[node.file];
        let name = node.def.name.clone();
        idx.fn_crate.insert(id, file.crate_dir.to_owned());
        match node.self_ty() {
            Some(ty) => {
                idx.method_by_ty
                    .entry((ty.to_owned(), name.clone()))
                    .or_default()
                    .push(id);
                idx.method_by_name.entry(name).or_default().push(id);
            }
            None => {
                idx.free_by_file
                    .entry((node.file, name.clone()))
                    .or_default()
                    .push(id);
                idx.free_by_crate
                    .entry((file.crate_dir.to_owned(), name.clone()))
                    .or_default()
                    .push(id);
                idx.free_by_module
                    .entry((
                        file.crate_dir.to_owned(),
                        module_of(file.path),
                        name.clone(),
                    ))
                    .or_default()
                    .push(id);
                idx.free_by_name.entry(name).or_default().push(id);
            }
        }
    }
    idx
}

fn callee_name(c: &Callee) -> String {
    match c {
        Callee::Path(segs) => segs.join("::"),
        Callee::Method { name, on_self: _ } => name.clone(),
    }
}

/// Whether the call is a whole bare statement: preceded by a statement
/// boundary and immediately terminated by `;`.
fn bare_statement(toks: &[Token], site: &crate::ast::CallSite) -> bool {
    let after_semi = toks
        .get(site.paren_close + 1)
        .is_some_and(|t| is_punct(t, ";"));
    if !after_semi {
        return false;
    }
    if site.expr_start == 0 {
        return false;
    }
    toks.get(site.expr_start - 1)
        .is_some_and(|t| is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}"))
}

/// Resolves one call site to target fn ids. Empty when the callee is
/// out-of-workspace or ambiguous.
fn resolve(
    site: &crate::ast::CallSite,
    node: &FnNode<'_>,
    file: &FileInput<'_>,
    idx: &Indexes,
) -> Vec<usize> {
    let out = match &site.callee {
        Callee::Method { name, on_self } => resolve_method(name, *on_self, node, file, idx),
        Callee::Path(segs) => resolve_path(segs, node, file, idx),
    };
    let mut out = out;
    out.sort_unstable();
    out.dedup();
    out
}

fn resolve_method(
    name: &str,
    on_self: bool,
    node: &FnNode<'_>,
    file: &FileInput<'_>,
    idx: &Indexes,
) -> Vec<usize> {
    if on_self {
        if let Some(ty) = node.self_ty() {
            return prefer_crate(
                idx.method_by_ty
                    .get(&(ty.to_owned(), name.to_owned()))
                    .cloned()
                    .unwrap_or_default(),
                file.crate_dir,
                idx,
            );
        }
    }
    // Unknown receiver type: resolve only a workspace-unique method name.
    match idx.method_by_name.get(name) {
        Some(ids) if ids.len() == 1 => ids.clone(),
        Some(_) | None => Vec::new(),
    }
}

fn resolve_path(
    segs: &[String],
    node: &FnNode<'_>,
    file: &FileInput<'_>,
    idx: &Indexes,
) -> Vec<usize> {
    let mut segs: Vec<String> = segs.to_vec();
    if segs.first().is_some_and(|s| s == "Self") {
        match node.self_ty() {
            Some(ty) => segs[0] = ty.to_owned(),
            None => return Vec::new(),
        }
    }
    let Some(name) = segs.last().cloned() else {
        return Vec::new();
    };
    if segs.len() == 1 {
        if let Some(ids) = idx.free_by_file.get(&(node.file, name.clone())) {
            return ids.clone();
        }
        if let Some(ids) = idx
            .free_by_crate
            .get(&(file.crate_dir.to_owned(), name.clone()))
        {
            return ids.clone();
        }
        // A use-imported free fn: accept only a workspace-unique name.
        return match idx.free_by_name.get(&name) {
            Some(ids) if ids.len() == 1 => ids.clone(),
            Some(_) | None => Vec::new(),
        };
    }
    let qualifier = segs[segs.len() - 2].clone();
    if starts_upper(&qualifier) {
        // `Type::assoc(…)`, possibly crate-prefixed.
        let mut ids = idx
            .method_by_ty
            .get(&(qualifier, name))
            .cloned()
            .unwrap_or_default();
        if segs.len() >= 3 {
            if let Some(c) = crate_of(&segs[0], idx) {
                ids.retain(|&id| idx.fn_crate.get(&id).map(String::as_str) == Some(c.as_str()));
                return ids;
            }
        }
        return prefer_crate(ids, file.crate_dir, idx);
    }
    // `module::f(…)` or `tcp_crate::f(…)` or `tcp_crate::module::f(…)`.
    let target_crate = crate_of(&segs[0], idx);
    if segs.len() == 2 {
        if let Some(c) = target_crate {
            return idx
                .free_by_crate
                .get(&(c, name))
                .cloned()
                .unwrap_or_default();
        }
        return idx
            .free_by_module
            .get(&(file.crate_dir.to_owned(), qualifier, name))
            .cloned()
            .unwrap_or_default();
    }
    let c = target_crate.unwrap_or_else(|| file.crate_dir.to_owned());
    if let Some(ids) = idx
        .free_by_module
        .get(&(c.clone(), qualifier, name.clone()))
    {
        return ids.clone();
    }
    // Root re-exports: `tcp_x::deep::path::f` resolved by crate alone.
    idx.free_by_crate
        .get(&(c, name))
        .cloned()
        .unwrap_or_default()
}

/// When multiple crates define the same `Type::method`, prefer the
/// caller's own crate; otherwise keep all candidates.
fn prefer_crate(ids: Vec<usize>, crate_dir: &str, idx: &Indexes) -> Vec<usize> {
    if ids.len() <= 1 {
        return ids;
    }
    let own: Vec<usize> = ids
        .iter()
        .copied()
        .filter(|id| idx.fn_crate.get(id).map(String::as_str) == Some(crate_dir))
        .collect();
    if own.is_empty() {
        ids
    } else {
        own
    }
}
