//! Intra-procedural dataflow engine for the tcp-lint v3 passes.
//!
//! Each parsed function body is lowered into a list of assignment
//! statements (`let` bindings and plain `name = …` / `name op= …`
//! re-assignments, discovered at every nesting depth), and an abstract
//! environment is iterated to fixpoint over them:
//!
//! - **Provenance tags** — a small bitset recording where a value came
//!   from: cycle counters, addresses, cache tags, stat counters, lock
//!   guards, loop indices, worker/thread identity. Tags seed from
//!   parameter and binder *names* (exact snake_case components, so
//!   `stage` never reads as `tag`) and then flow through assignments:
//!   the binder's tags become the union of its own seed and the tags of
//!   every identifier appearing in the right-hand side *outside* index
//!   brackets. Container contents are not their index — `deques[worker]`
//!   taints nothing — which is what keeps the deterministic
//!   work-stealing executor clean.
//! - **Intervals** — a conservative constant/interval lattice for
//!   literals and simple `+`/`-`/`*`/`<<` arithmetic over known values,
//!   evaluated with Rust precedence. Anything the evaluator cannot
//!   follow is ⊤ (absent), never a guess.
//!
//! On top of the fixpoint environment the engine extracts the *fact
//! lists* the four v3 lints consume: live `Mutex`-guard ranges and
//! `.lock()` call sites (lock-discipline), tagged unchecked arithmetic
//! (overflow-provenance), unguarded composite index expressions
//! (index-bounds), and worker-identity values reaching returns or stat
//! fields (nondet-taint).
//!
//! The conservatism rule of the whole linter applies here unchanged: no
//! edge/no tag ⇒ no finding. Patterns the lowering cannot follow
//! (destructuring `let`, `if let` guards, trailing-expression data flow
//! through nested blocks) degrade to "no facts", i.e. under-reporting,
//! never to invented findings.

use crate::ast::{BodyFacts, Callee, FnDef};
use crate::cfg::Cfg;
use crate::lexer::{TokKind, Token};
use std::collections::BTreeMap;

/// Provenance tag bitset.
pub type Tags = u8;

/// Value derives from a cycle counter.
pub const TAG_CYCLE: Tags = 1 << 0;
/// Value derives from a memory address.
pub const TAG_ADDR: Tags = 1 << 1;
/// Value derives from a cache tag.
pub const TAG_TAG: Tags = 1 << 2;
/// Value derives from a statistics counter.
pub const TAG_STAT: Tags = 1 << 3;
/// Value derives from worker/thread identity (scheduling-dependent).
pub const TAG_WORKER: Tags = 1 << 4;
/// Value is a lock guard.
pub const TAG_GUARD: Tags = 1 << 5;
/// Value is a loop index.
pub const TAG_LOOP: Tags = 1 << 6;

/// The tags that make unchecked arithmetic a finding.
const ARITH_TAGS: Tags = TAG_CYCLE | TAG_ADDR | TAG_TAG | TAG_STAT;

/// Inclusive interval of possible values, when statically known.
pub type Interval = (i128, i128);

/// A `let`-bound lock guard and the token range it is live over.
#[derive(Debug)]
pub struct GuardRange {
    /// Binder name.
    pub name: String,
    /// 1-based line of the binder.
    pub line: u32,
    /// 1-based column of the binder.
    pub col: u32,
    /// Normalized receiver text of the `.lock()` that made the guard
    /// (`m`, `self.deques[victim]`, …) — textual identity, so distinct
    /// index expressions never alias.
    pub mutex: String,
    /// Token index where the guard becomes live (just past the `;`).
    pub start: usize,
    /// Token index where the guard dies: `drop(name)` or the `}` of the
    /// enclosing block.
    pub end: usize,
}

/// One `.lock()` call site in the body.
#[derive(Debug)]
pub struct LockSite {
    /// 1-based line of the `lock` token.
    pub line: u32,
    /// 1-based column of the `lock` token.
    pub col: u32,
    /// Normalized receiver text.
    pub recv: String,
    /// Token index of the argument list's `(`.
    pub paren_open: usize,
}

/// A violating site found by one of the intra-procedural passes.
#[derive(Debug)]
pub struct Violation {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description (the finding message body).
    pub what: String,
}

/// Everything the dataflow engine learned about one function body.
#[derive(Debug, Default)]
pub struct FnFlow {
    /// Fixpoint provenance environment: identifier → tags.
    pub tags: BTreeMap<String, Tags>,
    /// Fixpoint interval environment: identifier → known interval.
    pub intervals: BTreeMap<String, Interval>,
    /// Live `let`-bound lock-guard ranges.
    pub guards: Vec<GuardRange>,
    /// Every `.lock()` call site.
    pub locks: Vec<LockSite>,
    /// overflow-provenance violations.
    pub overflow: Vec<Violation>,
    /// index-bounds violations.
    pub index: Vec<Violation>,
    /// nondet-taint violations.
    pub taint: Vec<Violation>,
    /// The body's control-flow graph (present after a full analysis).
    pub cfg: Option<Cfg>,
}

/// One lowered assignment statement.
struct Assign {
    /// Bound/assigned identifier.
    binder: String,
    /// RHS token range (start inclusive, end exclusive).
    rhs: (usize, usize),
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

fn is_open(t: &Token) -> bool {
    is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")
}

fn is_close(t: &Token) -> bool {
    is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")
}

/// Index of the delimiter closing the group opened at `open`.
fn matching(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Whether a name is const/type-like (contains an uppercase letter):
/// `L1_SIZE` or `TAG_WORKER` is compile-time configuration, not a
/// runtime counter, so it neither seeds provenance nor counts as a
/// runtime operand.
fn const_like(name: &str) -> bool {
    name.chars().any(|c| c.is_ascii_uppercase())
}

/// Keywords the lexer reports as `Ident` tokens; never value operands.
fn keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "else"
            | "while"
            | "for"
            | "in"
            | "return"
            | "match"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "loop"
            | "break"
            | "continue"
            | "as"
            | "where"
            | "fn"
            | "impl"
            | "use"
            | "pub"
    )
}

/// Provenance seed from an identifier's name: exact snake_case
/// components only, so `stage` does not read as `tag` and `n_workers`
/// (a thread *count*, which is configuration) does not read as worker
/// identity. Const/type-like names never seed.
pub fn seed_tags(name: &str) -> Tags {
    if const_like(name) {
        return 0;
    }
    let lower = name.to_ascii_lowercase();
    if lower == "tid" || lower == "thread_id" {
        return TAG_WORKER;
    }
    let mut tags = 0;
    for part in lower.split('_') {
        tags |= match part {
            "cycle" | "cycles" => TAG_CYCLE,
            "addr" | "addrs" | "address" => TAG_ADDR,
            "tag" | "tags" => TAG_TAG,
            "stat" | "stats" => TAG_STAT,
            "worker" => TAG_WORKER,
            _ => 0,
        };
    }
    tags
}

/// Assignment operators that keep the binder's prior tags (`op=`) or
/// replace them (`=`) — for tag joining both behave the same, since the
/// environment is a per-name join over all paths anyway.
const ASSIGN_OPS: [&str; 11] = [
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Runs the engine over one function body. Returns `None` when the
/// function has no body.
pub fn analyze(toks: &[Token], in_test: &[bool], def: &FnDef) -> Option<FnFlow> {
    analyze_with(toks, in_test, def, &BTreeMap::new(), true)
}

/// The v4 entry point. `call_tags` maps a call site's `(` token index
/// to the provenance tags the callee returns (from the interprocedural
/// summaries) — an assignment whose RHS contains such a call seeds the
/// binder with those tags, so taint and overflow provenance survive
/// function boundaries. With `full == false` only the environment and
/// lock facts are computed (the cheap phase the summary pass needs);
/// the violation passes and the CFG are skipped.
pub fn analyze_with(
    toks: &[Token],
    in_test: &[bool],
    def: &FnDef,
    call_tags: &BTreeMap<usize, Tags>,
    full: bool,
) -> Option<FnFlow> {
    let body = def.body.as_ref()?;
    let mut flow = FnFlow::default();

    // ---- Seed: parameters and their names. -------------------------
    for p in &def.params {
        let entry = flow.tags.entry(p.name.clone()).or_insert(0);
        *entry |= seed_tags(&p.name);
    }

    // ---- Lower: assignment statements and loop binders. ------------
    let assigns = collect_assigns(toks, body, &mut flow);

    // ---- Fixpoint over the tag + interval environment. -------------
    // A linear pass can miss chains that appear in reverse source
    // order (`a = b; let b = cycle;` in a loop), so iterate until
    // stable; the domain is finite and joins are monotone, so this
    // terminates — the cap is a belt against pathological inputs.
    for _ in 0..10 {
        let mut changed = false;
        for a in &assigns {
            let mut rhs_tags = span_tags(toks, a.rhs.0, a.rhs.1, &flow.tags);
            for (_, t) in call_tags.range(a.rhs.0..a.rhs.1) {
                rhs_tags |= t;
            }
            let want = seed_tags(&a.binder) | rhs_tags;
            let entry = flow.tags.entry(a.binder.clone()).or_insert(0);
            if *entry | want != *entry {
                *entry |= want;
                changed = true;
            }
            if let Some(iv) = eval_interval(toks, a.rhs.0, a.rhs.1, &flow.intervals) {
                if flow.intervals.get(&a.binder) != Some(&iv) {
                    flow.intervals.insert(a.binder.clone(), iv);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- Fact extraction on the stable environment. ----------------
    collect_locks(toks, body, &mut flow);
    collect_guards(toks, body, &mut flow);
    if full {
        let cfg = Cfg::build(toks, body);
        overflow_pass(toks, in_test, body, &mut flow);
        index_pass(toks, in_test, body, &cfg, &mut flow);
        taint_pass(toks, in_test, body, &assigns, call_tags, &mut flow);
        flow.cfg = Some(cfg);
    }
    Some(flow)
}

/// Provenance tags of a body's returned values: the union over every
/// `return` statement's expression and a simple trailing expression
/// (one with no nested block — a braced tail would over-taint, so it
/// contributes nothing, per the under-matching contract). `call_rets`
/// adds the return tags of summarized calls appearing in those spans.
pub fn return_tags(
    toks: &[Token],
    body: &BodyFacts,
    flow: &FnFlow,
    call_rets: &BTreeMap<usize, Tags>,
) -> Tags {
    let mut tags = 0;
    let mut i = body.open + 1;
    while i < body.close {
        if is_ident(&toks[i], "return") && !(i > 0 && is_punct(&toks[i - 1], ".")) {
            let end = stmt_end(toks, i + 1, body.close);
            tags |= span_tags(toks, i + 1, end, &flow.tags);
            for (_, t) in call_rets.range(i + 1..end) {
                tags |= t;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    // Trailing expression: whatever follows the last statement
    // boundary (a depth-zero `;`, or the `}` of a braced statement).
    let mut tail_start = body.open + 1;
    let mut j = body.open + 1;
    while j < body.close {
        let t = &toks[j];
        if is_punct(t, ";") {
            j += 1;
            tail_start = j;
            continue;
        }
        if is_open(t) {
            let c = matching(toks, j).unwrap_or(body.close);
            let braced = is_punct(t, "{");
            j = c + 1;
            if braced && j <= body.close {
                tail_start = j;
            }
            continue;
        }
        j += 1;
    }
    let tail = &toks[tail_start..body.close.min(toks.len())];
    if !tail.is_empty() && !tail.iter().any(|t| is_punct(t, "{")) {
        tags |= span_tags(toks, tail_start, body.close, &flow.tags);
        for (_, t) in call_rets.range(tail_start..body.close) {
            tags |= t;
        }
    }
    tags
}

/// Finds every assignment statement in the body, at any nesting depth
/// (closure and block bodies included), and seeds loop binders.
fn collect_assigns(toks: &[Token], body: &BodyFacts, flow: &mut FnFlow) -> Vec<Assign> {
    let mut out = Vec::new();
    let mut i = body.open + 1;
    while i < body.close {
        let t = &toks[i];
        // `for binder in …` — the binder is a loop index.
        if is_ident(t, "for")
            && !(i > 0 && is_punct(&toks[i - 1], "."))
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
        {
            let binder = &toks[i + 1];
            if toks.get(i + 2).is_some_and(|n| is_ident(n, "in")) {
                let e = flow.tags.entry(binder.text.clone()).or_insert(0);
                *e |= TAG_LOOP | seed_tags(&binder.text);
            }
        }
        // `let [mut] name [: ty] = rhs ;`
        if is_ident(t, "let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| is_ident(n, "mut")) {
                j += 1;
            }
            let Some(binder) = toks.get(j) else {
                break;
            };
            if binder.kind == TokKind::Ident
                && toks
                    .get(j + 1)
                    .is_some_and(|n| is_punct(n, ":") || is_punct(n, "="))
            {
                let mut k = j + 1;
                if is_punct(&toks[k], ":") {
                    // Skip the type annotation to the `=` (or give up
                    // at `;` — `let x: T;` has no RHS).
                    k += 1;
                    while k < body.close && !is_punct(&toks[k], "=") && !is_punct(&toks[k], ";") {
                        if is_open(&toks[k]) {
                            k = matching(toks, k).map_or(body.close, |c| c + 1);
                        } else {
                            k += 1;
                        }
                    }
                }
                if k < body.close && is_punct(&toks[k], "=") {
                    let rhs_start = k + 1;
                    let rhs_end = stmt_end(toks, rhs_start, body.close);
                    out.push(Assign {
                        binder: binder.text.clone(),
                        rhs: (rhs_start, rhs_end),
                    });
                }
            }
            i += 1;
            continue;
        }
        // Plain re-assignment at a statement start: `name op= rhs ;`.
        if t.kind == TokKind::Ident
            && i > 0
            && (is_punct(&toks[i - 1], ";")
                || is_punct(&toks[i - 1], "{")
                || is_punct(&toks[i - 1], "}"))
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Punct && ASSIGN_OPS.contains(&n.text.as_str()))
            && !is_punct(&toks[i + 1], "=")
        {
            // `x = …` (plain =) also matches via the branch below; the
            // op= family lands here.
            let rhs_start = i + 2;
            let rhs_end = stmt_end(toks, rhs_start, body.close);
            out.push(Assign {
                binder: t.text.clone(),
                rhs: (rhs_start, rhs_end),
            });
        } else if t.kind == TokKind::Ident
            && i > 0
            && (is_punct(&toks[i - 1], ";")
                || is_punct(&toks[i - 1], "{")
                || is_punct(&toks[i - 1], "}"))
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "="))
            && !toks.get(i + 2).is_some_and(|n| is_punct(n, "="))
        {
            let rhs_start = i + 2;
            let rhs_end = stmt_end(toks, rhs_start, body.close);
            out.push(Assign {
                binder: t.text.clone(),
                rhs: (rhs_start, rhs_end),
            });
        }
        i += 1;
    }
    out
}

/// Index of the `;` (exclusive end) terminating the statement starting
/// at `i`, skipping nested delimiter groups.
fn stmt_end(toks: &[Token], mut i: usize, close: usize) -> usize {
    while i < close {
        let t = &toks[i];
        if is_punct(t, ";") {
            return i;
        }
        if is_open(t) {
            i = matching(toks, i).map_or(close, |c| c + 1);
            continue;
        }
        i += 1;
    }
    close
}

/// Union of tags over identifiers in `[start, end)` that sit *outside*
/// index brackets — a container's contents do not carry its index's
/// provenance.
fn span_tags(toks: &[Token], start: usize, end: usize, env: &BTreeMap<String, Tags>) -> Tags {
    let mut tags = 0;
    let mut i = start;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        if is_punct(t, "[") {
            i = matching(toks, i).map_or(end, |c| c + 1);
            continue;
        }
        if t.kind == TokKind::Ident {
            tags |= seed_tags(&t.text) | env.get(&t.text).copied().unwrap_or(0);
        }
        i += 1;
    }
    tags
}

/// Whether a worker-tainted identifier appears in `[start, end)`
/// outside index brackets; returns its name.
fn tainted_ident_in(
    toks: &[Token],
    start: usize,
    end: usize,
    env: &BTreeMap<String, Tags>,
) -> Option<String> {
    let mut i = start;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        if is_punct(t, "[") {
            i = matching(toks, i).map_or(end, |c| c + 1);
            continue;
        }
        if t.kind == TokKind::Ident {
            let tags = seed_tags(&t.text) | env.get(&t.text).copied().unwrap_or(0);
            if tags & TAG_WORKER != 0 {
                return Some(t.text.clone());
            }
        }
        i += 1;
    }
    None
}

/// Interval evaluation of `[start, end)` with Rust precedence
/// (`*` over `+`/`-` over `<<`). Returns `None` — ⊤ — on any token the
/// evaluator does not understand, so a known interval is always sound.
fn eval_interval(
    toks: &[Token],
    start: usize,
    end: usize,
    env: &BTreeMap<String, Interval>,
) -> Option<Interval> {
    let end = end.min(toks.len());
    // Atoms: integer literals and idents with known intervals.
    // Operators: + - * <<, left-associative within a precedence level.
    let mut atoms: Vec<Interval> = Vec::new();
    let mut ops: Vec<String> = Vec::new();
    let mut expect_atom = true;
    for t in &toks[start..end] {
        if expect_atom {
            let iv = match t.kind {
                TokKind::Int => {
                    let v = parse_int(&t.text)?;
                    (v, v)
                }
                TokKind::Ident => *env.get(&t.text)?,
                TokKind::Lifetime
                | TokKind::Str
                | TokKind::Char
                | TokKind::Float
                | TokKind::Punct => return None,
            };
            atoms.push(iv);
            expect_atom = false;
        } else {
            if !(t.kind == TokKind::Punct && matches!(t.text.as_str(), "+" | "-" | "*" | "<<")) {
                return None;
            }
            ops.push(t.text.clone());
            expect_atom = true;
        }
    }
    if expect_atom || atoms.is_empty() {
        return None;
    }
    // Reduce one precedence level at a time: * first, then +/-, then <<.
    for level in [&["*"][..], &["+", "-"][..], &["<<"][..]] {
        let mut new_atoms = vec![atoms[0]];
        let mut new_ops: Vec<String> = Vec::new();
        for (op, &rhs) in ops.iter().zip(&atoms[1..]) {
            if level.contains(&op.as_str()) {
                let lhs = new_atoms.pop()?;
                new_atoms.push(apply_op(op, lhs, rhs)?);
            } else {
                new_ops.push(op.clone());
                new_atoms.push(rhs);
            }
        }
        atoms = new_atoms;
        ops = new_ops;
    }
    if atoms.len() == 1 {
        Some(atoms[0])
    } else {
        None
    }
}

fn parse_int(text: &str) -> Option<i128> {
    let t = text.replace('_', "");
    let t = t
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .to_owned();
    let digits = if let Some(h) = t.strip_prefix("0x") {
        i128::from_str_radix(h, 16)
    } else if let Some(b) = t.strip_prefix("0b") {
        i128::from_str_radix(b, 2)
    } else if let Some(o) = t.strip_prefix("0o") {
        i128::from_str_radix(o, 8)
    } else {
        t.parse()
    };
    digits.ok()
}

fn apply_op(op: &str, (al, ah): Interval, (bl, bh): Interval) -> Option<Interval> {
    let combine = |f: fn(i128, i128) -> Option<i128>| -> Option<Interval> {
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for a in [al, ah] {
            for b in [bl, bh] {
                let v = f(a, b)?;
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        Some((lo, hi))
    };
    match op {
        "+" => combine(i128::checked_add),
        "-" => combine(i128::checked_sub),
        "*" => combine(i128::checked_mul),
        "<<" => combine(|a, b| {
            if (0..64).contains(&b) {
                a.checked_shl(b as u32)
            } else {
                None
            }
        }),
        _ => None,
    }
}

/// Records every `.lock()` call with its normalized receiver text.
fn collect_locks(toks: &[Token], body: &BodyFacts, flow: &mut FnFlow) {
    for c in &body.calls {
        let Callee::Method { name, .. } = &c.callee else {
            continue;
        };
        if name != "lock" {
            continue;
        }
        // Receiver: everything from the expression start up to the `.`
        // before the method name (the name sits right before the `(`).
        let name_idx = c.paren_open.saturating_sub(1);
        let dot_idx = name_idx.saturating_sub(1);
        let recv: String = toks[c.expr_start..dot_idx]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join("");
        flow.locks.push(LockSite {
            line: c.line,
            col: c.col,
            recv,
            paren_open: c.paren_open,
        });
    }
}

/// Finds `let [mut] g = ….lock()…;` statements and computes the token
/// range over which the guard is live: to `drop(g)` in the same block,
/// or to the `}` closing the enclosing block.
fn collect_guards(toks: &[Token], body: &BodyFacts, flow: &mut FnFlow) {
    let mut i = body.open + 1;
    while i < body.close {
        if !is_ident(&toks[i], "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| is_ident(n, "mut")) {
            j += 1;
        }
        let Some(binder) = toks.get(j) else { break };
        if !(binder.kind == TokKind::Ident && toks.get(j + 1).is_some_and(|n| is_punct(n, "="))) {
            i += 1;
            continue;
        }
        let rhs_start = j + 2;
        let rhs_end = stmt_end(toks, rhs_start, body.close);
        // Is there a `.lock(` in the RHS? Use the collected lock sites
        // so the receiver text comes out normalized the same way.
        let lock = flow
            .locks
            .iter()
            .find(|l| l.paren_open > rhs_start && l.paren_open < rhs_end);
        if let Some(lock) = lock {
            let start = rhs_end + 1;
            let end = guard_end(toks, &binder.text, start, body.close);
            flow.guards.push(GuardRange {
                name: binder.text.clone(),
                line: binder.line,
                col: binder.col,
                mutex: lock.recv.clone(),
                start,
                end,
            });
            let e = flow.tags.entry(binder.text.clone()).or_insert(0);
            *e |= TAG_GUARD;
        }
        i = rhs_end + 1;
    }
}

/// Where a guard bound at statement end `start` dies: at `drop(name)`
/// or at the first `}` that closes a block opened before the binding.
fn guard_end(toks: &[Token], name: &str, start: usize, close: usize) -> usize {
    let mut i = start;
    while i < close {
        let t = &toks[i];
        if is_ident(t, "drop")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "("))
            && toks.get(i + 2).is_some_and(|n| is_ident(n, name))
            && toks.get(i + 3).is_some_and(|n| is_punct(n, ")"))
        {
            return i;
        }
        if is_open(t) {
            i = matching(toks, i).map_or(close, |c| c + 1);
            continue;
        }
        if is_punct(t, "}") {
            return i;
        }
        i += 1;
    }
    close
}

/// overflow-provenance: unchecked `+`/`*`/`<<` where provenance-tagged
/// operands make wraparound a real hazard. `+` needs both operands
/// tagged (a `cycle + 1` tick is reviewable at sight); `*` fires with a
/// tagged operand unless the other side is a literal constant (a
/// reviewable scale factor); `<<` fires whenever the shifted value is
/// tagged — a shift of a tagged u64 discards high bits silently.
fn overflow_pass(toks: &[Token], in_test: &[bool], body: &BodyFacts, flow: &mut FnFlow) {
    for i in body.open + 1..body.close {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Punct || !matches!(t.text.as_str(), "+" | "*" | "<<") {
            continue;
        }
        // Binary position only: the previous token must end an operand
        // (`*x` deref, `&x`, `if *entry`, `)`-ended chains under-match).
        let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
            continue;
        };
        if !(prev.kind == TokKind::Ident || prev.kind == TokKind::Int) || keyword(&prev.text) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        // A const-like operand (`L1_SIZE`) is a reviewable compile-time
        // constant, same as a literal.
        let operand = |tok: &Token| -> (Tags, bool) {
            match tok.kind {
                TokKind::Ident => (
                    seed_tags(&tok.text) | flow.tags.get(&tok.text).copied().unwrap_or(0),
                    const_like(&tok.text),
                ),
                TokKind::Int => (0, true),
                TokKind::Lifetime
                | TokKind::Str
                | TokKind::Char
                | TokKind::Float
                | TokKind::Punct => (0, false),
            }
        };
        let (lhs_tags, lhs_lit) = operand(prev);
        let (rhs_tags, rhs_lit) = operand(next);
        if next.kind != TokKind::Ident && next.kind != TokKind::Int {
            continue;
        }
        let fires = match t.text.as_str() {
            "+" => lhs_tags & ARITH_TAGS != 0 && rhs_tags & ARITH_TAGS != 0,
            "*" => {
                ((lhs_tags & ARITH_TAGS != 0) && !rhs_lit)
                    || ((rhs_tags & ARITH_TAGS != 0) && !lhs_lit)
            }
            "<<" => lhs_tags & ARITH_TAGS != 0,
            _ => false,
        };
        if !fires {
            continue;
        }
        let describe = |tags: Tags| -> &'static str {
            if tags & TAG_CYCLE != 0 {
                "cycle"
            } else if tags & TAG_ADDR != 0 {
                "addr"
            } else if tags & TAG_TAG != 0 {
                "tag"
            } else {
                "stat"
            }
        };
        let prov = describe(if lhs_tags & ARITH_TAGS != 0 {
            lhs_tags
        } else {
            rhs_tags
        });
        flow.overflow.push(Violation {
            line: t.line,
            col: t.col,
            what: format!(
                "unchecked `{} {} {}` on a {prov}-provenance u64 can wrap silently; \
                 use `wrapping_*`/`checked_*` to state the intent, or waive with the \
                 bound that rules the overflow out",
                prev.text, t.text, next.text
            ),
        });
    }
}

/// index-bounds: `recv[a op b …]` composite index expressions with no
/// dominating bound evidence. The expression must be entirely
/// identifiers/integers joined by `+`/`-`/`*`/`<<` (anything else —
/// ranges, calls, `%`, masks — is treated as its own bound discipline
/// and skipped). Bound evidence that clears a site: the exact
/// expression followed by `<`/`<=` (an `assert!`, `if`, `while`, or
/// `for` header) in a basic block that *dominates* the index site — a
/// check inside a sibling branch clears nothing — or an all-constant
/// interval.
fn index_pass(toks: &[Token], in_test: &[bool], body: &BodyFacts, cfg: &Cfg, flow: &mut FnFlow) {
    for i in body.open + 1..body.close {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !is_punct(&toks[i], "[") {
            continue;
        }
        // Indexing, not an array literal / attribute: previous token
        // must be a plain identifier (chains ending in `)`/`]` are
        // under-matched away).
        let Some(recv_idx) = i.checked_sub(1) else {
            continue;
        };
        if toks[recv_idx].kind != TokKind::Ident {
            continue;
        }
        let Some(close) = matching(toks, i) else {
            continue;
        };
        let expr = &toks[i + 1..close];
        if expr.len() < 3 {
            continue; // a composite expression is at least `a op b`
        }
        let simple = expr.iter().all(|t| {
            t.kind == TokKind::Ident
                || t.kind == TokKind::Int
                || (t.kind == TokKind::Punct && matches!(t.text.as_str(), "+" | "-" | "*" | "<<"))
        });
        let n_ops = expr
            .iter()
            .filter(|t| {
                t.kind == TokKind::Punct && matches!(t.text.as_str(), "+" | "-" | "*" | "<<")
            })
            .count();
        if !simple || n_ops == 0 {
            continue;
        }
        // A known interval means every atom is a constant through the
        // lattice (`let w = 8; xs[w - 1]`) — bound evidence of the
        // compile-time kind, rustc's own const checking territory.
        if eval_interval(toks, i + 1, close, &flow.intervals).is_some() {
            continue;
        }
        // Token-scan offsets (`toks[i + 1]`, `v[rank - 1]`) have one
        // runtime quantity and a constant; the SoA plane/chunk hazard
        // this lint exists for multiplies/adds *several* runtime
        // quantities. Require at least two.
        let n_runtime = expr
            .iter()
            .filter(|t| t.kind == TokKind::Ident && !const_like(&t.text))
            .count();
        if n_runtime < 2 {
            continue;
        }
        // Bound evidence: the same token spelling followed by `<`/`<=`
        // earlier in the body (assert!/debug_assert!/if/while/for
        // headers all produce exactly this shape), *and* in a block
        // that dominates the index site — evidence on a sibling path
        // does not bound this one.
        let spelled: Vec<&str> = expr.iter().map(|t| t.text.as_str()).collect();
        let mut bounded = false;
        'scan: for w in body.open + 1..i.saturating_sub(spelled.len()) {
            let window = &toks[w..w + spelled.len()];
            for (win_tok, s) in window.iter().zip(&spelled) {
                if win_tok.text != *s {
                    continue 'scan;
                }
            }
            if toks
                .get(w + spelled.len())
                .is_some_and(|t| is_punct(t, "<") || is_punct(t, "<="))
                && cfg.dominates(w, i)
            {
                bounded = true;
                break;
            }
        }
        if bounded {
            continue;
        }
        let recv = &toks[recv_idx];
        let expr_text = spelled.join(" ");
        flow.index.push(Violation {
            line: toks[i].line,
            col: toks[i].col,
            what: format!(
                "`{}[{expr_text}]` indexes with a composite expression no dominating \
                 check bounds; assert `{expr_text} < {}.len()` first, bind the index \
                 to a name and check it, or waive with the invariant that bounds it",
                recv.text, recv.text
            ),
        });
    }
}

/// nondet-taint: worker-identity values reaching a `return` statement
/// or a stats field write. `call_tags` extends the sink scan through
/// summarized calls: `return worker_of(...)` is as tainted as
/// `return worker`.
fn taint_pass(
    toks: &[Token],
    in_test: &[bool],
    body: &BodyFacts,
    assigns: &[Assign],
    call_tags: &BTreeMap<usize, Tags>,
    flow: &mut FnFlow,
) {
    // A worker-tagged call site in `[start, end)`: named for messages.
    let tainted_call_in = |start: usize, end: usize| -> Option<String> {
        call_tags
            .range(start..end)
            .find(|(_, t)| *t & TAG_WORKER != 0)
            .map(|(&p, _)| {
                toks.get(p.wrapping_sub(1))
                    .map(|t| format!("{}(…)", t.text))
                    .unwrap_or_else(|| "a call".to_owned())
            })
    };
    // `return <tainted>;`
    let mut i = body.open + 1;
    while i < body.close {
        if in_test.get(i).copied().unwrap_or(false) || !is_ident(&toks[i], "return") {
            i += 1;
            continue;
        }
        let end = stmt_end(toks, i + 1, body.close);
        let hit =
            tainted_ident_in(toks, i + 1, end, &flow.tags).or_else(|| tainted_call_in(i + 1, end));
        if let Some(name) = hit {
            flow.taint.push(Violation {
                line: toks[i].line,
                col: toks[i].col,
                what: format!(
                    "worker/thread-identity value `{name}` flows into this function's \
                     return value; results must not depend on which worker computed \
                     them — derive the value from the job, not the worker"
                ),
            });
        }
        i = end + 1;
    }
    // `…stats….field op= <tainted>;` — a stats sink. Statement-start
    // field chains whose receiver mentions a stats name.
    let mut i = body.open + 1;
    while i < body.close {
        let stmt_start = toks
            .get(i.wrapping_sub(1))
            .map(|p| is_punct(p, ";") || is_punct(p, "{") || is_punct(p, "}"))
            .unwrap_or(true);
        if !(stmt_start && toks[i].kind == TokKind::Ident)
            || in_test.get(i).copied().unwrap_or(false)
        {
            i += 1;
            continue;
        }
        // Walk a `a.b.c` chain.
        let mut k = i;
        let mut chain_has_stat = seed_tags(&toks[k].text) & TAG_STAT != 0;
        while toks.get(k + 1).is_some_and(|t| is_punct(t, "."))
            && toks.get(k + 2).is_some_and(|t| t.kind == TokKind::Ident)
        {
            k += 2;
            chain_has_stat |= seed_tags(&toks[k].text) & TAG_STAT != 0;
        }
        let is_assign = toks
            .get(k + 1)
            .is_some_and(|t| t.kind == TokKind::Punct && ASSIGN_OPS.contains(&t.text.as_str()));
        if k > i && chain_has_stat && is_assign {
            let rhs_start = k + 2;
            let rhs_end = stmt_end(toks, rhs_start, body.close);
            let hit = tainted_ident_in(toks, rhs_start, rhs_end, &flow.tags)
                .or_else(|| tainted_call_in(rhs_start, rhs_end));
            if let Some(name) = hit {
                flow.taint.push(Violation {
                    line: toks[i].line,
                    col: toks[i].col,
                    what: format!(
                        "worker/thread-identity value `{name}` is written into a stats \
                         field; reported statistics must be scheduling-independent"
                    ),
                });
            }
            i = rhs_end + 1;
            continue;
        }
        i += 1;
    }
    // Silence the unused warning path: assigns already drove the
    // fixpoint; the taint sinks only need the stable environment.
    let _ = assigns;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lints::test_mask;

    fn flow_of(src: &str) -> FnFlow {
        let lx = lex(src);
        let mask = test_mask(&lx.tokens, crate::FileKind::Lib);
        let ast = crate::ast::parse(&lx.tokens, &mask);
        for it in &ast.items {
            if let crate::ast::Item::Fn(f) = it {
                return analyze(&lx.tokens, &mask, f).expect("body");
            }
        }
        panic!("no fn in source");
    }

    #[test]
    fn seeds_are_component_exact() {
        assert_eq!(seed_tags("cycle"), TAG_CYCLE);
        assert_eq!(seed_tags("commit_cycles"), TAG_CYCLE);
        assert_eq!(seed_tags("addr"), TAG_ADDR);
        assert_eq!(seed_tags("stage"), 0, "`stage` must not read as `tag`");
        assert_eq!(seed_tags("n_workers"), 0, "a worker *count* is config");
        assert_eq!(seed_tags("worker_id"), TAG_WORKER);
        assert_eq!(seed_tags("tid"), TAG_WORKER);
        assert_eq!(seed_tags("stats"), TAG_STAT);
    }

    #[test]
    fn tags_propagate_through_assignment_chains() {
        let flow = flow_of("fn f(cycle: u64) -> u64 { let a = cycle; let b = a; b }");
        assert_eq!(
            flow.tags.get("a").copied().unwrap_or(0) & TAG_CYCLE,
            TAG_CYCLE
        );
        assert_eq!(
            flow.tags.get("b").copied().unwrap_or(0) & TAG_CYCLE,
            TAG_CYCLE
        );
    }

    #[test]
    fn fixpoint_handles_reverse_order_chains() {
        // `a` is assigned from `b` before `b` is ever tagged; only a
        // second iteration can see it.
        let flow = flow_of(
            "fn f(cycle: u64) -> u64 { let mut a = 0; let mut b = 0; \
             loop { a = b; b = cycle; if a > 0 { break; } } a }",
        );
        assert_eq!(
            flow.tags.get("a").copied().unwrap_or(0) & TAG_CYCLE,
            TAG_CYCLE
        );
    }

    #[test]
    fn container_reads_do_not_carry_index_provenance() {
        let flow =
            flow_of("fn f(worker: usize, jobs: Vec<u64>) -> u64 { let j = jobs[worker]; j }");
        assert_eq!(
            flow.tags.get("j").copied().unwrap_or(0) & TAG_WORKER,
            0,
            "indexing by worker must not taint the element"
        );
    }

    #[test]
    fn intervals_evaluate_with_precedence() {
        let flow =
            flow_of("fn f() -> u64 { let a = 4; let b = a * 2 + 1; let c = 1 + 2 * 3; b + c }");
        assert_eq!(flow.intervals.get("a"), Some(&(4, 4)));
        assert_eq!(flow.intervals.get("b"), Some(&(9, 9)));
        assert_eq!(
            flow.intervals.get("c"),
            Some(&(7, 7)),
            "precedence: 1 + 2*3 = 7"
        );
    }

    #[test]
    fn unknown_rhs_is_top_not_a_guess() {
        let flow = flow_of("fn f(n: u64) -> u64 { let a = n; let b = a + 1; b }");
        assert_eq!(flow.intervals.get("a"), None);
        assert_eq!(flow.intervals.get("b"), None);
    }

    #[test]
    fn guard_ranges_and_lock_sites() {
        let flow = flow_of(
            "fn f(m: &std::sync::Mutex<u64>) -> u64 {\n\
                let g = m.lock().unwrap_or_else(|p| p.into_inner());\n\
                let v = *g;\n\
                drop(g);\n\
                v\n\
             }",
        );
        assert_eq!(flow.locks.len(), 1);
        assert_eq!(flow.locks[0].recv, "m");
        assert_eq!(flow.guards.len(), 1);
        let g = &flow.guards[0];
        assert_eq!(g.name, "g");
        assert_eq!(g.mutex, "m");
        assert!(g.end > g.start, "guard must be live over a nonempty range");
        assert_eq!(
            flow.tags.get("g").copied().unwrap_or(0) & TAG_GUARD,
            TAG_GUARD
        );
    }

    #[test]
    fn temporary_guards_create_no_range() {
        let flow = flow_of(
            "fn f(m: &std::sync::Mutex<u64>) -> u64 {\n\
                *m.lock().unwrap_or_else(|p| p.into_inner())\n\
             }",
        );
        assert_eq!(flow.locks.len(), 1);
        assert!(flow.guards.is_empty(), "temporaries die at the statement");
    }

    #[test]
    fn overflow_rules() {
        let flow = flow_of(
            "fn f(cycle: u64, addr: u64, n: u64) -> u64 {\n\
                let a = cycle + 1;\n\
                let b = cycle + addr;\n\
                let c = addr * n;\n\
                let d = addr * 8;\n\
                let e = addr << n;\n\
                a + b + c + d + e\n\
             }",
        );
        let lines: Vec<u32> = flow.overflow.iter().map(|v| v.line).collect();
        assert!(!lines.contains(&2), "cycle + 1 is a reviewable tick");
        assert!(lines.contains(&3), "tagged + tagged fires");
        assert!(lines.contains(&4), "tagged * variable fires");
        assert!(!lines.contains(&5), "tagged * literal is a scale factor");
        assert!(lines.contains(&6), "shifting a tagged value fires");
    }

    #[test]
    fn index_bounds_rules() {
        let flow = flow_of(
            "fn f(xs: &[u64], base: usize, way: usize, set: usize) -> u64 {\n\
                let a = xs[base + way];\n\
                debug_assert!(set * 8 + way < xs.len());\n\
                let b = xs[set * 8 + way];\n\
                let c = xs[way];\n\
                let d = xs[4 + 3];\n\
                let e = xs[way + 1];\n\
                let w = 8;\n\
                let f = xs[w - 1];\n\
                a + b + c + d + e + f\n\
             }",
        );
        let lines: Vec<u32> = flow.index.iter().map(|v| v.line).collect();
        assert!(lines.contains(&2), "unguarded composite index fires");
        assert!(!lines.contains(&4), "asserted bound clears the site");
        assert!(!lines.contains(&5), "single-ident index is out of scope");
        assert!(!lines.contains(&6), "all-constant index is rustc's job");
        assert!(
            !lines.contains(&7),
            "one runtime ident + offset is a scan idiom"
        );
        assert!(
            !lines.contains(&9),
            "known interval through the lattice clears it"
        );
    }

    #[test]
    fn index_bounds_guard_must_dominate() {
        // The same expression, once with evidence on a sibling path
        // (fires) and once under a dominating condition (clean).
        let flow = flow_of(
            "fn f(xs: &[u64], way: usize, set: usize, other: bool) -> u64 {\n\
                if other {\n\
                    debug_assert!(set * 8 + way < xs.len());\n\
                }\n\
                let a = xs[set * 8 + way];\n\
                let b = if set * 4 + way < xs.len() { xs[set * 4 + way] } else { 0 };\n\
                a + b\n\
             }",
        );
        let lines: Vec<u32> = flow.index.iter().map(|v| v.line).collect();
        assert!(
            lines.contains(&5),
            "evidence inside a sibling branch must not clear the site: {:?}",
            flow.index
        );
        assert!(
            !lines.contains(&6),
            "a dominating `if` condition clears the guarded use: {:?}",
            flow.index
        );
    }

    #[test]
    fn call_tags_seed_assignments_and_returns() {
        // `analyze_with` seeds `c` from the call's summarized return
        // tags, so the downstream `c + d` add fires overflow and the
        // worker-returning call taints the return.
        let lx = lex("fn f(d_cycle: u64) -> u64 {\n\
                let c = helper();\n\
                let s = c + d_cycle;\n\
                return wid();\n\
             }");
        let mask = test_mask(&lx.tokens, crate::FileKind::Lib);
        let ast = crate::ast::parse(&lx.tokens, &mask);
        let crate::ast::Item::Fn(f) = &ast.items[0] else {
            panic!("fn expected")
        };
        let body = f.body.as_ref().expect("body");
        let mut call_tags = BTreeMap::new();
        for c in &body.calls {
            let name = match &c.callee {
                Callee::Path(segs) => segs.join("::"),
                Callee::Method { name, .. } => name.clone(),
            };
            match name.as_str() {
                "helper" => call_tags.insert(c.paren_open, TAG_CYCLE),
                "wid" => call_tags.insert(c.paren_open, TAG_WORKER),
                _ => None,
            };
        }
        let flow = analyze_with(&lx.tokens, &mask, f, &call_tags, true).expect("flow");
        assert_eq!(
            flow.tags.get("c").copied().unwrap_or(0) & TAG_CYCLE,
            TAG_CYCLE,
            "call return tags seed the binder"
        );
        assert_eq!(flow.overflow.len(), 1, "overflow: {:?}", flow.overflow);
        assert_eq!(flow.taint.len(), 1, "taint: {:?}", flow.taint);
        assert!(flow.taint[0].what.contains("wid"));
    }

    #[test]
    fn taint_rules() {
        let flow = flow_of(
            "fn f(worker: usize, jobs: Vec<u64>) -> usize {\n\
                let w2 = worker + 1;\n\
                let job = jobs[worker];\n\
                if job > 0 {\n\
                    return w2;\n\
                }\n\
                0\n\
             }",
        );
        assert_eq!(flow.taint.len(), 1, "taint: {:?}", flow.taint);
        assert_eq!(flow.taint[0].line, 5);
        assert!(flow.taint[0].what.contains("w2"));
    }

    #[test]
    fn stats_write_sink() {
        let flow = flow_of(
            "fn f(worker: usize, stats: &mut RunStats) {\n\
                stats.owner += worker;\n\
             }",
        );
        assert_eq!(flow.taint.len(), 1, "taint: {:?}", flow.taint);
        assert_eq!(flow.taint[0].line, 2);
    }
}
