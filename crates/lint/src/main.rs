//! CLI for tcp-lint. Exit status: 0 clean, 1 findings, 2 usage or I/O
//! error — CI treats nonzero as a failed gate.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use tcp_lint::{
    analyze_workspace, find_workspace_root, lint_about, lint_path, render_gh, render_human,
    render_json, render_sarif, render_waivers, Finding, ALL_LINTS,
};

const USAGE: &str = "\
tcp-lint: static analysis enforcing the TCP reproduction's determinism
and error-discipline invariants.

Usage:
  tcp-lint --workspace [--root DIR]            lint every workspace crate
                                               (lexical + semantic passes)
  tcp-lint [--root DIR] FILE...                lint specific files
                                               (lexical passes only)
  tcp-lint --waivers [--root DIR]              print the suppression-debt
                                               report (file:line, lints,
                                               reason, totals, and stale
                                               waivers that no longer fire)
  tcp-lint --list-lints                        print the lint names

Output (lint modes): --format human (default) | json | gh | sarif
  gh emits GitHub Actions ::error annotations; sarif emits a SARIF
  2.1.0 log for code-scanning upload; --json is shorthand for
  --format json.

Suppress a finding on the line below (or the same line) with a reason:
  // tcp-lint: allow(lint-name) -- reason it is sound here
";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("tcp-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> std::io::Result<ExitCode> {
    let mut workspace = false;
    let mut waivers = false;
    let mut format = Format::Human;
    let mut root_arg: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--waivers" => waivers = true,
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("gh") => format = Format::Gh,
                Some("sarif") => format = Format::Sarif,
                other => {
                    let got = other.unwrap_or("nothing");
                    eprintln!("tcp-lint: --format needs human|json|gh|sarif, got {got}\n\n{USAGE}");
                    return Ok(ExitCode::from(2));
                }
            },
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("tcp-lint: --root needs a directory\n\n{USAGE}");
                    return Ok(ExitCode::from(2));
                }
            },
            "--list-lints" => {
                for l in ALL_LINTS {
                    println!("{l}  {}", lint_about(l));
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            _ if a.starts_with('-') => {
                eprintln!("tcp-lint: unknown flag {a}\n\n{USAGE}");
                return Ok(ExitCode::from(2));
            }
            _ => files.push(PathBuf::from(a)),
        }
    }

    if !workspace && !waivers && files.is_empty() {
        eprintln!("{USAGE}");
        return Ok(ExitCode::from(2));
    }

    let cwd = std::env::current_dir()?;
    let root = match root_arg.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("tcp-lint: no workspace root found above {}", cwd.display());
            return Ok(ExitCode::from(2));
        }
    };

    if waivers {
        let report = analyze_workspace(&root)?;
        print!("{}", render_waivers(&report.waivers));
        return Ok(ExitCode::SUCCESS);
    }

    if workspace {
        // Whole-workspace mode runs the semantic passes too.
        let report = analyze_workspace(&root)?;
        return Ok(emit(&report.findings, report.files_scanned, format));
    }

    let mut findings: Vec<Finding> = Vec::new();
    for f in &files {
        let abs = if f.is_absolute() {
            f.clone()
        } else {
            root.join(f)
        };
        // Fall back to the path as given (workspace files are already
        // absolute; explicit args may be cwd-relative).
        let target = if abs.is_file() { abs } else { f.clone() };
        findings.extend(lint_path(&root, &target)?);
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.lint).cmp(&(&b.path, b.line, b.col, b.lint)));
    Ok(emit(&findings, files.len(), format))
}

/// Output modes for the finding report.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Gh,
    Sarif,
}

fn emit(findings: &[Finding], n_files: usize, format: Format) -> ExitCode {
    match format {
        Format::Json => print!("{}", render_json(findings)),
        Format::Gh => print!("{}", render_gh(findings)),
        Format::Sarif => print!("{}", render_sarif(findings)),
        Format::Human => {
            print!("{}", render_human(findings));
            if findings.is_empty() {
                println!("tcp-lint: clean ({n_files} files)");
            } else {
                println!(
                    "tcp-lint: {} finding(s) across {} files",
                    findings.len(),
                    n_files
                );
            }
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
