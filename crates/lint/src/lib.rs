//! tcp-lint — project-specific static analysis for the TCP reproduction.
//!
//! The reproduction's credibility rests on bit-identical determinism and
//! on the typed-error discipline of the library crates. Clippy cannot
//! express those project rules, so this crate encodes them as a
//! dependency-free analysis engine: a hand-rolled lexer ([`lexer`]) and
//! recursive-descent parser ([`ast`]) walk every workspace source file;
//! the lexical checks in [`lints`] anchor to exact token shapes, while
//! the semantic checks in [`semantic`] run over a workspace symbol table
//! and function call graph ([`symbols`]) — panic reachability through
//! public APIs, stat-counter conservation, exhaustive dispatch over
//! closed enums, and discarded `Result`s.
//!
//! Run it over the workspace (CI does exactly this, and a nonzero exit
//! gates the build):
//!
//! ```text
//! cargo run -p tcp-lint -- --workspace
//! ```
//!
//! Individual findings are waived per site with a justified comment on
//! the offending line or the line above; see [`lints`] for the syntax,
//! [`lints::ALL_LINTS`] for the lint names, and `tcp-lint --waivers` for
//! the live suppression-debt report.

#![forbid(unsafe_code)]

pub mod ast;
pub mod cfg;
pub mod dataflow;
pub mod lexer;
pub mod lints;
pub mod semantic;
pub mod summaries;
pub mod symbols;

pub use lints::{lint_about, lint_file, FileKind, FileSpec, Finding, ALL_LINTS};

use lints::{
    lint_file_tracked, scan_directives, suppressed_by, test_mask, Suppressions, BAD_SUPPRESSION,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source file handed to [`analyze_files`].
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Full source text.
    pub src: String,
}

/// One active suppression, for the `--waivers` debt report.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// Lint names the directive waives.
    pub lints: Vec<String>,
    /// The justification text after the `allow(...)`.
    pub reason: String,
    /// Whether the waived lint no longer fires on the covered lines —
    /// a rotten suppression that should be deleted.
    pub stale: bool,
}

/// Result of a whole-workspace analysis.
pub struct WorkspaceReport {
    /// All findings (lexical + semantic), suppression-filtered and
    /// sorted by (path, line, col, lint).
    pub findings: Vec<Finding>,
    /// Every active waiver, sorted by (path, line).
    pub waivers: Vec<Waiver>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if let Ok(manifest) = fs::read_to_string(dir.join("Cargo.toml")) {
            if manifest.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Source directories scanned in workspace mode: the root package, the
/// out-of-workspace `proptests/` tree (excluded from the build because
/// it needs crates.io to *compile*, not to lint), and every member the
/// root `Cargo.toml` declares — so adding a crate to the workspace adds
/// it to lint coverage in the same edit. Manifest `exclude` entries are
/// honored (`crates/bench` needs crates.io); lint fixtures are
/// deliberately-bad code and are skipped at collection time. A manifest
/// with no parseable members (synthetic test workspaces) falls back to
/// listing `crates/` directly.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    let members = expand_member_globs(root, &toml_str_array(&manifest, "members"));
    let exclude = expand_member_globs(root, &toml_str_array(&manifest, "exclude"));

    let mut dirs: Vec<PathBuf> = vec![
        root.join("src"),
        root.join("tests"),
        root.join("examples"),
        root.join("proptests").join("src"),
        root.join("proptests").join("tests"),
    ];
    let mut crate_dirs: Vec<PathBuf> = members
        .iter()
        .filter(|m| !exclude.contains(m))
        .map(|m| root.join(m))
        .collect();
    if crate_dirs.is_empty() {
        // Fallback: no members declared — list `crates/` directly.
        let crates = root.join("crates");
        if crates.is_dir() {
            for entry in fs::read_dir(&crates)? {
                let entry = entry?;
                if entry.path().is_dir() && entry.file_name() != "bench" {
                    crate_dirs.push(entry.path());
                }
            }
        }
    }
    crate_dirs.sort();
    for c in crate_dirs {
        dirs.push(c.join("src"));
        dirs.push(c.join("tests"));
        dirs.push(c.join("examples"));
    }

    let mut files = Vec::new();
    for d in dirs {
        if d.is_dir() {
            collect_rs(&d, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Extracts the string elements of a `key = [ "…", … ]` TOML array,
/// tolerating the array spanning multiple lines. Good enough for the
/// workspace `members`/`exclude` arrays; anything unparseable yields an
/// empty list (and the caller falls back to directory listing).
fn toml_str_array(manifest: &str, key: &str) -> Vec<String> {
    let mut in_array = false;
    let mut body = String::new();
    for line in manifest.lines() {
        let trimmed = line.trim();
        if !in_array {
            let Some(rest) = trimmed.strip_prefix(key) else {
                continue;
            };
            let Some(rest) = rest.trim_start().strip_prefix('=') else {
                continue;
            };
            let Some(rest) = rest.trim_start().strip_prefix('[') else {
                continue;
            };
            body.push_str(rest);
            in_array = true;
        } else {
            body.push_str(trimmed);
        }
        if let Some(end) = body.find(']') {
            body.truncate(end);
            break;
        }
    }
    let mut out = Vec::new();
    let mut rest = body.as_str();
    while let Some(q1) = rest.find('"') {
        let Some(len) = rest[q1 + 1..].find('"') else {
            break;
        };
        out.push(rest[q1 + 1..q1 + 1 + len].to_owned());
        rest = &rest[q1 + 1 + len + 1..];
    }
    out
}

/// Expands `prefix/*` member globs against the filesystem; plain
/// entries pass through. Results are workspace-relative `/`-separated
/// strings, sorted for determinism.
fn expand_member_globs(root: &Path, patterns: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for p in patterns {
        if let Some(prefix) = p.strip_suffix("/*") {
            let Ok(entries) = fs::read_dir(root.join(prefix)) else {
                continue;
            };
            for entry in entries.flatten() {
                if entry.path().is_dir() {
                    if let Some(name) = entry.file_name().to_str() {
                        out.push(format!("{prefix}/{name}"));
                    }
                }
            }
        } else {
            out.push(p.clone());
        }
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        entries.push(entry?.path());
    }
    entries.sort();
    for p in entries {
        if p.is_dir() {
            // Fixtures are known-bad inputs for the lint tests.
            if p.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Derives a [`FileSpec`] from a workspace-relative path like
/// `crates/cache/src/tlb.rs` or `tests/golden.rs`.
pub fn spec_for_path(rel: &str) -> FileSpec<'_> {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_dir = parts
        .windows(2)
        .find(|w| w[0] == "crates")
        .map(|w| w[1])
        .unwrap_or("");
    let kind = if parts.contains(&"tests") {
        FileKind::Test
    } else if parts.contains(&"examples") {
        FileKind::Example
    } else if parts.contains(&"bin") || parts.last().is_some_and(|f| *f == "main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    let crate_root = rel.ends_with("src/lib.rs");
    FileSpec {
        path: rel,
        crate_dir,
        kind,
        crate_root,
    }
}

/// Lints one on-disk file given the workspace root; `path` must live
/// under `root`. Lexical passes only — the semantic passes need the
/// whole workspace ([`analyze_files`] / [`analyze_workspace`]).
pub fn lint_path(root: &Path, path: &Path) -> io::Result<Vec<Finding>> {
    let src = fs::read_to_string(path)?;
    let rel = rel_path(root, path);
    let spec = spec_for_path(&rel);
    Ok(lint_file(&spec, &src))
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Per-file artifacts shared by the lexical and semantic stages.
struct Prepared {
    lx: lexer::Lexed,
    mask: Vec<bool>,
    ast: ast::Ast,
    sups: Suppressions,
}

fn prepare(f: &SourceFile) -> Prepared {
    let spec = spec_for_path(&f.rel_path);
    let lx = lexer::lex(&f.src);
    let mask = test_mask(&lx.tokens, spec.kind);
    let ast = ast::parse(&lx.tokens, &mask);
    let sups = scan_directives(&lx).sups;
    Prepared {
        lx,
        mask,
        ast,
        sups,
    }
}

/// Lexed + parsed workspace sources with the analysis stages exposed
/// individually, so `tcp-perf` can time parse / semantic / dataflow as
/// separate cases. [`analyze_files`] composes the same stages.
pub struct ParsedWorkspace {
    files: Vec<SourceFile>,
    prepared: Vec<Prepared>,
}

impl ParsedWorkspace {
    /// Stage 1: lex, test-mask, parse, and directive-scan every file.
    pub fn parse(files: Vec<SourceFile>) -> Self {
        let prepared = files.iter().map(prepare).collect();
        ParsedWorkspace { files, prepared }
    }

    /// Total token count across files — a cheap determinism checksum
    /// for the parse stage.
    pub fn token_count(&self) -> u64 {
        self.prepared.iter().map(|p| p.lx.tokens.len() as u64).sum()
    }

    fn inputs(&self) -> Vec<symbols::FileInput<'_>> {
        self.files
            .iter()
            .zip(&self.prepared)
            .map(|(f, p)| {
                let spec = spec_for_path(&f.rel_path);
                symbols::FileInput {
                    path: &f.rel_path,
                    crate_dir: spec.crate_dir,
                    kind: spec.kind,
                    toks: &p.lx.tokens,
                    in_test: &p.mask,
                    ast: &p.ast,
                }
            })
            .collect()
    }

    fn sem_inputs<'a>(
        &'a self,
        inputs: &[symbols::FileInput<'a>],
    ) -> Vec<semantic::SemanticInput<'a>> {
        inputs
            .iter()
            .zip(&self.files)
            .zip(&self.prepared)
            .map(|((fi, f), p)| semantic::SemanticInput {
                file: *fi,
                lines: f.src.lines().collect(),
                sups: &p.sups,
            })
            .collect()
    }

    /// Stage 2: symbol table + the AST/call-graph lint passes.
    pub fn semantic_core(&self) -> Vec<Finding> {
        let inputs = self.inputs();
        let ws = symbols::build(&inputs);
        let sem = self.sem_inputs(&inputs);
        semantic::run_core(&ws, &sem, &mut BTreeMap::new())
    }

    /// Stage 3: the dataflow + interprocedural summary passes.
    pub fn dataflow(&self) -> Vec<Finding> {
        let inputs = self.inputs();
        let ws = symbols::build(&inputs);
        let sem = self.sem_inputs(&inputs);
        semantic::run_dataflow(&ws, &sem)
    }
}

/// Runs the full analysis — all lexical passes per file, then the
/// semantic passes over the workspace graph — and returns
/// suppression-filtered findings sorted by (path, line, col, lint).
pub fn analyze_files(files: &[SourceFile]) -> Vec<Finding> {
    analyze_files_tracked(files, &mut BTreeMap::new())
}

/// [`analyze_files`], additionally recording into `used` the directive
/// lines (per file path) whose waiver suppressed at least one finding —
/// the complement is the stale-waiver set.
pub fn analyze_files_tracked(
    files: &[SourceFile],
    used: &mut BTreeMap<String, BTreeSet<u32>>,
) -> Vec<Finding> {
    let mut findings: Vec<Finding> = Vec::new();
    let mut prepared: Vec<Prepared> = Vec::with_capacity(files.len());
    for f in files {
        let spec = spec_for_path(&f.rel_path);
        let used_here = used.entry(f.rel_path.clone()).or_default();
        findings.extend(lint_file_tracked(&spec, &f.src, used_here));
        prepared.push(prepare(f));
    }

    let inputs: Vec<symbols::FileInput<'_>> = files
        .iter()
        .zip(&prepared)
        .map(|(f, p)| {
            let spec = spec_for_path(&f.rel_path);
            symbols::FileInput {
                path: &f.rel_path,
                crate_dir: spec.crate_dir,
                kind: spec.kind,
                toks: &p.lx.tokens,
                in_test: &p.mask,
                ast: &p.ast,
            }
        })
        .collect();
    let ws = symbols::build(&inputs);
    let sem_inputs: Vec<semantic::SemanticInput<'_>> = inputs
        .iter()
        .zip(files)
        .zip(&prepared)
        .map(|((fi, f), p)| semantic::SemanticInput {
            file: *fi,
            lines: f.src.lines().collect(),
            sups: &p.sups,
        })
        .collect();
    let semantic_findings = semantic::run(&ws, &sem_inputs, used);

    let sups_by_path: BTreeMap<&str, &Suppressions> = files
        .iter()
        .zip(&prepared)
        .map(|(f, p)| (f.rel_path.as_str(), &p.sups))
        .collect();
    findings.extend(semantic_findings.into_iter().filter(|f| {
        let Some(sups) = sups_by_path.get(f.path.as_str()) else {
            return true;
        };
        match suppressed_by(sups, f) {
            Some(line) => {
                used.entry(f.path.clone()).or_default().insert(line);
                false
            }
            None => true,
        }
    }));
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.lint).cmp(&(&b.path, b.line, b.col, b.lint)));
    findings.dedup_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.lint) == (b.path.as_str(), b.line, b.col, b.lint)
    });
    findings
}

/// Collects every active waiver across `files`, sorted by (path, line).
pub fn collect_waivers(files: &[SourceFile]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for f in files {
        let lx = lexer::lex(&f.src);
        for (line, lints, reason) in scan_directives(&lx).waivers {
            out.push(Waiver {
                path: f.rel_path.clone(),
                line,
                lints,
                reason,
                stale: false,
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Reads every workspace source under `root` and runs [`analyze_files`]
/// plus the waiver scan over it.
pub fn analyze_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let paths = workspace_sources(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        files.push(SourceFile {
            rel_path: rel_path(root, p),
            src: fs::read_to_string(p)?,
        });
    }
    let mut used: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    let findings = analyze_files_tracked(&files, &mut used);
    let mut waivers = collect_waivers(&files);
    // A site that already trips `bad-suppression` must not also count
    // as a stale waiver — one broken directive line is one unit of
    // debt, not two (`check-lint.sh` weights stale waivers double).
    let bad_sites: BTreeSet<(&str, u32)> = findings
        .iter()
        .filter(|f| f.lint == BAD_SUPPRESSION)
        .map(|f| (f.path.as_str(), f.line))
        .collect();
    for w in &mut waivers {
        w.stale = !used
            .get(&w.path)
            .is_some_and(|lines| lines.contains(&w.line))
            && !bad_sites.contains(&(w.path.as_str(), w.line));
    }
    Ok(WorkspaceReport {
        findings,
        waivers,
        files_scanned: files.len(),
    })
}

/// Renders findings for humans: one position line plus the snippet.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            f.path, f.line, f.col, f.lint, f.message
        ));
        if !f.snippet.is_empty() {
            out.push_str(&format!("    {}\n", f.snippet));
        }
    }
    out
}

/// Renders findings as a JSON array (stable field order, sorted input).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"path\":{},\"line\":{},\"col\":{},\"lint\":{},\"message\":{},\"snippet\":{}}}",
            json_str(&f.path),
            f.line,
            f.col,
            json_str(f.lint),
            json_str(&f.message),
            json_str(&f.snippet)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders findings as a SARIF 2.1.0 log (the GitHub code-scanning
/// ingestion format), built on `tcp-json`'s canonical writer so the
/// output is byte-stable for identical findings. One run, one result
/// per finding, one rule per lint name with its one-line description.
pub fn render_sarif(findings: &[Finding]) -> String {
    use tcp_json::Json;

    fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }
    fn s(text: &str) -> Json {
        Json::Str(text.to_owned())
    }
    fn text(t: &str) -> Json {
        obj(vec![("text", s(t))])
    }

    let rules: Vec<Json> = ALL_LINTS
        .iter()
        .map(|&name| {
            obj(vec![
                ("id", s(name)),
                ("shortDescription", text(lint_about(name))),
            ])
        })
        .collect();
    let results: Vec<Json> = findings
        .iter()
        .map(|f| {
            obj(vec![
                ("ruleId", s(f.lint)),
                ("level", s("error")),
                ("message", text(&f.message)),
                (
                    "locations",
                    Json::Arr(vec![obj(vec![(
                        "physicalLocation",
                        obj(vec![
                            ("artifactLocation", obj(vec![("uri", s(&f.path))])),
                            (
                                "region",
                                obj(vec![
                                    ("startLine", Json::Num(f.line as f64)),
                                    ("startColumn", Json::Num(f.col as f64)),
                                ]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    let driver = obj(vec![
        ("name", s("tcp-lint")),
        ("informationUri", s("https://github.com/tcp-repro/tcp")),
        ("rules", Json::Arr(rules)),
    ]);
    let run = obj(vec![
        ("tool", obj(vec![("driver", driver)])),
        ("results", Json::Arr(results)),
    ]);
    let log = obj(vec![
        (
            "$schema",
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        ("runs", Json::Arr(vec![run])),
    ]);
    let mut out = tcp_json::to_string(&log);
    out.push('\n');
    out
}

/// Renders the waiver debt report: one line per directive plus totals
/// (`scripts/check-lint.sh` caps `total` + `stale` so debt cannot grow
/// silently and suppressions cannot rot in place).
pub fn render_waivers(waivers: &[Waiver]) -> String {
    let mut out = String::new();
    for w in waivers {
        out.push_str(&format!(
            "{}:{}  {}  — {}{}\n",
            w.path,
            w.line,
            w.lints.join(","),
            w.reason,
            if w.stale {
                "  [STALE: lint no longer fires here — delete this waiver]"
            } else {
                ""
            }
        ));
    }
    out.push_str(&format!("total: {} waivers\n", waivers.len()));
    out.push_str(&format!(
        "stale: {} waivers\n",
        waivers.iter().filter(|w| w.stale).count()
    ));
    out
}

/// Renders findings as GitHub Actions workflow commands, one `::error`
/// annotation per finding, so CI surfaces them inline on the PR diff.
pub fn render_gh(findings: &[Finding]) -> String {
    // Workflow-command escaping: data escapes %/\r/\n; property values
    // additionally escape `:` and `,`.
    fn esc_data(s: &str) -> String {
        s.replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A")
    }
    fn esc_prop(s: &str) -> String {
        esc_data(s).replace(':', "%3A").replace(',', "%2C")
    }
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "::error file={},line={},col={},title={}::{}\n",
            esc_prop(&f.path),
            f.line,
            f.col,
            esc_prop(&format!("tcp-lint {}", f.lint)),
            esc_data(&f.message)
        ));
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
