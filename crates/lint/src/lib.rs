//! tcp-lint — project-specific static analysis for the TCP reproduction.
//!
//! The reproduction's credibility rests on bit-identical determinism and
//! on the typed-error discipline of the library crates. Clippy cannot
//! express those project rules, so this crate encodes them as a
//! dependency-free lint pass: a hand-rolled lexer ([`lexer`]) walks every
//! workspace source file and the checks in [`lints`] report violations
//! with file, line, column, lint name, and the offending snippet.
//!
//! Run it over the workspace (CI does exactly this, and a nonzero exit
//! gates the build):
//!
//! ```text
//! cargo run -p tcp-lint -- --workspace
//! ```
//!
//! Individual findings are waived per site with a justified comment on
//! the offending line or the line above; see [`lints`] for the syntax
//! and [`lints::ALL_LINTS`] for the lint names.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lints;

pub use lints::{lint_file, FileKind, FileSpec, Finding, ALL_LINTS};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if let Ok(manifest) = fs::read_to_string(dir.join("Cargo.toml")) {
            if manifest.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Source directories scanned in workspace mode, relative to the root:
/// the root package plus every workspace crate (`crates/bench` and
/// `proptests/` are excluded from the workspace and need crates.io, so
/// they are skipped; lint fixtures are deliberately-bad code).
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs: Vec<PathBuf> = vec![root.join("src"), root.join("tests"), root.join("examples")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&crates)? {
            let entry = entry?;
            if entry.path().is_dir() {
                names.push(entry.path());
            }
        }
        names.sort();
        for c in names {
            if c.file_name().is_some_and(|n| n == "bench") {
                continue;
            }
            dirs.push(c.join("src"));
            dirs.push(c.join("tests"));
            dirs.push(c.join("examples"));
        }
    }

    let mut files = Vec::new();
    for d in dirs {
        if d.is_dir() {
            collect_rs(&d, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        entries.push(entry?.path());
    }
    entries.sort();
    for p in entries {
        if p.is_dir() {
            // Fixtures are known-bad inputs for the lint tests.
            if p.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Derives a [`FileSpec`] from a workspace-relative path like
/// `crates/cache/src/tlb.rs` or `tests/golden.rs`.
pub fn spec_for_path(rel: &str) -> FileSpec<'_> {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_dir = parts
        .windows(2)
        .find(|w| w[0] == "crates")
        .map(|w| w[1])
        .unwrap_or("");
    let kind = if parts.contains(&"tests") {
        FileKind::Test
    } else if parts.contains(&"examples") {
        FileKind::Example
    } else if parts.contains(&"bin") || parts.last().is_some_and(|f| *f == "main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    let crate_root = rel.ends_with("src/lib.rs");
    FileSpec {
        path: rel,
        crate_dir,
        kind,
        crate_root,
    }
}

/// Lints one on-disk file given the workspace root; `path` must live
/// under `root`.
pub fn lint_path(root: &Path, path: &Path) -> io::Result<Vec<Finding>> {
    let src = fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let spec = spec_for_path(&rel);
    Ok(lint_file(&spec, &src))
}

/// Renders findings for humans: one position line plus the snippet.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            f.path, f.line, f.col, f.lint, f.message
        ));
        if !f.snippet.is_empty() {
            out.push_str(&format!("    {}\n", f.snippet));
        }
    }
    out
}

/// Renders findings as a JSON array (stable field order, sorted input).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"path\":{},\"line\":{},\"col\":{},\"lint\":{},\"message\":{},\"snippet\":{}}}",
            json_str(&f.path),
            f.line,
            f.col,
            json_str(f.lint),
            json_str(&f.message),
            json_str(&f.snippet)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
