//! A hand-rolled Rust lexer — just enough of the language to walk real
//! source reliably without `syn` or rustc internals.
//!
//! Handles the token-level ambiguities that break naive regex scanners:
//! nested block comments, raw strings (`r#"…"#` with any hash count),
//! byte and byte-string literals, char literals vs lifetimes (`'a'` vs
//! `<'a>`), raw identifiers (`r#type`), numeric literals with suffixes
//! and exponents, and compound operators (`::`, `+=`, `..=`) as single
//! tokens. Comments and string contents never produce identifier tokens,
//! so a doc example mentioning `unwrap()` cannot trip a lint.
//!
//! Positions are 1-based line/column; columns count bytes.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, the `type` of `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`); `text` omits the quote.
    Lifetime,
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A char or byte literal (`'x'`, `'\n'`, `b'0'`).
    Char,
    /// An integer literal (`42`, `0xFF_u64`).
    Int,
    /// A floating-point literal (`0.5`, `1e9`, `2f64`).
    Float,
    /// Punctuation; compound operators are a single token.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text. For `Str`/`Char` this is the raw literal including
    /// quotes; for `Lifetime` the name without the leading quote.
    pub text: String,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte.
    pub col: u32,
}

/// A comment that mentions `tcp-lint` (candidate suppression directive).
/// Ordinary comments are consumed and dropped.
#[derive(Clone, Debug)]
pub struct DirectiveComment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Full comment text including the `//` or `/* */` markers.
    pub text: String,
}

/// Output of [`lex`]: the token stream plus candidate directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-trivia tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments containing the substring `tcp-lint`.
    pub directives: Vec<DirectiveComment>,
}

fn ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn ident_cont(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    /// Byte `k` positions ahead, or 0 at end of input.
    fn peek(&self, k: usize) -> u8 {
        self.b.get(self.i + k).copied().unwrap_or(0)
    }

    fn eof(&self) -> bool {
        self.i >= self.b.len()
    }

    /// Consumes one byte, tracking line/column.
    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        if !self.eof() {
            self.i += 1;
            if c == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }
}

/// Tokenizes `src`. Never fails: unrecognized bytes are skipped, an
/// unterminated literal or comment simply ends at end of input. The
/// lints only ever under-match on malformed source, which rustc will
/// reject anyway.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while !c.eof() {
        let line = c.line;
        let col = c.col;
        let start = c.i;
        let ch = c.peek(0);
        match ch {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == b'/' => {
                while !c.eof() && c.peek(0) != b'\n' {
                    c.bump();
                }
                push_directive(&mut out, src, start, c.i, line);
            }
            b'/' if c.peek(1) == b'*' => {
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while !c.eof() && depth > 0 {
                    if c.peek(0) == b'/' && c.peek(1) == b'*' {
                        c.bump();
                        c.bump();
                        depth += 1;
                    } else if c.peek(0) == b'*' && c.peek(1) == b'/' {
                        c.bump();
                        c.bump();
                        depth -= 1;
                    } else {
                        c.bump();
                    }
                }
                push_directive(&mut out, src, start, c.i, line);
            }
            b'"' => {
                lex_string_body(&mut c);
                push_tok(&mut out, TokKind::Str, src, start, c.i, line, col);
            }
            b'\'' => {
                lex_quote(&mut c, &mut out, src, line, col);
            }
            _ if ch.is_ascii_digit() => {
                let float = lex_number(&mut c, src);
                let kind = if float { TokKind::Float } else { TokKind::Int };
                push_tok(&mut out, kind, src, start, c.i, line, col);
            }
            _ if ident_start(ch) => {
                lex_ident_or_prefixed(&mut c, &mut out, src, line, col);
            }
            _ if ch.is_ascii() => {
                lex_punct(&mut c, &mut out, line, col);
            }
            _ => {
                // Non-ASCII outside strings/comments: skip the byte.
                c.bump();
            }
        }
    }
    out
}

fn push_tok(
    out: &mut Lexed,
    kind: TokKind,
    src: &str,
    start: usize,
    end: usize,
    line: u32,
    col: u32,
) {
    let text = src.get(start..end).unwrap_or("").to_owned();
    out.tokens.push(Token {
        kind,
        text,
        line,
        col,
    });
}

fn push_directive(out: &mut Lexed, src: &str, start: usize, end: usize, line: u32) {
    if let Some(text) = src.get(start..end) {
        if text.contains("tcp-lint") {
            out.directives.push(DirectiveComment {
                line,
                text: text.to_owned(),
            });
        }
    }
}

/// Consumes a `"…"` body starting at the opening quote.
fn lex_string_body(c: &mut Cursor) {
    c.bump(); // opening quote
    while !c.eof() {
        match c.bump() {
            b'\\' => {
                c.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw-string body starting at the opening quote, terminated
/// by `"` followed by `hashes` hash signs.
fn lex_raw_string_body(c: &mut Cursor, hashes: usize) {
    c.bump(); // opening quote
    while !c.eof() {
        if c.bump() == b'"' {
            let mut k = 0;
            while k < hashes && c.peek(k) == b'#' {
                k += 1;
            }
            if k == hashes {
                for _ in 0..hashes {
                    c.bump();
                }
                break;
            }
        }
    }
}

/// At a `'`: disambiguates char literals from lifetimes.
fn lex_quote(c: &mut Cursor, out: &mut Lexed, src: &str, line: u32, col: u32) {
    let start = c.i;
    if c.peek(1) == b'\\' {
        // Escaped char literal: consume through the closing quote.
        c.bump(); // '
        c.bump(); // backslash
        c.bump(); // escape head (n, t, ', u, x, …)
        while !c.eof() && c.peek(0) != b'\'' {
            c.bump();
        }
        c.bump(); // closing quote
        push_tok(out, TokKind::Char, src, start, c.i, line, col);
    } else if ident_start(c.peek(1)) {
        // `'a'` is a char; `'a` followed by anything else is a lifetime.
        let mut k = 2;
        while ident_cont(c.peek(k)) {
            k += 1;
        }
        if c.peek(k) == b'\'' {
            for _ in 0..=k {
                c.bump();
            }
            push_tok(out, TokKind::Char, src, start, c.i, line, col);
        } else {
            c.bump(); // quote
            let name_start = c.i;
            while ident_cont(c.peek(0)) {
                c.bump();
            }
            let text = src.get(name_start..c.i).unwrap_or("").to_owned();
            out.tokens.push(Token {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
            });
        }
    } else {
        // Non-ident char literal: ' ', '+', multi-byte unicode, …
        c.bump(); // quote
        while !c.eof() && c.peek(0) != b'\'' && c.peek(0) != b'\n' {
            c.bump();
        }
        c.bump(); // closing quote (or stray newline recovery)
        push_tok(out, TokKind::Char, src, start, c.i, line, col);
    }
}

/// Consumes a numeric literal; returns `true` if it is floating-point.
fn lex_number(c: &mut Cursor, src: &str) -> bool {
    let mut float = false;
    if c.peek(0) == b'0' && matches!(c.peek(1), b'x' | b'o' | b'b') {
        c.bump();
        c.bump();
        while ident_cont(c.peek(0)) {
            c.bump();
        }
        return false;
    }
    while c.peek(0).is_ascii_digit() || c.peek(0) == b'_' {
        c.bump();
    }
    if c.peek(0) == b'.' && c.peek(1).is_ascii_digit() {
        float = true;
        c.bump();
        while c.peek(0).is_ascii_digit() || c.peek(0) == b'_' {
            c.bump();
        }
    }
    if matches!(c.peek(0), b'e' | b'E') {
        let k = if matches!(c.peek(1), b'+' | b'-') {
            2
        } else {
            1
        };
        if c.peek(k).is_ascii_digit() {
            float = true;
            for _ in 0..k {
                c.bump();
            }
            while c.peek(0).is_ascii_digit() || c.peek(0) == b'_' {
                c.bump();
            }
        }
    }
    // Type suffix (u64, f32, …).
    let s = c.i;
    while ident_cont(c.peek(0)) {
        c.bump();
    }
    if matches!(src.get(s..c.i), Some("f32") | Some("f64")) {
        float = true;
    }
    float
}

/// Lexes an identifier, or a string/char literal introduced by the
/// prefixes `r`, `b`, `br` (raw strings, byte literals, raw idents).
fn lex_ident_or_prefixed(c: &mut Cursor, out: &mut Lexed, src: &str, line: u32, col: u32) {
    let start = c.i;
    while ident_cont(c.peek(0)) {
        c.bump();
    }
    let word = src.get(start..c.i).unwrap_or("");
    let is_r = word == "r";
    let is_b = word == "b";
    let is_br = word == "br";
    if (is_r || is_b || is_br) && c.peek(0) == b'"' {
        if is_b {
            lex_string_body(c);
        } else {
            lex_raw_string_body(c, 0);
        }
        push_tok(out, TokKind::Str, src, start, c.i, line, col);
        return;
    }
    if (is_r || is_br) && c.peek(0) == b'#' {
        let mut k = 0;
        while c.peek(k) == b'#' {
            k += 1;
        }
        if c.peek(k) == b'"' {
            for _ in 0..k {
                c.bump();
            }
            lex_raw_string_body(c, k);
            push_tok(out, TokKind::Str, src, start, c.i, line, col);
            return;
        }
        if is_r && ident_start(c.peek(1)) {
            // Raw identifier r#type: token text is the bare name.
            c.bump(); // '#'
            let name_start = c.i;
            while ident_cont(c.peek(0)) {
                c.bump();
            }
            let text = src.get(name_start..c.i).unwrap_or("").to_owned();
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            return;
        }
    }
    if is_b && c.peek(0) == b'\'' {
        // Byte literal b'x'.
        lex_quote(c, out, src, line, col);
        // Rewrite the just-pushed token to include the `b` prefix.
        if let Some(last) = out.tokens.last_mut() {
            last.text = src.get(start..c.i).unwrap_or("").to_owned();
            last.col = col;
        }
        return;
    }
    push_tok(out, TokKind::Ident, src, start, c.i, line, col);
}

const PUNCTS3: [&str; 3] = ["..=", "<<=", ">>="];
const PUNCTS2: [&str; 19] = [
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
    "|=", "<<", ">>",
];

fn lex_punct(c: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let w3 = [c.peek(0), c.peek(1), c.peek(2)];
    let w2 = [c.peek(0), c.peek(1)];
    for p in PUNCTS3 {
        if p.as_bytes() == w3 {
            for _ in 0..3 {
                c.bump();
            }
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: p.to_owned(),
                line,
                col,
            });
            return;
        }
    }
    // ".." must not steal the dot of "..=" (handled above) and must
    // yield to "..=" only; two dots followed by '=' never reach here.
    if w2 == [b'.', b'.'] {
        c.bump();
        c.bump();
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: "..".to_owned(),
            line,
            col,
        });
        return;
    }
    for p in PUNCTS2 {
        if p.as_bytes() == w2 {
            c.bump();
            c.bump();
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: p.to_owned(),
                line,
                col,
            });
            return;
        }
    }
    let b = c.bump();
    out.tokens.push(Token {
        kind: TokKind::Punct,
        text: (b as char).to_string(),
        line,
        col,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens_and_positions() {
        let lx = lex("fn main() {}\nlet x = 1;\n");
        let t0 = &lx.tokens[0];
        assert_eq!(
            (t0.kind, t0.text.as_str(), t0.line, t0.col),
            (TokKind::Ident, "fn", 1, 1)
        );
        let let_tok = lx.tokens.iter().find(|t| t.text == "let").unwrap();
        assert_eq!((let_tok.line, let_tok.col), (2, 1));
    }

    #[test]
    fn line_comments_hide_identifiers() {
        assert_eq!(idents("// unwrap() HashMap\nfn f() {}"), vec!["fn", "f"]);
    }

    #[test]
    fn nested_block_comments() {
        // The inner /* */ must not terminate the outer comment.
        let src = "/* outer /* inner */ still comment unwrap() */ fn g() {}";
        assert_eq!(idents(src), vec!["fn", "g"]);
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// calls `.unwrap()` on HashMap\npub fn h() {}";
        assert_eq!(idents(src), vec!["pub", "fn", "h"]);
    }

    #[test]
    fn plain_strings_hide_contents_and_handle_escapes() {
        let src = r#"let s = "quote \" unwrap() /* not a comment"; let t = 1;"#;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"contains "quotes" and unwrap()"#; next"###;
        assert_eq!(idents(src), vec!["let", "s", "next"]);
    }

    #[test]
    fn raw_string_zero_hashes_and_byte_strings() {
        assert_eq!(idents(r#"r"no unwrap here" x"#), vec!["x"]);
        assert_eq!(idents(r#"b"bytes unwrap" y"#), vec!["y"]);
        assert_eq!(idents(r###"br#"raw bytes unwrap"# z"###), vec!["z"]);
    }

    #[test]
    fn raw_identifier() {
        let ks = kinds("let r#type = 3;");
        assert!(ks.contains(&(TokKind::Ident, "type".to_owned())));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let lx = lex(src);
        let lifetimes: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["'a'"]);
    }

    #[test]
    fn static_lifetime_and_escaped_chars() {
        let src = r"let s: &'static str = x; let c = '\''; let n = '\n'; let u = '\u{1F600}';";
        let lx = lex(src);
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
        let chars = lx.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn underscore_char_and_anonymous_lifetime() {
        let lx = lex("let _x: Foo<'_> = f('_');");
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "_"));
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'_'"));
    }

    #[test]
    fn numbers_int_vs_float() {
        let ks = kinds("let a = 42; let b = 0xFF_u64; let c = 0.5; let d = 1e9; let e = 2f64; let f = 1.max(2);");
        let nums: Vec<_> = ks
            .iter()
            .filter(|(k, _)| matches!(k, TokKind::Int | TokKind::Float))
            .collect();
        assert_eq!(nums[0], &(TokKind::Int, "42".to_owned()));
        assert_eq!(nums[1], &(TokKind::Int, "0xFF_u64".to_owned()));
        assert_eq!(nums[2], &(TokKind::Float, "0.5".to_owned()));
        assert_eq!(nums[3], &(TokKind::Float, "1e9".to_owned()));
        assert_eq!(nums[4], &(TokKind::Float, "2f64".to_owned()));
        // `1.max(2)`: the int must not swallow the method call.
        assert_eq!(nums[5], &(TokKind::Int, "1".to_owned()));
        assert!(ks.contains(&(TokKind::Ident, "max".to_owned())));
    }

    #[test]
    fn ranges_do_not_become_floats() {
        let ks = kinds("for i in 0..10 {} for j in 0..=n {}");
        assert!(ks.contains(&(TokKind::Int, "0".to_owned())));
        assert!(ks.contains(&(TokKind::Punct, "..".to_owned())));
        assert!(ks.contains(&(TokKind::Punct, "..=".to_owned())));
    }

    #[test]
    fn compound_operators() {
        let ks = kinds("a += 1; b::c; d -> e; f >>= 2; g && h;");
        for op in ["+=", "::", "->", ">>=", "&&"] {
            assert!(
                ks.contains(&(TokKind::Punct, op.to_owned())),
                "missing {op}"
            );
        }
    }

    #[test]
    fn directive_comments_are_collected() {
        let lx =
            lex("let x = 1; // tcp-lint: allow(nondet-iteration) — reason\n// plain comment\n");
        assert_eq!(lx.directives.len(), 1);
        assert_eq!(lx.directives[0].line, 1);
        assert!(lx.directives[0].text.contains("allow"));
    }

    #[test]
    fn unterminated_literals_do_not_hang() {
        let _ = lex("let s = \"unterminated");
        let _ = lex("/* unterminated");
        let _ = lex("let c = '");
        let _ = lex("r#\"unterminated");
    }
}
