//! The lint passes: project invariants of the TCP reproduction encoded
//! as named checks over the token stream.
//!
//! Every check is lexical — no type information — so each rule is
//! written to under-approximate: it tracks names declared as hash
//! containers in the same file rather than guessing at receivers, and it
//! anchors panics/casts to exact token shapes. False negatives are
//! possible; false positives should be rare, and every finding can be
//! waived per site with a justified suppression comment:
//!
//! ```text
//! // tcp-lint: allow(<lint-name>) — <reason>
//! ```
//!
//! A suppression covers findings on its own line and on the line
//! directly below it. A malformed suppression (unknown lint name or a
//! missing reason) is itself reported, as `bad-suppression`.

use crate::lexer::{lex, Lexed, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// Lint: iteration over a hash-ordered container in simulator code.
pub const NONDET_ITERATION: &str = "nondet-iteration";
/// Lint: wall-clock time or ambient randomness outside the perf crate.
pub const WALL_CLOCK_IN_SIM: &str = "wall-clock-in-sim";
/// Lint: `unwrap`/`expect`/`panic!`-family in library code of crates
/// that have typed errors.
pub const PANIC_IN_LIBRARY: &str = "panic-in-library";
/// Lint: truncating `as` cast applied to a cycle/addr/tag identifier.
pub const LOSSY_CYCLE_CAST: &str = "lossy-cycle-cast";
/// Lint: floating-point accumulation inside a per-cycle loop.
pub const FLOAT_ACCUM_IN_HOT_LOOP: &str = "float-accum-in-hot-loop";
/// Lint: crate root missing `#![forbid(unsafe_code)]`.
pub const MISSING_FORBID_UNSAFE: &str = "missing-forbid-unsafe";
/// Lint: malformed or unjustified suppression comment.
pub const BAD_SUPPRESSION: &str = "bad-suppression";
/// Lint (semantic): a public API of a typed-error crate transitively
/// reaches an unwaived panic site through the workspace call graph.
pub const PANIC_REACHABILITY: &str = "panic-reachability";
/// Lint (semantic): a numeric `*Stats` field that is never mutated or
/// never read — a silently dead or write-only counter.
pub const STAT_CONSERVATION: &str = "stat-conservation";
/// Lint (semantic): `match` over a closed workspace enum hides variants
/// behind a `_` wildcard arm.
pub const EXHAUSTIVE_DISPATCH: &str = "exhaustive-dispatch";
/// Lint (semantic): a `Result` returned by a workspace function is
/// dropped on the floor as a bare statement.
pub const DISCARDED_RESULT: &str = "discarded-result";
/// Lint (dataflow): a `Mutex` guard held across a call into a workspace
/// function that itself locks (the deadlock shape), or a second lock of
/// the same mutex while the first guard is live.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Lint (dataflow): unchecked `+`/`*`/`<<` on a cycle/addr/tag/stat
/// provenance-tagged value outside the `wrapping_*`/`checked_*` escape
/// hatches.
pub const OVERFLOW_PROVENANCE: &str = "overflow-provenance";
/// Lint (dataflow): a composite SoA plane/chunk index expression with no
/// dominating bound check or loop-header bound in the same function.
pub const INDEX_BOUNDS: &str = "index-bounds";
/// Lint (dataflow): a worker-index/thread-id-derived value flowing into
/// a returned result or a stats field — a determinism hazard.
pub const NONDET_TAINT: &str = "nondet-taint";
/// Lint (interprocedural): an allocation — direct or through a
/// summarized callee — inside a cycle-indexed or chunk-iteration loop
/// of the hot crates, violating the `TraceChunk` reuse / `BoundedRing`
/// preallocation contracts.
pub const ALLOC_IN_HOT_LOOP: &str = "alloc-in-hot-loop";
/// Lint (interprocedural): a `Result` from a workspace call discarded
/// (`let _`, bare `.ok()`, empty `Err` arm) without the error reaching
/// a return, stat, or quarantine path.
pub const SWALLOWED_ERROR: &str = "swallowed-error";
/// Lint (interprocedural): a struct field in the streaming modules
/// pushed to inside a loop with no pop/clear/truncate/drain anywhere —
/// unbounded memory growth in the bounded-ingestion path.
pub const UNBOUNDED_GROWTH_IN_STREAM: &str = "unbounded-growth-in-stream";
/// Lint (interprocedural): a `Mutex` guard held across a call whose
/// summary says it blocks (`recv`/`wait`/`sleep`/blocking reads) — the
/// lock-convoy / deadlock-by-waiting shape.
pub const GUARD_ACROSS_BLOCKING_CALL: &str = "guard-across-blocking-call";

/// Every lint tcp-lint knows, in stable order (lexical first, then the
/// semantic passes that need the workspace AST, then the dataflow
/// passes, then the v4 interprocedural passes).
pub const ALL_LINTS: [&str; 19] = [
    NONDET_ITERATION,
    WALL_CLOCK_IN_SIM,
    PANIC_IN_LIBRARY,
    LOSSY_CYCLE_CAST,
    FLOAT_ACCUM_IN_HOT_LOOP,
    MISSING_FORBID_UNSAFE,
    BAD_SUPPRESSION,
    PANIC_REACHABILITY,
    STAT_CONSERVATION,
    EXHAUSTIVE_DISPATCH,
    DISCARDED_RESULT,
    LOCK_DISCIPLINE,
    OVERFLOW_PROVENANCE,
    INDEX_BOUNDS,
    NONDET_TAINT,
    ALLOC_IN_HOT_LOOP,
    SWALLOWED_ERROR,
    UNBOUNDED_GROWTH_IN_STREAM,
    GUARD_ACROSS_BLOCKING_CALL,
];

/// One-line description per lint, for `--list-lints` and the SARIF
/// rules table. Kept adjacent to [`ALL_LINTS`] so adding a lint without
/// describing it fails the `every_lint_has_an_about` test.
pub fn lint_about(name: &str) -> &'static str {
    match name {
        "nondet-iteration" => "iteration over a hash-ordered container in simulator code",
        "wall-clock-in-sim" => "wall-clock time or ambient randomness outside the perf crate",
        "panic-in-library" => "panic/unwrap/expect in library code of a typed-error crate",
        "lossy-cycle-cast" => "truncating cast of a cycle/addr/tag quantity",
        "float-accum-in-hot-loop" => "floating-point accumulation inside a per-cycle loop",
        "missing-forbid-unsafe" => "crate root missing #![forbid(unsafe_code)]",
        "bad-suppression" => "malformed or unjustified tcp-lint suppression comment",
        "panic-reachability" => "public API transitively reaches a panic through the call graph",
        "stat-conservation" => "a *Stats counter that is never mutated or never read",
        "exhaustive-dispatch" => "wildcard match arm hiding variants of a closed workspace enum",
        "discarded-result" => "workspace Result dropped as a bare statement",
        "lock-discipline" => "guard held across a locking call, or a same-mutex re-lock",
        "overflow-provenance" => "unchecked arithmetic on cycle/addr/tag/stat-tagged values",
        "index-bounds" => "composite index expression without a dominating bound check",
        "nondet-taint" => "worker/thread identity flowing into results or stats",
        "alloc-in-hot-loop" => "allocation (direct or via callees) inside a cycle/chunk hot loop",
        "swallowed-error" => "workspace Result discarded without the error reaching any sink",
        "unbounded-growth-in-stream" => "streaming struct field grown in a loop and never drained",
        "guard-across-blocking-call" => "mutex guard held across a summarized blocking call",
        _ => "",
    }
}

/// Crates exempt from the panic-in-library rule: the perf harness is a
/// measurement binary with no typed-error API of its own. Every other
/// workspace crate's library code must return its error type. (Coverage
/// is otherwise derived from the workspace manifest — see
/// `crate::workspace_sources` — not from a hardcoded list.)
const PANIC_EXEMPT_CRATES: [&str; 1] = ["perf"];

/// The one crate allowed to read the wall clock: the perf harness times
/// real executions by design.
const WALL_CLOCK_CRATE: &str = "perf";

/// Identifiers that mean wall-clock time or ambient randomness.
const WALL_CLOCK_IDENTS: [&str; 6] = [
    "Instant",
    "SystemTime",
    "ThreadRng",
    "thread_rng",
    "RandomState",
    "getrandom",
];

/// Hash-container methods whose visit order is nondeterministic.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Cast targets narrower than the u64 cycle/address domain.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier fragments that mark cycle/address/tag quantities.
const CYCLE_PATTERNS: [&str; 3] = ["cycle", "addr", "tag"];

/// How a file participates in the build, which decides lint scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/*.rs` except `main.rs`/`src/bin`).
    Lib,
    /// Binary source (`src/main.rs`, `src/bin/*.rs`).
    Bin,
    /// Integration test (`tests/*.rs`).
    Test,
    /// Example (`examples/*.rs`).
    Example,
}

/// Where a file sits in the workspace; drives which lints apply.
#[derive(Clone, Debug)]
pub struct FileSpec<'a> {
    /// Display path (workspace-relative).
    pub path: &'a str,
    /// `crates/<dir>` component, or `""` for the root package.
    pub crate_dir: &'a str,
    /// Build role of the file.
    pub kind: FileKind,
    /// `true` for a crate's `src/lib.rs`.
    pub crate_root: bool,
}

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Lint name (one of [`ALL_LINTS`]).
    pub lint: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Lints one file with the lexical passes. Findings are sorted by
/// position and already filtered through any suppression comments in the
/// file. The semantic passes need the whole workspace and live in
/// [`crate::semantic`]; `crate::analyze_files` runs both.
pub fn lint_file(spec: &FileSpec<'_>, src: &str) -> Vec<Finding> {
    let mut used = BTreeSet::new();
    lint_file_tracked(spec, src, &mut used)
}

/// [`lint_file`], additionally recording into `used` the directive line
/// of every suppression that actually filtered a finding (the stale-
/// waiver report subtracts these from the full waiver list).
pub fn lint_file_tracked(spec: &FileSpec<'_>, src: &str, used: &mut BTreeSet<u32>) -> Vec<Finding> {
    let lx = lex(src);
    let toks = &lx.tokens;
    let in_test = test_mask(toks, spec.kind);
    let ast = crate::ast::parse(toks, &in_test);
    let lines: Vec<&str> = src.lines().collect();
    let mut findings: Vec<Finding> = Vec::new();

    let parsed = scan_directives(&lx);
    for (line, why) in &parsed.bad {
        push(
            &mut findings,
            spec,
            &lines,
            BAD_SUPPRESSION,
            *line,
            1,
            format!("unusable tcp-lint suppression: {why}"),
        );
    }

    nondet_pass(toks, &in_test, spec, &lines, &mut findings);
    if spec.crate_dir != WALL_CLOCK_CRATE {
        wall_clock_pass(toks, &in_test, spec, &lines, &mut findings);
    }
    if !PANIC_EXEMPT_CRATES.contains(&spec.crate_dir) && spec.kind == FileKind::Lib {
        panic_pass(toks, &in_test, spec, &lines, &mut findings);
    }
    lossy_cast_pass(toks, &in_test, spec, &lines, &mut findings);
    float_accum_pass(&ast, toks, &in_test, spec, &lines, &mut findings);
    if spec.crate_root {
        forbid_unsafe_pass(toks, spec, &lines, &mut findings);
    }

    findings.retain(|f| match suppressed_by(&parsed.sups, f) {
        Some(line) => {
            used.insert(line);
            false
        }
        None => true,
    });
    findings.sort_by(|a, b| (a.line, a.col, a.lint).cmp(&(b.line, b.col, b.lint)));
    findings.dedup_by(|a, b| (a.line, a.col, a.lint) == (b.line, b.col, b.lint));
    findings
}

pub(crate) fn snippet(lines: &[&str], line: u32) -> String {
    lines
        .get(line as usize - 1)
        .map(|l| l.trim().to_owned())
        .unwrap_or_default()
}

pub(crate) fn push(
    findings: &mut Vec<Finding>,
    spec: &FileSpec<'_>,
    lines: &[&str],
    lint: &'static str,
    line: u32,
    col: u32,
    message: String,
) {
    findings.push(Finding {
        lint,
        path: spec.path.to_owned(),
        line,
        col,
        message,
        snippet: snippet(lines, line),
    });
}

pub(crate) fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

pub(crate) fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` items (and whole test
/// files) so test-only code is exempt from the code lints.
pub(crate) fn test_mask(toks: &[Token], kind: FileKind) -> Vec<bool> {
    let mut mask = vec![kind == FileKind::Test; toks.len()];
    if kind == FileKind::Test {
        return mask;
    }
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(is_punct(&toks[i], "#") && is_punct(&toks[i + 1], "[")) {
            i += 1;
            continue;
        }
        let attr_end = match matching(toks, i + 1, "[", "]") {
            Some(e) => e,
            None => break,
        };
        let body = &toks[i + 2..attr_end];
        let mentions_test = body.iter().any(|t| is_ident(t, "test"));
        let negated = body.iter().any(|t| is_ident(t, "not"));
        if !mentions_test || negated {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = attr_end + 1;
        while j + 1 < toks.len() && is_punct(&toks[j], "#") && is_punct(&toks[j + 1], "[") {
            match matching(toks, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        // The item extends to its closing brace, or to `;` for items
        // without a body (`mod tests;`).
        let mut end = j;
        while end < toks.len() {
            if is_punct(&toks[end], ";") {
                break;
            }
            if is_punct(&toks[end], "{") {
                end = matching(toks, end, "{", "}").unwrap_or(toks.len() - 1);
                break;
            }
            end += 1;
        }
        let stop = end.min(toks.len() - 1);
        for m in mask.iter_mut().take(stop + 1).skip(i) {
            *m = true;
        }
        i = stop + 1;
    }
    mask
}

/// Index of the delimiter closing `toks[open]`, if any.
pub(crate) fn matching(
    toks: &[Token],
    open: usize,
    open_text: &str,
    close_text: &str,
) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if is_punct(t, open_text) {
            depth += 1;
        } else if is_punct(t, close_text) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Parsed suppressions: line → lint names waived on that line and the
/// next.
pub(crate) type Suppressions = BTreeMap<u32, Vec<String>>;

/// Directive line whose suppression covers `f`, if any (a directive
/// covers its own line and the line directly below it).
pub(crate) fn suppressed_by(sups: &Suppressions, f: &Finding) -> Option<u32> {
    let hit = |line: u32| {
        sups.get(&line)
            .is_some_and(|names| names.iter().any(|n| n == f.lint))
    };
    if hit(f.line) {
        return Some(f.line);
    }
    if f.line > 1 && hit(f.line - 1) {
        return Some(f.line - 1);
    }
    None
}

/// Everything the directive scan learns about one file.
pub(crate) struct ParsedDirectives {
    /// Active suppressions by line.
    pub(crate) sups: Suppressions,
    /// Well-formed waivers: (line, lint names, justification text).
    pub(crate) waivers: Vec<(u32, Vec<String>, String)>,
    /// Malformed directives: (line, what is wrong).
    pub(crate) bad: Vec<(u32, String)>,
}

/// Parses `tcp-lint: allow(...)` comments. Well-formed directives become
/// suppressions (and waiver records for the `--waivers` report);
/// malformed ones (bad syntax, unknown lint, missing reason) are
/// reported as `bad-suppression`. Comments that mention tcp-lint without
/// `: allow` are prose and ignored.
pub(crate) fn scan_directives(lx: &Lexed) -> ParsedDirectives {
    let mut parsed = ParsedDirectives {
        sups: Suppressions::new(),
        waivers: Vec::new(),
        bad: Vec::new(),
    };
    for d in &lx.directives {
        // Doc comments are documentation — only plain comments suppress.
        let doc = d.text.starts_with("///")
            || d.text.starts_with("//!")
            || d.text.starts_with("/**")
            || d.text.starts_with("/*!");
        if doc {
            continue;
        }
        match classify_directive(&d.text) {
            DirectiveParse::NotADirective => {}
            DirectiveParse::Malformed(why) => parsed.bad.push((d.line, why)),
            DirectiveParse::Allow(names, reason) => {
                parsed.sups.entry(d.line).or_default().extend(names.clone());
                parsed.waivers.push((d.line, names, reason));
            }
        }
    }
    parsed
}

enum DirectiveParse {
    NotADirective,
    Malformed(String),
    Allow(Vec<String>, String),
}

fn classify_directive(text: &str) -> DirectiveParse {
    let Some(pos) = text.find("tcp-lint") else {
        return DirectiveParse::NotADirective;
    };
    let rest = text[pos + "tcp-lint".len()..].trim_start();
    let Some(rest) = rest.strip_prefix(':') else {
        return DirectiveParse::NotADirective;
    };
    let rest = rest.trim_start();
    if !rest.starts_with("allow") {
        // Prose like "tcp-lint: a custom linter" — not a directive.
        return DirectiveParse::NotADirective;
    }
    let rest = rest["allow".len()..].trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return DirectiveParse::Malformed("expected `allow(<lint-name>)`".to_owned());
    };
    let Some((names_str, tail)) = rest.split_once(')') else {
        return DirectiveParse::Malformed("unclosed `allow(` list".to_owned());
    };
    let mut names = Vec::new();
    for raw in names_str.split(',') {
        let name = raw.trim();
        if name.is_empty() {
            return DirectiveParse::Malformed("empty lint name in allow(...)".to_owned());
        }
        if !ALL_LINTS.contains(&name) {
            return DirectiveParse::Malformed(format!("unknown lint `{name}`"));
        }
        names.push(name.to_owned());
    }
    // A reason is mandatory: some text with at least one alphanumeric
    // character after the closing paren (conventionally "— why").
    let has_reason = tail.chars().filter(|c| c.is_alphanumeric()).count() >= 3;
    if !has_reason {
        return DirectiveParse::Malformed(
            "missing justification — write `// tcp-lint: allow(<name>) — <reason>`".to_owned(),
        );
    }
    let reason = tail
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':'))
        .trim_end()
        .trim_end_matches("*/")
        .trim_end()
        .to_owned();
    DirectiveParse::Allow(names, reason)
}

/// Names in this file declared (or annotated) as `HashMap`/`HashSet`:
/// `name: HashMap<…>`, `name: &HashMap<…>`, `name = HashMap::new()`.
fn hash_container_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if !(is_ident(&toks[i], "HashMap") || is_ident(&toks[i], "HashSet")) {
            continue;
        }
        // Walk back over a `std :: collections ::` path prefix.
        let mut j = i;
        while j >= 2 && is_punct(&toks[j - 1], "::") && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        // Skip reference/mutability noise between the binder and type.
        let mut k = j;
        while k >= 1 && (is_punct(&toks[k - 1], "&") || is_ident(&toks[k - 1], "mut")) {
            k -= 1;
        }
        if k >= 2
            && (is_punct(&toks[k - 1], ":") || is_punct(&toks[k - 1], "="))
            && toks[k - 2].kind == TokKind::Ident
        {
            names.insert(toks[k - 2].text.clone());
        }
    }
    names
}

fn nondet_pass(
    toks: &[Token],
    in_test: &[bool],
    spec: &FileSpec<'_>,
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    let hashed = hash_container_names(toks);
    if hashed.is_empty() {
        return;
    }
    for i in 0..toks.len() {
        if in_test[i] || toks[i].kind != TokKind::Ident || !hashed.contains(&toks[i].text) {
            continue;
        }
        let name = &toks[i].text;
        // `name.iter()`, `name.keys()`, … — order-dependent visits.
        if i + 3 < toks.len()
            && is_punct(&toks[i + 1], ".")
            && toks[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
            && is_punct(&toks[i + 3], "(")
        {
            let m = &toks[i + 2];
            push(
                findings,
                spec,
                lines,
                NONDET_ITERATION,
                m.line,
                m.col,
                format!(
                    "`{name}.{}()` visits a hash-ordered container in nondeterministic \
                     order; use BTreeMap/BTreeSet or collect and sort before iterating",
                    m.text
                ),
            );
            continue;
        }
        // `for x in name` / `for x in &name` / `for x in &mut self.name`.
        let mut j = i;
        while j >= 2 && is_punct(&toks[j - 1], ".") && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        while j >= 1 && (is_punct(&toks[j - 1], "&") || is_ident(&toks[j - 1], "mut")) {
            j -= 1;
        }
        if j >= 1 && is_ident(&toks[j - 1], "in") {
            let t = &toks[i];
            push(
                findings,
                spec,
                lines,
                NONDET_ITERATION,
                t.line,
                t.col,
                format!(
                    "`for … in {name}` iterates a hash-ordered container in \
                     nondeterministic order; use BTreeMap/BTreeSet or sort first"
                ),
            );
        }
    }
}

fn wall_clock_pass(
    toks: &[Token],
    in_test: &[bool],
    spec: &FileSpec<'_>,
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if WALL_CLOCK_IDENTS.contains(&t.text.as_str()) {
            push(
                findings,
                spec,
                lines,
                WALL_CLOCK_IN_SIM,
                t.line,
                t.col,
                format!(
                    "`{}` injects wall-clock time or ambient randomness into \
                     simulation code; simulated time and seeded RNGs only (the \
                     perf harness in crates/perf is the sole exception)",
                    t.text
                ),
            );
        }
    }
}

fn panic_pass(
    toks: &[Token],
    in_test: &[bool],
    spec: &FileSpec<'_>,
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        // `.unwrap(` / `.expect(`
        if is_punct(&toks[i], ".")
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && matches!(toks[i + 1].text.as_str(), "unwrap" | "expect")
            && is_punct(&toks[i + 2], "(")
        {
            let t = &toks[i + 1];
            push(
                findings,
                spec,
                lines,
                PANIC_IN_LIBRARY,
                t.line,
                t.col,
                format!(
                    "`.{}()` can panic in library code of a typed-error crate; \
                     return the crate's error type, or justify the invariant \
                     with a suppression",
                    t.text
                ),
            );
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
        if toks[i].kind == TokKind::Ident
            && matches!(
                toks[i].text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], "!")
        {
            let t = &toks[i];
            push(
                findings,
                spec,
                lines,
                PANIC_IN_LIBRARY,
                t.line,
                t.col,
                format!(
                    "`{}!` aborts library code of a typed-error crate; return \
                     the crate's error type, or justify the invariant with a \
                     suppression",
                    t.text
                ),
            );
        }
    }
}

fn lossy_cast_pass(
    toks: &[Token],
    in_test: &[bool],
    spec: &FileSpec<'_>,
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    for i in 1..toks.len() {
        if in_test[i] || !is_ident(&toks[i], "as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if !(target.kind == TokKind::Ident && NARROW_INTS.contains(&target.text.as_str())) {
            continue;
        }
        let operand = &toks[i - 1];
        if operand.kind != TokKind::Ident {
            continue;
        }
        let lower = operand.text.to_lowercase();
        if CYCLE_PATTERNS.iter().any(|p| lower.contains(p)) {
            push(
                findings,
                spec,
                lines,
                LOSSY_CYCLE_CAST,
                operand.line,
                operand.col,
                format!(
                    "`{} as {}` truncates a cycle/address/tag quantity; keep \
                     u64 end to end, use `{}::try_from`, or mask explicitly \
                     before casting",
                    operand.text, target.text, target.text
                ),
            );
        }
    }
}

/// Names in this file declared as floats (`name: f64`, `name = 0.0`).
fn float_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let is_float_ty = is_ident(&toks[i], "f64") || is_ident(&toks[i], "f32");
        if is_float_ty
            && i >= 2
            && is_punct(&toks[i - 1], ":")
            && toks[i - 2].kind == TokKind::Ident
        {
            names.insert(toks[i - 2].text.clone());
        }
        if toks[i].kind == TokKind::Float
            && i >= 2
            && is_punct(&toks[i - 1], "=")
            && toks[i - 2].kind == TokKind::Ident
            && !matches!(toks[i - 2].text.as_str(), "f64" | "f32")
        {
            names.insert(toks[i - 2].text.clone());
        }
    }
    names
}

/// AST-driven since the v2 parser landed: only loops inside real
/// function bodies are scanned (the lexical version also walked
/// `macro_rules!` bodies and other non-code token runs, a
/// false-positive source), and nested loops come straight from the
/// parser's loop list instead of a re-scan heuristic.
fn float_accum_pass(
    ast: &crate::ast::Ast,
    toks: &[Token],
    in_test: &[bool],
    spec: &FileSpec<'_>,
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    let floats = float_names(toks);
    for fr in crate::ast::visit_fns(ast) {
        let Some(body) = fr.f.body.as_ref() else {
            continue;
        };
        for lp in &body.loops {
            let Some(open) = lp.body_open else { continue };
            let header_has_cycle = lp
                .header_idents
                .iter()
                .any(|id| id.to_lowercase().contains("cycle"));
            if !header_has_cycle {
                continue;
            }
            let close = matching(toks, open, "{", "}").unwrap_or(toks.len() - 1);
            for k in open + 1..close {
                if in_test[k] || !is_punct(&toks[k], "+=") {
                    continue;
                }
                let lhs_is_float =
                    toks[k - 1].kind == TokKind::Ident && floats.contains(&toks[k - 1].text);
                let mut rhs_is_float = false;
                let mut r = k + 1;
                while r < close && !is_punct(&toks[r], ";") {
                    if toks[r].kind == TokKind::Float
                        || is_ident(&toks[r], "f64")
                        || is_ident(&toks[r], "f32")
                    {
                        rhs_is_float = true;
                        break;
                    }
                    r += 1;
                }
                if lhs_is_float || rhs_is_float {
                    let t = &toks[k];
                    push(
                        findings,
                        spec,
                        lines,
                        FLOAT_ACCUM_IN_HOT_LOOP,
                        t.line,
                        t.col,
                        "floating-point accumulation inside a per-cycle loop loses \
                         precision as the run grows; accumulate in integers and \
                         convert once at reporting time"
                            .to_owned(),
                    );
                }
            }
        }
    }
}

fn forbid_unsafe_pass(
    toks: &[Token],
    spec: &FileSpec<'_>,
    lines: &[&str],
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if !is_ident(&toks[i], "forbid") {
            continue;
        }
        if i + 1 < toks.len() && is_punct(&toks[i + 1], "(") {
            if let Some(close) = matching(toks, i + 1, "(", ")") {
                if toks[i + 2..close]
                    .iter()
                    .any(|t| is_ident(t, "unsafe_code"))
                {
                    return;
                }
            }
        }
    }
    push(
        findings,
        spec,
        lines,
        MISSING_FORBID_UNSAFE,
        1,
        1,
        "crate root is missing `#![forbid(unsafe_code)]`; every workspace \
         library crate must forbid unsafe code"
            .to_owned(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_lint_has_an_about_line() {
        assert_eq!(ALL_LINTS.len(), 19, "the v4 lint set");
        for l in ALL_LINTS {
            assert!(
                !lint_about(l).is_empty(),
                "lint `{l}` is missing its one-line description"
            );
        }
        assert!(
            lint_about("not-a-lint").is_empty(),
            "unknown names describe as empty, not panic"
        );
    }
}
