//! Figure 11: IPC improvement of TCP-8K and TCP-8M versus DBCP with a
//! 2 MB correlation table — the paper's headline comparison.

use crate::report::{pct, Table};
use crate::sweep::{Job, PrefetcherSpec, SweepEngine};
use tcp_baselines::DbcpConfig;
use tcp_core::TcpConfig;
use tcp_sim::{ipc_improvement, SystemConfig};
use tcp_workloads::Benchmark;

/// One benchmark's bars in Figure 11.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline (no prefetch) IPC.
    pub base_ipc: f64,
    /// DBCP-2M improvement over baseline, percent.
    pub dbcp_pct: f64,
    /// TCP-8K improvement over baseline, percent.
    pub tcp8k_pct: f64,
    /// TCP-8M improvement over baseline, percent.
    pub tcp8m_pct: f64,
}

/// The full figure: per-benchmark rows plus the geometric means.
#[derive(Clone, Debug)]
pub struct Fig11 {
    /// Per-benchmark results in suite order.
    pub rows: Vec<Fig11Row>,
    /// Geomean improvement of DBCP-2M (paper: ≈ 7%).
    pub geomean_dbcp_pct: f64,
    /// Geomean improvement of TCP-8K (paper: ≈ 14%).
    pub geomean_tcp8k_pct: f64,
    /// Geomean improvement of TCP-8M (paper: ≈ 15%).
    pub geomean_tcp8m_pct: f64,
}

/// Runs the Figure 11 comparison on a fresh engine.
pub fn run(benchmarks: &[Benchmark], n_ops: u64) -> Fig11 {
    run_with(&SweepEngine::new(), benchmarks, n_ops)
}

/// Runs the comparison through `engine`, sharing its memo: the baseline
/// and TCP-8K/8M points here also feed Figures 1, 12, and 14.
pub fn run_with(engine: &SweepEngine, benchmarks: &[Benchmark], n_ops: u64) -> Fig11 {
    let cfg = SystemConfig::table1();
    let jobs: Vec<Job> = benchmarks
        .iter()
        .flat_map(|b| {
            [
                Job::new(b, n_ops, &cfg, PrefetcherSpec::Null),
                Job::new(b, n_ops, &cfg, PrefetcherSpec::Dbcp(DbcpConfig::dbcp_2m())),
                Job::new(b, n_ops, &cfg, PrefetcherSpec::Tcp(TcpConfig::tcp_8k())),
                Job::new(b, n_ops, &cfg, PrefetcherSpec::Tcp(TcpConfig::tcp_8m())),
            ]
        })
        .collect();
    let results = engine.run(&jobs);
    let mut rows = Vec::with_capacity(benchmarks.len());
    let mut ratios = (Vec::new(), Vec::new(), Vec::new());
    for (b, group) in benchmarks.iter().zip(results.chunks_exact(4)) {
        let (base, dbcp, t8k, t8m) = (&group[0], &group[1], &group[2], &group[3]);
        rows.push(Fig11Row {
            benchmark: b.name.to_owned(),
            base_ipc: base.ipc,
            dbcp_pct: ipc_improvement(base, dbcp),
            tcp8k_pct: ipc_improvement(base, t8k),
            tcp8m_pct: ipc_improvement(base, t8m),
        });
        ratios.0.push(dbcp.ipc / base.ipc);
        ratios.1.push(t8k.ipc / base.ipc);
        ratios.2.push(t8m.ipc / base.ipc);
    }
    let geo = |v: &[f64]| (tcp_analysis::geometric_mean(v) - 1.0) * 100.0;
    Fig11 {
        rows,
        geomean_dbcp_pct: geo(&ratios.0),
        geomean_tcp8k_pct: geo(&ratios.1),
        geomean_tcp8m_pct: geo(&ratios.2),
    }
}

/// Renders the figure as a table with a trailing geomean row.
pub fn render(fig: &Fig11) -> Table {
    let mut t = Table::new(
        "Figure 11: IPC improvement, TCP-8K / TCP-8M vs DBCP-2M",
        &["benchmark", "base IPC", "DBCP-2M", "TCP-8K", "TCP-8M"],
    );
    for r in &fig.rows {
        t.row(vec![
            r.benchmark.clone(),
            format!("{:.3}", r.base_ipc),
            pct(r.dbcp_pct),
            pct(r.tcp8k_pct),
            pct(r.tcp8m_pct),
        ]);
    }
    t.row(vec![
        "geomean".into(),
        String::from("-"),
        pct(fig.geomean_dbcp_pct),
        pct(fig.geomean_tcp8k_pct),
        pct(fig.geomean_tcp8m_pct),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::suite;

    #[test]
    fn tcp_beats_baseline_on_correlated_benchmarks() {
        let picks: Vec<Benchmark> = suite()
            .into_iter()
            .filter(|b| ["ammp", "art"].contains(&b.name))
            .collect();
        let fig = run(&picks, 250_000);
        let ammp = fig.rows.iter().find(|r| r.benchmark == "ammp").unwrap();
        // ammp's chase retraverses within 250k ops; the private PHT learns.
        assert!(
            ammp.tcp8m_pct > 5.0,
            "ammp: TCP-8M should help, got {:.1}%",
            ammp.tcp8m_pct
        );
        let art = fig.rows.iter().find(|r| r.benchmark == "art").unwrap();
        // art's sequences are shared across sets, so the 8 KB shared PHT
        // predicts even before a full sweep finishes (TCP-8M needs a full
        // per-set pass and only catches up at larger scales).
        assert!(
            art.tcp8k_pct > 5.0,
            "art's shared patterns suit TCP-8K: {:.1}%",
            art.tcp8k_pct
        );
    }

    #[test]
    fn render_has_geomean_row() {
        let fig = Fig11 {
            rows: vec![],
            geomean_dbcp_pct: 7.0,
            geomean_tcp8k_pct: 14.0,
            geomean_tcp8m_pct: 15.0,
        };
        let text = render(&fig).render();
        assert!(text.contains("geomean"));
        assert!(text.contains("14.0%"));
    }
}
