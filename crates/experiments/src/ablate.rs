//! System-parameter ablations: how sensitive are the paper's conclusions
//! to machine parameters Table 1 fixes (or leaves unstated)?
//!
//! For each knob the sweep reports the no-prefetch baseline and TCP-8K
//! geomean IPC over a representative subset, so the *robustness of the
//! TCP win* — not just raw IPC — is visible per point.

use crate::report::{f, Table};
use crate::sweep::{Job, PrefetcherSpec, SweepEngine};
use tcp_analysis::geometric_mean;
use tcp_core::TcpConfig;
use tcp_sim::SystemConfig;
use tcp_workloads::Benchmark;

/// One sweep point.
#[derive(Clone, Debug)]
pub struct AblatePoint {
    /// Knob label, e.g. `mshrs=16`.
    pub label: String,
    /// Geomean IPC without prefetching.
    pub base_ipc: f64,
    /// Geomean IPC with TCP-8K.
    pub tcp_ipc: f64,
}

impl AblatePoint {
    /// TCP-8K improvement at this point, percent.
    pub fn improvement_pct(&self) -> f64 {
        (self.tcp_ipc / self.base_ipc - 1.0) * 100.0
    }
}

/// A named sweep over one machine parameter.
#[derive(Clone, Debug)]
pub struct AblateSweep {
    /// Parameter name.
    pub knob: &'static str,
    /// Sweep points in order.
    pub points: Vec<AblatePoint>,
}

/// One planned sweep point: which knob group it belongs to, its label,
/// and the machine it measures.
struct PlannedPoint {
    knob: &'static str,
    label: String,
    cfg: SystemConfig,
}

/// Plans all six sweeps: MSHR count, memory-bus occupancy, prefetch
/// buffer depth, branch-mispredict rate, victim-cache size, and L2
/// replacement policy.
fn plan() -> Vec<PlannedPoint> {
    let mut points = Vec::new();
    let mut point = |knob, label: String, cfg| points.push(PlannedPoint { knob, label, cfg });

    for mshrs in [4usize, 16, 64] {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.l1_mshrs = mshrs;
        point("L1 MSHRs", format!("mshrs={mshrs}"), cfg);
    }
    for cycles in [2u64, 4, 8, 16] {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.mem_bus_cycles = cycles;
        point(
            "memory bus occupancy / line",
            format!("mem_bus={cycles}cyc"),
            cfg,
        );
    }
    for buf in [8usize, 32, 64] {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.prefetch_buffer = buf;
        point("in-flight prefetch budget", format!("pf_buffer={buf}"), cfg);
    }
    for pct in [0u8, 5, 10] {
        let mut cfg = SystemConfig::table1();
        cfg.core.branch_mispredict_pct = pct;
        point("branch mispredict rate", format!("mispredict={pct}%"), cfg);
    }
    for vc in [None, Some(8usize), Some(32)] {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.victim_cache_entries = vc;
        let label = match vc {
            None => "victim=off".to_owned(),
            Some(n) => format!("victim={n}"),
        };
        point("victim cache (Jouppi)", label, cfg);
    }
    for (name, policy) in [
        ("lru", tcp_cache::Replacement::Lru),
        ("tree-plru", tcp_cache::Replacement::TreePlru),
        ("random", tcp_cache::Replacement::random(7)),
    ] {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.l2_replacement = policy;
        point("L2 replacement policy", format!("l2={name}"), cfg);
    }
    points
}

/// Runs all six sweeps on a fresh engine.
pub fn run(benches: &[Benchmark], n_ops: u64) -> Vec<AblateSweep> {
    run_with(&SweepEngine::new(), benches, n_ops)
}

/// Runs all six sweeps through `engine` as one batch: every
/// (point × benchmark × {baseline, TCP-8K}) simulation fans out across
/// the work-stealing pool together — the Table 1 points that repeat
/// across knob sweeps (e.g. `mshrs=64` *is* Table 1) dedup in the memo.
pub fn run_with(engine: &SweepEngine, benches: &[Benchmark], n_ops: u64) -> Vec<AblateSweep> {
    let planned = plan();
    let jobs: Vec<Job> =
        planned
            .iter()
            .flat_map(|p| {
                benches
                    .iter()
                    .map(|b| Job::new(b, n_ops, &p.cfg, PrefetcherSpec::Null))
                    .chain(benches.iter().map(|b| {
                        Job::new(b, n_ops, &p.cfg, PrefetcherSpec::Tcp(TcpConfig::tcp_8k()))
                    }))
            })
            .collect();
    let results = engine.run(&jobs);
    let mut sweeps: Vec<AblateSweep> = Vec::new();
    for (p, group) in planned.iter().zip(results.chunks_exact(2 * benches.len())) {
        let ipcs =
            |runs: &[tcp_sim::RunResult]| -> Vec<f64> { runs.iter().map(|r| r.ipc).collect() };
        let point = AblatePoint {
            label: p.label.clone(),
            base_ipc: geometric_mean(&ipcs(&group[..benches.len()])),
            tcp_ipc: geometric_mean(&ipcs(&group[benches.len()..])),
        };
        match sweeps.last_mut() {
            Some(s) if s.knob == p.knob => s.points.push(point),
            _ => sweeps.push(AblateSweep {
                knob: p.knob,
                points: vec![point],
            }),
        }
    }
    sweeps
}

/// Renders one sweep.
pub fn render(sweep: &AblateSweep) -> Table {
    let mut t = Table::new(
        &format!("Ablation: {}", sweep.knob),
        &["point", "base IPC", "TCP-8K IPC", "TCP gain"],
    );
    for p in &sweep.points {
        t.row(vec![
            p.label.clone(),
            f(p.base_ipc, 4),
            f(p.tcp_ipc, 4),
            format!("{:+.1}%", p.improvement_pct()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::suite;

    #[test]
    fn sweeps_cover_all_knobs_and_points() {
        let benches: Vec<Benchmark> = suite().into_iter().filter(|b| b.name == "art").collect();
        let sweeps = run(&benches, 60_000);
        assert_eq!(sweeps.len(), 6);
        assert_eq!(sweeps[0].points.len(), 3);
        assert_eq!(sweeps[1].points.len(), 4);
        for s in &sweeps {
            for p in &s.points {
                assert!(p.base_ipc > 0.0 && p.tcp_ipc > 0.0, "{}: {:?}", s.knob, p);
            }
            assert!(!render(s).render().is_empty());
        }
    }

    #[test]
    fn fewer_mshrs_never_help_the_baseline() {
        let benches: Vec<Benchmark> = suite().into_iter().filter(|b| b.name == "swim").collect();
        let sweeps = run(&benches, 120_000);
        let mshr = &sweeps[0].points;
        assert!(
            mshr[0].base_ipc <= mshr[2].base_ipc * 1.02,
            "4 MSHRs ({:.3}) must not beat 64 ({:.3})",
            mshr[0].base_ipc,
            mshr[2].base_ipc
        );
    }
}
