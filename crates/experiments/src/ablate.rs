//! System-parameter ablations: how sensitive are the paper's conclusions
//! to machine parameters Table 1 fixes (or leaves unstated)?
//!
//! For each knob the sweep reports the no-prefetch baseline and TCP-8K
//! geomean IPC over a representative subset, so the *robustness of the
//! TCP win* — not just raw IPC — is visible per point.

use crate::report::{f, Table};
use tcp_analysis::geometric_mean;
use tcp_cache::NullPrefetcher;
use tcp_core::{Tcp, TcpConfig};
use tcp_sim::{run_benchmark, SystemConfig};
use tcp_workloads::Benchmark;

/// One sweep point.
#[derive(Clone, Debug)]
pub struct AblatePoint {
    /// Knob label, e.g. `mshrs=16`.
    pub label: String,
    /// Geomean IPC without prefetching.
    pub base_ipc: f64,
    /// Geomean IPC with TCP-8K.
    pub tcp_ipc: f64,
}

impl AblatePoint {
    /// TCP-8K improvement at this point, percent.
    pub fn improvement_pct(&self) -> f64 {
        (self.tcp_ipc / self.base_ipc - 1.0) * 100.0
    }
}

/// A named sweep over one machine parameter.
#[derive(Clone, Debug)]
pub struct AblateSweep {
    /// Parameter name.
    pub knob: &'static str,
    /// Sweep points in order.
    pub points: Vec<AblatePoint>,
}

fn measure(benches: &[Benchmark], n_ops: u64, cfg: &SystemConfig, label: String) -> AblatePoint {
    let geo = |runs: Vec<f64>| geometric_mean(&runs);
    let base = geo(benches
        .iter()
        .map(|b| run_benchmark(b, n_ops, cfg, Box::new(NullPrefetcher)).ipc)
        .collect());
    let tcp = geo(benches
        .iter()
        .map(|b| run_benchmark(b, n_ops, cfg, Box::new(Tcp::new(TcpConfig::tcp_8k()))).ipc)
        .collect());
    AblatePoint {
        label,
        base_ipc: base,
        tcp_ipc: tcp,
    }
}

/// Runs all six sweeps: MSHR count, memory-bus occupancy, prefetch
/// buffer depth, branch-mispredict rate, victim-cache size, and L2
/// replacement policy.
pub fn run(benches: &[Benchmark], n_ops: u64) -> Vec<AblateSweep> {
    let mut sweeps = Vec::new();

    let mut points = Vec::new();
    for mshrs in [4usize, 16, 64] {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.l1_mshrs = mshrs;
        points.push(measure(benches, n_ops, &cfg, format!("mshrs={mshrs}")));
    }
    sweeps.push(AblateSweep {
        knob: "L1 MSHRs",
        points,
    });

    let mut points = Vec::new();
    for cycles in [2u64, 4, 8, 16] {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.mem_bus_cycles = cycles;
        points.push(measure(
            benches,
            n_ops,
            &cfg,
            format!("mem_bus={cycles}cyc"),
        ));
    }
    sweeps.push(AblateSweep {
        knob: "memory bus occupancy / line",
        points,
    });

    let mut points = Vec::new();
    for buf in [8usize, 32, 64] {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.prefetch_buffer = buf;
        points.push(measure(benches, n_ops, &cfg, format!("pf_buffer={buf}")));
    }
    sweeps.push(AblateSweep {
        knob: "in-flight prefetch budget",
        points,
    });

    let mut points = Vec::new();
    for pct in [0u8, 5, 10] {
        let mut cfg = SystemConfig::table1();
        cfg.core.branch_mispredict_pct = pct;
        points.push(measure(benches, n_ops, &cfg, format!("mispredict={pct}%")));
    }
    sweeps.push(AblateSweep {
        knob: "branch mispredict rate",
        points,
    });

    let mut points = Vec::new();
    for vc in [None, Some(8usize), Some(32)] {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.victim_cache_entries = vc;
        let label = match vc {
            None => "victim=off".to_owned(),
            Some(n) => format!("victim={n}"),
        };
        points.push(measure(benches, n_ops, &cfg, label));
    }
    sweeps.push(AblateSweep {
        knob: "victim cache (Jouppi)",
        points,
    });

    let mut points = Vec::new();
    for (name, policy) in [
        ("lru", tcp_cache::Replacement::Lru),
        ("tree-plru", tcp_cache::Replacement::TreePlru),
        ("random", tcp_cache::Replacement::random(7)),
    ] {
        let mut cfg = SystemConfig::table1();
        cfg.hierarchy.l2_replacement = policy;
        points.push(measure(benches, n_ops, &cfg, format!("l2={name}")));
    }
    sweeps.push(AblateSweep {
        knob: "L2 replacement policy",
        points,
    });

    sweeps
}

/// Renders one sweep.
pub fn render(sweep: &AblateSweep) -> Table {
    let mut t = Table::new(
        &format!("Ablation: {}", sweep.knob),
        &["point", "base IPC", "TCP-8K IPC", "TCP gain"],
    );
    for p in &sweep.points {
        t.row(vec![
            p.label.clone(),
            f(p.base_ipc, 4),
            f(p.tcp_ipc, 4),
            format!("{:+.1}%", p.improvement_pct()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::suite;

    #[test]
    fn sweeps_cover_all_knobs_and_points() {
        let benches: Vec<Benchmark> = suite().into_iter().filter(|b| b.name == "art").collect();
        let sweeps = run(&benches, 60_000);
        assert_eq!(sweeps.len(), 6);
        assert_eq!(sweeps[0].points.len(), 3);
        assert_eq!(sweeps[1].points.len(), 4);
        for s in &sweeps {
            for p in &s.points {
                assert!(p.base_ipc > 0.0 && p.tcp_ipc > 0.0, "{}: {:?}", s.knob, p);
            }
            assert!(!render(s).render().is_empty());
        }
    }

    #[test]
    fn fewer_mshrs_never_help_the_baseline() {
        let benches: Vec<Benchmark> = suite().into_iter().filter(|b| b.name == "swim").collect();
        let sweeps = run(&benches, 120_000);
        let mshr = &sweeps[0].points;
        assert!(
            mshr[0].base_ipc <= mshr[2].base_ipc * 1.02,
            "4 MSHRs ({:.3}) must not beat 64 ({:.3})",
            mshr[0].base_ipc,
            mshr[2].base_ipc
        );
    }
}
