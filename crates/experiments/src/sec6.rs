//! Section 6 extensions: the paper's future-work directions, implemented
//! and measured.
//!
//! * **Strided sequences** — a per-set stride fast path
//!   ([`tcp_core::StrideAugmentedTcp`]) serves strided tag sequences from
//!   three small fields per set, sparing the PHT; the interesting
//!   question is how small the PHT can get before losing to plain
//!   TCP-8K.
//! * **Multiple prefetch targets** — Markov-style entries holding two
//!   successors (`PhtConfig::targets = 2`), trading extra traffic for
//!   accuracy exactly as the paper anticipates.

use crate::report::{pct, Table};
use crate::sweep::{Job, PrefetcherSpec, SweepEngine};
use tcp_core::{PhtConfig, TcpConfig};
use tcp_sim::{ipc_improvement, SystemConfig};
use tcp_workloads::Benchmark;

/// One benchmark's improvements under each extension.
#[derive(Clone, Debug)]
pub struct Sec6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Plain TCP-8K (the baseline design).
    pub tcp8k_pct: f64,
    /// Plain TCP with only a 2 KB PHT.
    pub tcp2k_pct: f64,
    /// Stride-augmented TCP with the 2 KB PHT.
    pub strided2k_pct: f64,
    /// TCP-8K with two targets per entry (16 KB of PHT storage).
    pub multi_target_pct: f64,
}

/// Runs the Section 6 comparison on a fresh engine.
pub fn run(benchmarks: &[Benchmark], n_ops: u64) -> Vec<Sec6Row> {
    run_with(&SweepEngine::new(), benchmarks, n_ops)
}

/// Runs the comparison through `engine`, sharing the no-prefetch baseline
/// and TCP-8K points with the main figures.
pub fn run_with(engine: &SweepEngine, benchmarks: &[Benchmark], n_ops: u64) -> Vec<Sec6Row> {
    let machine = SystemConfig::table1();
    let two_target = TcpConfig {
        pht: PhtConfig {
            targets: 2,
            ..PhtConfig::pht_8k()
        },
        ..TcpConfig::tcp_8k()
    };
    let tcp_2k = TcpConfig::with_pht_bytes(2 * 1024, 0);
    let jobs: Vec<Job> = benchmarks
        .iter()
        .flat_map(|b| {
            [
                Job::new(b, n_ops, &machine, PrefetcherSpec::Null),
                Job::new(b, n_ops, &machine, PrefetcherSpec::Tcp(TcpConfig::tcp_8k())),
                Job::new(b, n_ops, &machine, PrefetcherSpec::Tcp(tcp_2k)),
                Job::new(b, n_ops, &machine, PrefetcherSpec::StrideTcp(tcp_2k)),
                Job::new(b, n_ops, &machine, PrefetcherSpec::Tcp(two_target)),
            ]
        })
        .collect();
    let results = engine.run(&jobs);
    benchmarks
        .iter()
        .zip(results.chunks_exact(5))
        .map(|(b, group)| {
            let base = &group[0];
            Sec6Row {
                benchmark: b.name.to_owned(),
                tcp8k_pct: ipc_improvement(base, &group[1]),
                tcp2k_pct: ipc_improvement(base, &group[2]),
                strided2k_pct: ipc_improvement(base, &group[3]),
                multi_target_pct: ipc_improvement(base, &group[4]),
            }
        })
        .collect()
}

/// Renders the comparison.
pub fn render(rows: &[Sec6Row]) -> Table {
    let mut t = Table::new(
        "Section 6 extensions: stride fast path and multi-target entries",
        &[
            "benchmark",
            "TCP-8K",
            "TCP-2K",
            "TCP-2K+stride",
            "TCP-8K x2 targets",
        ],
    );
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            pct(r.tcp8k_pct),
            pct(r.tcp2k_pct),
            pct(r.strided2k_pct),
            pct(r.multi_target_pct),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::suite;

    #[test]
    fn stride_fast_path_rescues_a_small_pht_on_strided_workload() {
        // mgrid's column walk is stride-heavy: with only 2 KB of PHT the
        // stride path should not lose to the plain 2 KB TCP.
        let picks: Vec<Benchmark> = suite().into_iter().filter(|b| b.name == "mgrid").collect();
        let rows = run(&picks, 400_000);
        let r = &rows[0];
        assert!(
            r.strided2k_pct >= r.tcp2k_pct - 2.0,
            "stride augmentation should not lose: {:.1}% vs {:.1}%",
            r.strided2k_pct,
            r.tcp2k_pct
        );
    }

    #[test]
    fn multi_target_runs_and_reports() {
        let picks: Vec<Benchmark> = suite().into_iter().filter(|b| b.name == "art").collect();
        let rows = run(&picks, 200_000);
        assert_eq!(rows.len(), 1);
        let text = render(&rows).render();
        assert!(text.contains("art"));
    }
}
