//! Section 6 extensions: the paper's future-work directions, implemented
//! and measured.
//!
//! * **Strided sequences** — a per-set stride fast path
//!   ([`tcp_core::StrideAugmentedTcp`]) serves strided tag sequences from
//!   three small fields per set, sparing the PHT; the interesting
//!   question is how small the PHT can get before losing to plain
//!   TCP-8K.
//! * **Multiple prefetch targets** — Markov-style entries holding two
//!   successors (`PhtConfig::targets = 2`), trading extra traffic for
//!   accuracy exactly as the paper anticipates.

use crate::report::{pct, Table};
use tcp_cache::{NullPrefetcher, Prefetcher};
use tcp_core::{PhtConfig, StrideAugmentedTcp, Tcp, TcpConfig};
use tcp_sim::{ipc_improvement, run_benchmark, SystemConfig};
use tcp_workloads::Benchmark;

/// One benchmark's improvements under each extension.
#[derive(Clone, Debug)]
pub struct Sec6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Plain TCP-8K (the baseline design).
    pub tcp8k_pct: f64,
    /// Plain TCP with only a 2 KB PHT.
    pub tcp2k_pct: f64,
    /// Stride-augmented TCP with the 2 KB PHT.
    pub strided2k_pct: f64,
    /// TCP-8K with two targets per entry (16 KB of PHT storage).
    pub multi_target_pct: f64,
}

/// Runs the Section 6 comparison.
pub fn run(benchmarks: &[Benchmark], n_ops: u64) -> Vec<Sec6Row> {
    let machine = SystemConfig::table1();
    let two_target = TcpConfig {
        pht: PhtConfig {
            targets: 2,
            ..PhtConfig::pht_8k()
        },
        ..TcpConfig::tcp_8k()
    };
    tcp_sim::map_benchmarks_parallel(benchmarks, |b| {
        let base = run_benchmark(b, n_ops, &machine, Box::new(NullPrefetcher));
        let gain = |p: Box<dyn Prefetcher>| {
            let r = run_benchmark(b, n_ops, &machine, p);
            ipc_improvement(&base, &r)
        };
        Sec6Row {
            benchmark: b.name.to_owned(),
            tcp8k_pct: gain(Box::new(Tcp::new(TcpConfig::tcp_8k()))),
            tcp2k_pct: gain(Box::new(Tcp::new(TcpConfig::with_pht_bytes(2 * 1024, 0)))),
            strided2k_pct: gain(Box::new(StrideAugmentedTcp::new(
                TcpConfig::with_pht_bytes(2 * 1024, 0),
            ))),
            multi_target_pct: gain(Box::new(Tcp::new(two_target))),
        }
    })
}

/// Renders the comparison.
pub fn render(rows: &[Sec6Row]) -> Table {
    let mut t = Table::new(
        "Section 6 extensions: stride fast path and multi-target entries",
        &[
            "benchmark",
            "TCP-8K",
            "TCP-2K",
            "TCP-2K+stride",
            "TCP-8K x2 targets",
        ],
    );
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            pct(r.tcp8k_pct),
            pct(r.tcp2k_pct),
            pct(r.strided2k_pct),
            pct(r.multi_target_pct),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::suite;

    #[test]
    fn stride_fast_path_rescues_a_small_pht_on_strided_workload() {
        // mgrid's column walk is stride-heavy: with only 2 KB of PHT the
        // stride path should not lose to the plain 2 KB TCP.
        let picks: Vec<Benchmark> = suite().into_iter().filter(|b| b.name == "mgrid").collect();
        let rows = run(&picks, 400_000);
        let r = &rows[0];
        assert!(
            r.strided2k_pct >= r.tcp2k_pct - 2.0,
            "stride augmentation should not lose: {:.1}% vs {:.1}%",
            r.strided2k_pct,
            r.tcp2k_pct
        );
    }

    #[test]
    fn multi_target_runs_and_reports() {
        let picks: Vec<Benchmark> = suite().into_iter().filter(|b| b.name == "art").collect();
        let rows = run(&picks, 200_000);
        assert_eq!(rows.len(), 1);
        let text = render(&rows).render();
        assert!(text.contains("art"));
    }
}
