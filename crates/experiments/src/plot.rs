//! Terminal bar charts: the figures of the paper, rendered as text.
//!
//! Every figure in the paper is a bar chart over the 26 benchmarks (or a
//! line over a sweep). [`BarChart`] renders horizontal bars with
//! optional log scaling — log-scale charts mirror the paper's log-axis
//! figures (2, 3, 6) — so each `figNN` binary can show the shape at a
//! glance in addition to the exact table.

use std::fmt::Write as _;

/// A horizontal bar chart.
///
/// # Examples
///
/// ```
/// use tcp_experiments::plot::BarChart;
///
/// let mut chart = BarChart::new("demo", 20);
/// chart.bar("alpha", 1.0);
/// chart.bar("beta", 2.0);
/// let text = chart.render();
/// assert!(text.contains("alpha"));
/// assert!(text.contains('█'));
/// ```
#[derive(Clone, Debug)]
pub struct BarChart {
    title: String,
    width: usize,
    log_scale: bool,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates an empty chart whose longest bar spans `width` cells.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(title: &str, width: usize) -> Self {
        assert!(width > 0, "chart width must be nonzero");
        BarChart {
            title: title.to_owned(),
            width,
            log_scale: false,
            bars: Vec::new(),
        }
    }

    /// Switches to log₁₀ bar lengths (for the paper's log-axis figures).
    pub fn logarithmic(mut self) -> Self {
        self.log_scale = true;
        self
    }

    /// Appends a labelled value. Negative values render with a `▌`-style
    /// marker on the zero line (improvement charts can dip below zero).
    pub fn bar(&mut self, label: &str, value: f64) {
        self.bars.push((label.to_owned(), value));
    }

    /// Number of bars added.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// `true` if no bars were added.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }

    fn scaled(&self, v: f64, max: f64) -> usize {
        if v <= 0.0 || max <= 0.0 {
            return 0;
        }
        let frac = if self.log_scale {
            // Map [1, max] to (0, 1]; values below 1 get a sliver.
            (v.max(1.0)).log10() / (max.max(10.0)).log10()
        } else {
            v / max
        };
        ((frac * self.width as f64).round() as usize).min(self.width)
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "-- {} --", self.title);
        if self.bars.is_empty() {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self.bars.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
        for (label, value) in &self.bars {
            let n = self.scaled(*value, max);
            let bar = "█".repeat(n);
            let marker = if *value < 0.0 { "▌" } else { "" };
            let _ = writeln!(out, "{label:<label_w$} │{marker}{bar} {value:.1}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_bar_fills_width() {
        let mut c = BarChart::new("t", 10);
        c.bar("a", 5.0);
        c.bar("b", 10.0);
        let r = c.render();
        let b_line = r.lines().find(|l| l.starts_with('b')).unwrap();
        assert_eq!(b_line.matches('█').count(), 10);
        let a_line = r.lines().find(|l| l.starts_with('a')).unwrap();
        assert_eq!(a_line.matches('█').count(), 5);
    }

    #[test]
    fn log_scale_compresses_large_ratios() {
        let mut c = BarChart::new("t", 100).logarithmic();
        c.bar("small", 10.0);
        c.bar("large", 1000.0);
        let r = c.render();
        let small = r
            .lines()
            .find(|l| l.starts_with("small"))
            .unwrap()
            .matches('█')
            .count();
        let large = r
            .lines()
            .find(|l| l.starts_with("large"))
            .unwrap()
            .matches('█')
            .count();
        // Log scale: 10 → 1/3 of 1000's bar, not 1/100.
        assert!(
            small * 2 >= large / 2,
            "log bars should be comparable: {small} vs {large}"
        );
        assert!(large > small);
    }

    #[test]
    fn negative_values_marked_without_bars() {
        let mut c = BarChart::new("t", 10);
        c.bar("down", -5.0);
        c.bar("up", 5.0);
        let r = c.render();
        let down = r.lines().find(|l| l.starts_with("down")).unwrap();
        assert!(down.contains('▌'));
        assert_eq!(down.matches('█').count(), 0);
    }

    #[test]
    fn empty_chart_says_so() {
        let c = BarChart::new("t", 10);
        assert!(c.is_empty());
        assert!(c.render().contains("no data"));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = BarChart::new("t", 0);
    }
}
