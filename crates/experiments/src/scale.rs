//! Experiment scale: how many micro-ops to simulate per benchmark.
//!
//! The paper simulates 2 billion instructions per benchmark after a
//! 1-billion-instruction warm-up. This reproduction defaults to a few
//! million micro-ops per benchmark — enough for every workload to cycle
//! its working set several times and for the prefetchers to train — and
//! lets `TCP_REPRO_OPS` scale runs up or down.

/// Ops-per-benchmark settings for the two experiment families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Micro-ops per benchmark for full-system (IPC) experiments.
    pub sim_ops: u64,
    /// Micro-ops per benchmark for trace-characterisation experiments.
    pub trace_ops: u64,
}

impl Scale {
    /// Default scale, honouring the `TCP_REPRO_OPS` environment variable
    /// when it parses as a positive integer.
    pub fn from_env() -> Self {
        let base = std::env::var("TCP_REPRO_OPS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok());
        match base {
            Some(ops) if ops > 0 => Scale {
                sim_ops: ops,
                trace_ops: ops,
            },
            _ => Scale::default(),
        }
    }

    /// A reduced scale for quick shape checks and integration tests.
    pub fn quick() -> Self {
        Scale {
            sim_ops: 150_000,
            trace_ops: 300_000,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            sim_ops: 4_000_000,
            trace_ops: 4_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_millions() {
        let s = Scale::default();
        assert!(s.sim_ops >= 1_000_000);
        assert!(s.trace_ops >= s.sim_ops);
    }

    #[test]
    fn quick_scale_is_smaller() {
        assert!(Scale::quick().sim_ops < Scale::default().sim_ops);
    }
}
