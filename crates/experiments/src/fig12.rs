//! Figure 12: decomposition of L2 accesses into prefetched original,
//! non-prefetched original, and prefetched extra, for TCP-8K (top) and
//! TCP-8M (bottom), normalised to original L2 accesses.

use crate::report::{pct, Table};
use crate::sweep::{Job, PrefetcherSpec, SweepEngine};
use tcp_core::TcpConfig;
use tcp_sim::SystemConfig;
use tcp_workloads::Benchmark;

/// One benchmark's stacked bar.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Prefetched original, as a fraction of original L2 accesses.
    pub prefetched_original: f64,
    /// Non-prefetched original fraction.
    pub non_prefetched_original: f64,
    /// Prefetched extra fraction.
    pub prefetched_extra: f64,
}

/// Both panels of the figure.
#[derive(Clone, Debug)]
pub struct Fig12 {
    /// Top panel: TCP-8K.
    pub tcp_8k: Vec<Fig12Row>,
    /// Bottom panel: TCP-8M.
    pub tcp_8m: Vec<Fig12Row>,
}

fn panel(
    engine: &SweepEngine,
    benchmarks: &[Benchmark],
    n_ops: u64,
    cfg: TcpConfig,
) -> Vec<Fig12Row> {
    let sys = SystemConfig::table1();
    let jobs: Vec<Job> = benchmarks
        .iter()
        .map(|b| Job::new(b, n_ops, &sys, PrefetcherSpec::Tcp(cfg)))
        .collect();
    benchmarks
        .iter()
        .zip(engine.run(&jobs))
        .map(|(b, r)| {
            let (p, n, e) = r.stats.l2_breakdown.normalized();
            Fig12Row {
                benchmark: b.name.to_owned(),
                prefetched_original: p,
                non_prefetched_original: n,
                prefetched_extra: e,
            }
        })
        .collect()
}

/// Runs both panels on a fresh engine.
pub fn run(benchmarks: &[Benchmark], n_ops: u64) -> Fig12 {
    run_with(&SweepEngine::new(), benchmarks, n_ops)
}

/// Runs both panels through `engine` — at equal scale the TCP-8K and
/// TCP-8M points are the very simulations Figure 11 already ran, so a
/// shared engine serves this whole figure from memo.
pub fn run_with(engine: &SweepEngine, benchmarks: &[Benchmark], n_ops: u64) -> Fig12 {
    Fig12 {
        tcp_8k: panel(engine, benchmarks, n_ops, TcpConfig::tcp_8k()),
        tcp_8m: panel(engine, benchmarks, n_ops, TcpConfig::tcp_8m()),
    }
}

/// Renders one panel.
pub fn render(title: &str, rows: &[Fig12Row]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "benchmark",
            "prefetched original",
            "non-prefetched original",
            "prefetched extra",
        ],
    );
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            pct(100.0 * r.prefetched_original),
            pct(100.0 * r.non_prefetched_original),
            pct(100.0 * r.prefetched_extra),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::suite;

    #[test]
    fn fractions_sum_to_one_over_originals() {
        let picks: Vec<Benchmark> = suite()
            .into_iter()
            .filter(|b| ["art", "crafty"].contains(&b.name))
            .collect();
        let fig = run(&picks, 150_000);
        for r in fig.tcp_8k.iter().chain(&fig.tcp_8m) {
            let originals = r.prefetched_original + r.non_prefetched_original;
            assert!(
                (originals - 1.0).abs() < 1e-9,
                "{}: originals must sum to 1",
                r.benchmark
            );
            assert!(r.prefetched_extra >= 0.0);
        }
    }

    #[test]
    fn correlated_benchmark_has_high_coverage() {
        let picks: Vec<Benchmark> = suite().into_iter().filter(|b| b.name == "art").collect();
        let fig = run(&picks, 400_000);
        let art = &fig.tcp_8k[0];
        assert!(
            art.prefetched_original > 0.3,
            "TCP should capture a large share of art's L2 accesses, got {:.2}",
            art.prefetched_original
        );
    }
}
