//! Plain-text table and CSV emitters for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A rendered experiment table: a title, column headers, and rows.
///
/// # Examples
///
/// ```
/// use tcp_experiments::report::Table;
///
/// let mut t = Table::new("demo", &["bench", "ipc"]);
/// t.row(vec!["art".into(), "0.42".into()]);
/// let text = t.render();
/// assert!(text.contains("art"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned monospaced text.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                // Right-align numerics (all but the first column).
                if i == 0 {
                    let _ = write!(s, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(s, "{:>width$}", cell, width = widths[i]);
                }
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV next to other experiment outputs and returns the
    /// path written.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing.
    pub fn write_csv(&self, name: &str) -> io::Result<PathBuf> {
        let dir = output_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// [`Self::write_csv`], but reports a failure to stderr instead of
    /// returning it — for the figure binaries, where one failed write
    /// must not abort the remaining figures (and silently dropping the
    /// error would hide a missing CSV).
    pub fn save_csv(&self, name: &str) {
        if let Err(e) = self.write_csv(name) {
            eprintln!("experiments: failed to write {name}.csv: {e}");
        }
    }
}

/// Directory where experiment CSVs land (`target/experiments`).
pub fn output_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments")
}

/// Formats a percentage with one decimal, e.g. `14.2%`.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Formats a float with `digits` decimals.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats a count with thousands separators for readability.
pub fn count(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23".into()]);
        let r = t.render();
        assert!(r.contains("== t =="));
        let lines: Vec<&str> = r.lines().collect();
        // Title, header, rule, two rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "2".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(14.23), "14.2%");
        assert_eq!(f(1.5, 2), "1.50");
        assert_eq!(count(1234567), "1_234_567");
        assert_eq!(count(42), "42");
    }

    #[test]
    fn empty_reporting() {
        let t = Table::new("t", &["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
