//! Figure 1: potential IPC improvement with an ideal L2 data cache.

use crate::report::{pct, Table};
use crate::sweep::{Job, PrefetcherSpec, SweepEngine};
use tcp_sim::{ipc_improvement, SystemConfig};
use tcp_workloads::Benchmark;

/// One benchmark's row of Figure 1.
#[derive(Clone, Debug)]
pub struct Fig01Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline IPC.
    pub base_ipc: f64,
    /// IPC with every L2 access hitting.
    pub ideal_ipc: f64,
    /// Improvement in percent (the figure's y-axis).
    pub improvement_pct: f64,
}

/// Runs the Figure 1 limit study over `benchmarks` on a fresh engine.
pub fn run(benchmarks: &[Benchmark], n_ops: u64) -> Vec<Fig01Row> {
    run_with(&SweepEngine::new(), benchmarks, n_ops)
}

/// Runs the limit study through `engine`, sharing its memo — the
/// no-prefetch Table 1 baselines here are the same simulations Figures
/// 11 and 14 need.
pub fn run_with(engine: &SweepEngine, benchmarks: &[Benchmark], n_ops: u64) -> Vec<Fig01Row> {
    let base_cfg = SystemConfig::table1();
    let ideal_cfg = SystemConfig::table1_ideal_l2();
    let jobs: Vec<Job> = benchmarks
        .iter()
        .flat_map(|b| {
            [
                Job::new(b, n_ops, &base_cfg, PrefetcherSpec::Null),
                Job::new(b, n_ops, &ideal_cfg, PrefetcherSpec::Null),
            ]
        })
        .collect();
    let results = engine.run(&jobs);
    benchmarks
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(b, pair)| {
            let (base, ideal) = (&pair[0], &pair[1]);
            Fig01Row {
                benchmark: b.name.to_owned(),
                base_ipc: base.ipc,
                ideal_ipc: ideal.ipc,
                improvement_pct: ipc_improvement(base, ideal),
            }
        })
        .collect()
}

/// Renders Figure 1 rows as a table (suite order = the paper's sort).
pub fn render(rows: &[Fig01Row]) -> Table {
    let mut t = Table::new(
        "Figure 1: Potential IPC improvement with an ideal L2 data cache",
        &["benchmark", "base IPC", "ideal-L2 IPC", "improvement"],
    );
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            format!("{:.3}", r.base_ipc),
            format!("{:.3}", r.ideal_ipc),
            pct(r.improvement_pct),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::suite;

    #[test]
    fn improvement_is_nonnegative_and_ordering_holds_at_extremes() {
        let benches = suite();
        let picks: Vec<Benchmark> = benches
            .into_iter()
            .filter(|b| ["fma3d", "mcf"].contains(&b.name))
            .collect();
        let rows = run(&picks, 120_000);
        let fma3d = rows.iter().find(|r| r.benchmark == "fma3d").unwrap();
        let mcf = rows.iter().find(|r| r.benchmark == "mcf").unwrap();
        assert!(
            fma3d.improvement_pct >= -2.0,
            "fma3d barely changes: {}",
            fma3d.improvement_pct
        );
        assert!(fma3d.improvement_pct < 40.0);
        assert!(
            mcf.improvement_pct > 100.0,
            "mcf is memory bound: {}",
            mcf.improvement_pct
        );
        assert!(mcf.improvement_pct > 3.0 * fma3d.improvement_pct.max(1.0));
    }

    #[test]
    fn render_includes_all_rows() {
        let rows = vec![Fig01Row {
            benchmark: "x".into(),
            base_ipc: 1.0,
            ideal_ipc: 2.0,
            improvement_pct: 100.0,
        }];
        let text = render(&rows).render();
        assert!(text.contains("100.0%"));
    }
}
