//! Miss-trace characterisation shared by Figures 2–7 and 15.
//!
//! One pass over each benchmark's L1 miss stream feeds all five
//! collectors from `tcp-analysis`; the per-figure binaries then print
//! the columns corresponding to that figure's axes.

use tcp_analysis::{miss_stream, AddressCensus, SequenceCensus, TagCensus, TagSpread};
use tcp_mem::CacheGeometry;
use tcp_workloads::Benchmark;

/// Everything Section 3 measures about one benchmark's miss stream.
#[derive(Clone, Debug)]
pub struct TraceProfile {
    /// Benchmark name.
    pub benchmark: String,
    /// Total primary L1 misses observed.
    pub misses: u64,
    /// Figure 2 top: unique tags.
    pub unique_tags: u64,
    /// Figure 2 bottom: mean appearances per tag.
    pub tag_recurrence: f64,
    /// Figure 3 top: unique line addresses.
    pub unique_addresses: u64,
    /// Figure 3 bottom: mean appearances per address.
    pub address_recurrence: f64,
    /// Figure 4 top: mean sets each tag appears in.
    pub sets_per_tag: f64,
    /// Figure 4 bottom: mean appearances of a tag within a single set.
    pub tag_recurrence_within_set: f64,
    /// Figure 6 top: unique three-tag sequences.
    pub unique_sequences: u64,
    /// Figure 6 bottom: mean appearances per sequence.
    pub sequence_recurrence: f64,
    /// Figure 5: unique sequences as a fraction of `unique_tags³`.
    pub fraction_of_upper_limit: f64,
    /// Figure 7 top: mean sets each sequence appears in.
    pub sets_per_sequence: f64,
    /// Figure 7 bottom: mean appearances of a sequence within one set.
    pub sequence_recurrence_within_set: f64,
    /// Figure 15: fraction of strided three-tag sequences.
    pub strided_fraction: f64,
}

/// Profiles `bench` over `n_ops` micro-ops through the paper's 32 KB
/// direct-mapped L1, collecting every Section 3 statistic in one pass.
///
/// # Examples
///
/// ```
/// use tcp_experiments::characterize::characterize;
/// use tcp_workloads::suite;
///
/// let profile = characterize(&suite()[0], 50_000);
/// assert!(profile.unique_tags > 0);
/// ```
pub fn characterize(bench: &Benchmark, n_ops: u64) -> TraceProfile {
    let l1 = CacheGeometry::new(32 * 1024, 32, 1);
    let mut tags = TagCensus::new();
    let mut addrs = AddressCensus::new();
    let mut spread = TagSpread::new();
    let mut seqs = SequenceCensus::new(l1.num_sets(), 3);
    let mut misses = 0u64;

    let accesses = bench.generator(n_ops).filter_map(|op| op.mem_access());
    for rec in miss_stream(l1, accesses) {
        misses += 1;
        tags.observe_tag(rec.tag);
        addrs.observe_line(rec.line);
        spread.observe(rec.tag, rec.set);
        seqs.observe(rec.tag, rec.set);
    }

    TraceProfile {
        benchmark: bench.name.to_owned(),
        misses,
        unique_tags: tags.unique(),
        tag_recurrence: tags.mean_recurrences(),
        unique_addresses: addrs.unique(),
        address_recurrence: addrs.mean_recurrences(),
        sets_per_tag: spread.mean_sets_per_tag(),
        tag_recurrence_within_set: spread.mean_recurrence_within_set(),
        unique_sequences: seqs.unique_sequences(),
        sequence_recurrence: seqs.mean_recurrences(),
        fraction_of_upper_limit: seqs.fraction_of_upper_limit(tags.unique()),
        sets_per_sequence: seqs.mean_sets_per_sequence(),
        sequence_recurrence_within_set: seqs.mean_recurrence_within_set(),
        strided_fraction: seqs.strided_fraction(),
    }
}

/// Profiles every benchmark in the suite.
pub fn characterize_suite(benchmarks: &[Benchmark], n_ops: u64) -> Vec<TraceProfile> {
    benchmarks.iter().map(|b| characterize(b, n_ops)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::suite;

    #[test]
    fn art_profile_matches_paper_shape() {
        let art = suite().into_iter().find(|b| b.name == "art").unwrap();
        let p = characterize(&art, 2_000_000);
        // ~96 unique tags (paper: 98), recurring heavily.
        assert!(
            (60..=130).contains(&p.unique_tags),
            "unique tags {}",
            p.unique_tags
        );
        assert!(
            p.tag_recurrence > 100.0,
            "tags recur heavily, got {}",
            p.tag_recurrence
        );
        // Orders of magnitude more unique addresses than tags.
        assert!(p.unique_addresses > 50 * p.unique_tags);
        // Streaming scans: each tag spans most of the 1024 sets.
        assert!(p.sets_per_tag > 500.0, "sets/tag {}", p.sets_per_tag);
    }

    #[test]
    fn fma3d_is_temporal_not_spatial() {
        let b = suite().into_iter().find(|b| b.name == "fma3d").unwrap();
        let p = characterize(&b, 500_000);
        assert!(
            p.sets_per_tag < 64.0,
            "fma3d tags stay in few sets, got {}",
            p.sets_per_tag
        );
        assert!(
            p.tag_recurrence_within_set > 100.0,
            "fma3d tags recur heavily per set, got {}",
            p.tag_recurrence_within_set
        );
    }

    #[test]
    fn crafty_sequences_are_random_swim_are_shared() {
        let benches = suite();
        let crafty = benches.iter().find(|b| b.name == "crafty").unwrap();
        let swim = benches.iter().find(|b| b.name == "swim").unwrap();
        let pc = characterize(crafty, 800_000);
        let ps = characterize(swim, 800_000);
        // Random sequences barely recur; shared sweeps recur across sets.
        assert!(
            ps.sets_per_sequence > 3.0 * pc.sets_per_sequence,
            "swim sequences spread over sets ({} vs crafty {})",
            ps.sets_per_sequence,
            pc.sets_per_sequence
        );
    }

    #[test]
    fn swim_has_visible_strided_fraction() {
        let b = suite().into_iter().find(|b| b.name == "swim").unwrap();
        let p = characterize(&b, 2_000_000);
        assert!(
            p.strided_fraction > 0.03,
            "swim should show strided sequences (paper: 12%), got {}",
            p.strided_fraction
        );
    }

    #[test]
    fn counts_are_internally_consistent() {
        let b = suite().into_iter().find(|b| b.name == "gzip").unwrap();
        let p = characterize(&b, 300_000);
        assert!(p.unique_addresses >= p.unique_tags);
        assert!(p.misses >= p.unique_addresses);
        assert!(p.fraction_of_upper_limit <= 1.0);
        assert!(p.strided_fraction <= 1.0);
        assert!(p.sets_per_tag >= 1.0);
        assert!(p.sets_per_sequence >= 1.0);
    }
}
