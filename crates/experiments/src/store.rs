//! The crash-safe persistent sweep store: a versioned, content-addressed,
//! disk-backed memo for simulation results.
//!
//! The in-process [`SweepEngine`](crate::sweep::SweepEngine) memo dies
//! with the process; this module gives it a durable twin so repeated
//! sweeps across runs — and sweeps killed halfway — hit the cache at
//! memo-lookup speed instead of re-simulating. The store is a directory
//! holding one JSONL file (`store.jsonl`, hand-rolled JSON like
//! `BENCH.json`): one record per line, each record carrying
//!
//! * `store_version` — the on-disk format generation ([`STORE_VERSION`]);
//!   records from another generation are never trusted;
//! * `checksum` — FNV-1a 64 over the payload's canonical JSON
//!   serialization ([`tcp_json::to_string`] is deterministic, so the
//!   checksum is reproducible from a parsed record);
//! * `payload` — the memo key (the job's canonical identity string) plus
//!   the full [`RunResult`], every integer as a decimal string and the
//!   IPC as its `f64::to_bits` value, so a loaded result is
//!   **bit-identical** to the one that was stored.
//!
//! # Crash safety
//!
//! Writes never touch `store.jsonl` in place: [`SweepStore::flush`]
//! serializes the whole store to `store.jsonl.tmp`, fsyncs it, atomically
//! renames it over `store.jsonl`, and fsyncs the directory. A crash
//! leaves either the old store or the new one — never a torn mixture —
//! and at worst an orphaned temp file, which the next [`SweepStore::open`]
//! quarantines.
//!
//! # Graceful degradation
//!
//! Loading never aborts on bad data. A record that is truncated,
//! bit-flipped, version-skewed, duplicated, or left behind by an
//! interrupted rename is *quarantined*: moved (with a reason) to
//! `quarantine.jsonl`, counted in [`StoreStats`], and removed from the
//! store file — so the engine transparently re-simulates exactly those
//! keys. The fault-injection suite (`StoreFault` in `tcp_sim::faults`,
//! exercised by `tests/store_persistence.rs`) pins this contract.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use tcp_cache::{HierarchyStats, L2AccessBreakdown};
use tcp_json::Json;
use tcp_sim::RunResult;

/// On-disk format generation. Bump on any change to the record envelope
/// or payload schema; see DESIGN.md §11 for the evolution rules (old
/// generations are quarantined and re-simulated, never migrated in
/// place).
pub const STORE_VERSION: u64 = 1;

/// The store file inside a store directory.
pub const STORE_FILE: &str = "store.jsonl";

/// The temp file the atomic-rename write protocol stages into.
pub const STORE_TMP_FILE: &str = "store.jsonl.tmp";

/// Where quarantined records are moved, one JSON object per line with
/// the rejection reason and the original record text.
pub const QUARANTINE_FILE: &str = "quarantine.jsonl";

/// Why a record was quarantined instead of loaded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The line is not valid JSON, or a required field is missing or
    /// malformed (covers truncated tails and non-UTF-8 damage).
    Parse,
    /// The record's `store_version` is not [`STORE_VERSION`].
    VersionMismatch,
    /// The payload checksum does not match its contents (bit flips,
    /// hand edits).
    ChecksumMismatch,
    /// A record for this key was already loaded; first record wins.
    DuplicateKey,
    /// An orphaned temp file from an interrupted flush (`store.jsonl.tmp`
    /// left behind between write and rename).
    TornRename,
}

impl QuarantineReason {
    /// Stable machine-readable name, used in `quarantine.jsonl`.
    pub fn as_str(&self) -> &'static str {
        match self {
            QuarantineReason::Parse => "parse",
            QuarantineReason::VersionMismatch => "version-mismatch",
            QuarantineReason::ChecksumMismatch => "checksum-mismatch",
            QuarantineReason::DuplicateKey => "duplicate-key",
            QuarantineReason::TornRename => "torn-rename",
        }
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Accounting for one store since [`SweepStore::open`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records loaded intact from disk.
    pub loaded: usize,
    /// Records inserted since open (pending or already flushed).
    pub inserted: usize,
    /// Flushes that wrote the store file (no-op flushes not counted).
    pub flushes: usize,
    /// Records quarantined as unparseable (includes truncation damage).
    pub quarantined_parse: usize,
    /// Records quarantined for a `store_version` mismatch.
    pub quarantined_version: usize,
    /// Records quarantined for a payload checksum mismatch.
    pub quarantined_checksum: usize,
    /// Records quarantined as duplicates of an already-loaded key.
    pub quarantined_duplicate: usize,
    /// Orphaned temp files quarantined from interrupted flushes.
    pub quarantined_torn: usize,
}

impl StoreStats {
    /// Total records moved to quarantine at open, over all reasons.
    pub fn total_quarantined(&self) -> usize {
        self.quarantined_parse
            + self.quarantined_version
            + self.quarantined_checksum
            + self.quarantined_duplicate
            + self.quarantined_torn
    }

    /// One-line human summary (the `tcp-serve` footer).
    pub fn summary(&self) -> String {
        format!(
            "loaded {} inserted {} flushes {} quarantined {} \
             (parse {} version {} checksum {} duplicate {} torn {})",
            self.loaded,
            self.inserted,
            self.flushes,
            self.total_quarantined(),
            self.quarantined_parse,
            self.quarantined_version,
            self.quarantined_checksum,
            self.quarantined_duplicate,
            self.quarantined_torn,
        )
    }
}

/// An I/O failure while opening or flushing a store. Damaged *data* is
/// never an error — it is quarantined — so this only surfaces when the
/// filesystem itself refuses to cooperate.
#[derive(Debug)]
pub struct StoreError {
    /// What the store was doing (`"read"`, `"write"`, `"rename"`, …).
    pub op: &'static str,
    /// The path involved.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep store could not {} {}: {}",
            self.op,
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// FNV-1a 64-bit over `bytes` — the store's payload checksum. Not
/// cryptographic; it detects the accidental corruption (torn writes, bit
/// rot, hand edits) this store defends against.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A disk-backed, crash-safe memo of simulation results, keyed by the
/// canonical job identity string ([`crate::sweep::Job::key`]).
///
/// # Examples
///
/// ```no_run
/// use std::path::Path;
/// use tcp_experiments::store::SweepStore;
///
/// let mut store = SweepStore::open(Path::new("target/sweep-store")).unwrap();
/// if let Some(hit) = store.get("some-key") {
///     println!("cached: {} cycles", hit.cycles);
/// }
/// ```
#[derive(Debug)]
pub struct SweepStore {
    dir: PathBuf,
    records: BTreeMap<String, RunResult>,
    stats: StoreStats,
    dirty: bool,
}

impl SweepStore {
    /// Opens (creating if needed) the store in `dir`, loading every
    /// intact record and quarantining the rest.
    ///
    /// Quarantine is repair, not failure: corrupt, truncated,
    /// version-skewed, and duplicate records are appended to
    /// `quarantine.jsonl` with a reason, the store file is rewritten
    /// without them (atomically), and the counts land in
    /// [`SweepStore::stats`]. An orphaned `store.jsonl.tmp` from an
    /// interrupted flush is quarantined the same way.
    ///
    /// # Errors
    ///
    /// Only real I/O failures (unreadable directory, failed write of the
    /// repaired files) surface as [`StoreError`].
    pub fn open(dir: &Path) -> Result<SweepStore, StoreError> {
        fs::create_dir_all(dir).map_err(|source| StoreError {
            op: "create",
            path: dir.to_path_buf(),
            source,
        })?;
        let mut store = SweepStore {
            dir: dir.to_path_buf(),
            records: BTreeMap::new(),
            stats: StoreStats::default(),
            dirty: false,
        };
        let mut quarantine: Vec<(QuarantineReason, String, String)> = Vec::new();

        // An orphaned temp file means a flush was interrupted between
        // write and rename; its contents were never committed, so they
        // are evidence, not data.
        let tmp = store.dir.join(STORE_TMP_FILE);
        if tmp.exists() {
            let bytes = fs::read(&tmp).map_err(|source| StoreError {
                op: "read",
                path: tmp.clone(),
                source,
            })?;
            quarantine.push((
                QuarantineReason::TornRename,
                String::from_utf8_lossy(&bytes).into_owned(),
                "orphaned temp file from an interrupted flush".to_owned(),
            ));
            store.stats.quarantined_torn += 1;
            fs::remove_file(&tmp).map_err(|source| StoreError {
                op: "remove",
                path: tmp.clone(),
                source,
            })?;
        }

        let store_path = store.store_path();
        if store_path.exists() {
            let bytes = fs::read(&store_path).map_err(|source| StoreError {
                op: "read",
                path: store_path.clone(),
                source,
            })?;
            for raw in bytes.split(|&b| b == b'\n') {
                if raw.is_empty() {
                    continue;
                }
                let line = match std::str::from_utf8(raw) {
                    Ok(line) => line,
                    Err(_) => {
                        quarantine.push((
                            QuarantineReason::Parse,
                            String::from_utf8_lossy(raw).into_owned(),
                            "record is not valid UTF-8".to_owned(),
                        ));
                        store.stats.quarantined_parse += 1;
                        continue;
                    }
                };
                match decode_record(line) {
                    Ok((key, result)) => match store.records.entry(key) {
                        Entry::Occupied(seen) => {
                            quarantine.push((
                                QuarantineReason::DuplicateKey,
                                line.to_owned(),
                                format!("key already loaded: {}", seen.key()),
                            ));
                            store.stats.quarantined_duplicate += 1;
                        }
                        Entry::Vacant(slot) => {
                            slot.insert(result);
                            store.stats.loaded += 1;
                        }
                    },
                    Err((reason, detail)) => {
                        match reason {
                            QuarantineReason::Parse => store.stats.quarantined_parse += 1,
                            QuarantineReason::VersionMismatch => {
                                store.stats.quarantined_version += 1
                            }
                            QuarantineReason::ChecksumMismatch => {
                                store.stats.quarantined_checksum += 1
                            }
                            QuarantineReason::DuplicateKey => {
                                store.stats.quarantined_duplicate += 1
                            }
                            QuarantineReason::TornRename => store.stats.quarantined_torn += 1,
                        }
                        quarantine.push((reason, line.to_owned(), detail));
                    }
                }
            }
        }

        if !quarantine.is_empty() {
            store.append_quarantine(&quarantine)?;
            // Rewrite the store without the bad records so they are
            // *moved*, not merely skipped — the next open sees a clean
            // file.
            store.dirty = true;
            store.write_store_file()?;
        }
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the store file.
    pub fn store_path(&self) -> PathBuf {
        self.dir.join(STORE_FILE)
    }

    /// Path of the quarantine file.
    pub fn quarantine_path(&self) -> PathBuf {
        self.dir.join(QUARANTINE_FILE)
    }

    /// The cached result for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&RunResult> {
        self.records.get(key)
    }

    /// Records `result` under `key` in memory; [`SweepStore::flush`]
    /// persists it. Re-inserting an existing key overwrites (the
    /// simulator is deterministic, so the value can only be identical).
    pub fn insert(&mut self, key: &str, result: &RunResult) {
        self.records.insert(key.to_owned(), result.clone());
        self.stats.inserted += 1;
        self.dirty = true;
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Accounting since open.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Persists the store with the crash-safe protocol: serialize all
    /// records to `store.jsonl.tmp`, fsync, atomically rename over
    /// `store.jsonl`, fsync the directory. A no-op when nothing changed
    /// since the last flush.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on any I/O failure; the previous store file is
    /// untouched in that case.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if !self.dirty {
            return Ok(());
        }
        self.write_store_file()?;
        self.stats.flushes += 1;
        Ok(())
    }

    fn write_store_file(&mut self) -> Result<(), StoreError> {
        let mut out = String::new();
        for (key, result) in &self.records {
            out.push_str(&encode_record(key, result));
            out.push('\n');
        }
        write_atomic(&self.store_path(), &self.dir.join(STORE_TMP_FILE), &out)?;
        self.dirty = false;
        Ok(())
    }

    /// Appends quarantine entries (reason, original record text, detail)
    /// to `quarantine.jsonl` with the same atomic write protocol.
    fn append_quarantine(
        &self,
        entries: &[(QuarantineReason, String, String)],
    ) -> Result<(), StoreError> {
        let path = self.quarantine_path();
        let mut out = match fs::read_to_string(&path) {
            Ok(existing) => existing,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(source) => {
                return Err(StoreError {
                    op: "read",
                    path,
                    source,
                })
            }
        };
        for (reason, record, detail) in entries {
            let mut obj = BTreeMap::new();
            obj.insert("reason".to_owned(), Json::Str(reason.as_str().to_owned()));
            obj.insert("detail".to_owned(), Json::Str(detail.clone()));
            obj.insert("record".to_owned(), Json::Str(record.clone()));
            out.push_str(&tcp_json::to_string(&Json::Obj(obj)));
            out.push('\n');
        }
        let tmp = path.with_extension("jsonl.tmp");
        write_atomic(&path, &tmp, &out)
    }
}

/// Writes `contents` to `path` crash-safely: stage into `tmp`, fsync,
/// rename over `path`, fsync the containing directory (best effort — not
/// every filesystem supports directory fsync).
fn write_atomic(path: &Path, tmp: &Path, contents: &str) -> Result<(), StoreError> {
    let mut file = File::create(tmp).map_err(|source| StoreError {
        op: "create",
        path: tmp.to_path_buf(),
        source,
    })?;
    file.write_all(contents.as_bytes())
        .map_err(|source| StoreError {
            op: "write",
            path: tmp.to_path_buf(),
            source,
        })?;
    file.sync_all().map_err(|source| StoreError {
        op: "fsync",
        path: tmp.to_path_buf(),
        source,
    })?;
    drop(file);
    fs::rename(tmp, path).map_err(|source| StoreError {
        op: "rename",
        path: path.to_path_buf(),
        source,
    })?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            // Directory fsync commits the rename itself; skipping it on
            // filesystems that refuse costs durability of the very last
            // flush, never consistency.
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Record encoding / decoding
// ---------------------------------------------------------------------

fn str_field(value: impl fmt::Display) -> Json {
    Json::Str(value.to_string())
}

fn stats_to_json(stats: &HierarchyStats) -> Json {
    let mut b = BTreeMap::new();
    b.insert(
        "prefetched_original".to_owned(),
        str_field(stats.l2_breakdown.prefetched_original),
    );
    b.insert(
        "non_prefetched_original".to_owned(),
        str_field(stats.l2_breakdown.non_prefetched_original),
    );
    b.insert(
        "prefetched_extra".to_owned(),
        str_field(stats.l2_breakdown.prefetched_extra),
    );
    let mut m = BTreeMap::new();
    m.insert("loads".to_owned(), str_field(stats.loads));
    m.insert("stores".to_owned(), str_field(stats.stores));
    m.insert("l1_hits".to_owned(), str_field(stats.l1_hits));
    m.insert("l1_misses".to_owned(), str_field(stats.l1_misses));
    m.insert("l1_mshr_merges".to_owned(), str_field(stats.l1_mshr_merges));
    m.insert(
        "mshr_stall_cycles".to_owned(),
        str_field(stats.mshr_stall_cycles),
    );
    m.insert(
        "l2_demand_accesses".to_owned(),
        str_field(stats.l2_demand_accesses),
    );
    m.insert("l2_demand_hits".to_owned(), str_field(stats.l2_demand_hits));
    m.insert(
        "l2_demand_misses".to_owned(),
        str_field(stats.l2_demand_misses),
    );
    m.insert(
        "prefetches_issued".to_owned(),
        str_field(stats.prefetches_issued),
    );
    m.insert(
        "prefetches_already_resident".to_owned(),
        str_field(stats.prefetches_already_resident),
    );
    m.insert(
        "prefetches_dropped".to_owned(),
        str_field(stats.prefetches_dropped),
    );
    m.insert(
        "prefetches_to_memory".to_owned(),
        str_field(stats.prefetches_to_memory),
    );
    m.insert(
        "l1_prefetch_fills".to_owned(),
        str_field(stats.l1_prefetch_fills),
    );
    m.insert("l1_writebacks".to_owned(), str_field(stats.l1_writebacks));
    m.insert("l2_writebacks".to_owned(), str_field(stats.l2_writebacks));
    m.insert("victim_hits".to_owned(), str_field(stats.victim_hits));
    m.insert("dtlb_misses".to_owned(), str_field(stats.dtlb_misses));
    m.insert(
        "store_buffer_stall_cycles".to_owned(),
        str_field(stats.store_buffer_stall_cycles),
    );
    m.insert("l2_breakdown".to_owned(), Json::Obj(b));
    Json::Obj(m)
}

fn payload_to_json(key: &str, result: &RunResult) -> Json {
    let mut m = BTreeMap::new();
    m.insert("key".to_owned(), Json::Str(key.to_owned()));
    m.insert("benchmark".to_owned(), Json::Str(result.benchmark.clone()));
    m.insert(
        "prefetcher".to_owned(),
        Json::Str(result.prefetcher.clone()),
    );
    m.insert(
        "prefetcher_bytes".to_owned(),
        str_field(result.prefetcher_bytes),
    );
    m.insert("ipc_bits".to_owned(), str_field(result.ipc.to_bits()));
    m.insert("cycles".to_owned(), str_field(result.cycles));
    m.insert("ops".to_owned(), str_field(result.ops));
    m.insert("stats".to_owned(), stats_to_json(&result.stats));
    Json::Obj(m)
}

/// Serializes one store record line (no trailing newline): envelope with
/// `store_version`, payload `checksum`, and the payload itself.
pub fn encode_record(key: &str, result: &RunResult) -> String {
    let payload = payload_to_json(key, result);
    let payload_text = tcp_json::to_string(&payload);
    let mut m = BTreeMap::new();
    m.insert("store_version".to_owned(), Json::Num(STORE_VERSION as f64));
    m.insert(
        "checksum".to_owned(),
        str_field(fnv1a64(payload_text.as_bytes())),
    );
    m.insert("payload".to_owned(), payload);
    tcp_json::to_string(&Json::Obj(m))
}

type Quarantined = (QuarantineReason, String);

fn field<'a>(obj: &'a Json, name: &str) -> Result<&'a Json, Quarantined> {
    obj.get(name)
        .ok_or_else(|| (QuarantineReason::Parse, format!("missing field '{name}'")))
}

fn u64_field(obj: &Json, name: &str) -> Result<u64, Quarantined> {
    let text = field(obj, name)?.as_str().ok_or_else(|| {
        (
            QuarantineReason::Parse,
            format!("field '{name}' is not a string"),
        )
    })?;
    text.parse::<u64>().map_err(|_| {
        (
            QuarantineReason::Parse,
            format!("field '{name}' is not a u64: '{text}'"),
        )
    })
}

fn str_field_of(obj: &Json, name: &str) -> Result<String, Quarantined> {
    Ok(field(obj, name)?
        .as_str()
        .ok_or_else(|| {
            (
                QuarantineReason::Parse,
                format!("field '{name}' is not a string"),
            )
        })?
        .to_owned())
}

fn stats_from_json(obj: &Json) -> Result<HierarchyStats, Quarantined> {
    let b = field(obj, "l2_breakdown")?;
    Ok(HierarchyStats {
        loads: u64_field(obj, "loads")?,
        stores: u64_field(obj, "stores")?,
        l1_hits: u64_field(obj, "l1_hits")?,
        l1_misses: u64_field(obj, "l1_misses")?,
        l1_mshr_merges: u64_field(obj, "l1_mshr_merges")?,
        mshr_stall_cycles: u64_field(obj, "mshr_stall_cycles")?,
        l2_demand_accesses: u64_field(obj, "l2_demand_accesses")?,
        l2_demand_hits: u64_field(obj, "l2_demand_hits")?,
        l2_demand_misses: u64_field(obj, "l2_demand_misses")?,
        prefetches_issued: u64_field(obj, "prefetches_issued")?,
        prefetches_already_resident: u64_field(obj, "prefetches_already_resident")?,
        prefetches_dropped: u64_field(obj, "prefetches_dropped")?,
        prefetches_to_memory: u64_field(obj, "prefetches_to_memory")?,
        l1_prefetch_fills: u64_field(obj, "l1_prefetch_fills")?,
        l1_writebacks: u64_field(obj, "l1_writebacks")?,
        l2_writebacks: u64_field(obj, "l2_writebacks")?,
        victim_hits: u64_field(obj, "victim_hits")?,
        dtlb_misses: u64_field(obj, "dtlb_misses")?,
        store_buffer_stall_cycles: u64_field(obj, "store_buffer_stall_cycles")?,
        l2_breakdown: L2AccessBreakdown {
            prefetched_original: u64_field(b, "prefetched_original")?,
            non_prefetched_original: u64_field(b, "non_prefetched_original")?,
            prefetched_extra: u64_field(b, "prefetched_extra")?,
        },
    })
}

/// Decodes one store record line into its key and bit-identical
/// [`RunResult`], or the quarantine reason and a human-readable detail.
///
/// # Errors
///
/// `(QuarantineReason, detail)` describing why the record cannot be
/// trusted: not JSON / missing fields ([`QuarantineReason::Parse`]),
/// wrong generation ([`QuarantineReason::VersionMismatch`]), or payload
/// damage ([`QuarantineReason::ChecksumMismatch`]).
pub fn decode_record(line: &str) -> Result<(String, RunResult), Quarantined> {
    let doc = tcp_json::parse(line)
        .map_err(|e| (QuarantineReason::Parse, format!("invalid JSON: {e}")))?;
    let version = field(&doc, "store_version")?.as_f64().ok_or_else(|| {
        (
            QuarantineReason::Parse,
            "field 'store_version' is not a number".to_owned(),
        )
    })?;
    if version != STORE_VERSION as f64 {
        return Err((
            QuarantineReason::VersionMismatch,
            format!("store_version {version} != supported {STORE_VERSION}"),
        ));
    }
    let declared = u64_field(&doc, "checksum")?;
    let payload = field(&doc, "payload")?;
    let actual = fnv1a64(tcp_json::to_string(payload).as_bytes());
    if actual != declared {
        return Err((
            QuarantineReason::ChecksumMismatch,
            format!("payload checksum {actual} != declared {declared}"),
        ));
    }
    let key = str_field_of(payload, "key")?;
    let result = RunResult {
        benchmark: str_field_of(payload, "benchmark")?,
        prefetcher: str_field_of(payload, "prefetcher")?,
        prefetcher_bytes: usize::try_from(u64_field(payload, "prefetcher_bytes")?).map_err(
            |_| {
                (
                    QuarantineReason::Parse,
                    "prefetcher_bytes exceeds usize".to_owned(),
                )
            },
        )?,
        ipc: f64::from_bits(u64_field(payload, "ipc_bits")?),
        cycles: u64_field(payload, "cycles")?,
        ops: u64_field(payload, "ops")?,
        stats: stats_from_json(field(payload, "stats")?)?,
    };
    Ok((key, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_dir(name: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tcp-store-unit-{}-{name}-{n}", std::process::id()));
        if dir.exists() {
            fs::remove_dir_all(&dir).expect("stale test dir removable");
        }
        dir
    }

    fn sample_result(seed: u64) -> RunResult {
        RunResult {
            benchmark: format!("bench-{seed}"),
            prefetcher: "tcp-8k".to_owned(),
            prefetcher_bytes: 8192,
            ipc: 1.25 + seed as f64 * 0.001,
            cycles: 1_000_000 + seed,
            ops: 500_000,
            stats: HierarchyStats {
                loads: 100 + seed,
                stores: 50,
                l1_hits: 90,
                l1_misses: 10,
                l2_breakdown: L2AccessBreakdown {
                    prefetched_original: 3,
                    non_prefetched_original: 7,
                    prefetched_extra: 1,
                },
                ..Default::default()
            },
        }
    }

    #[test]
    fn record_round_trips_bit_identically() {
        let result = sample_result(7);
        let line = encode_record("k|7", &result);
        let (key, back) = decode_record(&line).expect("clean record decodes");
        assert_eq!(key, "k|7");
        assert_eq!(back.benchmark, result.benchmark);
        assert_eq!(back.prefetcher, result.prefetcher);
        assert_eq!(back.prefetcher_bytes, result.prefetcher_bytes);
        assert_eq!(back.ipc.to_bits(), result.ipc.to_bits());
        assert_eq!(back.cycles, result.cycles);
        assert_eq!(back.ops, result.ops);
        assert_eq!(back.stats, result.stats);
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut result = sample_result(0);
        result.cycles = u64::MAX;
        result.ops = u64::MAX - 1;
        result.ipc = f64::MIN_POSITIVE;
        result.stats.loads = u64::MAX;
        let (_, back) = decode_record(&encode_record("k", &result)).expect("decodes");
        assert_eq!(back.cycles, u64::MAX);
        assert_eq!(back.ops, u64::MAX - 1);
        assert_eq!(back.ipc.to_bits(), f64::MIN_POSITIVE.to_bits());
        assert_eq!(back.stats.loads, u64::MAX);
    }

    #[test]
    fn open_insert_flush_reopen() {
        let dir = test_dir("roundtrip");
        let result = sample_result(1);
        let mut store = SweepStore::open(&dir).expect("open fresh");
        assert!(store.is_empty());
        store.insert("alpha", &result);
        store.insert("beta", &sample_result(2));
        store.flush().expect("flush");
        assert_eq!(store.stats().flushes, 1);
        store.flush().expect("no-op flush");
        assert_eq!(store.stats().flushes, 1, "clean store does not rewrite");

        let reopened = SweepStore::open(&dir).expect("reopen");
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.stats().loaded, 2);
        assert_eq!(reopened.stats().total_quarantined(), 0);
        let hit = reopened.get("alpha").expect("alpha persisted");
        assert_eq!(hit.cycles, result.cycles);
        assert_eq!(hit.ipc.to_bits(), result.ipc.to_bits());
        assert_eq!(hit.stats, result.stats);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_lines_are_quarantined_not_fatal() {
        let dir = test_dir("quarantine");
        let mut store = SweepStore::open(&dir).expect("open");
        store.insert("good", &sample_result(3));
        store.flush().expect("flush");
        // Damage: append garbage, a stale-version record, and a
        // checksum-violating record.
        let path = dir.join(STORE_FILE);
        let mut contents = fs::read_to_string(&path).expect("readable");
        contents.push_str("{not json at all\n");
        let stale = encode_record("stale", &sample_result(4))
            .replace("\"store_version\":1", "\"store_version\":99");
        contents.push_str(&stale);
        contents.push('\n');
        let flipped = encode_record("flipped", &sample_result(5))
            .replace("\"cycles\":\"1000005\"", "\"cycles\":\"1000006\"");
        contents.push_str(&flipped);
        contents.push('\n');
        fs::write(&path, contents).expect("writable");

        let store = SweepStore::open(&dir).expect("open survives damage");
        assert_eq!(store.len(), 1, "only the intact record loads");
        let stats = store.stats();
        assert_eq!(stats.quarantined_parse, 1);
        assert_eq!(stats.quarantined_version, 1);
        assert_eq!(stats.quarantined_checksum, 1);
        assert_eq!(stats.total_quarantined(), 3);
        // Moved, not skipped: the rewritten store is clean and the
        // quarantine file holds all three with reasons.
        let clean = SweepStore::open(&dir).expect("reopen");
        assert_eq!(clean.stats().total_quarantined(), 0);
        let quarantined = fs::read_to_string(dir.join(QUARANTINE_FILE)).expect("quarantine");
        assert_eq!(quarantined.lines().count(), 3);
        assert!(quarantined.contains("version-mismatch"));
        assert!(quarantined.contains("checksum-mismatch"));
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn orphaned_tmp_file_is_quarantined() {
        let dir = test_dir("torn");
        let mut store = SweepStore::open(&dir).expect("open");
        store.insert("kept", &sample_result(6));
        store.flush().expect("flush");
        fs::write(dir.join(STORE_TMP_FILE), "half-written junk").expect("plant orphan");

        let store = SweepStore::open(&dir).expect("open survives orphan");
        assert_eq!(store.stats().quarantined_torn, 1);
        assert_eq!(store.len(), 1, "committed record unaffected");
        assert!(!dir.join(STORE_TMP_FILE).exists(), "orphan removed");
        let quarantined = fs::read_to_string(dir.join(QUARANTINE_FILE)).expect("quarantine");
        assert!(quarantined.contains("torn-rename"));
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn duplicate_keys_keep_first_and_quarantine_rest() {
        let dir = test_dir("dup");
        let first = sample_result(10);
        let mut store = SweepStore::open(&dir).expect("open");
        store.insert("dup", &first);
        store.flush().expect("flush");
        let path = dir.join(STORE_FILE);
        let mut contents = fs::read_to_string(&path).expect("readable");
        let copy = contents.clone();
        contents.push_str(&copy);
        fs::write(&path, contents).expect("writable");

        let store = SweepStore::open(&dir).expect("open");
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().quarantined_duplicate, 1);
        assert_eq!(store.get("dup").expect("kept").cycles, first.cycles);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn truncated_tail_quarantines_only_the_torn_record() {
        let dir = test_dir("trunc");
        let mut store = SweepStore::open(&dir).expect("open");
        store.insert("a", &sample_result(20));
        store.insert("b", &sample_result(21));
        store.flush().expect("flush");
        let path = dir.join(STORE_FILE);
        let bytes = fs::read(&path).expect("readable");
        // Cut mid-way through the last record.
        fs::write(&path, &bytes[..bytes.len() - 40]).expect("writable");

        let store = SweepStore::open(&dir).expect("open survives truncation");
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().quarantined_parse, 1);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
