//! Figure 9: a worked example of the PHT indexing scheme.
//!
//! Figures 8–10 of the paper are design diagrams; their executable
//! counterpart is the code in `tcp-core`. This module prints a concrete
//! indexing walkthrough — tag sequence in, truncated sum, miss-index
//! bits, final PHT set — so the implemented index function can be
//! inspected against the figure.

use tcp_core::{truncated_sum, PhtConfig};
use tcp_mem::{SetIndex, Tag};

/// One line of the indexing walkthrough.
#[derive(Clone, Debug)]
pub struct IndexStep {
    /// Human-readable description of the step.
    pub label: String,
    /// The value at this step.
    pub value: String,
}

/// Walks the Figure 9 index computation for a sequence and miss index
/// under a given PHT configuration.
pub fn walkthrough(cfg: &PhtConfig, seq: &[Tag], miss_index: SetIndex) -> Vec<IndexStep> {
    let index_bits = cfg.sets.trailing_zeros();
    let n = cfg.miss_index_bits;
    let m = index_bits.saturating_sub(n).max(1);
    let sum = seq.iter().fold(0u64, |a, t| a.wrapping_add(t.raw()));
    let truncated = truncated_sum(seq, m);
    let low = if n == 0 {
        0
    } else {
        u64::from(miss_index.raw()) & ((1 << n) - 1)
    };
    let final_index = ((truncated << n) | low) & u64::from(cfg.sets - 1);
    vec![
        IndexStep {
            label: "tag sequence".into(),
            value: format!("{:?}", seq.iter().map(|t| t.raw()).collect::<Vec<_>>()),
        },
        IndexStep {
            label: "full sum".into(),
            value: format!("{sum:#x}"),
        },
        IndexStep {
            label: format!("truncated sum [{m} bits]"),
            value: format!("{truncated:#x}"),
        },
        IndexStep {
            label: format!("miss index bits [{n} bits]"),
            value: format!("{low:#x}"),
        },
        IndexStep {
            label: "PHT set".into(),
            value: format!("{final_index:#x}"),
        },
        IndexStep {
            label: "entry tag (most recent)".into(),
            value: format!("{:#x}", seq.last().map(|t| t.raw()).unwrap_or(0)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_index_ignores_miss_index() {
        let cfg = PhtConfig::pht_8k();
        let seq = [Tag::new(0x12), Tag::new(0x34)];
        let a = walkthrough(&cfg, &seq, SetIndex::new(0));
        let b = walkthrough(&cfg, &seq, SetIndex::new(1023));
        assert_eq!(a.last().unwrap().value, b.last().unwrap().value);
        let set_a = a.iter().find(|s| s.label == "PHT set").unwrap();
        let set_b = b.iter().find(|s| s.label == "PHT set").unwrap();
        assert_eq!(set_a.value, set_b.value, "n = 0 shares across sets");
    }

    #[test]
    fn private_index_distinguishes_miss_index() {
        let cfg = PhtConfig::pht_8m();
        let seq = [Tag::new(0x12), Tag::new(0x34)];
        let a = walkthrough(&cfg, &seq, SetIndex::new(3));
        let b = walkthrough(&cfg, &seq, SetIndex::new(4));
        let set_a = a.iter().find(|s| s.label == "PHT set").unwrap();
        let set_b = b.iter().find(|s| s.label == "PHT set").unwrap();
        assert_ne!(set_a.value, set_b.value, "n = 10 separates sets");
    }

    #[test]
    fn walkthrough_has_all_steps() {
        let steps = walkthrough(
            &PhtConfig::pht_8k(),
            &[Tag::new(1), Tag::new(2)],
            SetIndex::new(0),
        );
        assert_eq!(steps.len(), 6);
        assert!(steps.iter().any(|s| s.label.contains("truncated sum")));
    }
}
