//! Regenerates Figure 13: PHT size and indexing sweeps.

use tcp_experiments::{fig13, scale::Scale};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    // The sweep runs 18 whole-suite simulations; use a lighter per-point
    // budget than single-figure experiments.
    let ops = (scale.sim_ops / 2).max(100_000);
    let fig = fig13::run(&suite(), ops);
    let top = fig13::render_sizes(&fig);
    let bottom = fig13::render_index_bits(&fig);
    print!("{}\n{}", top.render(), bottom.render());
    top.save_csv("fig13_sizes");
    bottom.save_csv("fig13_index_bits");
}
