//! Runs every experiment in sequence: Table 1 and Figures 1-15.
//!
//! Equivalent to running each `tableN`/`figNN` binary in order; useful
//! for regenerating EXPERIMENTS.md data in one command.
//!
//! All IPC figures share one [`SweepEngine`], so simulation points that
//! recur across figures (the no-prefetch baseline in Figures 1, 11, and
//! 14; TCP-8K in Figures 11, 12, and 14; TCP-8M in Figures 11 and 12)
//! simulate once and are served from memo thereafter — results are
//! bit-identical to the per-figure binaries, which run the very same
//! jobs on fresh engines.

use tcp_experiments::sweep::SweepEngine;
use tcp_experiments::{characterize, fig01, fig11, fig12, fig13, fig14, scale::Scale, table1};
use tcp_mem::{SetIndex, Tag};
use tcp_sim::SystemConfig;
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let benches = suite();
    let engine = SweepEngine::new();

    println!("{}", table1::render(&SystemConfig::table1()).render());

    let f1 = fig01::run_with(&engine, &benches, scale.sim_ops);
    let t1 = fig01::render(&f1);
    println!("{}", t1.render());
    t1.save_csv("fig01");

    let profiles = characterize::characterize_suite(&benches, scale.trace_ops);
    {
        use tcp_experiments::report::{count, f, pct, Table};
        let mut t = Table::new(
            "Figures 2-7 & 15: miss-stream characterisation",
            &[
                "benchmark",
                "tags",
                "rec/tag",
                "addrs",
                "rec/addr",
                "sets/tag",
                "rec-in-set",
                "seqs",
                "rec/seq",
                "%limit",
                "sets/seq",
                "seq-rec-in-set",
                "%strided",
            ],
        );
        for p in &profiles {
            t.row(vec![
                p.benchmark.clone(),
                count(p.unique_tags),
                f(p.tag_recurrence, 1),
                count(p.unique_addresses),
                f(p.address_recurrence, 1),
                f(p.sets_per_tag, 1),
                f(p.tag_recurrence_within_set, 1),
                count(p.unique_sequences),
                f(p.sequence_recurrence, 1),
                pct(100.0 * p.fraction_of_upper_limit),
                f(p.sets_per_sequence, 1),
                f(p.sequence_recurrence_within_set, 1),
                pct(100.0 * p.strided_fraction),
            ]);
        }
        println!("{}", t.render());
        t.save_csv("characterization");
    }

    println!("== Figure 9 indexing walkthrough (TCP-8K) ==");
    for step in tcp_experiments::fig09::walkthrough(
        &tcp_core::PhtConfig::pht_8k(),
        &[Tag::new(0x00F3), Tag::new(0x0A41)],
        SetIndex::new(0x2A7),
    ) {
        println!("  {:<28} {}", step.label, step.value);
    }
    println!();

    let f11 = fig11::run_with(&engine, &benches, scale.sim_ops);
    let t11 = fig11::render(&f11);
    println!("{}", t11.render());
    t11.save_csv("fig11");

    let f12 = fig12::run_with(&engine, &benches, scale.sim_ops);
    let t12a = fig12::render("Figure 12 (top): TCP-8K", &f12.tcp_8k);
    let t12b = fig12::render("Figure 12 (bottom): TCP-8M", &f12.tcp_8m);
    print!("{}\n{}\n", t12a.render(), t12b.render());
    t12a.save_csv("fig12_tcp8k");
    t12b.save_csv("fig12_tcp8m");

    let f13 = fig13::run_with(&engine, &benches, (scale.sim_ops / 2).max(100_000));
    let t13a = fig13::render_sizes(&f13);
    let t13b = fig13::render_index_bits(&f13);
    print!("{}\n{}\n", t13a.render(), t13b.render());
    t13a.save_csv("fig13_sizes");
    t13b.save_csv("fig13_index_bits");

    let f14 = fig14::run_with(&engine, &benches, scale.sim_ops);
    let t14 = fig14::render(&f14);
    println!("{}", t14.render());
    t14.save_csv("fig14");

    let stats = engine.stats();
    println!(
        "sweep engine: {} simulations requested, {} executed, {} served from memo",
        stats.requested,
        stats.executed,
        stats.memo_hits()
    );
}
