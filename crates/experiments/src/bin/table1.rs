//! Prints Table 1: the simulated machine configuration.

use tcp_experiments::table1;
use tcp_sim::SystemConfig;

fn main() {
    let t = table1::render(&SystemConfig::table1());
    print!("{}", t.render());
    if let Ok(p) = t.write_csv("table1") {
        eprintln!("csv: {}", p.display());
    }
}
