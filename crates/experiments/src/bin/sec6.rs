//! Runs the Section 6 future-work extensions on the full suite.

use tcp_experiments::{scale::Scale, sec6};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let rows = sec6::run(&suite(), scale.sim_ops);
    let t = sec6::render(&rows);
    print!("{}", t.render());
    if let Ok(p) = t.write_csv("sec6") {
        eprintln!("csv: {}", p.display());
    }
}
