//! Deep-dive on one benchmark: Section 3 profile, recurrence histograms,
//! and a full prefetcher comparison.

use tcp_analysis::{miss_stream, HistogramLog2};
use tcp_baselines::{Dbcp, DbcpConfig, StrideConfig, StridePrefetcher};
use tcp_cache::{NullPrefetcher, Prefetcher};
use tcp_core::{StrideAugmentedTcp, Tcp, TcpConfig};
use tcp_experiments::{characterize::characterize, scale::Scale};
use tcp_mem::CacheGeometry;
use tcp_sim::{ipc_improvement, run_benchmark, SystemConfig};
use tcp_workloads::suite;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "art".to_owned());
    let scale = Scale::from_env();
    let Some(bench) = suite().into_iter().find(|b| b.name == name) else {
        eprintln!("unknown benchmark {name}");
        std::process::exit(1);
    };

    println!("== {} ==\n{}\n", bench.name, bench.description);

    let p = characterize(&bench, scale.trace_ops);
    println!(
        "misses {}  tags {}  addrs {}  seqs {}",
        p.misses, p.unique_tags, p.unique_addresses, p.unique_sequences
    );
    println!(
        "sets/tag {:.1}  rec-in-set {:.1}  sets/seq {:.1}  %strided {:.1}%\n",
        p.sets_per_tag,
        p.tag_recurrence_within_set,
        p.sets_per_sequence,
        100.0 * p.strided_fraction
    );

    // Recurrence histogram: how skewed is tag reuse?
    let l1 = CacheGeometry::new(32 * 1024, 32, 1);
    // BTreeMap: the histogram is order-insensitive, but keeping report
    // paths hash-order-free is a workspace invariant (tcp-lint).
    let mut counts = std::collections::BTreeMap::new();
    for m in miss_stream(
        l1,
        bench
            .generator(scale.trace_ops)
            .filter_map(|o| o.mem_access()),
    ) {
        *counts.entry(m.tag.raw()).or_insert(0u64) += 1;
    }
    let mut hist = HistogramLog2::new();
    hist.extend(counts.into_values());
    println!(
        "tag recurrence distribution (log2 buckets):\n{}",
        hist.render(40)
    );

    let machine = SystemConfig::table1();
    let ops = scale.sim_ops;
    let base = run_benchmark(&bench, ops, &machine, Box::new(NullPrefetcher));
    println!(
        "prefetcher comparison ({ops} ops, base IPC {:.4}):",
        base.ipc
    );
    let engines: Vec<Box<dyn Prefetcher>> = vec![
        Box::new(StridePrefetcher::new(StrideConfig::default())),
        Box::new(Dbcp::new(DbcpConfig::dbcp_2m())),
        Box::new(Tcp::new(TcpConfig::tcp_8k())),
        Box::new(Tcp::new(TcpConfig::tcp_8m())),
        Box::new(StrideAugmentedTcp::new(TcpConfig::tcp_8k())),
    ];
    for e in engines {
        let name = e.name().to_owned();
        let r = run_benchmark(&bench, ops, &machine, e);
        println!(
            "  {:<16} {:+7.1}%   coverage {:>4.0}%  extra {:>4.0}%",
            name,
            ipc_improvement(&base, &r),
            100.0 * r.stats.l2_breakdown.coverage(),
            100.0 * r.stats.l2_breakdown.normalized().2,
        );
    }
}
