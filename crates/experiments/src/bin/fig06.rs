//! Regenerates Figure 6: unique three-tag sequences and their recurrences.

use tcp_experiments::{
    characterize::characterize_suite,
    report::{count, f, Table},
    scale::Scale,
};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let profiles = characterize_suite(&suite(), scale.trace_ops);
    let mut t = Table::new(
        "Figure 6: unique 3-tag sequences (top) and mean recurrences (bottom)",
        &["benchmark", "unique sequences", "recurrences/sequence"],
    );
    for p in &profiles {
        t.row(vec![
            p.benchmark.clone(),
            count(p.unique_sequences),
            f(p.sequence_recurrence, 1),
        ]);
    }
    print!("{}", t.render());
    t.save_csv("fig06");
}
