//! Sweeps machine parameters (MSHRs, memory bus, prefetch budget,
//! mispredict rate) to show which conclusions depend on them.

use tcp_experiments::{ablate, scale::Scale};
use tcp_workloads::{suite, Benchmark};

fn main() {
    let scale = Scale::from_env();
    // A representative subset: one streaming, one chase, one random.
    let benches: Vec<Benchmark> = suite()
        .into_iter()
        .filter(|b| ["swim", "ammp", "twolf"].contains(&b.name))
        .collect();
    let ops = (scale.sim_ops / 2).max(100_000);
    for sweep in ablate::run(&benches, ops) {
        let t = ablate::render(&sweep);
        println!("{}", t.render());
        t.save_csv(&format!("ablate_{}", sweep.knob.replace([' ', '/'], "_")));
    }
}
