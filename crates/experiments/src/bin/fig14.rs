//! Regenerates Figure 14: TCP-8K vs Hybrid-8K (prefetching into L1).

use tcp_experiments::{fig14, scale::Scale};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let rows = fig14::run(&suite(), scale.sim_ops);
    let t = fig14::render(&rows);
    print!("{}", t.render());
    if let Ok(p) = t.write_csv("fig14") {
        eprintln!("csv: {}", p.display());
    }
}
