//! Regenerates Figure 15: percentage of strided three-tag sequences.

use tcp_experiments::{
    characterize::characterize_suite,
    report::{pct, Table},
    scale::Scale,
};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let profiles = characterize_suite(&suite(), scale.trace_ops);
    let mut t = Table::new(
        "Figure 15: percentage of strided 3-tag sequences",
        &["benchmark", "% strided sequences"],
    );
    for p in &profiles {
        t.row(vec![p.benchmark.clone(), pct(100.0 * p.strided_fraction)]);
    }
    print!("{}", t.render());
    t.save_csv("fig15");
}
