//! Regenerates Figure 2: unique tags and tag recurrences in the L1 miss
//! stream.

use tcp_experiments::{
    characterize::characterize_suite,
    report::{count, f, Table},
    scale::Scale,
};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let profiles = characterize_suite(&suite(), scale.trace_ops);
    let mut t = Table::new(
        "Figure 2: unique tags (top) and mean recurrences per tag (bottom)",
        &["benchmark", "unique tags", "recurrences/tag"],
    );
    for p in &profiles {
        t.row(vec![
            p.benchmark.clone(),
            count(p.unique_tags),
            f(p.tag_recurrence, 1),
        ]);
    }
    print!("{}", t.render());
    t.save_csv("fig02");
}
