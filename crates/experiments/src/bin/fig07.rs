//! Regenerates Figure 7: sequence spread across sets vs recurrence within
//! a set.

use tcp_experiments::{
    characterize::characterize_suite,
    report::{f, Table},
    scale::Scale,
};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let profiles = characterize_suite(&suite(), scale.trace_ops);
    let mut t = Table::new(
        "Figure 7: mean sets per 3-tag sequence (top) and recurrences within a set (bottom)",
        &["benchmark", "sets/sequence", "recurrences within set"],
    );
    for p in &profiles {
        t.row(vec![
            p.benchmark.clone(),
            f(p.sets_per_sequence, 1),
            f(p.sequence_recurrence_within_set, 1),
        ]);
    }
    print!("{}", t.render());
    t.save_csv("fig07");
}
