//! Regenerates Figure 5: observed three-tag sequences as a percentage of
//! the random upper limit (unique tags cubed).

use tcp_experiments::{
    characterize::characterize_suite,
    report::{pct, Table},
    scale::Scale,
};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let profiles = characterize_suite(&suite(), scale.trace_ops);
    let mut t = Table::new(
        "Figure 5: unique 3-tag sequences / possible 3-tag sequences",
        &["benchmark", "% of upper limit"],
    );
    for p in &profiles {
        t.row(vec![
            p.benchmark.clone(),
            pct(100.0 * p.fraction_of_upper_limit),
        ]);
    }
    print!("{}", t.render());
    t.save_csv("fig05");
}
