//! `tcp-serve` — batch sweep service over the persistent memo store.
//!
//! Reads JSON-lines sweep requests from a file (or stdin with `-`), fans
//! them through the deterministic work-stealing executor, and streams one
//! JSON result line per request in submission order. Repeated or
//! previously-simulated requests are served from the store without
//! re-simulation; malformed requests get an error line instead of killing
//! the batch.
//!
//! ```text
//! tcp-serve [--store DIR] [--threads N] [--batch N] [--stream] [FILE|-]
//! ```
//!
//! By default the whole request file is read up front. With `--stream`,
//! requests are pulled from the input incrementally, one batch at a
//! time, so a long-running client can feed an unbounded request stream
//! through a pipe and the service's memory stays O(batch) — the serving
//! counterpart of the bounded-memory trace ingestion in
//! `tcp_sim::stream`.
//!
//! Request lines look like:
//!
//! ```text
//! {"benchmark":"gzip","ops":50000,"prefetcher":"tcp-8k","machine":"table1"}
//! ```
//!
//! `machine` (default `table1`) is `table1` or `table1-ideal-l2`;
//! `prefetcher` is any preset named by
//! [`tcp_experiments::sweep::PrefetcherSpec::presets`]; `ops` defaults to
//! 50 000. Results carry `cycles`/`ops` as decimal strings (lossless for
//! the full `u64` range) and `ipc` as a JSON number.

use std::collections::BTreeMap;
use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use tcp_experiments::store::SweepStore;
use tcp_experiments::sweep::{CheckpointOpts, Job, PrefetcherSpec, SweepEngine, SweepError};
use tcp_json::Json;
use tcp_sim::{RunResult, SystemConfig};
use tcp_workloads::{suite, Benchmark};

const DEFAULT_OPS: u64 = 50_000;

struct Args {
    store: Option<PathBuf>,
    threads: usize,
    batch: usize,
    stream: bool,
    input: String,
}

fn usage() -> String {
    "usage: tcp-serve [--store DIR] [--threads N] [--batch N] [--stream] [FILE|-]".to_owned()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        store: None,
        threads: 0,
        batch: CheckpointOpts::default().batch_jobs,
        stream: false,
        input: "-".to_owned(),
    };
    let mut it = argv.iter();
    let mut positional = None;
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--store" => args.store = Some(PathBuf::from(value(&mut it)?)),
            "--threads" => {
                args.threads = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--batch" => {
                args.batch = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
                if args.batch == 0 {
                    return Err("--batch must be at least 1".to_owned());
                }
            }
            "--stream" => args.stream = true,
            "--help" | "-h" => return Err(usage()),
            other => {
                if positional.replace(other.to_owned()).is_some() {
                    return Err(format!("unexpected extra argument {other}\n{}", usage()));
                }
            }
        }
    }
    if let Some(p) = positional {
        args.input = p;
    }
    Ok(args)
}

/// Decodes one request line into a [`Job`], with a human-readable reason
/// for every way a request can be malformed.
fn parse_request(line: &str, benches: &BTreeMap<&str, Benchmark>) -> Result<Job, String> {
    let v = tcp_json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let bench_name = v
        .get("benchmark")
        .and_then(Json::as_str)
        .ok_or("missing string field \"benchmark\"")?;
    let bench = benches
        .get(bench_name)
        .ok_or_else(|| format!("unknown benchmark {bench_name:?}"))?;
    let spec_name = v
        .get("prefetcher")
        .and_then(Json::as_str)
        .ok_or("missing string field \"prefetcher\"")?;
    let spec = PrefetcherSpec::from_name(spec_name).ok_or_else(|| {
        let known: Vec<&str> = PrefetcherSpec::presets().iter().map(|(n, _)| *n).collect();
        format!("unknown prefetcher {spec_name:?} (one of {known:?})")
    })?;
    let machine = match v.get("machine").and_then(Json::as_str).unwrap_or("table1") {
        "table1" => SystemConfig::table1(),
        "table1-ideal-l2" => SystemConfig::table1_ideal_l2(),
        other => return Err(format!("unknown machine {other:?}")),
    };
    let ops = match v.get("ops") {
        None => DEFAULT_OPS,
        Some(j) => {
            let f = j.as_f64().ok_or("\"ops\" must be a number")?;
            if !(f.is_finite() && f >= 1.0 && f.fract() == 0.0 && f <= u64::MAX as f64) {
                return Err(format!("\"ops\" must be a positive integer, got {f}"));
            }
            f as u64
        }
    };
    Ok(Job::new(bench, ops, &machine, spec))
}

fn result_line(index: usize, r: &RunResult) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("index".to_owned(), Json::Num(index as f64));
    obj.insert("benchmark".to_owned(), Json::Str(r.benchmark.clone()));
    obj.insert("prefetcher".to_owned(), Json::Str(r.prefetcher.clone()));
    obj.insert(
        "prefetcher_bytes".to_owned(),
        Json::Str(r.prefetcher_bytes.to_string()),
    );
    obj.insert("ipc".to_owned(), Json::Num(r.ipc));
    obj.insert("cycles".to_owned(), Json::Str(r.cycles.to_string()));
    obj.insert("ops".to_owned(), Json::Str(r.ops.to_string()));
    tcp_json::to_string(&Json::Obj(obj))
}

fn error_line(index: usize, error: &str) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("index".to_owned(), Json::Num(index as f64));
    obj.insert("error".to_owned(), Json::Str(error.to_owned()));
    tcp_json::to_string(&Json::Obj(obj))
}

/// One submission slot: a runnable job or the reason it never became one.
enum Slot {
    Job(Box<Job>),
    Bad(String),
}

fn serve(args: &Args) -> Result<usize, String> {
    let (store_dir, ephemeral) = match &args.store {
        Some(dir) => (dir.clone(), false),
        None => (
            std::env::temp_dir().join(format!("tcp-serve-{}", std::process::id())),
            true,
        ),
    };
    let mut store = SweepStore::open(&store_dir).map_err(|e| e.to_string())?;
    eprintln!(
        "tcp-serve: store {} ({} records{})",
        store_dir.display(),
        store.len(),
        if ephemeral { ", ephemeral" } else { "" },
    );
    let loaded = store.stats();
    if loaded.total_quarantined() > 0 {
        eprintln!("tcp-serve: quarantined on load: {}", loaded.summary());
    }

    let benches: BTreeMap<&str, Benchmark> = suite().into_iter().map(|b| (b.name, b)).collect();

    let engine = if args.threads == 0 {
        SweepEngine::new()
    } else {
        SweepEngine::with_threads(args.threads)
    };
    let opts = CheckpointOpts {
        batch_jobs: args.batch,
        ..CheckpointOpts::default()
    };
    let single = CheckpointOpts {
        batch_jobs: 1,
        ..CheckpointOpts::default()
    };

    let stdout = std::io::stdout();
    let mut failures = 0usize;
    let mut requests = 0usize;
    let chunk_len = args.batch.max(1);

    // One chunk: fan through the stealing executor, checkpoint the
    // store, and flush this chunk's lines before the next chunk starts
    // simulating. `base` is the submission index of the chunk's first
    // slot, so output indices stay stable in both input modes.
    let mut emit_chunk =
        |chunk: &[Slot], base: usize, store: &mut SweepStore| -> Result<(), String> {
            let jobs: Vec<Job> = chunk
                .iter()
                .filter_map(|s| match s {
                    Slot::Job(j) => Some((**j).clone()),
                    Slot::Bad(_) => None,
                })
                .collect();
            let outcome = engine.run_with(store, &jobs, &opts);
            let results: Vec<Result<RunResult, String>> = match outcome {
                Ok(rs) => rs.into_iter().map(Ok).collect(),
                // A job in the chunk failed (e.g. wedged past its retries):
                // rerun one at a time so every job gets its own verdict.
                Err(SweepError::Store(e)) => return Err(e.to_string()),
                Err(SweepError::Job { .. }) => jobs
                    .iter()
                    .map(|j| {
                        engine
                            .run_with(store, std::slice::from_ref(j), &single)
                            .map(|mut rs| rs.remove(0))
                            .map_err(|e| e.to_string())
                    })
                    .collect(),
            };
            let mut next = results.into_iter();
            // Take the stdout lock only for the write-out, never across a
            // simulation call (the engine locks its worker deques).
            let mut out = stdout.lock();
            for (at, slot) in chunk.iter().enumerate() {
                let index = base + at;
                let line = match slot {
                    Slot::Bad(reason) => {
                        failures += 1;
                        error_line(index, reason)
                    }
                    Slot::Job(_) => match next.next().expect("one result per job") {
                        Ok(r) => result_line(index, &r),
                        Err(reason) => {
                            failures += 1;
                            error_line(index, &reason)
                        }
                    },
                };
                writeln!(out, "{line}").map_err(|e| format!("writing stdout: {e}"))?;
            }
            out.flush().map_err(|e| format!("flushing stdout: {e}"))
        };

    if args.stream {
        // Incremental mode: pull up to one batch of request lines at a
        // time from the input, so memory stays O(batch) no matter how
        // long the stream runs (a pipe never has to end).
        let reader: Box<dyn BufRead> = if args.input == "-" {
            Box::new(BufReader::new(std::io::stdin()))
        } else {
            let f =
                fs::File::open(&args.input).map_err(|e| format!("opening {}: {e}", args.input))?;
            Box::new(BufReader::new(f))
        };
        let mut lines = reader.lines();
        let mut chunk: Vec<Slot> = Vec::with_capacity(chunk_len);
        loop {
            chunk.clear();
            while chunk.len() < chunk_len {
                match lines.next() {
                    Some(Ok(line)) => {
                        if line.trim().is_empty() {
                            continue;
                        }
                        chunk.push(match parse_request(&line, &benches) {
                            Ok(job) => Slot::Job(Box::new(job)),
                            Err(reason) => Slot::Bad(reason),
                        });
                    }
                    Some(Err(e)) => return Err(format!("reading {}: {e}", args.input)),
                    None => break,
                }
            }
            if chunk.is_empty() {
                break;
            }
            emit_chunk(&chunk, requests, &mut store)?;
            requests += chunk.len();
        }
    } else {
        let text = if args.input == "-" {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        } else {
            fs::read_to_string(&args.input).map_err(|e| format!("reading {}: {e}", args.input))?
        };
        let slots: Vec<Slot> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|line| match parse_request(line, &benches) {
                Ok(job) => Slot::Job(Box::new(job)),
                Err(reason) => Slot::Bad(reason),
            })
            .collect();
        for (ci, chunk) in slots.chunks(chunk_len).enumerate() {
            emit_chunk(chunk, ci * chunk_len, &mut store)?;
        }
        requests = slots.len();
    }

    let stats = engine.stats();
    eprintln!(
        "tcp-serve: {requests} requests, {} simulated, {} from store, {} from memo, {} failed",
        stats.executed,
        stats.store_hits,
        stats.memo_hits(),
        failures,
    );
    eprintln!("tcp-serve: {}", store.stats().summary());
    if ephemeral {
        drop(store);
        let _ = fs::remove_dir_all(&store_dir);
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match serve(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("tcp-serve: {msg}");
            ExitCode::from(2)
        }
    }
}
