//! Regenerates Figure 11: TCP-8K / TCP-8M vs DBCP-2M IPC improvement.

use tcp_experiments::{fig11, scale::Scale};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let fig = fig11::run(&suite(), scale.sim_ops);
    let t = fig11::render(&fig);
    print!("{}", t.render());
    for (name, pick) in [("DBCP-2M", 0usize), ("TCP-8K", 1), ("TCP-8M", 2)] {
        let mut chart =
            tcp_experiments::plot::BarChart::new(&format!("{name} IPC improvement (%)"), 50);
        for r in &fig.rows {
            let v = [r.dbcp_pct, r.tcp8k_pct, r.tcp8m_pct][pick];
            chart.bar(&r.benchmark, v);
        }
        print!("\n{}", chart.render());
    }
    println!(
        "\npaper geomeans: DBCP-2M ~7%, TCP-8K ~14%, TCP-8M ~15%  |  measured: DBCP-2M {:.1}%, TCP-8K {:.1}%, TCP-8M {:.1}%",
        fig.geomean_dbcp_pct, fig.geomean_tcp8k_pct, fig.geomean_tcp8m_pct
    );
    if let Ok(p) = t.write_csv("fig11") {
        eprintln!("csv: {}", p.display());
    }
}
