//! Regenerates Figure 1: potential IPC improvement with an ideal L2.

use tcp_experiments::{fig01, scale::Scale};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let rows = fig01::run(&suite(), scale.sim_ops);
    let t = fig01::render(&rows);
    print!("{}", t.render());
    let mut chart = tcp_experiments::plot::BarChart::new("ideal-L2 IPC improvement (%)", 50);
    for r in &rows {
        chart.bar(&r.benchmark, r.improvement_pct);
    }
    print!("\n{}", chart.render());
    if let Ok(p) = t.write_csv("fig01") {
        eprintln!("csv: {}", p.display());
    }
}
