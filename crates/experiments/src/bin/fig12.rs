//! Regenerates Figure 12: the three-way L2 access decomposition.

use tcp_experiments::{fig12, scale::Scale};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let fig = fig12::run(&suite(), scale.sim_ops);
    let top = fig12::render("Figure 12 (top): L2 access categories, TCP-8K", &fig.tcp_8k);
    let bottom = fig12::render(
        "Figure 12 (bottom): L2 access categories, TCP-8M",
        &fig.tcp_8m,
    );
    print!("{}\n{}", top.render(), bottom.render());
    top.save_csv("fig12_tcp8k");
    bottom.save_csv("fig12_tcp8m");
}
