//! Regenerates Figure 3: unique addresses and address recurrences.

use tcp_experiments::{
    characterize::characterize_suite,
    report::{count, f, Table},
    scale::Scale,
};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let profiles = characterize_suite(&suite(), scale.trace_ops);
    let mut t = Table::new(
        "Figure 3: unique addresses (top) and mean recurrences per address (bottom)",
        &["benchmark", "unique addresses", "recurrences/address"],
    );
    for p in &profiles {
        t.row(vec![
            p.benchmark.clone(),
            count(p.unique_addresses),
            f(p.address_recurrence, 1),
        ]);
    }
    print!("{}", t.render());
    t.save_csv("fig03");
}
