//! Regenerates Figure 4: tag spread across sets vs recurrence within a
//! set, plus the Section 3 geometric-mean summary.

use tcp_analysis::geometric_mean;
use tcp_experiments::{
    characterize::characterize_suite,
    report::{f, Table},
    scale::Scale,
};
use tcp_workloads::suite;

fn main() {
    let scale = Scale::from_env();
    let profiles = characterize_suite(&suite(), scale.trace_ops);
    let mut t = Table::new(
        "Figure 4: mean sets per tag (top) and recurrences within a set (bottom)",
        &["benchmark", "sets/tag", "recurrences within set"],
    );
    for p in &profiles {
        t.row(vec![
            p.benchmark.clone(),
            f(p.sets_per_tag, 1),
            f(p.tag_recurrence_within_set, 1),
        ]);
    }
    print!("{}", t.render());
    let tags: Vec<f64> = profiles.iter().map(|p| p.unique_tags as f64).collect();
    let spread: Vec<f64> = profiles.iter().map(|p| p.sets_per_tag.max(1e-9)).collect();
    let recur: Vec<f64> = profiles
        .iter()
        .map(|p| p.tag_recurrence_within_set.max(1e-9))
        .collect();
    println!(
        "\nSection 3 summary (paper: 576 tags, 609 sets, 94 recurrences):\n  geomean unique tags {:.0}, geomean sets/tag {:.0}, geomean recurrences/set {:.0}",
        geometric_mean(&tags),
        geometric_mean(&spread),
        geometric_mean(&recur)
    );
    t.save_csv("fig04");
}
