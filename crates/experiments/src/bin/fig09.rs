//! Prints a Figure 9 indexing walkthrough for TCP-8K and TCP-8M.

use tcp_core::PhtConfig;
use tcp_experiments::fig09;
use tcp_mem::{SetIndex, Tag};

fn main() {
    let seq = [Tag::new(0x00F3), Tag::new(0x0A41)];
    for (name, cfg) in [
        ("TCP-8K PHT", PhtConfig::pht_8k()),
        ("TCP-8M PHT", PhtConfig::pht_8m()),
    ] {
        println!("== Figure 9 indexing walkthrough: {name} ==");
        for step in fig09::walkthrough(&cfg, &seq, SetIndex::new(0x2A7)) {
            println!("  {:<28} {}", step.label, step.value);
        }
        println!();
    }
}
