//! Figure 13: average SPEC2000 IPC as a function of PHT size (top) and
//! of the number of miss-index bits in the PHT index (bottom).

use crate::report::{f, Table};
use crate::sweep::{Job, PrefetcherSpec, SweepEngine};
use tcp_core::TcpConfig;
use tcp_sim::{RunResult, SystemConfig};
use tcp_workloads::Benchmark;

/// One point of the PHT-size sweep.
#[derive(Clone, Debug)]
pub struct SizePoint {
    /// PHT bytes.
    pub pht_bytes: usize,
    /// Geomean IPC with no miss-index bits (shared PHT).
    pub ipc_shared: f64,
    /// Geomean IPC with the full miss index (private PHT).
    pub ipc_full_index: f64,
}

/// One point of the miss-index-bit sweep at 8 KB.
#[derive(Clone, Debug)]
pub struct IndexBitsPoint {
    /// Miss-index bits mixed into the PHT index.
    pub bits: u32,
    /// Geomean IPC.
    pub ipc: f64,
}

/// Both panels of Figure 13.
#[derive(Clone, Debug)]
pub struct Fig13 {
    /// Top: PHT sizes 2 KB … 8 MB, shared vs full-index.
    pub sizes: Vec<SizePoint>,
    /// Bottom: 0–3 miss-index bits at 8 KB.
    pub index_bits: Vec<IndexBitsPoint>,
}

/// The paper's size axis.
pub const SIZES: [usize; 7] = [
    2 * 1024,
    8 * 1024,
    32 * 1024,
    128 * 1024,
    512 * 1024,
    2 * 1024 * 1024,
    8 * 1024 * 1024,
];

fn full_index_bits(bytes: usize) -> u32 {
    // "Full miss index" uses all 10 bits when the table is big enough;
    // smaller tables clamp to their own index width.
    let sets = (bytes / 32) as u32; // 8-way × 4-byte entries
    sets.trailing_zeros().min(10)
}

/// Geometric-mean IPC of one configuration's chunk of suite results,
/// with the same domain rules as [`tcp_sim::SuiteResult::geomean_ipc`].
fn geomean_of(runs: &[RunResult]) -> f64 {
    let ipcs: Vec<f64> = runs.iter().map(|r| r.ipc).collect();
    if ipcs.is_empty() || ipcs.iter().any(|&v| !(v > 0.0 && v.is_finite())) {
        // tcp-lint: allow(panic-in-library) — harness invariant: shipped benchmarks on the Table 1 machine always produce positive finite IPC
        panic!("Figure 13 sweeps run shipped benchmarks on the Table 1 machine");
    }
    let log_sum: f64 = ipcs.iter().map(|v| v.ln()).sum();
    (log_sum / ipcs.len() as f64).exp()
}

#[cfg(test)]
fn geomean_ipc(benchmarks: &[Benchmark], n_ops: u64, cfg: TcpConfig) -> f64 {
    let sys = SystemConfig::table1();
    let jobs: Vec<Job> = benchmarks
        .iter()
        .map(|b| Job::new(b, n_ops, &sys, PrefetcherSpec::Tcp(cfg)))
        .collect();
    geomean_of(&SweepEngine::new().run(&jobs))
}

/// Runs both sweeps on a fresh engine.
pub fn run(benchmarks: &[Benchmark], n_ops: u64) -> Fig13 {
    run_with(&SweepEngine::new(), benchmarks, n_ops)
}

/// Runs both sweeps through `engine` as **one** batch: every PHT
/// configuration of both panels fans out together, so the work-stealing
/// pool crosses configuration boundaries without a join barrier per
/// point (the bottom panel's 8 KB point also dedups against the top
/// panel's when the index widths coincide).
pub fn run_with(engine: &SweepEngine, benchmarks: &[Benchmark], n_ops: u64) -> Fig13 {
    let sys = SystemConfig::table1();
    let size_configs: Vec<TcpConfig> = SIZES
        .iter()
        .flat_map(|&bytes| {
            [
                TcpConfig::with_pht_bytes(bytes, 0),
                TcpConfig::with_pht_bytes(bytes, full_index_bits(bytes)),
            ]
        })
        .collect();
    let bit_configs: Vec<TcpConfig> = (0..=3u32)
        .map(|bits| TcpConfig::with_pht_bytes(8 * 1024, bits))
        .collect();
    let jobs: Vec<Job> = size_configs
        .iter()
        .chain(&bit_configs)
        .flat_map(|cfg| {
            benchmarks
                .iter()
                .map(|b| Job::new(b, n_ops, &sys, PrefetcherSpec::Tcp(*cfg)))
        })
        .collect();
    let results = engine.run(&jobs);
    let mut chunks = results.chunks_exact(benchmarks.len());
    let sizes = SIZES
        .iter()
        .map(|&bytes| SizePoint {
            pht_bytes: bytes,
            ipc_shared: geomean_of(chunks.next().unwrap_or_default()),
            ipc_full_index: geomean_of(chunks.next().unwrap_or_default()),
        })
        .collect();
    let index_bits = (0..=3u32)
        .map(|bits| IndexBitsPoint {
            bits,
            ipc: geomean_of(chunks.next().unwrap_or_default()),
        })
        .collect();
    Fig13 { sizes, index_bits }
}

/// Renders the size sweep (top panel).
pub fn render_sizes(fig: &Fig13) -> Table {
    let mut t = Table::new(
        "Figure 13 (top): geomean IPC vs PHT size",
        &[
            "PHT size",
            "IPC (0 miss-index bits)",
            "IPC (full miss index)",
        ],
    );
    for p in &fig.sizes {
        let label = if p.pht_bytes >= 1024 * 1024 {
            format!("{}MB", p.pht_bytes / (1024 * 1024))
        } else {
            format!("{}KB", p.pht_bytes / 1024)
        };
        t.row(vec![label, f(p.ipc_shared, 4), f(p.ipc_full_index, 4)]);
    }
    t
}

/// Renders the miss-index-bit sweep (bottom panel).
pub fn render_index_bits(fig: &Fig13) -> Table {
    let mut t = Table::new(
        "Figure 13 (bottom): geomean IPC vs miss-index bits (8KB PHT)",
        &["miss-index bits", "IPC"],
    );
    for p in &fig.index_bits {
        t.row(vec![p.bits.to_string(), f(p.ipc, 4)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::suite;

    #[test]
    fn full_index_bits_clamp() {
        assert_eq!(full_index_bits(8 * 1024 * 1024), 10);
        assert_eq!(full_index_bits(2 * 1024), 6);
    }

    #[test]
    fn bigger_shared_pht_is_not_worse_on_pattern_heavy_benchmark() {
        // On a pattern-rich subset, an 8 KB shared PHT must beat a 2 KB
        // one (the paper's "quadrupling 2KB → 8KB gains 6%").
        let picks: Vec<Benchmark> = suite()
            .into_iter()
            .filter(|b| ["ammp", "gcc"].contains(&b.name))
            .collect();
        let small = geomean_ipc(&picks, 250_000, TcpConfig::with_pht_bytes(2 * 1024, 0));
        let big = geomean_ipc(&picks, 250_000, TcpConfig::with_pht_bytes(32 * 1024, 0));
        assert!(
            big >= small * 0.98,
            "larger PHT should not lose: {small} vs {big}"
        );
    }
}
