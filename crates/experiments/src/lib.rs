//! Experiment harness: one module (and one binary) per table and figure
//! of "TCP: Tag Correlating Prefetchers" (HPCA 2003).
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table 1 (machine config) | [`table1`] | `table1` |
//! | Figure 1 (ideal-L2 potential) | [`fig01`] | `fig01` |
//! | Figures 2–4 (tag/address censuses) | [`characterize`] | `fig02`–`fig04` |
//! | Figures 5–7 (sequence censuses) | [`characterize`] | `fig05`–`fig07` |
//! | Figure 9 (PHT indexing walkthrough) | [`fig09`] | `fig09` |
//! | Figure 11 (TCP vs DBCP IPC) | [`fig11`] | `fig11` |
//! | Figure 12 (L2 access breakdown) | [`fig12`] | `fig12` |
//! | Figure 13 (PHT size / index sweep) | [`fig13`] | `fig13` |
//! | Figure 14 (prefetching into L1) | [`fig14`] | `fig14` |
//! | Figure 15 (strided sequences) | [`characterize`] | `fig15` |
//! | Section 6 extensions (beyond the paper) | [`sec6`] | `sec6` |
//! | System-parameter ablations (beyond the paper) | [`ablate`] | `ablate` |
//!
//! Every binary accepts the `TCP_REPRO_OPS` environment variable to set
//! the simulated micro-ops per benchmark (see [`scale`]); results print
//! as aligned text tables mirroring the paper's axes and are also written
//! as CSV under `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablate;
pub mod characterize;
pub mod fig01;
pub mod fig09;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod plot;
pub mod report;
pub mod scale;
pub mod sec6;
pub mod store;
pub mod sweep;
pub mod table1;
