//! Figure 14: prefetching into L2 only (TCP-8K) versus the hybrid that
//! also promotes into L1 under dead-block prediction (Hybrid-8K).

use crate::report::{pct, Table};
use crate::sweep::{Job, PrefetcherSpec, SweepEngine};
use tcp_core::{DbpConfig, TcpConfig};
use tcp_sim::{ipc_improvement, SystemConfig};
use tcp_workloads::Benchmark;

/// One benchmark's pair of bars.
#[derive(Clone, Debug)]
pub struct Fig14Row {
    /// Benchmark name.
    pub benchmark: String,
    /// TCP-8K improvement over no-prefetch, percent.
    pub tcp8k_pct: f64,
    /// Hybrid-8K improvement over no-prefetch, percent.
    pub hybrid_pct: f64,
}

/// Runs the Figure 14 comparison on a fresh engine. The hybrid machine
/// gains the dedicated prefetch bus the paper adds for this study.
pub fn run(benchmarks: &[Benchmark], n_ops: u64) -> Vec<Fig14Row> {
    run_with(&SweepEngine::new(), benchmarks, n_ops)
}

/// Runs the comparison through `engine` — the baseline and TCP-8K points
/// are shared with Figures 1 and 11 when the engine is.
pub fn run_with(engine: &SweepEngine, benchmarks: &[Benchmark], n_ops: u64) -> Vec<Fig14Row> {
    let base_cfg = SystemConfig::table1();
    let hybrid_cfg = SystemConfig::table1_with_prefetch_bus();
    let jobs: Vec<Job> = benchmarks
        .iter()
        .flat_map(|b| {
            [
                Job::new(b, n_ops, &base_cfg, PrefetcherSpec::Null),
                Job::new(
                    b,
                    n_ops,
                    &base_cfg,
                    PrefetcherSpec::Tcp(TcpConfig::tcp_8k()),
                ),
                Job::new(
                    b,
                    n_ops,
                    &hybrid_cfg,
                    PrefetcherSpec::HybridTcp(TcpConfig::tcp_8k(), DbpConfig::default()),
                ),
            ]
        })
        .collect();
    let results = engine.run(&jobs);
    benchmarks
        .iter()
        .zip(results.chunks_exact(3))
        .map(|(b, group)| {
            let (base, tcp, hybrid) = (&group[0], &group[1], &group[2]);
            Fig14Row {
                benchmark: b.name.to_owned(),
                tcp8k_pct: ipc_improvement(base, tcp),
                hybrid_pct: ipc_improvement(base, hybrid),
            }
        })
        .collect()
}

/// Renders the figure.
pub fn render(rows: &[Fig14Row]) -> Table {
    let mut t = Table::new(
        "Figure 14: prefetching into L2 (TCP-8K) vs into L1 (Hybrid-8K)",
        &["benchmark", "TCP-8K", "Hybrid-8K"],
    );
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            pct(r.tcp8k_pct),
            pct(r.hybrid_pct),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::suite;

    #[test]
    fn hybrid_runs_and_does_not_collapse() {
        let picks: Vec<Benchmark> = suite().into_iter().filter(|b| b.name == "art").collect();
        let rows = run(&picks, 250_000);
        let art = &rows[0];
        assert!(
            art.tcp8k_pct > 0.0,
            "TCP-8K helps art: {:.1}%",
            art.tcp8k_pct
        );
        // The hybrid may help more or less, but must not destroy the gain.
        assert!(
            art.hybrid_pct > art.tcp8k_pct * 0.5,
            "hybrid must not wreck performance: tcp {:.1}% hybrid {:.1}%",
            art.tcp8k_pct,
            art.hybrid_pct
        );
    }
}
