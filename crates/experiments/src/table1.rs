//! Table 1: the simulated processor configuration.

use crate::report::Table;
use tcp_sim::SystemConfig;

/// Renders Table 1 from the live [`SystemConfig`] so the printed
/// configuration can never drift from what the simulator actually runs.
pub fn render(cfg: &SystemConfig) -> Table {
    let mut t = Table::new(
        "Table 1: Configuration of Simulated Processor",
        &["parameter", "value"],
    );
    let h = &cfg.hierarchy;
    let c = &cfg.core;
    let rows: Vec<(&str, String)> = vec![
        ("Clock rate", format!("{}GHz", cfg.clock_ghz)),
        (
            "Instruction window",
            format!("{}-RUU, {}-LSQ", c.window, c.window),
        ),
        (
            "Issue width",
            format!("{} instructions per cycle", c.issue_width),
        ),
        (
            "Functional units",
            format!(
                "{} IntALU, {} IntMult/Div, {} FPALU, {} FPMult/Div, {} Load/Store",
                c.fu_counts[0], c.fu_counts[1], c.fu_counts[2], c.fu_counts[3], c.fu_counts[4]
            ),
        ),
        (
            "L1 Dcache",
            format!(
                "{}KB, {}-way, {}B blocks, {} MSHRs",
                h.l1d.size_bytes() / 1024,
                h.l1d.associativity(),
                h.l1d.line_bytes(),
                h.l1_mshrs
            ),
        ),
        (
            "L1/L2 bus",
            format!(
                "32-byte wide, {}GHz ({} cycle/line)",
                cfg.clock_ghz, h.l1_bus_cycles
            ),
        ),
        (
            "L2",
            format!(
                "{}MB, {}-way LRU, {}B blocks, {}-cycle latency",
                h.l2.size_bytes() / (1024 * 1024),
                h.l2.associativity(),
                h.l2.line_bytes(),
                h.l2_latency
            ),
        ),
        ("Memory latency", format!("{} cycles", h.memory_latency)),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_owned(), v]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reflects_config() {
        let r = render(&SystemConfig::table1()).render();
        assert!(r.contains("2GHz"));
        assert!(r.contains("128-RUU"));
        assert!(r.contains("32KB, 1-way, 32B blocks, 64 MSHRs"));
        assert!(r.contains("1MB, 4-way LRU, 64B blocks, 12-cycle latency"));
        assert!(r.contains("70 cycles"));
    }
}
