//! The deterministic sweep engine: memoized simulation jobs for the whole
//! experiment harness.
//!
//! Every figure of the paper boils down to the same primitive — *simulate
//! benchmark B for N ops on machine M with prefetcher P* — and the
//! figures overlap heavily: Figures 1, 11, and 14 all need the
//! no-prefetch Table 1 baseline of every benchmark, Figures 11, 12, and
//! 14 all need TCP-8K, and so on. Run figure by figure, the harness
//! simulates those shared points again and again.
//!
//! [`SweepEngine`] fixes both the recomputation and the scheduling: a
//! figure describes its simulations as [`Job`] values and submits the
//! whole batch at once. The engine deduplicates jobs against a persistent
//! memo keyed by the job's full identity (benchmark workload spec, op
//! count, machine configuration, prefetcher configuration), executes only
//! the missing ones on the work-stealing pool of
//! [`tcp_sim::sweep::run_jobs_stealing`], and returns results in
//! submission order. Sharing one engine across figures (as `--bin all`
//! does) removes roughly half of all simulation work at zero cost in
//! fidelity: simulations are bit-deterministic, so a memoized result is
//! indistinguishable from a re-run.
//!
//! # Examples
//!
//! ```
//! use tcp_experiments::sweep::{Job, PrefetcherSpec, SweepEngine};
//! use tcp_sim::SystemConfig;
//! use tcp_workloads::suite;
//!
//! let bench = &suite()[0];
//! let machine = SystemConfig::table1();
//! let engine = SweepEngine::with_threads(2);
//! let jobs = vec![
//!     Job::new(bench, 10_000, &machine, PrefetcherSpec::Null),
//!     Job::new(bench, 10_000, &machine, PrefetcherSpec::Null),
//! ];
//! let results = engine.run(&jobs);
//! assert_eq!(results[0].cycles, results[1].cycles);
//! assert_eq!(engine.stats().executed, 1); // the duplicate was memoized
//! ```

use std::collections::BTreeMap;
use std::sync::Mutex;

use tcp_baselines::{Dbcp, DbcpConfig};
use tcp_cache::{NullPrefetcher, Prefetcher};
use tcp_core::{DbpConfig, HybridTcp, StrideAugmentedTcp, Tcp, TcpConfig};
use tcp_sim::{run_benchmark, RunResult, SystemConfig};
use tcp_workloads::Benchmark;

/// A buildable, comparable description of a prefetch engine.
///
/// The suite runners take opaque factory closures; the sweep engine needs
/// *values* so two jobs wanting the same engine can be recognised as
/// equal. Every prefetcher the experiment harness uses has a variant
/// here.
#[derive(Clone, Copy, Debug)]
pub enum PrefetcherSpec {
    /// No prefetching (the baseline machine).
    Null,
    /// Tag-correlating prefetcher with the given configuration.
    Tcp(TcpConfig),
    /// TCP with the per-set stride fast path (Section 6).
    StrideTcp(TcpConfig),
    /// TCP plus dead-block-predicted L1 promotion (the Figure 14 hybrid).
    HybridTcp(TcpConfig, DbpConfig),
    /// Address-based dead-block correlating prefetcher (the paper's
    /// main comparison point).
    Dbcp(DbcpConfig),
}

impl PrefetcherSpec {
    /// Instantiates a fresh engine for one simulation run.
    pub fn build(&self) -> Box<dyn Prefetcher + Send> {
        match self {
            PrefetcherSpec::Null => Box::new(NullPrefetcher),
            PrefetcherSpec::Tcp(cfg) => Box::new(Tcp::new(*cfg)),
            PrefetcherSpec::StrideTcp(cfg) => Box::new(StrideAugmentedTcp::new(*cfg)),
            PrefetcherSpec::HybridTcp(tcp, dbp) => Box::new(HybridTcp::new(*tcp, *dbp)),
            PrefetcherSpec::Dbcp(cfg) => Box::new(Dbcp::new(*cfg)),
        }
    }
}

/// One simulation request: benchmark × scale × machine × prefetcher.
///
/// A job's identity (its memo key) covers everything that can change the
/// simulated outcome, including the benchmark's full workload spec — two
/// benchmarks that merely share a name do not alias.
#[derive(Clone, Debug)]
pub struct Job {
    /// The workload to simulate.
    pub benchmark: Benchmark,
    /// Micro-ops to simulate (half are the unmeasured warm-up, exactly as
    /// [`tcp_sim::run_benchmark`] does).
    pub n_ops: u64,
    /// The machine to simulate on.
    pub machine: SystemConfig,
    /// The prefetch engine to attach.
    pub prefetcher: PrefetcherSpec,
}

impl Job {
    /// Builds a job for `benchmark` (cloned) at `n_ops` on `machine`.
    pub fn new(
        benchmark: &Benchmark,
        n_ops: u64,
        machine: &SystemConfig,
        prefetcher: PrefetcherSpec,
    ) -> Self {
        Job {
            benchmark: benchmark.clone(),
            n_ops,
            machine: *machine,
            prefetcher,
        }
    }

    /// Canonical identity of this simulation. All components are plain
    /// data with derived `Debug`, which renders every field — so equal
    /// keys imply identical simulation inputs, and the simulator's
    /// bit-determinism turns that into identical outputs.
    fn key(&self) -> String {
        format!(
            "{}|{}|{:?}|{:?}|{:?}",
            self.benchmark.name, self.n_ops, self.benchmark.spec, self.machine, self.prefetcher
        )
    }
}

/// Cumulative accounting across every batch an engine has served.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Simulation results requested (total jobs submitted).
    pub requested: usize,
    /// Simulations actually executed.
    pub executed: usize,
}

impl EngineStats {
    /// Requests served from the memo instead of simulating.
    pub fn memo_hits(&self) -> usize {
        self.requested - self.executed
    }
}

/// A memoizing, work-stealing runner for batches of simulation [`Job`]s.
///
/// The memo persists for the engine's lifetime, so figures that share an
/// engine share results across batches. The engine is `Sync`; concurrent
/// batches are safe (a key raced by two batches is simulated twice, both
/// producing the identical deterministic result) but the harness submits
/// batches sequentially.
#[derive(Debug)]
pub struct SweepEngine {
    threads: usize,
    memo: Mutex<BTreeMap<String, RunResult>>,
    stats: Mutex<EngineStats>,
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::new()
    }
}

impl SweepEngine {
    /// An engine sized to the machine's available parallelism.
    pub fn new() -> Self {
        SweepEngine::with_threads(tcp_sim::sweep::default_threads())
    }

    /// An engine with an explicit worker count. Results are independent
    /// of `threads`; only wall-clock time changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "sweep engine needs at least one thread");
        SweepEngine {
            threads,
            memo: Mutex::new(BTreeMap::new()),
            stats: Mutex::new(EngineStats::default()),
        }
    }

    /// Runs a batch of jobs and returns one [`RunResult`] per job, in
    /// submission order.
    ///
    /// Jobs whose key is already memoized (from this batch or any earlier
    /// one) are served by cloning the stored result; the rest execute on
    /// the work-stealing pool, each distinct key exactly once.
    ///
    /// # Panics
    ///
    /// Re-raises the first (in submission order) panic from an executing
    /// simulation, matching the panicking [`run_benchmark`] contract the
    /// figure modules rely on.
    pub fn run(&self, jobs: &[Job]) -> Vec<RunResult> {
        let keys: Vec<String> = jobs.iter().map(Job::key).collect();
        // First unmemoized occurrence of each distinct key in this batch.
        let mut to_run: Vec<usize> = Vec::new();
        {
            let memo = lock(&self.memo);
            let mut fresh: BTreeMap<&str, ()> = BTreeMap::new();
            for (i, key) in keys.iter().enumerate() {
                if !memo.contains_key(key) && fresh.insert(key.as_str(), ()).is_none() {
                    to_run.push(i);
                }
            }
        }
        // Simulate the missing points without holding the memo lock.
        let executed = tcp_sim::sweep::run_jobs_stealing(to_run.len(), self.threads, |u| {
            let job = &jobs[to_run[u]];
            run_benchmark(
                &job.benchmark,
                job.n_ops,
                &job.machine,
                job.prefetcher.build(),
            )
        });
        let mut memo = lock(&self.memo);
        for (&i, result) in to_run.iter().zip(executed) {
            memo.insert(keys[i].clone(), result);
        }
        let out = keys
            .iter()
            .map(|key| {
                memo.get(key)
                    .cloned()
                    .expect("every submitted key was memoized or just executed")
            })
            .collect();
        let mut stats = lock(&self.stats);
        stats.requested += jobs.len();
        stats.executed += to_run.len();
        out
    }

    /// Cumulative request/execution counts since the engine was built.
    pub fn stats(&self) -> EngineStats {
        *lock(&self.stats)
    }

    /// Distinct simulation points currently memoized.
    pub fn memo_len(&self) -> usize {
        lock(&self.memo).len()
    }

    /// Worker threads this engine simulates on.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Locks ignoring poisoning: the guarded state (memo map, counters) is
/// only mutated by infallible inserts and additions, so a panic elsewhere
/// cannot leave it torn.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::suite;

    fn picks(names: &[&str]) -> Vec<Benchmark> {
        suite()
            .into_iter()
            .filter(|b| names.contains(&b.name))
            .collect()
    }

    #[test]
    fn engine_matches_direct_run_bit_for_bit() {
        let benches = picks(&["gzip", "art"]);
        let machine = SystemConfig::table1();
        let engine = SweepEngine::with_threads(2);
        let jobs: Vec<Job> = benches
            .iter()
            .map(|b| {
                Job::new(
                    b,
                    20_000,
                    &machine,
                    PrefetcherSpec::Tcp(TcpConfig::tcp_8k()),
                )
            })
            .collect();
        let results = engine.run(&jobs);
        for (b, r) in benches.iter().zip(&results) {
            let direct =
                run_benchmark(b, 20_000, &machine, Box::new(Tcp::new(TcpConfig::tcp_8k())));
            assert_eq!(r.cycles, direct.cycles, "{}", b.name);
            assert_eq!(r.stats, direct.stats, "{}", b.name);
            assert_eq!(r.ipc, direct.ipc, "{}", b.name);
            assert_eq!(r.prefetcher, direct.prefetcher, "{}", b.name);
        }
    }

    #[test]
    fn duplicates_within_a_batch_simulate_once() {
        let benches = picks(&["gzip"]);
        let machine = SystemConfig::table1();
        let engine = SweepEngine::with_threads(2);
        let job = Job::new(&benches[0], 10_000, &machine, PrefetcherSpec::Null);
        let results = engine.run(&[job.clone(), job.clone(), job]);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].cycles, results[1].cycles);
        assert_eq!(results[0].stats, results[2].stats);
        assert_eq!(
            engine.stats(),
            EngineStats {
                requested: 3,
                executed: 1
            }
        );
        assert_eq!(engine.stats().memo_hits(), 2);
        assert_eq!(engine.memo_len(), 1);
    }

    #[test]
    fn memo_persists_across_batches() {
        let benches = picks(&["swim"]);
        let machine = SystemConfig::table1();
        let engine = SweepEngine::with_threads(2);
        let job = Job::new(&benches[0], 10_000, &machine, PrefetcherSpec::Null);
        let first = engine.run(std::slice::from_ref(&job));
        let second = engine.run(std::slice::from_ref(&job));
        assert_eq!(first[0].cycles, second[0].cycles);
        assert_eq!(first[0].stats, second[0].stats);
        assert_eq!(
            engine.stats(),
            EngineStats {
                requested: 2,
                executed: 1
            }
        );
    }

    #[test]
    fn distinct_configurations_do_not_alias() {
        let benches = picks(&["gzip"]);
        let machine = SystemConfig::table1();
        let ideal = SystemConfig::table1_ideal_l2();
        let engine = SweepEngine::with_threads(2);
        let jobs = vec![
            Job::new(&benches[0], 10_000, &machine, PrefetcherSpec::Null),
            Job::new(&benches[0], 10_000, &ideal, PrefetcherSpec::Null),
            Job::new(&benches[0], 12_000, &machine, PrefetcherSpec::Null),
            Job::new(
                &benches[0],
                10_000,
                &machine,
                PrefetcherSpec::Tcp(TcpConfig::tcp_8k()),
            ),
        ];
        let results = engine.run(&jobs);
        assert_eq!(results.len(), 4);
        assert_eq!(engine.stats().executed, 4, "all four points are distinct");
        assert!(
            results[1].cycles < results[0].cycles,
            "ideal L2 must be faster"
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let benches = picks(&["gzip", "art", "swim"]);
        let machine = SystemConfig::table1();
        let jobs: Vec<Job> = benches
            .iter()
            .flat_map(|b| {
                [
                    Job::new(b, 15_000, &machine, PrefetcherSpec::Null),
                    Job::new(
                        b,
                        15_000,
                        &machine,
                        PrefetcherSpec::Tcp(TcpConfig::tcp_8k()),
                    ),
                ]
            })
            .collect();
        let reference = SweepEngine::with_threads(1).run(&jobs);
        for threads in [2, 8] {
            let got = SweepEngine::with_threads(threads).run(&jobs);
            assert_eq!(got.len(), reference.len());
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.cycles, b.cycles, "{threads} threads: {}", a.benchmark);
                assert_eq!(a.stats, b.stats, "{threads} threads: {}", a.benchmark);
                assert_eq!(a.ipc, b.ipc, "{threads} threads: {}", a.benchmark);
            }
        }
    }

    #[test]
    fn every_prefetcher_spec_builds_and_runs() {
        let benches = picks(&["ammp"]);
        let machine = SystemConfig::table1();
        let engine = SweepEngine::with_threads(2);
        let specs = [
            PrefetcherSpec::Null,
            PrefetcherSpec::Tcp(TcpConfig::tcp_8k()),
            PrefetcherSpec::StrideTcp(TcpConfig::with_pht_bytes(2 * 1024, 0)),
            PrefetcherSpec::HybridTcp(TcpConfig::tcp_8k(), DbpConfig::default()),
            PrefetcherSpec::Dbcp(DbcpConfig::dbcp_2m()),
        ];
        let jobs: Vec<Job> = specs
            .iter()
            .map(|s| Job::new(&benches[0], 10_000, &machine, *s))
            .collect();
        let results = engine.run(&jobs);
        assert_eq!(results.len(), specs.len());
        assert_eq!(engine.stats().executed, specs.len());
        for r in &results {
            assert!(r.ipc > 0.0, "{}", r.prefetcher);
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine = SweepEngine::with_threads(2);
        assert!(engine.run(&[]).is_empty());
        assert_eq!(engine.stats(), EngineStats::default());
        assert_eq!(engine.memo_len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = SweepEngine::with_threads(0);
    }
}
