//! The deterministic sweep engine: memoized simulation jobs for the whole
//! experiment harness.
//!
//! Every figure of the paper boils down to the same primitive — *simulate
//! benchmark B for N ops on machine M with prefetcher P* — and the
//! figures overlap heavily: Figures 1, 11, and 14 all need the
//! no-prefetch Table 1 baseline of every benchmark, Figures 11, 12, and
//! 14 all need TCP-8K, and so on. Run figure by figure, the harness
//! simulates those shared points again and again.
//!
//! [`SweepEngine`] fixes both the recomputation and the scheduling: a
//! figure describes its simulations as [`Job`] values and submits the
//! whole batch at once. The engine deduplicates jobs against a persistent
//! memo keyed by the job's full identity (benchmark workload spec, op
//! count, machine configuration, prefetcher configuration), executes only
//! the missing ones on the work-stealing pool of
//! [`tcp_sim::sweep::run_jobs_stealing`], and returns results in
//! submission order. Sharing one engine across figures (as `--bin all`
//! does) removes roughly half of all simulation work at zero cost in
//! fidelity: simulations are bit-deterministic, so a memoized result is
//! indistinguishable from a re-run.
//!
//! # Examples
//!
//! ```
//! use tcp_experiments::sweep::{Job, PrefetcherSpec, SweepEngine};
//! use tcp_sim::SystemConfig;
//! use tcp_workloads::suite;
//!
//! let bench = &suite()[0];
//! let machine = SystemConfig::table1();
//! let engine = SweepEngine::with_threads(2);
//! let jobs = vec![
//!     Job::new(bench, 10_000, &machine, PrefetcherSpec::Null),
//!     Job::new(bench, 10_000, &machine, PrefetcherSpec::Null),
//! ];
//! let results = engine.run(&jobs);
//! assert_eq!(results[0].cycles, results[1].cycles);
//! assert_eq!(engine.stats().executed, 1); // the duplicate was memoized
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use tcp_baselines::{Dbcp, DbcpConfig};
use tcp_cache::{NullPrefetcher, Prefetcher};
use tcp_core::{DbpConfig, HybridTcp, StrideAugmentedTcp, Tcp, TcpConfig};
use tcp_sim::{
    run_benchmark, try_run_benchmark_warm, RunError, RunResult, SimError, SystemConfig, Watchdog,
};
use tcp_workloads::Benchmark;

use crate::store::{StoreError, SweepStore};

/// A buildable, comparable description of a prefetch engine.
///
/// The suite runners take opaque factory closures; the sweep engine needs
/// *values* so two jobs wanting the same engine can be recognised as
/// equal. Every prefetcher the experiment harness uses has a variant
/// here.
#[derive(Clone, Copy, Debug)]
pub enum PrefetcherSpec {
    /// No prefetching (the baseline machine).
    Null,
    /// Tag-correlating prefetcher with the given configuration.
    Tcp(TcpConfig),
    /// TCP with the per-set stride fast path (Section 6).
    StrideTcp(TcpConfig),
    /// TCP plus dead-block-predicted L1 promotion (the Figure 14 hybrid).
    HybridTcp(TcpConfig, DbpConfig),
    /// Address-based dead-block correlating prefetcher (the paper's
    /// main comparison point).
    Dbcp(DbcpConfig),
}

impl PrefetcherSpec {
    /// Instantiates a fresh engine for one simulation run.
    pub fn build(&self) -> Box<dyn Prefetcher + Send> {
        match self {
            PrefetcherSpec::Null => Box::new(NullPrefetcher),
            PrefetcherSpec::Tcp(cfg) => Box::new(Tcp::new(*cfg)),
            PrefetcherSpec::StrideTcp(cfg) => Box::new(StrideAugmentedTcp::new(*cfg)),
            PrefetcherSpec::HybridTcp(tcp, dbp) => Box::new(HybridTcp::new(*tcp, *dbp)),
            PrefetcherSpec::Dbcp(cfg) => Box::new(Dbcp::new(*cfg)),
        }
    }

    /// The named preset configurations `tcp-serve` requests can ask for,
    /// as `(name, spec)` pairs.
    pub fn presets() -> [(&'static str, PrefetcherSpec); 6] {
        [
            ("null", PrefetcherSpec::Null),
            ("tcp-8k", PrefetcherSpec::Tcp(TcpConfig::tcp_8k())),
            ("tcp-8m", PrefetcherSpec::Tcp(TcpConfig::tcp_8m())),
            (
                "stride-tcp-8k",
                PrefetcherSpec::StrideTcp(TcpConfig::tcp_8k()),
            ),
            (
                "hybrid-tcp-8k",
                PrefetcherSpec::HybridTcp(TcpConfig::tcp_8k(), DbpConfig::default()),
            ),
            ("dbcp-2m", PrefetcherSpec::Dbcp(DbcpConfig::dbcp_2m())),
        ]
    }

    /// Resolves a preset name from [`PrefetcherSpec::presets`], or `None`
    /// for an unknown name.
    pub fn from_name(name: &str) -> Option<PrefetcherSpec> {
        PrefetcherSpec::presets()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, spec)| spec)
    }
}

/// One simulation request: benchmark × scale × machine × prefetcher.
///
/// A job's identity (its memo key) covers everything that can change the
/// simulated outcome, including the benchmark's full workload spec — two
/// benchmarks that merely share a name do not alias.
#[derive(Clone, Debug)]
pub struct Job {
    /// The workload to simulate.
    pub benchmark: Benchmark,
    /// Micro-ops to simulate (half are the unmeasured warm-up, exactly as
    /// [`tcp_sim::run_benchmark`] does).
    pub n_ops: u64,
    /// The machine to simulate on.
    pub machine: SystemConfig,
    /// The prefetch engine to attach.
    pub prefetcher: PrefetcherSpec,
}

impl Job {
    /// Builds a job for `benchmark` (cloned) at `n_ops` on `machine`.
    pub fn new(
        benchmark: &Benchmark,
        n_ops: u64,
        machine: &SystemConfig,
        prefetcher: PrefetcherSpec,
    ) -> Self {
        Job {
            benchmark: benchmark.clone(),
            n_ops,
            machine: *machine,
            prefetcher,
        }
    }

    /// Canonical identity of this simulation — the memo key of both the
    /// in-process memo and the persistent [`SweepStore`]. All components
    /// are plain data with derived `Debug`, which renders every field —
    /// so equal keys imply identical simulation inputs, and the
    /// simulator's bit-determinism turns that into identical outputs.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{:?}|{:?}|{:?}",
            self.benchmark.name, self.n_ops, self.benchmark.spec, self.machine, self.prefetcher
        )
    }
}

/// Cumulative accounting across every batch an engine has served.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Simulation results requested (total jobs submitted).
    pub requested: usize,
    /// Simulations actually executed.
    pub executed: usize,
    /// Requests served by reading the persistent [`SweepStore`] (only
    /// [`SweepEngine::run_with`] produces these; one per distinct key
    /// pulled from disk).
    pub store_hits: usize,
}

impl EngineStats {
    /// Requests served from the in-process memo instead of simulating or
    /// reading the store.
    pub fn memo_hits(&self) -> usize {
        self.requested - self.executed - self.store_hits
    }
}

/// A failure from a store-backed sweep ([`SweepEngine::run_with`]).
#[derive(Debug)]
pub enum SweepError {
    /// The persistent store hit an I/O failure (checkpoints could not be
    /// written or the store could not be read).
    Store(StoreError),
    /// A job failed after exhausting its watchdog retries (first failing
    /// job in submission order). Completed work in the same batch was
    /// checkpointed before this surfaced, so a retry resumes from it.
    Job {
        /// Benchmark of the failing job.
        benchmark: String,
        /// Why the job failed.
        reason: SimError,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Store(e) => write!(f, "sweep store failure: {e}"),
            SweepError::Job { benchmark, reason } => {
                write!(f, "sweep job '{benchmark}' failed: {reason}")
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Store(e) => Some(e),
            SweepError::Job { reason, .. } => Some(reason),
        }
    }
}

impl From<StoreError> for SweepError {
    fn from(e: StoreError) -> Self {
        SweepError::Store(e)
    }
}

/// Policy for a store-backed, checkpointed sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointOpts {
    /// Jobs simulated between checkpoints: after each batch of this many
    /// completed jobs the store is flushed, so a killed sweep loses at
    /// most one batch of work.
    pub batch_jobs: usize,
    /// Forward-progress supervision for each job (the PR 1 watchdog).
    pub watchdog: Watchdog,
    /// How many times a wedged job is retried with a relaxed watchdog
    /// (each retry multiplies the cycles-per-op cap by 16) before the
    /// sweep reports it failed.
    pub max_retries: u32,
}

impl Default for CheckpointOpts {
    /// Checkpoint every 8 jobs under the default watchdog with 2 retries.
    fn default() -> Self {
        CheckpointOpts {
            batch_jobs: 8,
            watchdog: Watchdog::default(),
            max_retries: 2,
        }
    }
}

/// Each watchdog retry multiplies `max_cycles_per_op` by this factor, so
/// a genuinely slow-but-progressing job eventually completes while a
/// truly wedged one still fails fast in bounded attempts.
const RETRY_RELAX_FACTOR: u64 = 16;

/// A memoizing, work-stealing runner for batches of simulation [`Job`]s.
///
/// The memo persists for the engine's lifetime, so figures that share an
/// engine share results across batches. The engine is `Sync`; concurrent
/// batches are safe (a key raced by two batches is simulated twice, both
/// producing the identical deterministic result) but the harness submits
/// batches sequentially.
#[derive(Debug)]
pub struct SweepEngine {
    threads: usize,
    memo: Mutex<BTreeMap<String, RunResult>>,
    stats: Mutex<EngineStats>,
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::new()
    }
}

impl SweepEngine {
    /// An engine sized to the machine's available parallelism.
    pub fn new() -> Self {
        SweepEngine::with_threads(tcp_sim::sweep::default_threads())
    }

    /// An engine with an explicit worker count. Results are independent
    /// of `threads`; only wall-clock time changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "sweep engine needs at least one thread");
        SweepEngine {
            threads,
            memo: Mutex::new(BTreeMap::new()),
            stats: Mutex::new(EngineStats::default()),
        }
    }

    /// Runs a batch of jobs and returns one [`RunResult`] per job, in
    /// submission order.
    ///
    /// Jobs whose key is already memoized (from this batch or any earlier
    /// one) are served by cloning the stored result; the rest execute on
    /// the work-stealing pool, each distinct key exactly once.
    ///
    /// # Panics
    ///
    /// Re-raises the first (in submission order) panic from an executing
    /// simulation, matching the panicking [`run_benchmark`] contract the
    /// figure modules rely on.
    pub fn run(&self, jobs: &[Job]) -> Vec<RunResult> {
        let keys: Vec<String> = jobs.iter().map(Job::key).collect();
        // First unmemoized occurrence of each distinct key in this batch.
        let mut to_run: Vec<usize> = Vec::new();
        {
            let memo = lock(&self.memo);
            let mut fresh: BTreeMap<&str, ()> = BTreeMap::new();
            for (i, key) in keys.iter().enumerate() {
                if !memo.contains_key(key) && fresh.insert(key.as_str(), ()).is_none() {
                    to_run.push(i);
                }
            }
        }
        // Simulate the missing points without holding the memo lock.
        let executed = tcp_sim::sweep::run_jobs_stealing(to_run.len(), self.threads, |u| {
            let job = &jobs[to_run[u]];
            run_benchmark(
                &job.benchmark,
                job.n_ops,
                &job.machine,
                job.prefetcher.build(),
            )
        });
        let mut memo = lock(&self.memo);
        for (&i, result) in to_run.iter().zip(executed) {
            memo.insert(keys[i].clone(), result);
        }
        let out = keys
            .iter()
            .map(|key| {
                memo.get(key)
                    .cloned()
                    // tcp-lint: allow(panic-in-library) — documented invariant: the loop above memoized every missing key
                    .expect("every submitted key was memoized or just executed")
            })
            .collect();
        let mut stats = lock(&self.stats);
        stats.requested += jobs.len();
        stats.executed += to_run.len();
        out
    }

    /// Runs a batch of jobs through the persistent `store`, returning one
    /// [`RunResult`] per job in submission order.
    ///
    /// The lookup order per key is: in-process memo, then the store
    /// (disk hits are pulled into the memo and counted as
    /// [`EngineStats::store_hits`]), then simulation. Misses execute on
    /// the work-stealing pool in batches of
    /// [`CheckpointOpts::batch_jobs`]; after each batch the new results
    /// are inserted and the store is **flushed with the crash-safe
    /// protocol**, so a sweep killed mid-run resumes from the last
    /// completed batch — bit-identically, because stored results
    /// round-trip exactly and the simulator is deterministic.
    ///
    /// Each job is supervised by the [`Watchdog`] from `opts`; a wedged
    /// job is retried up to [`CheckpointOpts::max_retries`] times with a
    /// progressively relaxed cycles-per-op cap before the sweep reports
    /// [`SweepError::Job`].
    ///
    /// # Errors
    ///
    /// [`SweepError::Store`] when a checkpoint cannot be written, and
    /// [`SweepError::Job`] when a job fails after its bounded retries.
    /// In both cases every batch completed so far (including successes
    /// in the failing batch) has been flushed to the store.
    pub fn run_with(
        &self,
        store: &mut SweepStore,
        jobs: &[Job],
        opts: &CheckpointOpts,
    ) -> Result<Vec<RunResult>, SweepError> {
        let keys: Vec<String> = jobs.iter().map(Job::key).collect();
        let mut to_run: Vec<usize> = Vec::new();
        let mut store_hits = 0usize;
        {
            let mut memo = lock(&self.memo);
            let mut fresh: BTreeMap<&str, ()> = BTreeMap::new();
            for (i, key) in keys.iter().enumerate() {
                if memo.contains_key(key) {
                    continue;
                }
                if let Some(result) = store.get(key) {
                    memo.insert(key.clone(), result.clone());
                    store_hits += 1;
                    continue;
                }
                if fresh.insert(key.as_str(), ()).is_none() {
                    to_run.push(i);
                }
            }
        }
        let mut executed = 0usize;
        let mut first_failure: Option<SweepError> = None;
        'batches: for chunk in to_run.chunks(opts.batch_jobs.max(1)) {
            let outcomes = tcp_sim::sweep::run_jobs_stealing(chunk.len(), self.threads, |u| {
                run_supervised(&jobs[chunk[u]], opts)
            });
            let mut memo = lock(&self.memo);
            for (&i, outcome) in chunk.iter().zip(outcomes) {
                match outcome {
                    Ok(result) => {
                        store.insert(&keys[i], &result);
                        memo.insert(keys[i].clone(), result);
                        executed += 1;
                    }
                    Err(reason) => {
                        if first_failure.is_none() {
                            first_failure = Some(SweepError::Job {
                                benchmark: jobs[i].benchmark.name.to_owned(),
                                reason,
                            });
                        }
                    }
                }
            }
            drop(memo);
            // Checkpoint the batch's successes even when a job failed:
            // graceful degradation means a retry resumes from here.
            store.flush()?;
            if first_failure.is_some() {
                break 'batches;
            }
        }
        let mut stats = lock(&self.stats);
        stats.requested += jobs.len();
        stats.executed += executed;
        stats.store_hits += store_hits;
        drop(stats);
        if let Some(failure) = first_failure {
            return Err(failure);
        }
        let memo = lock(&self.memo);
        Ok(keys
            .iter()
            .map(|key| {
                memo.get(key)
                    .cloned()
                    // tcp-lint: allow(panic-in-library) — documented invariant: checkpoint batches memoized every missing key
                    .expect("every submitted key was memoized, stored, or just executed")
            })
            .collect())
    }

    /// Cumulative request/execution counts since the engine was built.
    pub fn stats(&self) -> EngineStats {
        *lock(&self.stats)
    }

    /// Distinct simulation points currently memoized.
    pub fn memo_len(&self) -> usize {
        lock(&self.memo).len()
    }

    /// Worker threads this engine simulates on.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Runs one job under its watchdog, retrying a wedge up to
/// `opts.max_retries` times with a relaxed cap. For healthy runs the
/// supervised runner is cycle-exact with [`run_benchmark`] (the PR 1
/// parity contract), so results are interchangeable with
/// [`SweepEngine::run`]'s.
fn run_supervised(job: &Job, opts: &CheckpointOpts) -> Result<RunResult, SimError> {
    let mut watchdog = opts.watchdog;
    let mut attempt = 0u32;
    loop {
        let outcome = try_run_benchmark_warm(
            &job.benchmark,
            job.n_ops / 2,
            job.n_ops,
            &job.machine,
            job.prefetcher.build(),
            &watchdog,
        );
        match outcome {
            Err(SimError::Run(RunError::Wedged { .. })) if attempt < opts.max_retries => {
                attempt += 1;
                watchdog.max_cycles_per_op = watchdog
                    .max_cycles_per_op
                    .saturating_mul(RETRY_RELAX_FACTOR);
            }
            other => return other,
        }
    }
}

/// Locks ignoring poisoning: the guarded state (memo map, counters) is
/// only mutated by infallible inserts and additions, so a panic elsewhere
/// cannot leave it torn.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::suite;

    fn picks(names: &[&str]) -> Vec<Benchmark> {
        suite()
            .into_iter()
            .filter(|b| names.contains(&b.name))
            .collect()
    }

    #[test]
    fn engine_matches_direct_run_bit_for_bit() {
        let benches = picks(&["gzip", "art"]);
        let machine = SystemConfig::table1();
        let engine = SweepEngine::with_threads(2);
        let jobs: Vec<Job> = benches
            .iter()
            .map(|b| {
                Job::new(
                    b,
                    20_000,
                    &machine,
                    PrefetcherSpec::Tcp(TcpConfig::tcp_8k()),
                )
            })
            .collect();
        let results = engine.run(&jobs);
        for (b, r) in benches.iter().zip(&results) {
            let direct =
                run_benchmark(b, 20_000, &machine, Box::new(Tcp::new(TcpConfig::tcp_8k())));
            assert_eq!(r.cycles, direct.cycles, "{}", b.name);
            assert_eq!(r.stats, direct.stats, "{}", b.name);
            assert_eq!(r.ipc, direct.ipc, "{}", b.name);
            assert_eq!(r.prefetcher, direct.prefetcher, "{}", b.name);
        }
    }

    #[test]
    fn duplicates_within_a_batch_simulate_once() {
        let benches = picks(&["gzip"]);
        let machine = SystemConfig::table1();
        let engine = SweepEngine::with_threads(2);
        let job = Job::new(&benches[0], 10_000, &machine, PrefetcherSpec::Null);
        let results = engine.run(&[job.clone(), job.clone(), job]);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].cycles, results[1].cycles);
        assert_eq!(results[0].stats, results[2].stats);
        assert_eq!(
            engine.stats(),
            EngineStats {
                requested: 3,
                executed: 1,
                store_hits: 0
            }
        );
        assert_eq!(engine.stats().memo_hits(), 2);
        assert_eq!(engine.memo_len(), 1);
    }

    #[test]
    fn memo_persists_across_batches() {
        let benches = picks(&["swim"]);
        let machine = SystemConfig::table1();
        let engine = SweepEngine::with_threads(2);
        let job = Job::new(&benches[0], 10_000, &machine, PrefetcherSpec::Null);
        let first = engine.run(std::slice::from_ref(&job));
        let second = engine.run(std::slice::from_ref(&job));
        assert_eq!(first[0].cycles, second[0].cycles);
        assert_eq!(first[0].stats, second[0].stats);
        assert_eq!(
            engine.stats(),
            EngineStats {
                requested: 2,
                executed: 1,
                store_hits: 0
            }
        );
    }

    #[test]
    fn distinct_configurations_do_not_alias() {
        let benches = picks(&["gzip"]);
        let machine = SystemConfig::table1();
        let ideal = SystemConfig::table1_ideal_l2();
        let engine = SweepEngine::with_threads(2);
        let jobs = vec![
            Job::new(&benches[0], 10_000, &machine, PrefetcherSpec::Null),
            Job::new(&benches[0], 10_000, &ideal, PrefetcherSpec::Null),
            Job::new(&benches[0], 12_000, &machine, PrefetcherSpec::Null),
            Job::new(
                &benches[0],
                10_000,
                &machine,
                PrefetcherSpec::Tcp(TcpConfig::tcp_8k()),
            ),
        ];
        let results = engine.run(&jobs);
        assert_eq!(results.len(), 4);
        assert_eq!(engine.stats().executed, 4, "all four points are distinct");
        assert!(
            results[1].cycles < results[0].cycles,
            "ideal L2 must be faster"
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let benches = picks(&["gzip", "art", "swim"]);
        let machine = SystemConfig::table1();
        let jobs: Vec<Job> = benches
            .iter()
            .flat_map(|b| {
                [
                    Job::new(b, 15_000, &machine, PrefetcherSpec::Null),
                    Job::new(
                        b,
                        15_000,
                        &machine,
                        PrefetcherSpec::Tcp(TcpConfig::tcp_8k()),
                    ),
                ]
            })
            .collect();
        let reference = SweepEngine::with_threads(1).run(&jobs);
        for threads in [2, 8] {
            let got = SweepEngine::with_threads(threads).run(&jobs);
            assert_eq!(got.len(), reference.len());
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.cycles, b.cycles, "{threads} threads: {}", a.benchmark);
                assert_eq!(a.stats, b.stats, "{threads} threads: {}", a.benchmark);
                assert_eq!(a.ipc, b.ipc, "{threads} threads: {}", a.benchmark);
            }
        }
    }

    #[test]
    fn every_prefetcher_spec_builds_and_runs() {
        let benches = picks(&["ammp"]);
        let machine = SystemConfig::table1();
        let engine = SweepEngine::with_threads(2);
        let specs = [
            PrefetcherSpec::Null,
            PrefetcherSpec::Tcp(TcpConfig::tcp_8k()),
            PrefetcherSpec::StrideTcp(TcpConfig::with_pht_bytes(2 * 1024, 0)),
            PrefetcherSpec::HybridTcp(TcpConfig::tcp_8k(), DbpConfig::default()),
            PrefetcherSpec::Dbcp(DbcpConfig::dbcp_2m()),
        ];
        let jobs: Vec<Job> = specs
            .iter()
            .map(|s| Job::new(&benches[0], 10_000, &machine, *s))
            .collect();
        let results = engine.run(&jobs);
        assert_eq!(results.len(), specs.len());
        assert_eq!(engine.stats().executed, specs.len());
        for r in &results {
            assert!(r.ipc > 0.0, "{}", r.prefetcher);
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine = SweepEngine::with_threads(2);
        assert!(engine.run(&[]).is_empty());
        assert_eq!(engine.stats(), EngineStats::default());
        assert_eq!(engine.memo_len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = SweepEngine::with_threads(0);
    }

    #[test]
    fn every_preset_resolves_and_builds() {
        for (name, spec) in PrefetcherSpec::presets() {
            let resolved = PrefetcherSpec::from_name(name).expect(name);
            assert_eq!(format!("{resolved:?}"), format!("{spec:?}"), "{name}");
            let _engine = resolved.build();
        }
        assert!(PrefetcherSpec::from_name("no-such-engine").is_none());
    }

    mod store_backed {
        use super::*;
        use crate::store::SweepStore;
        use std::sync::atomic::{AtomicU64, Ordering};

        fn test_dir(name: &str) -> std::path::PathBuf {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("tcp-sweep-unit-{}-{name}-{n}", std::process::id()));
            if dir.exists() {
                std::fs::remove_dir_all(&dir).expect("stale test dir removable");
            }
            dir
        }

        fn jobs_for(names: &[&str], n_ops: u64) -> Vec<Job> {
            let machine = SystemConfig::table1();
            picks(names)
                .iter()
                .flat_map(|b| {
                    [
                        Job::new(b, n_ops, &machine, PrefetcherSpec::Null),
                        Job::new(b, n_ops, &machine, PrefetcherSpec::Tcp(TcpConfig::tcp_8k())),
                    ]
                })
                .collect()
        }

        #[test]
        fn store_backed_run_matches_plain_run_bit_for_bit() {
            let dir = test_dir("parity");
            let jobs = jobs_for(&["gzip", "art"], 15_000);
            let plain = SweepEngine::with_threads(2).run(&jobs);
            let engine = SweepEngine::with_threads(2);
            let mut store = SweepStore::open(&dir).expect("open");
            let stored = engine
                .run_with(&mut store, &jobs, &CheckpointOpts::default())
                .expect("store-backed run");
            for (a, b) in plain.iter().zip(&stored) {
                assert_eq!(a.cycles, b.cycles, "{}", a.benchmark);
                assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "{}", a.benchmark);
                assert_eq!(a.stats, b.stats, "{}", a.benchmark);
            }
            std::fs::remove_dir_all(&dir).expect("cleanup");
        }

        #[test]
        fn second_run_is_served_entirely_from_the_store() {
            let dir = test_dir("warm");
            let jobs = jobs_for(&["swim"], 10_000);
            let first = {
                let engine = SweepEngine::with_threads(2);
                let mut store = SweepStore::open(&dir).expect("open");
                let results = engine
                    .run_with(&mut store, &jobs, &CheckpointOpts::default())
                    .expect("cold run");
                assert_eq!(engine.stats().executed, jobs.len());
                assert_eq!(engine.stats().store_hits, 0);
                results
            };
            // Fresh engine, fresh process-equivalent: only the disk knows.
            let engine = SweepEngine::with_threads(2);
            let mut store = SweepStore::open(&dir).expect("reopen");
            let second = engine
                .run_with(&mut store, &jobs, &CheckpointOpts::default())
                .expect("warm run");
            assert_eq!(engine.stats().executed, 0, "nothing re-simulates");
            assert_eq!(engine.stats().store_hits, jobs.len());
            assert_eq!(engine.stats().memo_hits(), 0);
            for (a, b) in first.iter().zip(&second) {
                assert_eq!(a.cycles, b.cycles);
                assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
                assert_eq!(a.stats, b.stats);
            }
            std::fs::remove_dir_all(&dir).expect("cleanup");
        }

        #[test]
        fn wedged_job_fails_after_bounded_retries_and_checkpoints_survivors() {
            let dir = test_dir("wedge");
            let machine = SystemConfig::table1();
            let healthy = picks(&["gzip"]);
            let jobs = vec![
                Job::new(&healthy[0], 10_000, &machine, PrefetcherSpec::Null),
                Job::new(
                    &healthy[0],
                    50_000,
                    &tcp_sim::faults::wedged_config(),
                    PrefetcherSpec::Null,
                ),
            ];
            let engine = SweepEngine::with_threads(1);
            let mut store = SweepStore::open(&dir).expect("open");
            // batch_jobs 1: the healthy job checkpoints before the wedge
            // surfaces.
            let opts = CheckpointOpts {
                batch_jobs: 1,
                max_retries: 0,
                ..CheckpointOpts::default()
            };
            let err = engine
                .run_with(&mut store, &jobs, &opts)
                .expect_err("wedged job must fail");
            assert!(
                matches!(
                    &err,
                    SweepError::Job {
                        reason: SimError::Run(RunError::Wedged { .. }),
                        ..
                    }
                ),
                "{err}"
            );
            // The healthy job's result survived the failure.
            let store = SweepStore::open(&dir).expect("reopen");
            assert_eq!(store.len(), 1);
            std::fs::remove_dir_all(&dir).expect("cleanup");
        }

        #[test]
        fn retries_relax_the_watchdog_until_a_slow_job_completes() {
            // On a deliberately hostile machine (2 000-cycle memory, one
            // MSHR) art runs at ~60 cycles per op, so a cap of 1 wedges,
            // one ×16 relaxation (cap 16) still wedges, and the second
            // (cap 256) completes with headroom.
            let tight = Watchdog {
                max_cycles_per_op: 1,
                check_interval_ops: 1_024,
            };
            let mut slow = SystemConfig::table1();
            slow.hierarchy.memory_latency = 2_000;
            slow.hierarchy.l1_mshrs = 1;
            let dir = test_dir("retry");
            let jobs: Vec<Job> = picks(&["art"])
                .iter()
                .map(|b| Job::new(b, 10_000, &slow, PrefetcherSpec::Null))
                .collect();
            let engine = SweepEngine::with_threads(1);
            let mut store = SweepStore::open(&dir).expect("open");
            let opts = CheckpointOpts {
                watchdog: tight,
                max_retries: 2,
                ..CheckpointOpts::default()
            };
            let results = engine
                .run_with(&mut store, &jobs, &opts)
                .expect("retries must rescue the run");
            let reference = SweepEngine::with_threads(1).run(&jobs);
            for (a, b) in reference.iter().zip(&results) {
                assert_eq!(a.cycles, b.cycles, "retried run stays cycle-exact");
            }
            // And with retries exhausted before the cap is workable, the
            // same sweep fails.
            let dir2 = test_dir("retry-fail");
            let mut store2 = SweepStore::open(&dir2).expect("open");
            let opts = CheckpointOpts {
                watchdog: tight,
                max_retries: 0,
                ..CheckpointOpts::default()
            };
            let err = SweepEngine::with_threads(1)
                .run_with(&mut store2, &jobs, &opts)
                .expect_err("no retries, impossible cap");
            assert!(matches!(err, SweepError::Job { .. }));
            std::fs::remove_dir_all(&dir).expect("cleanup");
            std::fs::remove_dir_all(&dir2).expect("cleanup");
        }
    }
}
