//! The Pattern History Table (PHT): TCP's second level.
//!
//! The PHT is a set-associative table of `(tag, tag′)` pairs. Its index
//! (Figure 9) takes its high bits from a truncated addition of the tags
//! in the sequence and its low `n` bits from the miss index:
//!
//! ```text
//!   PHT index = (tag1 + … + tagk)[1:m]  ∥  miss_index[1:n]
//! ```
//!
//! `n` trades sharing against isolation: `n = 0` shares every entry among
//! all cache sets (TCP-8K), `n = 10` gives each L1 set private rows
//! (TCP-8M). Within the indexed PHT set, the entry whose `tag` field
//! matches the most recent tag of the sequence supplies `tag′`, the
//! predicted successor.

use crate::truncated_sum;
use tcp_cache::kernels;
use tcp_mem::{SetIndex, Tag};

/// Geometry and indexing policy of a pattern history table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhtConfig {
    /// Number of PHT sets (power of two).
    pub sets: u32,
    /// Ways per PHT set (the paper uses 8).
    pub assoc: u32,
    /// Low bits of the L1 miss index mixed into the PHT index (`n` in
    /// Figure 9): 0 = fully shared, 10 = fully per-set for a 1024-set L1.
    pub miss_index_bits: u32,
    /// Width of the stored tag fields in bits (16 in the paper's 4-byte
    /// entries; predictions are reconstructed from these truncated tags).
    pub tag_bits: u32,
    /// Successor tags stored per entry, most recent first. The paper uses
    /// 1; Section 6 proposes storing multiple targets as Joseph &
    /// Grunwald's Markov prefetcher does, trading traffic for accuracy.
    pub targets: u32,
}

impl PhtConfig {
    /// The paper's 8 KB PHT: 256 sets × 8 ways × 4-byte entries, no miss
    /// index bits (fully shared).
    pub const fn pht_8k() -> Self {
        PhtConfig {
            sets: 256,
            assoc: 8,
            miss_index_bits: 0,
            tag_bits: 16,
            targets: 1,
        }
    }

    /// The paper's idealised 8 MB PHT: 262144 sets × 8 ways, full 10-bit
    /// miss index (fully per-set).
    pub const fn pht_8m() -> Self {
        PhtConfig {
            sets: 262_144,
            assoc: 8,
            miss_index_bits: 10,
            tag_bits: 16,
            targets: 1,
        }
    }

    /// A PHT of approximately `bytes` total storage with the given miss
    /// index bits, keeping 8-way associativity and 4-byte entries (the
    /// Figure 13 sweep axis).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too small for one 8-way set.
    pub fn with_bytes(bytes: usize, miss_index_bits: u32) -> Self {
        let entry_bytes = 4;
        let assoc = 8;
        let sets = (bytes / (entry_bytes * assoc)).next_power_of_two() as u32;
        assert!(
            bytes >= entry_bytes * assoc,
            "PHT must hold at least one set"
        );
        let sets = if (sets as usize) * entry_bytes * assoc > bytes {
            sets / 2
        } else {
            sets
        };
        assert!(sets >= 1, "PHT must hold at least one set");
        PhtConfig {
            sets,
            assoc: assoc as u32,
            miss_index_bits,
            tag_bits: 16,
            targets: 1,
        }
    }

    /// Total storage in bytes: `sets × assoc × (1 + targets) × tag_bits / 8`
    /// (one entry tag plus `targets` successor tags).
    pub fn size_bytes(&self) -> usize {
        self.sets as usize
            * self.assoc as usize
            * (1 + self.targets as usize)
            * self.tag_bits as usize
            / 8
    }

    /// Index bits available above the miss-index part.
    fn sum_bits(&self) -> u32 {
        let total = self.sets.trailing_zeros();
        total.saturating_sub(self.miss_index_bits).max(1)
    }
}

/// A set-associative pattern history table.
///
/// Entry state is struct-of-arrays: the truncated entry tags sit in a
/// dense `u64` array so the per-set probe is one chunked
/// [`kernels::find_tag`] sweep against the set's occupancy bitmask, and
/// LRU victim selection is a chunked [`kernels::min_index`] over the
/// contiguous `last_use` row — the same kernels the simulator's caches
/// use (see DESIGN.md §12).
///
/// # Examples
///
/// ```
/// use tcp_core::{PatternHistoryTable, PhtConfig};
/// use tcp_mem::{SetIndex, Tag};
///
/// let mut pht = PatternHistoryTable::new(PhtConfig::pht_8k());
/// let seq = [Tag::new(3), Tag::new(4)];
/// let set = SetIndex::new(17);
/// pht.train(&seq, Tag::new(5), set);
/// assert_eq!(pht.lookup(&seq, set), Some(Tag::new(5)));
/// ```
#[derive(Clone, Debug)]
pub struct PatternHistoryTable {
    cfg: PhtConfig,
    /// Truncated entry tag per way (row-major, `sets × assoc`). Only
    /// ways whose `valid` bit is set hold a meaningful value.
    tags: Vec<u64>,
    /// Per-set occupancy bitmask (bit `w` = way `w` holds an entry).
    valid: Vec<u64>,
    /// LRU stamp per way.
    last_use: Vec<u64>,
    /// Live prefix length of each way's arena row.
    n_targets: Vec<u32>,
    /// Flat successor-tag arena: entry (way) `i` owns the row
    /// `targets[i * cfg.targets .. (i + 1) * cfg.targets]`, of which the
    /// first `n_targets` elements are live (most recent first). Keeping
    /// targets out of line makes training and lookup allocation-free.
    targets: Vec<Tag>,
    order: u64,
    trains: u64,
    lookups: u64,
    hits: u64,
}

impl PatternHistoryTable {
    /// Creates an empty PHT.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, `assoc` is zero or above
    /// 64 (the occupancy bitmask width), or `miss_index_bits` exceeds
    /// the index width.
    pub fn new(cfg: PhtConfig) -> Self {
        assert!(
            cfg.sets.is_power_of_two(),
            "PHT sets must be a power of two"
        );
        assert!(
            (1..=64).contains(&cfg.assoc),
            "PHT associativity must be in 1..=64"
        );
        assert!(
            cfg.miss_index_bits <= cfg.sets.trailing_zeros(),
            "miss index bits exceed the PHT index width"
        );
        assert!(
            cfg.tag_bits >= 1 && cfg.tag_bits <= 64,
            "tag width out of range"
        );
        assert!(cfg.targets >= 1, "entries must store at least one target");
        let ways = cfg.sets as usize * cfg.assoc as usize;
        PatternHistoryTable {
            cfg,
            tags: vec![0; ways],
            valid: vec![0; cfg.sets as usize],
            last_use: vec![0; ways],
            n_targets: vec![0; ways],
            targets: vec![Tag::default(); ways * cfg.targets as usize],
            order: 0,
            trains: 0,
            lookups: 0,
            hits: 0,
        }
    }

    /// The table configuration.
    pub fn config(&self) -> &PhtConfig {
        &self.cfg
    }

    /// Total storage in bytes.
    pub fn size_bytes(&self) -> usize {
        self.cfg.size_bytes()
    }

    /// `(trains, lookups, lookup hits)` since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.trains, self.lookups, self.hits)
    }

    /// The Figure 9 index function.
    fn index(&self, seq: &[Tag], miss_index: SetIndex) -> usize {
        let n = self.cfg.miss_index_bits;
        let m = self.cfg.sum_bits();
        let high = truncated_sum(seq, m);
        let low = if n == 0 {
            0
        } else {
            u64::from(miss_index.raw()) & ((1 << n) - 1)
        };
        let idx = ((high << n) | low) & u64::from(self.cfg.sets - 1);
        idx as usize
    }

    fn entry_tag(&self, seq: &[Tag]) -> Tag {
        seq.last()
            .copied()
            .unwrap_or_default()
            .truncate(self.cfg.tag_bits)
    }

    /// Records that sequence `seq` (oldest first, most recent last) at L1
    /// set `miss_index` was followed by `next`.
    pub fn train(&mut self, seq: &[Tag], next: Tag, miss_index: SetIndex) {
        self.trains += 1;
        self.order += 1;
        let set = self.index(seq, miss_index);
        let etag = self.entry_tag(seq);
        let next = next.truncate(self.cfg.tag_bits);
        let assoc = self.cfg.assoc as usize;
        let base = set * assoc;
        let max_targets = self.cfg.targets as usize;
        let vm = self.valid[set];
        // Existing entry for this sequence tag?
        if let Some(w) = kernels::find_tag(&self.tags[base..base + assoc], vm, etag.raw()) {
            let way = base + w;
            let row = &mut self.targets[way * max_targets..(way + 1) * max_targets];
            let n = self.n_targets[way] as usize;
            if let Some(pos) = row[..n].iter().position(|&t| t == next) {
                // Move the matched target to the front of the live prefix.
                row[..=pos].rotate_right(1);
            } else {
                // Push front; the oldest target falls off a full row.
                let keep = n.min(max_targets - 1);
                row[..=keep].rotate_right(1);
                row[0] = next;
                self.n_targets[way] = (keep + 1) as u32;
            }
            self.last_use[way] = self.order;
            return;
        }
        // Fill the lowest empty way, or evict the set's LRU entry.
        let full = if assoc == 64 {
            u64::MAX
        } else {
            (1 << assoc) - 1
        };
        let w = if vm != full {
            (!vm).trailing_zeros() as usize
        } else {
            kernels::min_index(&self.last_use[base..base + assoc])
        };
        let way = base + w;
        self.tags[way] = etag.raw();
        self.valid[set] = vm | 1 << w;
        self.last_use[way] = self.order;
        self.n_targets[way] = 1;
        let slot = way * max_targets;
        debug_assert!(slot < self.targets.len(), "arena is sized ways * targets");
        self.targets[slot] = next;
    }

    /// Predicts the most recent tag observed after sequence `seq` at L1
    /// set `miss_index`.
    pub fn lookup(&mut self, seq: &[Tag], miss_index: SetIndex) -> Option<Tag> {
        let way = self.find_and_touch(seq, miss_index)?;
        // tcp-lint: allow(overflow-provenance) — way < sets·ways and targets ≤ 8, so the arena index is far below usize::MAX
        Some(self.targets[way * self.cfg.targets as usize])
    }

    /// Appends every stored successor for the sequence (most recent
    /// first) to `out` — the Section 6 multi-target mode.
    pub fn lookup_targets(&mut self, seq: &[Tag], miss_index: SetIndex, out: &mut Vec<Tag>) {
        if let Some(way) = self.find_and_touch(seq, miss_index) {
            let n = self.n_targets[way] as usize;
            let start = way * self.cfg.targets as usize;
            out.extend_from_slice(&self.targets[start..start + n]);
        }
    }

    /// One lookup's bookkeeping: counts it, finds the matching way, and
    /// refreshes its LRU stamp and the hit counter on a match. Every
    /// trained entry has at least one live target, so a returned way
    /// always has a valid front-of-row prediction.
    fn find_and_touch(&mut self, seq: &[Tag], miss_index: SetIndex) -> Option<usize> {
        self.lookups += 1;
        self.order += 1;
        let set = self.index(seq, miss_index);
        let etag = self.entry_tag(seq);
        let assoc = self.cfg.assoc as usize;
        let base = set * assoc;
        let w = kernels::find_tag(&self.tags[base..base + assoc], self.valid[set], etag.raw())?;
        let way = base + w;
        self.last_use[way] = self.order;
        self.hits += 1;
        Some(way)
    }

    /// Fraction of occupied entries (table utilisation).
    pub fn occupancy(&self) -> f64 {
        let used: u32 = self.valid.iter().map(|m| m.count_ones()).sum();
        used as f64 / self.tags.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> Tag {
        Tag::new(x)
    }

    fn s(x: u32) -> SetIndex {
        SetIndex::new(x)
    }

    #[test]
    fn paper_sizes() {
        assert_eq!(PhtConfig::pht_8k().size_bytes(), 8 * 1024);
        assert_eq!(PhtConfig::pht_8m().size_bytes(), 8 * 1024 * 1024);
    }

    #[test]
    fn with_bytes_hits_requested_size() {
        for bytes in [
            2048usize,
            8192,
            32 * 1024,
            128 * 1024,
            512 * 1024,
            2 << 20,
            8 << 20,
        ] {
            let cfg = PhtConfig::with_bytes(bytes, 0);
            assert_eq!(cfg.size_bytes(), bytes, "requested {bytes}");
        }
    }

    #[test]
    fn train_then_lookup_roundtrip() {
        let mut pht = PatternHistoryTable::new(PhtConfig::pht_8k());
        let seq = [t(100), t(200)];
        pht.train(&seq, t(300), s(7));
        assert_eq!(pht.lookup(&seq, s(7)), Some(t(300)));
        let (tr, lu, hits) = pht.counters();
        assert_eq!((tr, lu, hits), (1, 1, 1));
    }

    #[test]
    fn retraining_overwrites_prediction() {
        let mut pht = PatternHistoryTable::new(PhtConfig::pht_8k());
        let seq = [t(1), t(2)];
        pht.train(&seq, t(3), s(0));
        pht.train(&seq, t(9), s(0));
        assert_eq!(pht.lookup(&seq, s(0)), Some(t(9)));
    }

    #[test]
    fn shared_pht_ignores_miss_index() {
        // n = 0: the same sequence trained in set 3 predicts in set 800.
        let mut pht = PatternHistoryTable::new(PhtConfig::pht_8k());
        let seq = [t(5), t(6)];
        pht.train(&seq, t(7), s(3));
        assert_eq!(pht.lookup(&seq, s(800)), Some(t(7)));
    }

    #[test]
    fn private_pht_separates_sets() {
        // n = 10: history from one set must not leak into another.
        let mut pht = PatternHistoryTable::new(PhtConfig::pht_8m());
        let seq = [t(5), t(6)];
        pht.train(&seq, t(7), s(3));
        assert_eq!(pht.lookup(&seq, s(3)), Some(t(7)));
        assert_eq!(pht.lookup(&seq, s(800)), None);
    }

    #[test]
    fn entry_tag_disambiguates_sum_collisions() {
        // (1, 4) and (2, 3) share a truncated sum of 5 but differ in their
        // most recent tag, so both fit in one PHT set without conflict.
        let mut pht = PatternHistoryTable::new(PhtConfig::pht_8k());
        pht.train(&[t(1), t(4)], t(100), s(0));
        pht.train(&[t(2), t(3)], t(200), s(0));
        assert_eq!(pht.lookup(&[t(1), t(4)], s(0)), Some(t(100)));
        assert_eq!(pht.lookup(&[t(2), t(3)], s(0)), Some(t(200)));
    }

    #[test]
    fn lru_evicts_oldest_pattern() {
        // A 1-set, 2-way PHT: the third distinct pattern evicts the LRU.
        let cfg = PhtConfig {
            sets: 1,
            assoc: 2,
            miss_index_bits: 0,
            tag_bits: 16,
            targets: 1,
        };
        let mut pht = PatternHistoryTable::new(cfg);
        pht.train(&[t(1)], t(10), s(0));
        pht.train(&[t(2)], t(20), s(0));
        assert_eq!(pht.lookup(&[t(1)], s(0)), Some(t(10))); // touch 1
        pht.train(&[t(3)], t(30), s(0)); // evicts pattern 2
        assert_eq!(pht.lookup(&[t(2)], s(0)), None);
        assert_eq!(pht.lookup(&[t(1)], s(0)), Some(t(10)));
        assert_eq!(pht.lookup(&[t(3)], s(0)), Some(t(30)));
    }

    #[test]
    fn tag_truncation_models_narrow_fields() {
        // Tags equal mod 2^16 alias in a 16-bit PHT: the paper's cost
        // model, made observable.
        let mut pht = PatternHistoryTable::new(PhtConfig::pht_8k());
        pht.train(&[t(0x10001), t(2)], t(3), s(0));
        assert_eq!(pht.lookup(&[t(0x1), t(0x10002)], s(0)), Some(t(3)));
    }

    #[test]
    fn occupancy_grows_with_training() {
        let mut pht = PatternHistoryTable::new(PhtConfig::pht_8k());
        assert_eq!(pht.occupancy(), 0.0);
        for i in 0..500u64 {
            pht.train(&[t(i), t(i + 1)], t(i + 2), s(0));
        }
        assert!(pht.occupancy() > 0.1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = PatternHistoryTable::new(PhtConfig {
            sets: 3,
            assoc: 8,
            miss_index_bits: 0,
            tag_bits: 16,
            targets: 1,
        });
    }

    #[test]
    #[should_panic(expected = "miss index bits")]
    fn too_many_miss_index_bits_rejected() {
        let _ = PatternHistoryTable::new(PhtConfig {
            sets: 16,
            assoc: 8,
            miss_index_bits: 5,
            tag_bits: 16,
            targets: 1,
        });
    }
}
