//! The Tag Correlating Prefetcher (TCP) — the primary contribution of
//! "TCP: Tag Correlating Prefetchers" (Hu, Kaxiras, Martonosi; HPCA 2003).
//!
//! TCP is a two-level correlating predictor over per-cache-set *tag*
//! sequences, structurally analogous to a two-level branch predictor:
//!
//! * the first level, the [`TagHistoryTable`] (THT), has one row per L1
//!   set and records the last `k` tags seen in that set's miss stream;
//! * the second level, the [`PatternHistoryTable`] (PHT), maps a hashed
//!   tag sequence — a truncated addition of the `k` tags, optionally
//!   concatenated with low bits of the miss index (Figure 9) — to the tag
//!   that followed it last time.
//!
//! On each L1 data-cache miss `(miss_tag, miss_index)`, [`Tcp`]
//! *trains* the PHT (the sequence that preceded this miss now has a known
//! successor), *shifts* the THT row, and *looks up* the new sequence; a
//! hit predicts the next tag for this set, and `predicted_tag ⧺
//! miss_index` is prefetched into the L2. Because one tag sequence covers
//! every set in which it recurs, an 8 KB PHT shared by all sets (TCP-8K)
//! rivals megabyte-scale address-correlating tables.
//!
//! For prefetching all the way into the L1 (Section 5.2.2), [`HybridTcp`]
//! adds the timekeeping dead-block predictor of Hu et al. (ISCA 2002)
//! ([`TimekeepingDbp`]): a prefetched line is promoted into the L1 only
//! once the line currently occupying its frame is predicted dead.
//!
//! # Examples
//!
//! ```
//! use tcp_core::{Tcp, TcpConfig};
//! use tcp_cache::{HierarchyConfig, MemoryHierarchy};
//! use tcp_mem::{Addr, MemAccess};
//!
//! // The paper's headline configuration: 8 KB pattern history table.
//! let tcp = Tcp::new(TcpConfig::tcp_8k());
//! assert_eq!(tcp.config().pht.size_bytes(), 8 * 1024);
//!
//! let mut h = MemoryHierarchy::new(HierarchyConfig::default(), Box::new(tcp));
//! h.access(MemAccess::load(Addr::new(0x400000), Addr::new(0x100000)), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deadblock;
mod hybrid;
mod pht;
mod strided;
mod tcp;
mod tht;
mod truncadd;

pub use deadblock::{DbpConfig, TimekeepingDbp};
pub use hybrid::HybridTcp;
pub use pht::{PatternHistoryTable, PhtConfig};
pub use strided::StrideAugmentedTcp;
pub use tcp::{Tcp, TcpConfig};
pub use tht::TagHistoryTable;
pub use truncadd::truncated_sum;
