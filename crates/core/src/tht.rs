//! The Tag History Table (THT): TCP's first level.
//!
//! One row per L1 cache set; each row holds the last `k` tags observed in
//! that set's miss stream, oldest first. Rows are read and shifted on
//! every L1 miss; because the THT is indexed by the miss index it can be
//! probed in parallel with the L1 lookup itself (Section 4).

use tcp_mem::{SetIndex, Tag};

/// The per-set tag history table.
///
/// # Examples
///
/// ```
/// use tcp_core::TagHistoryTable;
/// use tcp_mem::{SetIndex, Tag};
///
/// let mut tht = TagHistoryTable::new(1024, 2);
/// let s = SetIndex::new(5);
/// assert!(tht.sequence(s).is_none()); // not warm yet
/// tht.push(s, Tag::new(10));
/// tht.push(s, Tag::new(11));
/// assert_eq!(tht.sequence(s).unwrap(), &[Tag::new(10), Tag::new(11)]);
/// ```
#[derive(Clone, Debug)]
pub struct TagHistoryTable {
    sets: u32,
    k: usize,
    // Row-major: sets × k tags, oldest first.
    tags: Vec<Tag>,
    // Number of valid entries per row (saturates at k).
    valid: Vec<u8>,
}

impl TagHistoryTable {
    /// Creates a THT with `sets` rows of `k` tags each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero, `k` is zero, or `k > 255`.
    pub fn new(sets: u32, k: usize) -> Self {
        assert!(sets > 0, "THT needs at least one set");
        assert!((1..=255).contains(&k), "history length must be in 1..=255");
        TagHistoryTable {
            sets,
            k,
            tags: vec![Tag::default(); sets as usize * k],
            valid: vec![0; sets as usize],
        }
    }

    /// Number of rows (L1 sets tracked).
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// History depth `k` per row.
    pub fn history_len(&self) -> usize {
        self.k
    }

    /// Hardware cost: `sets × k` 16-bit tag fields.
    pub fn size_bytes(&self) -> usize {
        self.sets as usize * self.k * 2
    }

    fn row(&self, set: SetIndex) -> usize {
        (set.as_usize() % self.sets as usize) * self.k
    }

    /// Returns the full `k`-tag sequence at `set` (oldest first), or
    /// `None` while the row is still warming up.
    pub fn sequence(&self, set: SetIndex) -> Option<&[Tag]> {
        let r = self.row(set);
        (self.valid[set.as_usize() % self.sets as usize] as usize == self.k)
            .then(|| &self.tags[r..r + self.k])
    }

    /// Shifts `tag` into the row for `set` as the most recent entry.
    pub fn push(&mut self, set: SetIndex, tag: Tag) {
        let _ = self.push_and_sequence(set, tag);
    }

    /// Shifts `tag` into the row for `set` and returns the row's full
    /// `k`-tag sequence (oldest first), or `None` while still warming up
    /// — the fused form of [`TagHistoryTable::push`] followed by
    /// [`TagHistoryTable::sequence`] that TCP's miss handler uses, doing
    /// the row addressing once instead of twice.
    pub fn push_and_sequence(&mut self, set: SetIndex, tag: Tag) -> Option<&[Tag]> {
        let row_i = set.as_usize() % self.sets as usize;
        let r = row_i * self.k;
        self.tags.copy_within(r + 1..r + self.k, r);
        self.tags[r + self.k - 1] = tag;
        let v = &mut self.valid[row_i];
        if (*v as usize) < self.k {
            *v += 1;
        }
        (*v as usize == self.k).then(|| &self.tags[r..r + self.k])
    }

    /// Clears all history.
    pub fn reset(&mut self) {
        self.valid.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> Tag {
        Tag::new(x)
    }

    #[test]
    fn warms_up_before_reporting() {
        let mut tht = TagHistoryTable::new(16, 3);
        let s = SetIndex::new(2);
        tht.push(s, t(1));
        assert!(tht.sequence(s).is_none());
        tht.push(s, t(2));
        assert!(tht.sequence(s).is_none());
        tht.push(s, t(3));
        assert_eq!(tht.sequence(s).unwrap(), &[t(1), t(2), t(3)]);
    }

    #[test]
    fn shift_keeps_most_recent_k() {
        let mut tht = TagHistoryTable::new(4, 2);
        let s = SetIndex::new(0);
        for x in 1..=5 {
            tht.push(s, t(x));
        }
        assert_eq!(tht.sequence(s).unwrap(), &[t(4), t(5)]);
    }

    #[test]
    fn rows_are_independent() {
        let mut tht = TagHistoryTable::new(8, 2);
        tht.push(SetIndex::new(0), t(1));
        tht.push(SetIndex::new(0), t(2));
        tht.push(SetIndex::new(1), t(9));
        assert_eq!(tht.sequence(SetIndex::new(0)).unwrap(), &[t(1), t(2)]);
        assert!(tht.sequence(SetIndex::new(1)).is_none());
    }

    #[test]
    fn k_equals_one_works() {
        let mut tht = TagHistoryTable::new(2, 1);
        let s = SetIndex::new(1);
        tht.push(s, t(42));
        assert_eq!(tht.sequence(s).unwrap(), &[t(42)]);
        tht.push(s, t(43));
        assert_eq!(tht.sequence(s).unwrap(), &[t(43)]);
    }

    #[test]
    fn size_matches_paper_configuration() {
        // 1024 sets × 2 tags × 2 bytes = 4 KB of history.
        let tht = TagHistoryTable::new(1024, 2);
        assert_eq!(tht.size_bytes(), 4096);
    }

    #[test]
    fn reset_clears_history() {
        let mut tht = TagHistoryTable::new(4, 2);
        let s = SetIndex::new(3);
        tht.push(s, t(1));
        tht.push(s, t(2));
        tht.reset();
        assert!(tht.sequence(s).is_none());
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn zero_k_rejected() {
        let _ = TagHistoryTable::new(4, 0);
    }
}
