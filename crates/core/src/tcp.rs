//! The Tag Correlating Prefetcher: THT + PHT behind the
//! [`tcp_cache::Prefetcher`] interface.

use crate::{PatternHistoryTable, PhtConfig, TagHistoryTable};
use tcp_cache::{L1MissInfo, PrefetchRequest, Prefetcher};
use tcp_mem::{CacheGeometry, Tag};

/// Complete configuration of a TCP instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpConfig {
    /// THT rows — one per L1 set (1024 for the paper's 32 KB L1).
    pub tht_sets: u32,
    /// Tags of history per row (`k`; the paper uses 2, making the
    /// correlated unit a three-tag sequence).
    pub history_len: usize,
    /// The pattern history table.
    pub pht: PhtConfig,
    /// Prefetch degree: number of predicted tags followed per miss. The
    /// paper uses 1; higher degrees chase the predicted sequence
    /// speculatively (a Section 6 extension).
    pub degree: usize,
    /// Geometry of the L1 cache whose miss stream is observed (needed to
    /// recompose `(tag, index)` into prefetch addresses).
    pub l1: CacheGeometry,
}

impl TcpConfig {
    /// TCP-8K: the paper's headline design — 8 KB PHT shared by all sets.
    pub fn tcp_8k() -> Self {
        TcpConfig {
            tht_sets: 1024,
            history_len: 2,
            pht: PhtConfig::pht_8k(),
            degree: 1,
            l1: CacheGeometry::new(32 * 1024, 32, 1),
        }
    }

    /// TCP-8M: the paper's idealised no-sharing design — 8 MB PHT with
    /// the full miss index in the PHT index.
    pub fn tcp_8m() -> Self {
        TcpConfig {
            pht: PhtConfig::pht_8m(),
            ..TcpConfig::tcp_8k()
        }
    }

    /// A TCP with a PHT of roughly `bytes` and `n` miss-index bits (the
    /// Figure 13 sweep).
    pub fn with_pht_bytes(bytes: usize, miss_index_bits: u32) -> Self {
        TcpConfig {
            pht: PhtConfig::with_bytes(bytes, miss_index_bits),
            ..TcpConfig::tcp_8k()
        }
    }

    /// Display name in the paper's style, e.g. `TCP-8K`.
    pub fn display_name(&self) -> String {
        let bytes = self.pht.size_bytes();
        if bytes >= 1024 * 1024 {
            format!("TCP-{}M", bytes / (1024 * 1024))
        } else {
            format!("TCP-{}K", bytes / 1024)
        }
    }
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig::tcp_8k()
    }
}

/// The Tag Correlating Prefetcher.
///
/// On every primary L1 miss `(tag, index)`:
///
/// 1. **Train** — the THT row for `index` holds the sequence that
///    preceded this miss; the PHT entry for that sequence learns `tag`
///    as its successor.
/// 2. **Shift** — `tag` becomes the most recent entry of the THT row.
/// 3. **Look up** — the shifted sequence indexes the PHT; on a match the
///    predicted tag `tag′` is combined with `index` into a full line
///    address and prefetched into the L2.
///
/// # Examples
///
/// ```
/// use tcp_core::{Tcp, TcpConfig};
/// use tcp_cache::Prefetcher;
///
/// let tcp = Tcp::new(TcpConfig::tcp_8k());
/// assert_eq!(tcp.name(), "TCP-8K");
/// // 8 KB PHT + 4 KB THT.
/// assert_eq!(tcp.storage_bytes(), 8 * 1024 + 4 * 1024);
/// ```
#[derive(Clone, Debug)]
pub struct Tcp {
    cfg: TcpConfig,
    name: String,
    tht: TagHistoryTable,
    pht: PatternHistoryTable,
    seq_scratch: Vec<Tag>,
    target_scratch: Vec<Tag>,
    predictions: u64,
}

impl Tcp {
    /// Builds a TCP from its configuration.
    pub fn new(cfg: TcpConfig) -> Self {
        let tht = TagHistoryTable::new(cfg.tht_sets, cfg.history_len);
        let pht = PatternHistoryTable::new(cfg.pht);
        let name = cfg.display_name();
        Tcp {
            cfg,
            name,
            tht,
            pht,
            seq_scratch: Vec::new(),
            target_scratch: Vec::new(),
            predictions: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// The pattern history table (for occupancy/counter inspection).
    pub fn pht(&self) -> &PatternHistoryTable {
        &self.pht
    }

    /// Number of predictions issued so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }
}

impl Prefetcher for Tcp {
    fn name(&self) -> &str {
        &self.name
    }

    fn storage_bytes(&self) -> usize {
        self.pht.size_bytes() + self.tht.size_bytes()
    }

    fn on_miss(&mut self, info: &L1MissInfo, out: &mut Vec<PrefetchRequest>) {
        let set = info.set;
        let miss_tag = info.tag;

        // 1. Train: the sequence that led here is now known to be
        //    followed by miss_tag. (`tht` and `pht` are disjoint fields,
        //    so the sequence is trained straight out of the THT row.)
        if let Some(seq) = self.tht.sequence(set) {
            self.pht.train(seq, miss_tag, set);
        }

        // 2. Shift the new tag into the history and read back the updated
        //    sequence in one fused row pass.
        let Some(seq) = self.tht.push_and_sequence(set, miss_tag) else {
            return;
        };

        // 3. Look up the new sequence and chase up to `degree` predictions.
        // The common degree-1 single-target configuration (the paper's)
        // never needs the sequence copied or extended.
        if self.cfg.pht.targets == 1 && self.cfg.degree == 1 {
            let Some(pred) = self.pht.lookup(seq, set) else {
                return;
            };
            // Never prefetch the line that just missed.
            if pred == miss_tag.truncate(self.cfg.pht.tag_bits) && seq.last() == Some(&miss_tag) {
                return;
            }
            self.predictions += 1;
            out.push(PrefetchRequest::to_l2(self.cfg.l1.compose(pred, set)));
            return;
        }
        self.seq_scratch.clear();
        self.seq_scratch.extend_from_slice(seq);
        if self.cfg.pht.targets > 1 {
            // Section 6 multi-target mode: issue every remembered
            // successor of this sequence (Markov-style).
            let mut targets = std::mem::take(&mut self.target_scratch);
            targets.clear();
            self.pht
                .lookup_targets(&self.seq_scratch, set, &mut targets);
            for &pred in &targets {
                if pred == miss_tag.truncate(self.cfg.pht.tag_bits) {
                    continue;
                }
                self.predictions += 1;
                out.push(PrefetchRequest::to_l2(self.cfg.l1.compose(pred, set)));
            }
            self.target_scratch = targets;
            return;
        }
        for _ in 0..self.cfg.degree {
            let Some(pred) = self.pht.lookup(&self.seq_scratch, set) else {
                break;
            };
            // Never prefetch the line that just missed.
            if pred == miss_tag.truncate(self.cfg.pht.tag_bits)
                && self.seq_scratch.last() == Some(&miss_tag)
            {
                break;
            }
            self.predictions += 1;
            out.push(PrefetchRequest::to_l2(self.cfg.l1.compose(pred, set)));
            // Speculatively extend the sequence for degree > 1.
            self.seq_scratch.rotate_left(1);
            let k = self.seq_scratch.len();
            self.seq_scratch[k - 1] = pred;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_mem::{Addr, MemAccess, SetIndex};

    fn miss(tcp: &Tcp, tag: u64, set: u32, cycle: u64) -> L1MissInfo {
        let g = tcp.cfg.l1;
        let line = g.compose(Tag::new(tag), SetIndex::new(set));
        L1MissInfo {
            access: MemAccess::load(Addr::new(0x400000), g.first_byte(line)),
            line,
            tag: Tag::new(tag),
            set: SetIndex::new(set),
            cycle,
        }
    }

    fn drive(tcp: &mut Tcp, tags: &[u64], set: u32) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for (i, &t) in tags.iter().enumerate() {
            let info = miss(tcp, t, set, i as u64);
            tcp.on_miss(&info, &mut out);
        }
        out
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Tcp::new(TcpConfig::tcp_8k()).name(), "TCP-8K");
        assert_eq!(Tcp::new(TcpConfig::tcp_8m()).name(), "TCP-8M");
    }

    #[test]
    fn storage_includes_tht_and_pht() {
        let t8m = Tcp::new(TcpConfig::tcp_8m());
        assert_eq!(t8m.storage_bytes(), 8 * 1024 * 1024 + 4 * 1024);
    }

    #[test]
    fn learns_a_repeating_sequence() {
        let mut tcp = Tcp::new(TcpConfig::tcp_8k());
        // Sequence 1,2,3 repeated: after training, seeing (2,3) → predict
        // the successor 1 (the cycle wraps), etc.
        let out = drive(&mut tcp, &[1, 2, 3, 1, 2, 3, 1, 2], 5);
        assert!(
            !out.is_empty(),
            "a repeating sequence must produce predictions"
        );
        // The final miss (tag 2 after history [1,2]) should predict 3.
        let g = tcp.cfg.l1;
        let expected = g.compose(Tag::new(3), SetIndex::new(5));
        assert_eq!(out.last().unwrap().line, expected);
    }

    #[test]
    fn cold_stream_makes_no_predictions() {
        let mut tcp = Tcp::new(TcpConfig::tcp_8k());
        let out = drive(&mut tcp, &[10, 20, 30, 40, 50], 3);
        assert!(out.is_empty(), "never-seen sequences must not predict");
        assert_eq!(tcp.predictions(), 0);
    }

    #[test]
    fn shared_pht_transfers_patterns_across_sets() {
        // Train the sequence in set 0, then replay it in set 999: with
        // n = 0 the shared entry predicts immediately (the paper's core
        // space-saving claim).
        let mut tcp = Tcp::new(TcpConfig::tcp_8k());
        drive(&mut tcp, &[7, 8, 9, 7, 8, 9], 0);
        let out = drive(&mut tcp, &[7, 8], 999);
        assert_eq!(out.len(), 1);
        let g = tcp.cfg.l1;
        assert_eq!(out[0].line, g.compose(Tag::new(9), SetIndex::new(999)));
    }

    #[test]
    fn private_pht_does_not_transfer_across_sets() {
        let mut tcp = Tcp::new(TcpConfig::tcp_8m());
        drive(&mut tcp, &[7, 8, 9, 7, 8, 9], 0);
        let out = drive(&mut tcp, &[7, 8], 999);
        assert!(out.is_empty(), "full miss-index PHT must keep sets private");
    }

    #[test]
    fn prefetch_lands_in_the_missing_set() {
        let mut tcp = Tcp::new(TcpConfig::tcp_8k());
        let out = drive(&mut tcp, &[4, 5, 6, 4, 5, 6, 4, 5], 123);
        let g = tcp.cfg.l1;
        for r in &out {
            assert_eq!(
                g.split_line(r.line).1,
                SetIndex::new(123),
                "TCP predicts tags, the index is implied"
            );
        }
    }

    #[test]
    fn degree_two_chases_the_predicted_sequence() {
        let mut cfg = TcpConfig::tcp_8k();
        cfg.degree = 2;
        let mut tcp = Tcp::new(cfg);
        // Strided tags: 1,2,3,4,... twice so (t-1, t) → t+1 is trained.
        let tags: Vec<u64> = (1..=20).chain(1..=20).collect();
        let mut out = Vec::new();
        for (i, &t) in tags.iter().enumerate() {
            out.clear();
            let info = miss(&tcp, t, 9, i as u64);
            tcp.on_miss(&info, &mut out);
        }
        // Final miss: history [19, 20]. The second pass started by
        // training [19, 20] → 1 and [20, 1] → 2, so a degree-2 chase
        // predicts the wrap: tags 1 then 2.
        assert_eq!(out.len(), 2, "degree-2 should emit two chained prefetches");
        let g = tcp.cfg.l1;
        assert_eq!(out[0].line, g.compose(Tag::new(1), SetIndex::new(9)));
        assert_eq!(out[1].line, g.compose(Tag::new(2), SetIndex::new(9)));
    }

    #[test]
    fn all_requests_target_l2() {
        let mut tcp = Tcp::new(TcpConfig::tcp_8k());
        let out = drive(&mut tcp, &[1, 2, 3, 1, 2, 3, 1, 2, 3], 0);
        assert!(out
            .iter()
            .all(|r| r.target == tcp_cache::PrefetchTarget::L2));
    }
}
