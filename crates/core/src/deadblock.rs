//! The timekeeping dead-block predictor of Hu, Kaxiras & Martonosi
//! (ISCA 2002), as used by the paper's hybrid prefetcher (Section 5.2.2).
//!
//! The predictor tracks, per L1 frame, how long the resident line stayed
//! *live* (fill to last access) in previous generations. A line is
//! predicted dead once the time since its last access exceeds a multiple
//! of that learned live time — at which point replacing it early (with a
//! prefetched line) costs nothing.

/// Configuration of the timekeeping dead-block predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DbpConfig {
    /// Number of L1 frames tracked (1024 for the paper's direct-mapped
    /// 32 KB L1: one frame per set).
    pub frames: u32,
    /// Dead threshold as a multiple of the learned live time.
    pub live_time_multiple: u64,
    /// Floor on the dead threshold, in cycles, so brand-new frames are
    /// not declared dead instantly.
    pub min_dead_cycles: u64,
}

impl Default for DbpConfig {
    fn default() -> Self {
        DbpConfig {
            frames: 1024,
            live_time_multiple: 2,
            min_dead_cycles: 1024,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct FrameState {
    fill: u64,
    last_access: u64,
    live_estimate: u64,
    valid: bool,
}

/// Per-frame timekeeping dead-block predictor.
///
/// # Examples
///
/// ```
/// use tcp_core::{DbpConfig, TimekeepingDbp};
///
/// let mut dbp = TimekeepingDbp::new(DbpConfig::default());
/// dbp.on_fill(3, 0);
/// dbp.on_access(3, 100); // live time so far: 100 cycles
/// assert!(!dbp.predict_dead(3, 150));
/// assert!(dbp.predict_dead(3, 100_000));
/// ```
#[derive(Clone, Debug)]
pub struct TimekeepingDbp {
    cfg: DbpConfig,
    frames: Vec<FrameState>,
    deaths_learned: u64,
}

impl TimekeepingDbp {
    /// Creates a predictor with all frames untracked.
    ///
    /// # Panics
    ///
    /// Panics if `frames` or `live_time_multiple` is zero.
    pub fn new(cfg: DbpConfig) -> Self {
        assert!(cfg.frames > 0, "need at least one frame");
        assert!(
            cfg.live_time_multiple > 0,
            "live-time multiple must be nonzero"
        );
        TimekeepingDbp {
            cfg,
            frames: vec![FrameState::default(); cfg.frames as usize],
            deaths_learned: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DbpConfig {
        &self.cfg
    }

    /// Hardware cost: per frame, two coarse time stamps and a live-time
    /// estimate (the ISCA 2002 design uses a handful of bytes per frame;
    /// we charge 6).
    pub fn storage_bytes(&self) -> usize {
        self.cfg.frames as usize * 6
    }

    /// Number of evictions the predictor has learned from.
    pub fn deaths_learned(&self) -> u64 {
        self.deaths_learned
    }

    fn frame_mut(&mut self, frame: u32) -> &mut FrameState {
        let n = self.cfg.frames as usize;
        &mut self.frames[frame as usize % n]
    }

    /// A new line was filled into `frame` at `now`.
    pub fn on_fill(&mut self, frame: u32, now: u64) {
        let f = self.frame_mut(frame);
        f.fill = now;
        f.last_access = now;
        f.valid = true;
    }

    /// The resident line of `frame` was accessed at `now`.
    pub fn on_access(&mut self, frame: u32, now: u64) {
        let f = self.frame_mut(frame);
        f.last_access = now.max(f.last_access);
        f.valid = true;
    }

    /// The resident line of `frame` was evicted at `now`: learn its live
    /// time (exponentially averaged with previous generations).
    pub fn on_evict(&mut self, frame: u32, _now: u64) {
        self.deaths_learned += 1;
        let f = self.frame_mut(frame);
        if f.valid {
            let observed = f.last_access.saturating_sub(f.fill);
            f.live_estimate = if f.live_estimate == 0 {
                observed
            } else {
                (f.live_estimate + observed) / 2
            };
            f.valid = false;
        }
    }

    /// Is the line currently resident in `frame` predicted dead at `now`?
    ///
    /// Untracked frames are conservatively reported live.
    pub fn predict_dead(&self, frame: u32, now: u64) -> bool {
        let f = &self.frames[frame as usize % self.cfg.frames as usize];
        if !f.valid {
            return false;
        }
        let idle = now.saturating_sub(f.last_access);
        let threshold =
            (f.live_estimate * self.cfg.live_time_multiple).max(self.cfg.min_dead_cycles);
        idle > threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dbp() -> TimekeepingDbp {
        TimekeepingDbp::new(DbpConfig {
            frames: 8,
            live_time_multiple: 2,
            min_dead_cycles: 100,
        })
    }

    #[test]
    fn untracked_frame_is_live() {
        let d = dbp();
        assert!(!d.predict_dead(0, 1_000_000));
    }

    #[test]
    fn recently_touched_frame_is_live() {
        let mut d = dbp();
        d.on_fill(1, 0);
        d.on_access(1, 50);
        assert!(!d.predict_dead(1, 60));
    }

    #[test]
    fn long_idle_frame_is_dead() {
        let mut d = dbp();
        d.on_fill(1, 0);
        d.on_access(1, 50);
        assert!(d.predict_dead(1, 10_000));
    }

    #[test]
    fn threshold_scales_with_learned_live_time() {
        let mut d = dbp();
        // Generation 1: live for 1000 cycles, then evicted.
        d.on_fill(2, 0);
        d.on_access(2, 1000);
        d.on_evict(2, 1100);
        assert_eq!(d.deaths_learned(), 1);
        // Generation 2: idle 1500 < 2×1000 → still live; idle 2500 → dead.
        d.on_fill(2, 2000);
        d.on_access(2, 2100);
        assert!(!d.predict_dead(2, 2100 + 1500));
        assert!(d.predict_dead(2, 2100 + 2500));
    }

    #[test]
    fn eviction_invalidates_until_next_fill() {
        let mut d = dbp();
        d.on_fill(3, 0);
        d.on_access(3, 10);
        d.on_evict(3, 20);
        assert!(!d.predict_dead(3, 1_000_000), "empty frame is not 'dead'");
        d.on_fill(3, 30);
        assert!(d.predict_dead(3, 1_000_000));
    }

    #[test]
    fn live_estimate_averages_generations() {
        let mut d = dbp();
        d.on_fill(4, 0);
        d.on_access(4, 4000);
        d.on_evict(4, 4000);
        d.on_fill(4, 5000);
        d.on_access(4, 5000); // live time 0
        d.on_evict(4, 5000);
        // Estimate ≈ (4000 + 0) / 2 = 2000; threshold 4000.
        d.on_fill(4, 10_000);
        assert!(!d.predict_dead(4, 13_000));
        assert!(d.predict_dead(4, 15_000));
    }

    #[test]
    fn frame_indices_wrap() {
        let mut d = dbp();
        d.on_fill(8, 0); // wraps to frame 0
        assert!(d.predict_dead(0, 1_000_000));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn zero_multiple_rejected() {
        let _ = TimekeepingDbp::new(DbpConfig {
            frames: 4,
            live_time_multiple: 0,
            min_dead_cycles: 1,
        });
    }
}
