//! Truncated addition: the sequence-hashing primitive of Figure 9.
//!
//! The PHT index's high bits are "taken from (the lower bits of) a
//! truncated addition (as in [Lai et al.]) of all tags in the tag
//! sequence". Truncated addition folds a variable-length tag sequence
//! into a fixed-width value with cheap hardware (an adder per tag), at
//! the cost of being order-insensitive — an aliasing source the paper
//! accepts and the PHT's per-entry tag partially disambiguates.

use tcp_mem::Tag;

/// Adds all tags and keeps the low `bits` bits of the sum.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 64.
///
/// # Examples
///
/// ```
/// use tcp_core::truncated_sum;
/// use tcp_mem::Tag;
///
/// let seq = [Tag::new(0x12), Tag::new(0x34)];
/// assert_eq!(truncated_sum(&seq, 8), 0x46);
/// // Truncation wraps: only the low bits survive.
/// let big = [Tag::new(0xFF), Tag::new(0x01)];
/// assert_eq!(truncated_sum(&big, 8), 0x00);
/// ```
pub fn truncated_sum(tags: &[Tag], bits: u32) -> u64 {
    assert!(
        (1..=64).contains(&bits),
        "truncation width must be in 1..=64"
    );
    let sum = tags.iter().fold(0u64, |acc, t| acc.wrapping_add(t.raw()));
    if bits == 64 {
        sum
    } else {
        sum & ((1u64 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(raw: &[u64]) -> Vec<Tag> {
        raw.iter().copied().map(Tag::new).collect()
    }

    #[test]
    fn empty_sequence_sums_to_zero() {
        assert_eq!(truncated_sum(&[], 16), 0);
    }

    #[test]
    fn single_tag_is_truncated_identity() {
        assert_eq!(truncated_sum(&tags(&[0x1_2345]), 16), 0x2345);
        assert_eq!(truncated_sum(&tags(&[7]), 64), 7);
    }

    #[test]
    fn addition_is_order_insensitive() {
        let a = truncated_sum(&tags(&[1, 2, 3]), 16);
        let b = truncated_sum(&tags(&[3, 1, 2]), 16);
        assert_eq!(a, b, "truncated addition cannot distinguish permutations");
    }

    #[test]
    fn truncation_wraps_like_hardware_adder() {
        assert_eq!(truncated_sum(&tags(&[0xFFFF, 0x0001]), 16), 0);
        assert_eq!(truncated_sum(&tags(&[0xFFFF, 0x0002]), 16), 1);
    }

    #[test]
    fn result_fits_width() {
        for bits in [1u32, 4, 8, 13, 16, 32] {
            let s = truncated_sum(&tags(&[u64::MAX, 12345, 678]), bits);
            assert!(s < (1u64 << bits));
        }
    }

    #[test]
    #[should_panic(expected = "truncation width")]
    fn zero_width_rejected() {
        let _ = truncated_sum(&[], 0);
    }
}
